// Batched service: driving the sharded scheduling service with request
// batches instead of one request at a time.
//
//   $ ./example_batched_service
//
// Builds an 8-machine ShardedScheduler with 4 worker shards, serves a churn
// workload through the batched API, and shows that the result is
// indistinguishable from the sequential MultiMachineScheduler — same
// schedule, same per-request costs — while amortizing per-request fixed
// costs across each batch (EXPERIMENTS.md §E13 quantifies the throughput).
#include <iostream>

#include "reasched/reasched.hpp"

int main() {
  using namespace reasched;

  constexpr unsigned kMachines = 8;
  const auto factory = [] {
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    return std::make_unique<ReservationScheduler>(options);
  };

  ShardedScheduler::Options service;
  service.shards = 4;
  ShardedScheduler sharded(kMachines, factory, service);
  MultiMachineScheduler sequential(kMachines, factory);
  std::cout << "service:    " << sharded.name() << "\nreference:  " << sequential.name()
            << "\n\n";

  // A γ-underallocated churn trace, the same workload family as E12/E13.
  ChurnParams params;
  params.seed = 7;
  params.target_active = 512;
  params.requests = 4'000;
  params.machines = kMachines;
  params.min_span = 64;
  params.max_span = 2048;
  const std::vector<Request> trace = make_churn_trace(params);

  // Serve the whole trace in batches of 256 through the service...
  constexpr std::size_t kBatch = 256;
  RequestStats batched_total;
  for (std::size_t first = 0; first < trace.size(); first += kBatch) {
    const std::size_t count = std::min(kBatch, trace.size() - first);
    const BatchResult result =
        sharded.apply(std::span<const Request>(trace).subspan(first, count));
    batched_total += result.total;
    // One balance audit per *batch* — the amortized self-checking cadence.
    sharded.audit_balance();
  }

  // ...and one at a time through the sequential reduction.
  RequestStats sequential_total;
  for (const Request& request : trace) {
    sequential_total += request.kind == RequestKind::kInsert
                            ? sequential.insert(request.job, request.window)
                            : sequential.erase(request.job);
  }

  std::cout << "requests:          " << trace.size() << " (batches of " << kBatch
            << ")\nactive jobs:       " << sharded.active_jobs()
            << "\nreallocations:     batched=" << batched_total.reallocations
            << " sequential=" << sequential_total.reallocations
            << "\nmigrations:        batched=" << batched_total.migrations
            << " sequential=" << sequential_total.migrations << '\n';

  // Delegation is fixed by the §3 round-robin rule, so the two paths must
  // agree placement-for-placement.
  const Schedule batched_snapshot = sharded.snapshot();
  const Schedule sequential_snapshot = sequential.snapshot();
  std::size_t mismatches = 0;
  for (const auto& [job, placement] : sequential_snapshot.assignments()) {
    const auto other = batched_snapshot.find(job);
    if (!other.has_value() || other->machine != placement.machine ||
        other->slot != placement.slot) {
      ++mismatches;
    }
  }
  std::cout << "placement diffs:   " << mismatches << " of "
            << sequential_snapshot.size() << '\n';
  return mismatches == 0 &&
                 batched_total.reallocations == sequential_total.reallocations
             ? 0
             : 1;
}
