// Lower bounds live (§6): run the paper's adversarial constructions and
// watch the forced costs appear.
//
//   $ ./example_adversary_demo
//
// Part 1 — Lemma 11: an adaptive adversary forces ~s/12 migrations out of
// ANY deterministic scheduler, ours included.
// Part 2 — Lemma 12: without slack, toggling one unit job forces every
// other job to move: Θ(s²) total reallocations. This is exactly why
// Theorem 1 needs γ-underallocation.
#include <iostream>

#include "reasched/reasched.hpp"

int main() {
  using namespace reasched;

  std::cout << "== Part 1: Lemma 11 — migrations are unavoidable ==\n";
  {
    constexpr unsigned kMachines = 4;
    constexpr std::uint64_t kRounds = 50;
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    ReallocatingScheduler scheduler(kMachines, options);
    Lemma11Adversary adversary(kMachines, kRounds);
    const auto report = run_adaptive(
        scheduler, [&](const Schedule& s) { return adversary.next(s); });
    const auto s = adversary.requests_emitted();
    std::cout << "  machines=" << kMachines << " rounds=" << kRounds
              << " requests=" << s << '\n';
    std::cout << "  total migrations forced: "
              << static_cast<std::uint64_t>(report.metrics.migrations().sum())
              << "  (paper's lower bound: s/12 = " << s / 12 << ")\n";
    std::cout << "  ...while still never migrating more than "
              << report.metrics.max_migrations() << " job per request.\n\n";
  }

  std::cout << "== Part 2: Lemma 12 — no slack, quadratic pain ==\n";
  {
    constexpr std::uint64_t kEta = 64;
    constexpr std::uint64_t kToggles = 32;
    const auto trace = make_lemma12_trace(kEta, kToggles);
    OptRebuildScheduler optimal(1);
    const auto report = replay_trace(optimal, trace);
    std::cout << "  staircase of " << kEta << " jobs, " << kToggles
              << " filler toggles (" << trace.size() << " requests)\n";
    std::cout << "  total reallocations paid by the OPTIMAL scheduler: "
              << static_cast<std::uint64_t>(report.metrics.reallocations().sum())
              << "  (~eta per toggle — forced, Θ(s²) overall)\n";
    std::cout << "  The same instance is NOT gamma-underallocated for any "
                 "gamma > 1, so Theorem 1 does not apply — and cannot: the "
                 "moves are information-theoretically forced.\n\n";
  }

  std::cout << "== Contrast: the same toggle pattern WITH slack ==\n";
  {
    // Give the staircase jobs 8x wider windows: the toggles stop hurting.
    std::vector<Request> trace;
    constexpr std::uint64_t kEta = 64;
    for (std::uint64_t j = 0; j < kEta; ++j) {
      trace.push_back(Request::insert(
          JobId{j + 1}, Window{static_cast<Time>(16 * j), static_cast<Time>(16 * j + 16)}));
    }
    std::uint64_t next = 1000;
    for (int t = 0; t < 32; ++t) {
      const JobId low{next++};
      trace.push_back(Request::insert(low, Window{0, 1}));
      trace.push_back(Request::erase(low));
    }
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    ReallocatingScheduler scheduler(1, options);
    const auto report = replay_trace(scheduler, trace);
    std::cout << "  same toggles, windows 16x wider: total reallocations = "
              << static_cast<std::uint64_t>(report.metrics.reallocations().sum())
              << " (slack collapses the cascade, as Theorem 1 promises)\n";
  }
  return 0;
}
