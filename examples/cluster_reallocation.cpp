// Multiprocessor scenario (§1's computational motivation): unit tasks with
// execution windows on an m-machine cluster, arriving and departing online.
//
//   $ ./example_cluster_reallocation [machines] [requests]
//
// Shows the two costs the paper separates — reallocations (cheap: same
// machine, new time) and migrations (expensive: job state moves across
// machines) — and demonstrates the Theorem-1 guarantee that migrations are
// at most one per request while reallocations stay O(log* n).
#include <iostream>

#include "reasched/reasched.hpp"

int main(int argc, char** argv) {
  using namespace reasched;

  const unsigned machines = argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 8;
  const std::size_t requests = argc > 2 ? std::stoull(argv[2]) : 20'000;

  ChurnParams params;
  params.seed = 2013;  // SPAA '13
  params.machines = machines;
  params.target_active = 256 * machines;
  params.requests = requests;
  params.min_span = 64;
  params.max_span = 1 << 14;
  params.aligned = false;  // arbitrary windows; the pipeline aligns (§5)
  const auto trace = make_churn_trace(params);

  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  ReallocatingScheduler scheduler(machines, options);

  // Stream the trace, tracking a live histogram of per-request costs.
  IntHistogram migrations_per_delete;
  SimOptions sim;
  sim.validate_every = 500;
  sim.on_request = [&](std::size_t, const Request& request, const RequestStats& stats) {
    if (request.kind == RequestKind::kDelete) {
      migrations_per_delete.add(stats.migrations);
    }
  };
  const auto report = replay_trace(scheduler, trace, sim);
  if (!report.clean()) {
    std::cerr << "validation problem: " << report.first_issue << '\n';
    return 1;
  }

  std::cout << "cluster: " << machines << " machines, " << report.metrics.requests()
            << " requests, " << scheduler.active_jobs() << " jobs active at end\n\n";

  Table costs("per-request costs");
  costs.set_header({"metric", "mean", "p99", "max"});
  costs.add_row({"reallocations", Table::num(report.metrics.reallocations().mean(), 3),
                 Table::num(report.metrics.p99_reallocations()),
                 Table::num(report.metrics.max_reallocations())});
  costs.add_row({"migrations", Table::num(report.metrics.migrations().mean(), 4),
                 Table::num(report.metrics.migration_hist().percentile(0.99)),
                 Table::num(report.metrics.max_migrations())});
  costs.print(std::cout);

  std::cout << "\nmigrations per delete request:\n";
  for (const auto& [value, count] : migrations_per_delete.buckets()) {
    std::cout << "  " << value << " migration(s): " << count << " requests\n";
  }
  std::cout << "\nTheorem 1 in action: max migrations per request = "
            << report.metrics.max_migrations() << " (bound: 1)\n";
  return report.metrics.max_migrations() <= 1 ? 0 : 1;
}
