// Quickstart: the 60-second tour of the public API.
//
//   $ ./example_quickstart
//
// Creates a 2-machine reallocating scheduler, inserts a handful of jobs
// with arrival/deadline windows, deletes one, and prints the schedule and
// the per-request reallocation/migration costs.
#include <iostream>

#include "reasched/reasched.hpp"

int main() {
  using namespace reasched;

  // The paper's full pipeline: align → round-robin delegate → schedule with
  // reservations. Theorem 1: O(log* n) reallocations and <= 1 migration per
  // request on sufficiently underallocated inputs.
  ReallocatingScheduler scheduler(/*machines=*/2);

  std::cout << "scheduler: " << scheduler.name() << "\n\n";

  // ⟨INSERTJOB, name, arrival, deadline⟩ — the job needs one unit slot in
  // [arrival, deadline).
  struct Arrival {
    std::uint64_t id;
    Time arrival;
    Time deadline;
  };
  const std::vector<Arrival> arrivals = {
      {1, 0, 64},  {2, 0, 64},  {3, 16, 32}, {4, 0, 128},
      {5, 48, 96}, {6, 0, 8},   {7, 4, 6},   {8, 0, 256},
  };
  for (const auto& [id, arrival, deadline] : arrivals) {
    const RequestStats stats = scheduler.insert(JobId{id}, Window{arrival, deadline});
    std::cout << "insert job " << id << " window [" << arrival << "," << deadline
              << ")  -> reallocations=" << stats.reallocations
              << " migrations=" << stats.migrations << '\n';
  }

  // ⟨DELETEJOB, name⟩ — deleting may migrate at most one job (§3).
  const RequestStats stats = scheduler.erase(JobId{2});
  std::cout << "\ndelete job 2 -> reallocations=" << stats.reallocations
            << " migrations=" << stats.migrations << "\n\n";

  // The scheduler can always output its current feasible schedule (§2).
  std::cout << "current schedule (machine, slot):\n";
  const Schedule snapshot = scheduler.snapshot();
  for (const auto& [job, placement] : snapshot.assignments()) {
    std::cout << "  job " << job.value << " -> (m" << placement.machine << ", t"
              << placement.slot << ")\n";
  }

  // ...or as a picture (last digit of each job id; '.' = free):
  RenderOptions render;
  render.from = 0;
  render.to = 64;
  std::cout << '\n' << render_schedule(snapshot, render);

  // Validate it independently.
  std::unordered_map<JobId, Window> active;
  for (const auto& [id, arrival, deadline] : arrivals) {
    if (id != 2) active.emplace(JobId{id}, Window{arrival, deadline});
  }
  const auto report = validate_schedule(snapshot, active);
  std::cout << "\nvalidator: " << report.to_string() << '\n';
  return report.ok() ? 0 : 1;
}
