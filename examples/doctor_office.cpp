// The paper's motivating example (§1): scheduling a doctor's office.
//
//   $ ./example_doctor_office [days]
//
// Patients call in asking for an appointment within an availability window;
// some cancel later. The receptionist (our scheduler) keeps everyone booked
// and wants to annoy as few patients as possible — each reallocation is a
// phone call saying "we have to move your appointment". The demo compares
// the paper's scheduler with the classic EDF-repair receptionist on the
// same phone log and prints how many patients each annoyed.
#include <iostream>

#include "reasched/reasched.hpp"

int main(int argc, char** argv) {
  using namespace reasched;

  DoctorOfficeParams params;
  params.days = argc > 1 ? std::stoull(argv[1]) : 96;
  params.bookings_per_day = 10.0;
  params.cancel_rate = 0.03;
  const auto phone_log = make_doctor_office_trace(params);

  std::cout << "doctor's office: " << params.days << " days, " << phone_log.size()
            << " phone calls (bookings + cancellations)\n\n";

  struct Receptionist {
    std::string label;
    std::unique_ptr<IReallocScheduler> scheduler;
  };
  std::vector<Receptionist> receptionists;
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  receptionists.push_back(
      {"reservation scheduler (this paper)",
       std::make_unique<ReallocatingScheduler>(1, options)});
  receptionists.push_back(
      {"EDF repair (classic greedy)",
       std::make_unique<ReallocatingScheduler>(
           1,
           [] {
             return std::make_unique<GreedyRepairScheduler>(
                 GreedyRepairScheduler::Fit::kEarliest);
           },
           "edf-repair")});

  Table table("patients rescheduled per booking/cancellation");
  table.set_header({"receptionist", "calls", "mean moved", "p99 moved", "max moved",
                    "total moved"});
  for (auto& receptionist : receptionists) {
    SimOptions sim;
    sim.validate_every = 64;
    const auto report = replay_trace(*receptionist.scheduler, phone_log, sim);
    if (!report.clean()) {
      std::cerr << "validation problem: " << report.first_issue << '\n';
      return 1;
    }
    table.add_row({receptionist.label, Table::num(report.metrics.requests()),
                   Table::num(report.metrics.reallocations().mean(), 3),
                   Table::num(report.metrics.p99_reallocations()),
                   Table::num(report.metrics.max_reallocations()),
                   Table::num(static_cast<std::uint64_t>(
                       report.metrics.reallocations().sum()))});
  }
  table.print(std::cout);
  std::cout << "\nEvery booked patient always keeps a valid appointment inside "
               "their stated availability (validated every 64 calls).\n";
  return 0;
}
