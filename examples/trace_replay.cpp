// Trace replay CLI: turn the library into a command-line tool.
//
//   $ ./example_trace_replay <trace-file> [scheduler] [machines]
//       [--record-trace FILE] [--replay-trace FILE]
//
//   scheduler: reservation (default) | incremental | naive | edf-repair |
//              latest-fit | opt-rebuild
//
// Reads a request trace (see workload/trace_io.hpp for the format: lines of
// "I <id> <arrival> <deadline>" and "D <id>"), replays it with continuous
// validation, and prints the cost summary. Use `-` to read from stdin.
// Generate traces programmatically or dump one with write_trace().
//
// --replay-trace FILE reads the trace from a *binary* WAL-format file
// instead of the positional text trace (a durability log file works as-is:
// a crash's surviving request stream is a ready-made reproducer);
// --record-trace FILE writes the served stream to FILE in that format.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "reasched/reasched.hpp"

namespace {

std::unique_ptr<reasched::IReallocScheduler> make_scheduler(const std::string& kind,
                                                            unsigned machines) {
  using namespace reasched;
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  if (kind == "reservation") {
    return std::make_unique<ReallocatingScheduler>(machines, options);
  }
  if (kind == "incremental") {
    return std::make_unique<ReallocatingScheduler>(
        machines,
        [options] { return std::make_unique<IncrementalRebuildScheduler>(options); },
        "incremental[m=" + std::to_string(machines) + "]");
  }
  if (kind == "naive") {
    return std::make_unique<ReallocatingScheduler>(
        machines, [] { return std::make_unique<NaiveScheduler>(); },
        "naive[m=" + std::to_string(machines) + "]");
  }
  if (kind == "edf-repair" || kind == "latest-fit") {
    const auto fit = kind == "edf-repair" ? GreedyRepairScheduler::Fit::kEarliest
                                          : GreedyRepairScheduler::Fit::kLatest;
    return std::make_unique<ReallocatingScheduler>(
        machines, [fit] { return std::make_unique<GreedyRepairScheduler>(fit); },
        kind + "[m=" + std::to_string(machines) + "]");
  }
  if (kind == "opt-rebuild") {
    return std::make_unique<OptRebuildScheduler>(machines);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reasched;
  std::string record_path;
  std::string replay_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--record-trace") == 0 && i + 1 < argc) {
      record_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-trace") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.empty() && replay_path.empty()) {
    std::cerr << "usage: " << argv[0]
              << " <trace-file|-> [reservation|incremental|naive|edf-repair|"
                 "latest-fit|opt-rebuild] [machines]"
                 " [--record-trace FILE] [--replay-trace FILE]\n"
                 "with --replay-trace the trace comes from FILE (WAL format);"
                 " omit <trace-file>\n";
    return 2;
  }
  std::size_t arg = 0;
  const std::string path =
      replay_path.empty() ? positional[arg++] : std::string{};
  const std::string kind = positional.size() > arg ? positional[arg++] : "reservation";
  unsigned machines = 1;
  if (positional.size() > arg) {
    try {
      machines = static_cast<unsigned>(std::stoul(positional[arg]));
    } catch (const std::exception&) {
      std::cerr << "bad machines argument: " << positional[arg]
                << " (with --replay-trace, omit <trace-file>)\n";
      return 2;
    }
  }

  std::vector<Request> trace;
  try {
    if (!replay_path.empty()) {
      trace = read_trace_wal(replay_path);
    } else if (path == "-") {
      trace = read_trace(std::cin);
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "cannot open " << path << '\n';
        return 2;
      }
      trace = read_trace(file);
    }
  } catch (const ContractViolation& error) {
    std::cerr << "malformed trace: " << error.what() << '\n';
    return 2;
  }

  auto scheduler = make_scheduler(kind, machines);
  if (!scheduler) {
    std::cerr << "unknown scheduler kind: " << kind << '\n';
    return 2;
  }

  SimOptions sim;
  sim.validate_every = 100;
  sim.record_trace = record_path;
  const auto report = replay_trace(*scheduler, trace, sim);

  Table table("replay: " + scheduler->name());
  table.set_header({"metric", "value"});
  table.add_row({"requests", Table::num(report.metrics.requests())});
  table.add_row({"rejected (infeasible)", Table::num(report.metrics.rejected())});
  table.add_row({"mean reallocations", Table::num(report.metrics.reallocations().mean(), 4)});
  table.add_row({"p99 reallocations", Table::num(report.metrics.p99_reallocations())});
  table.add_row({"max reallocations", Table::num(report.metrics.max_reallocations())});
  table.add_row({"mean migrations", Table::num(report.metrics.migrations().mean(), 4)});
  table.add_row({"max migrations", Table::num(report.metrics.max_migrations())});
  table.add_row({"degraded placements", Table::num(report.metrics.degraded())});
  table.add_row({"rebuild events", Table::num(report.metrics.rebuilds())});
  table.add_row({"wall seconds", Table::num(report.seconds, 3)});
  table.print(std::cout);

  if (!report.clean()) {
    std::cerr << "\nVALIDATION PROBLEM: " << report.first_issue << '\n';
    return 1;
  }
  std::cout << "\nschedule validated every 100 requests: OK\n";
  return 0;
}
