// Trace replay CLI: turn the library into a command-line tool.
//
//   $ ./example_trace_replay <trace-file> [scheduler] [machines]
//
//   scheduler: reservation (default) | incremental | naive | edf-repair |
//              latest-fit | opt-rebuild
//
// Reads a request trace (see workload/trace_io.hpp for the format: lines of
// "I <id> <arrival> <deadline>" and "D <id>"), replays it with continuous
// validation, and prints the cost summary. Use `-` to read from stdin.
// Generate traces programmatically or dump one with write_trace().
#include <fstream>
#include <iostream>
#include <memory>

#include "reasched/reasched.hpp"

namespace {

std::unique_ptr<reasched::IReallocScheduler> make_scheduler(const std::string& kind,
                                                            unsigned machines) {
  using namespace reasched;
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  if (kind == "reservation") {
    return std::make_unique<ReallocatingScheduler>(machines, options);
  }
  if (kind == "incremental") {
    return std::make_unique<ReallocatingScheduler>(
        machines,
        [options] { return std::make_unique<IncrementalRebuildScheduler>(options); },
        "incremental[m=" + std::to_string(machines) + "]");
  }
  if (kind == "naive") {
    return std::make_unique<ReallocatingScheduler>(
        machines, [] { return std::make_unique<NaiveScheduler>(); },
        "naive[m=" + std::to_string(machines) + "]");
  }
  if (kind == "edf-repair" || kind == "latest-fit") {
    const auto fit = kind == "edf-repair" ? GreedyRepairScheduler::Fit::kEarliest
                                          : GreedyRepairScheduler::Fit::kLatest;
    return std::make_unique<ReallocatingScheduler>(
        machines, [fit] { return std::make_unique<GreedyRepairScheduler>(fit); },
        kind + "[m=" + std::to_string(machines) + "]");
  }
  if (kind == "opt-rebuild") {
    return std::make_unique<OptRebuildScheduler>(machines);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reasched;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " <trace-file|-> [reservation|incremental|naive|edf-repair|"
                 "latest-fit|opt-rebuild] [machines]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::string kind = argc > 2 ? argv[2] : "reservation";
  const unsigned machines = argc > 3 ? static_cast<unsigned>(std::stoul(argv[3])) : 1;

  std::vector<Request> trace;
  try {
    if (path == "-") {
      trace = read_trace(std::cin);
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "cannot open " << path << '\n';
        return 2;
      }
      trace = read_trace(file);
    }
  } catch (const ContractViolation& error) {
    std::cerr << "malformed trace: " << error.what() << '\n';
    return 2;
  }

  auto scheduler = make_scheduler(kind, machines);
  if (!scheduler) {
    std::cerr << "unknown scheduler kind: " << kind << '\n';
    return 2;
  }

  SimOptions sim;
  sim.validate_every = 100;
  const auto report = replay_trace(*scheduler, trace, sim);

  Table table("replay: " + scheduler->name());
  table.set_header({"metric", "value"});
  table.add_row({"requests", Table::num(report.metrics.requests())});
  table.add_row({"rejected (infeasible)", Table::num(report.metrics.rejected())});
  table.add_row({"mean reallocations", Table::num(report.metrics.reallocations().mean(), 4)});
  table.add_row({"p99 reallocations", Table::num(report.metrics.p99_reallocations())});
  table.add_row({"max reallocations", Table::num(report.metrics.max_reallocations())});
  table.add_row({"mean migrations", Table::num(report.metrics.migrations().mean(), 4)});
  table.add_row({"max migrations", Table::num(report.metrics.max_migrations())});
  table.add_row({"degraded placements", Table::num(report.metrics.degraded())});
  table.add_row({"rebuild events", Table::num(report.metrics.rebuilds())});
  table.add_row({"wall seconds", Table::num(report.seconds, 3)});
  table.print(std::cout);

  if (!report.clean()) {
    std::cerr << "\nVALIDATION PROBLEM: " << report.first_issue << '\n';
    return 1;
  }
  std::cout << "\nschedule validated every 100 requests: OK\n";
  return 0;
}
