// Trace replay CLI: turn the library into a command-line tool.
//
//   $ ./trace_replay <trace-file> [scheduler] [machines]
//       [--record-trace FILE] [--replay-trace FILE] [--churn N]
//       [--telemetry] [--trace] [--metrics-out FILE] [--trace-out FILE]
//       [--shards N] [--batch N] [--wal-dir DIR]
//
//   scheduler: reservation (default) | incremental | naive | edf-repair |
//              latest-fit | opt-rebuild | sharded
//
// Reads a request trace (see workload/trace_io.hpp for the format: lines of
// "I <id> <arrival> <deadline>" and "D <id>"), replays it with continuous
// validation, and prints the cost summary. Use `-` to read from stdin.
// Generate traces programmatically, dump one with write_trace(), or pass
// --churn N to synthesize an N-request churn workload in-process (omit
// <trace-file>).
//
// --replay-trace FILE reads the trace from a *binary* WAL-format file
// instead of the positional text trace (a durability log file works as-is:
// a crash's surviving request stream is a ready-made reproducer);
// --record-trace FILE writes the served stream to FILE in that format.
//
// Observability (DESIGN.md §10, §12): --telemetry turns on the process-wide
// metric registry, --trace additionally records span/instant events;
// --metrics-out FILE writes the Registry snapshot as JSON and --trace-out
// FILE writes a chrome://tracing-loadable trace (and implies --trace).
// Serving-grade plane (§12): --prom-out FILE writes the final Prometheus
// exposition; --scrape-interval MS runs the background Scraper during the
// replay; --scrape-out FILE appends its per-interval delta JSONL (rotating);
// --metrics-port PORT serves the exposition on 127.0.0.1 (0 = ephemeral,
// the bound port is printed):
//
//   $ ./trace_replay sharded 8 --churn 200000 --scrape-interval 100
//       --metrics-port 0 --prom-out metrics.prom --trace-out trace.json
//   ...then, while it runs:  curl http://127.0.0.1:<port>/metrics
// The `sharded` kind serves the trace through ShardedScheduler (--shards,
// --batch control the service shape; --wal-dir attaches the durability
// tier), so one run exercises request, rebuild-flip, rehash-drain,
// audit-drain, and WAL-fsync record sites:
//
//   $ ./trace_replay sharded 8 --churn 20000 --shards 4
//       --wal-dir /tmp/replay-wal --metrics-out metrics.json
//       --trace-out trace.json            (one command line)
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "reasched/reasched.hpp"

namespace {

struct CliOptions {
  unsigned shards = 4;
  std::size_t batch = 64;
  std::string wal_dir;
  reasched::telemetry::TelemetryOptions telemetry;
};

std::unique_ptr<reasched::IReallocScheduler> make_scheduler(const std::string& kind,
                                                            unsigned machines,
                                                            const CliOptions& cli) {
  using namespace reasched;
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.telemetry = cli.telemetry;
  if (kind == "reservation") {
    return std::make_unique<ReallocatingScheduler>(machines, options);
  }
  if (kind == "incremental") {
    return std::make_unique<ReallocatingScheduler>(
        machines,
        [options] { return std::make_unique<IncrementalRebuildScheduler>(options); },
        "incremental[m=" + std::to_string(machines) + "]");
  }
  if (kind == "naive") {
    return std::make_unique<ReallocatingScheduler>(
        machines, [] { return std::make_unique<NaiveScheduler>(); },
        "naive[m=" + std::to_string(machines) + "]");
  }
  if (kind == "edf-repair" || kind == "latest-fit") {
    const auto fit = kind == "edf-repair" ? GreedyRepairScheduler::Fit::kEarliest
                                          : GreedyRepairScheduler::Fit::kLatest;
    return std::make_unique<ReallocatingScheduler>(
        machines, [fit] { return std::make_unique<GreedyRepairScheduler>(fit); },
        kind + "[m=" + std::to_string(machines) + "]");
  }
  if (kind == "opt-rebuild") {
    return std::make_unique<OptRebuildScheduler>(machines);
  }
  if (kind == "sharded") {
    // The service pipeline with every instrumented tier live: incremental
    // audits at a visible cadence, partitioned rebuilds and incremental
    // rehash by default, and (with --wal-dir) the per-shard WAL.
    options.audit_policy.mode = audit::Mode::kIncremental;
    options.audit_policy.cadence = 64;
    ShardedScheduler::Options service;
    service.shards = cli.shards;
    service.telemetry = cli.telemetry;
    if (!cli.wal_dir.empty()) {
      durability::DurabilityPolicy wal;
      wal.dir = cli.wal_dir;
      wal.sync_every = 1;
      service.wal = wal;
    }
    return std::make_unique<ShardedScheduler>(
        machines, [options] { return std::make_unique<ReservationScheduler>(options); },
        service);
  }
  return nullptr;
}

/// Matches `--name VALUE` and `--name=VALUE`; advances i past a detached
/// value.
bool take_value(int argc, char** argv, int& i, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return false;
  if (argv[i][len] == '=') {
    out = argv[i] + len + 1;
    return true;
  }
  if (argv[i][len] == '\0' && i + 1 < argc) {
    out = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reasched;
  std::string record_path;
  std::string replay_path;
  std::string metrics_out;
  std::string trace_out;
  std::string prom_out;
  std::string scrape_interval_arg;
  std::string scrape_out;
  std::string metrics_port_arg;
  std::string shards_arg;
  std::string batch_arg;
  std::string churn_arg;
  CliOptions cli;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (take_value(argc, argv, i, "--record-trace", record_path) ||
        take_value(argc, argv, i, "--replay-trace", replay_path) ||
        take_value(argc, argv, i, "--metrics-out", metrics_out) ||
        take_value(argc, argv, i, "--trace-out", trace_out) ||
        take_value(argc, argv, i, "--prom-out", prom_out) ||
        take_value(argc, argv, i, "--scrape-interval", scrape_interval_arg) ||
        take_value(argc, argv, i, "--scrape-out", scrape_out) ||
        take_value(argc, argv, i, "--metrics-port", metrics_port_arg) ||
        take_value(argc, argv, i, "--wal-dir", cli.wal_dir) ||
        take_value(argc, argv, i, "--shards", shards_arg) ||
        take_value(argc, argv, i, "--batch", batch_arg) ||
        take_value(argc, argv, i, "--churn", churn_arg)) {
      continue;
    }
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      cli.telemetry.enabled = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      cli.telemetry.trace = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  // Output files imply the corresponding recording tier.
  if (!metrics_out.empty()) cli.telemetry.enabled = true;
  if (!trace_out.empty()) cli.telemetry.trace = true;
  if (!prom_out.empty() || !scrape_interval_arg.empty() || !scrape_out.empty() ||
      !metrics_port_arg.empty()) {
    cli.telemetry.enabled = true;
  }

  const bool synthetic = !replay_path.empty() || !churn_arg.empty();
  if (positional.empty() && !synthetic) {
    std::cerr << "usage: " << argv[0]
              << " <trace-file|-> [reservation|incremental|naive|edf-repair|"
                 "latest-fit|opt-rebuild|sharded] [machines]\n"
                 "  [--record-trace FILE] [--replay-trace FILE] [--churn N]\n"
                 "  [--telemetry] [--trace] [--metrics-out FILE] "
                 "[--trace-out FILE]\n"
                 "  [--prom-out FILE] [--scrape-interval MS] "
                 "[--scrape-out FILE] [--metrics-port PORT]\n"
                 "  [--shards N] [--batch N] [--wal-dir DIR]\n"
                 "with --replay-trace or --churn the trace is synthetic;"
                 " omit <trace-file>\n";
    return 2;
  }
  std::size_t arg = 0;
  const std::string path = synthetic ? std::string{} : positional[arg++];
  const std::string kind = positional.size() > arg ? positional[arg++] : "reservation";
  unsigned machines = 1;
  if (positional.size() > arg) {
    try {
      machines = static_cast<unsigned>(std::stoul(positional[arg]));
    } catch (const std::exception&) {
      std::cerr << "bad machines argument: " << positional[arg]
                << " (with --replay-trace or --churn, omit <trace-file>)\n";
      return 2;
    }
  }
  try {
    if (!shards_arg.empty()) cli.shards = static_cast<unsigned>(std::stoul(shards_arg));
    if (!batch_arg.empty()) cli.batch = std::stoul(batch_arg);
  } catch (const std::exception&) {
    std::cerr << "bad --shards/--batch argument\n";
    return 2;
  }

  std::vector<Request> trace;
  try {
    if (!churn_arg.empty()) {
      ChurnParams params;
      params.seed = 1;
      params.requests = std::stoul(churn_arg);
      params.target_active = std::max<std::size_t>(64, params.requests / 8);
      params.machines = machines;
      trace = make_churn_trace(params);
    } else if (!replay_path.empty()) {
      trace = read_trace_wal(replay_path);
    } else if (path == "-") {
      trace = read_trace(std::cin);
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "cannot open " << path << '\n';
        return 2;
      }
      trace = read_trace(file);
    }
  } catch (const ContractViolation& error) {
    std::cerr << "malformed trace: " << error.what() << '\n';
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "bad --churn argument: " << error.what() << '\n';
    return 2;
  }

  auto scheduler = make_scheduler(kind, machines, cli);
  if (!scheduler) {
    std::cerr << "unknown scheduler kind: " << kind << '\n';
    return 2;
  }

  SimOptions sim;
  sim.validate_every = 100;
  sim.record_trace = record_path;
  sim.record_latency = true;
  sim.telemetry = cli.telemetry;
  if (kind == "sharded") sim.batch_size = cli.batch;

  // Background observability plane for the duration of the replay.
  std::unique_ptr<telemetry::Scraper> scraper;
  if (!scrape_interval_arg.empty() || !scrape_out.empty() ||
      !metrics_port_arg.empty()) {
    telemetry::enable(cli.telemetry);
    telemetry::Scraper::Options scrape;
    try {
      if (!scrape_interval_arg.empty()) {
        scrape.interval_ms =
            static_cast<std::uint32_t>(std::stoul(scrape_interval_arg));
      }
      if (!metrics_port_arg.empty()) {
        scrape.port = std::stoi(metrics_port_arg);
      }
    } catch (const std::exception&) {
      std::cerr << "bad --scrape-interval/--metrics-port argument\n";
      return 2;
    }
    scrape.out_path = scrape_out;
    scraper = std::make_unique<telemetry::Scraper>(std::move(scrape));
    if (scraper->port() > 0) {
      std::cout << "serving metrics on http://127.0.0.1:" << scraper->port()
                << "/metrics\n";
    }
  }

  const auto report = replay_trace(*scheduler, trace, sim);
  if (kind == "sharded" && !cli.wal_dir.empty()) {
    static_cast<ShardedScheduler&>(*scheduler).sync_wal();
  }

  Table table("replay: " + scheduler->name());
  table.set_header({"metric", "value"});
  table.add_row({"requests", Table::num(report.metrics.requests())});
  table.add_row({"rejected (infeasible)", Table::num(report.metrics.rejected())});
  table.add_row({"mean reallocations", Table::num(report.metrics.reallocations().mean(), 4)});
  table.add_row({"p99 reallocations", Table::num(report.metrics.p99_reallocations())});
  table.add_row({"max reallocations", Table::num(report.metrics.max_reallocations())});
  table.add_row({"mean migrations", Table::num(report.metrics.migrations().mean(), 4)});
  table.add_row({"max migrations", Table::num(report.metrics.max_migrations())});
  table.add_row({"degraded placements", Table::num(report.metrics.degraded())});
  table.add_row({"rebuild events", Table::num(report.metrics.rebuilds())});
  const auto& latency = report.metrics.latency_hist();
  if (latency.total() > 0) {
    const char* unit = sim.batch_size > 0 ? " us/batch" : " us/req";
    const auto us = [](std::uint64_t ns) { return Table::num(ns / 1e3, 1); };
    table.add_row({"latency p50", us(latency.percentile(0.50)) + unit});
    table.add_row({"latency p99", us(latency.percentile(0.99)) + unit});
    table.add_row({"latency p999", us(latency.percentile(0.999)) + unit});
    table.add_row({"latency max", us(latency.max()) + unit});
  }
  table.add_row({"wall seconds", Table::num(report.seconds, 3)});
  table.print(std::cout);

  if (scraper != nullptr) {
    scraper->stop();
    std::cout << "scraper: " << scraper->scrapes() << " scrapes";
    if (!scrape_out.empty()) std::cout << ", deltas in " << scrape_out;
    std::cout << '\n';
  }
  if (!prom_out.empty()) {
    std::ofstream out(prom_out);
    if (!out) {
      std::cerr << "cannot write " << prom_out << '\n';
      return 2;
    }
    telemetry::Registry::global().write_prometheus(out);
    std::cout << "prometheus exposition written to " << prom_out << '\n';
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot write " << metrics_out << '\n';
      return 2;
    }
    telemetry::Registry::global().write_snapshot_json(out);
    std::cout << "telemetry snapshot written to " << metrics_out << '\n';
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot write " << trace_out << '\n';
      return 2;
    }
    telemetry::Registry::global().write_trace_json(out);
    std::cout << "chrome trace written to " << trace_out
              << " (load via chrome://tracing or tools/trace_summarize.py)\n";
  }

  if (!report.clean()) {
    std::cerr << "\nVALIDATION PROBLEM: " << report.first_issue << '\n';
    return 1;
  }
  std::cout << "\nschedule validated every 100 requests: OK\n";
  return 0;
}
