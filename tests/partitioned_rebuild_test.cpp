// Partitioned n*-rebuild (DESIGN.md §6): the shadow-generation migration
// must keep every mid-migration schedule valid, keep the audit and the
// fulfillment-cache verifier clean at every request, and converge to a
// state byte-identical with the stop-the-world (--legacy-rebuild) path —
// proven by identical snapshots AND identical per-request behavior on a
// probe suffix after the migration drains.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/incremental_rebuild.hpp"
#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

std::vector<Request> churn_trace(std::uint64_t seed, std::size_t requests,
                                 std::size_t target, std::uint64_t max_span = 4096) {
  ChurnParams params;
  params.seed = seed;
  params.requests = requests;
  params.target_active = target;
  params.min_span = 64;
  params.max_span = max_span;
  params.aligned = true;
  params.placement = WindowPlacement::kNestedHotspots;
  return make_churn_trace(params);
}

RequestStats serve(ReservationScheduler& s, const Request& r) {
  return r.kind == RequestKind::kInsert ? s.insert(r.job, r.window) : s.erase(r.job);
}

void expect_identical_snapshots(const ReservationScheduler& a,
                                const ReservationScheduler& b, const char* where) {
  const Schedule sa = a.snapshot();
  const Schedule sb = b.snapshot();
  ASSERT_EQ(sa.size(), sb.size()) << where;
  for (const auto& [id, placement] : sa.assignments()) {
    const auto other = sb.find(id);
    ASSERT_TRUE(other.has_value()) << where << ": job " << id.value;
    EXPECT_EQ(placement.machine, other->machine) << where << ": job " << id.value;
    EXPECT_EQ(placement.slot, other->slot) << where << ": job " << id.value;
  }
}

SchedulerOptions base_options() {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  return options;
}

TEST(PartitionedRebuild, MigrationActuallySpansRequestsAndStaysAudited) {
  // Small batch so the doubling rebuilds at 256+ jobs genuinely stretch
  // over many requests, with the full audit + cache verifier after every
  // single one (audit covers both generations).
  SchedulerOptions options = base_options();
  options.rebuild_batch = 16;
  options.audit = true;
  ReservationScheduler s(options);

  const auto trace = churn_trace(41, 1'500, 600);
  std::unordered_map<JobId, Window> active;
  bool saw_multi_request_migration = false;
  std::size_t validated_mid_migration = 0;
  for (const Request& r : trace) {
    serve(s, r);
    if (r.kind == RequestKind::kInsert) {
      active.emplace(r.job, r.window);
    } else {
      active.erase(r.job);
    }
    ASSERT_NO_THROW(s.verify_fulfillment_cache());
    if (s.rebuild_in_flight()) {
      saw_multi_request_migration = true;
      // Mid-migration the old generation serves: the schedule must stay
      // complete and feasible the whole way through.
      if (++validated_mid_migration % 8 == 1) {
        EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
      }
    }
  }
  EXPECT_TRUE(saw_multi_request_migration)
      << "trace never exercised a multi-request migration";
  EXPECT_GT(validated_mid_migration, 10u);
}

TEST(PartitionedRebuild, InterleavedChurnAtLevelBoundaries) {
  // Spans straddling the level-1/level-2 boundary (256): migrations must
  // interleave with inserts/deletes whose windows activate and deactivate
  // classes on both sides while the shadow generation catches up.
  SchedulerOptions options = base_options();
  options.rebuild_batch = 8;
  options.audit = true;
  ReservationScheduler s(options);

  std::uint64_t next = 1;
  std::vector<std::pair<JobId, Window>> active;
  const Time spans[] = {64, 128, 256, 512, 1024};
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 220; ++i) {
      const Time span = spans[static_cast<std::size_t>(i) % 5];
      const Time start = (static_cast<Time>(i) % 16) * 1024;
      const JobId id{next++};
      s.insert(id, Window{start, start + span});
      active.emplace_back(id, Window{start, start + span});
      ASSERT_NO_THROW(s.verify_fulfillment_cache());
    }
    while (active.size() > 30) {
      s.erase(active.back().first);
      active.pop_back();
      ASSERT_NO_THROW(s.verify_fulfillment_cache());
    }
  }
  std::unordered_map<JobId, Window> remaining(active.begin(), active.end());
  EXPECT_TRUE(validate_schedule(s.snapshot(), remaining).ok());
}

TEST(PartitionedRebuild, DifferentialByteIdenticalWithLegacy) {
  // The core acceptance test: same trace into a partitioned and a legacy
  // scheduler; once the migration has drained, snapshots must be
  // byte-identical AND a probe suffix must elicit identical per-request
  // stats from both (the strongest observable proof the internal states
  // converged).
  SchedulerOptions partitioned_options = base_options();
  partitioned_options.rebuild_batch = 16;  // stretch the migrations
  SchedulerOptions legacy_options = base_options();
  legacy_options.legacy_rebuild = true;

  ReservationScheduler partitioned(partitioned_options);
  ReservationScheduler legacy(legacy_options);

  const auto trace = churn_trace(97, 3'000, 900);
  for (const Request& r : trace) {
    serve(partitioned, r);
    serve(legacy, r);
  }

  // Drain any in-flight migration with neutral traffic both sides see.
  std::uint64_t next = 10'000'000;
  const auto drain = [&] {
    std::size_t settle = 0;
    while (partitioned.rebuild_in_flight() || partitioned.retired_pending()) {
      const JobId id{next++};
      const Request insert{RequestKind::kInsert, id, Window{0, 64}};
      const Request erase{RequestKind::kDelete, id, Window{}};
      serve(partitioned, insert);
      serve(legacy, insert);
      serve(partitioned, erase);
      serve(legacy, erase);
      ASSERT_LT(++settle, 10'000u) << "migration failed to drain";
    }
  };
  drain();

  ASSERT_NO_THROW(partitioned.audit());
  ASSERT_NO_THROW(legacy.audit());
  expect_identical_snapshots(partitioned, legacy, "post-drain");
  EXPECT_EQ(partitioned.n_star(), legacy.n_star());
  EXPECT_EQ(partitioned.parked_jobs(), legacy.parked_jobs());

  // Probe suffix: both schedulers must now behave identically request by
  // request — stats and snapshots.
  const auto probe = churn_trace(551, 600, 900);
  std::size_t compared = 0;
  for (const Request& r : probe) {
    // The probe generator is blind to the active set; skip requests that
    // do not apply (delete of unknown id / insert of an active id).
    const bool applies = r.kind == RequestKind::kInsert
                             ? partitioned.snapshot().find(r.job) == std::nullopt
                             : partitioned.snapshot().find(r.job) != std::nullopt;
    if (!applies) continue;
    const RequestStats a = serve(partitioned, r);
    const RequestStats b = serve(legacy, r);
    // At the next n* boundary the two paths legitimately report the rebuild
    // cost at different requests (that deferral is the whole point); the
    // probe compares only the steady region and re-drains afterwards.
    if (a.rebuilt || b.rebuilt) break;
    EXPECT_EQ(a.reallocations, b.reallocations) << "probe request " << compared;
    EXPECT_EQ(a.degraded, b.degraded) << "probe request " << compared;
    EXPECT_EQ(a.levels_touched, b.levels_touched) << "probe request " << compared;
    ++compared;
  }
  EXPECT_GT(compared, 50u);
  drain();
  expect_identical_snapshots(partitioned, legacy, "post-probe");
}

TEST(PartitionedRebuild, SmallSetsRebuildSynchronouslyLikeLegacy) {
  // Active sets <= rebuild_batch take the stop-the-world path: per-request
  // stats must match the legacy scheduler exactly, including the boundary
  // request's rebuilt flag and moved count.
  ReservationScheduler partitioned(base_options());
  SchedulerOptions legacy_options = base_options();
  legacy_options.legacy_rebuild = true;
  ReservationScheduler legacy(legacy_options);

  for (unsigned i = 0; i < 40; ++i) {
    const Window w{0, 1024};
    const RequestStats a = partitioned.insert(JobId{i + 1}, w);
    const RequestStats b = legacy.insert(JobId{i + 1}, w);
    EXPECT_EQ(a.rebuilt, b.rebuilt) << "insert " << i;
    EXPECT_EQ(a.reallocations, b.reallocations) << "insert " << i;
    EXPECT_FALSE(partitioned.rebuild_in_flight());
  }
  expect_identical_snapshots(partitioned, legacy, "small-n");
}

TEST(PartitionedRebuild, BoundaryAndSwapRequestsReportRebuilt) {
  SchedulerOptions options = base_options();
  options.rebuild_batch = 8;
  ReservationScheduler s(options);

  // Ramp past the first asynchronous boundary (n* = 64 -> 128 at 65 jobs).
  std::vector<bool> rebuilt_flags;
  for (unsigned i = 0; i < 80; ++i) {
    rebuilt_flags.push_back(s.insert(JobId{i + 1}, Window{0, 4096}).rebuilt);
  }
  // The boundary request flips n* and reports rebuilt; the swap request
  // (several requests later, batch 8 over 64 jobs) reports rebuilt again
  // with the honest moved count.
  EXPECT_TRUE(rebuilt_flags[64]) << "boundary request must report rebuilt";
  EXPECT_TRUE(std::count(rebuilt_flags.begin() + 65, rebuilt_flags.end(), true) >= 1)
      << "swap request must report rebuilt";
  EXPECT_EQ(s.n_star(), 128u);
}

TEST(PartitionedRebuild, RetiredGenerationDrainsAndArenaIsReused) {
  // After a migration completes, the retired generation must drain within
  // a few requests (one level per request), and the stop-the-world reset
  // path must reuse arena chunks instead of growing without bound.
  SchedulerOptions options = base_options();
  options.rebuild_batch = 16;
  ReservationScheduler s(options);

  std::uint64_t next = 1;
  bool caught_mid_migration = false;
  for (unsigned i = 0; i < 280 && !caught_mid_migration; ++i) {
    const RequestStats stats = s.insert(JobId{next++}, Window{0, 4096});
    if (stats.rebuilt && s.rebuild_in_flight()) caught_mid_migration = true;
  }
  ASSERT_TRUE(caught_mid_migration) << "ramp never left a migration in flight";
  while (s.rebuild_in_flight()) s.insert(JobId{next++}, Window{0, 64});
  // The request that completed the swap parked the old generation; the
  // deferred trim must release it within a handful of requests (one level
  // each, then the old occupancy/job tables).
  EXPECT_TRUE(s.retired_pending());
  for (int i = 0; i < 8 && s.retired_pending(); ++i) {
    s.insert(JobId{next++}, Window{0, 64});
  }
  EXPECT_FALSE(s.retired_pending()) << "deferred trim did not drain";

  // Legacy-path arena reuse: repeated stop-the-world rebuilds must recycle
  // the same chunks (blocks_reused grows across the rebuild cycle).
  SchedulerOptions legacy_options = base_options();
  legacy_options.legacy_rebuild = true;
  ReservationScheduler lr(legacy_options);
  const auto reused_total = [&lr] {
    std::size_t total = 0;
    for (unsigned level = 1; level <= 2; ++level) {
      total += lr.arena_stats(level).blocks_reused;
    }
    return total;
  };
  std::uint64_t id = 1;
  for (unsigned i = 0; i < 300; ++i) lr.insert(JobId{id++}, Window{0, 4096});
  const std::size_t before = reused_total();
  std::vector<JobId> doomed;
  for (unsigned i = 0; i < 280; ++i) doomed.push_back(JobId{i + 1});
  for (const JobId job : doomed) lr.erase(job);    // halving rebuilds
  for (unsigned i = 0; i < 300; ++i) lr.insert(JobId{id++}, Window{0, 4096});
  const std::size_t after = reused_total();
  EXPECT_GT(after, before) << "rebuild reset must reuse arena blocks";
}

TEST(PartitionedRebuild, HalvingBoundariesMigrateToo) {
  SchedulerOptions options = base_options();
  options.rebuild_batch = 8;
  options.audit = true;
  ReservationScheduler s(options);

  std::vector<JobId> active;
  std::uint64_t next = 1;
  for (unsigned i = 0; i < 300; ++i) {
    const JobId id{next++};
    s.insert(id, Window{0, 2048});
    active.push_back(id);
  }
  bool saw_halving_migration = false;
  while (active.size() > 8) {
    const RequestStats stats = s.erase(active.back());
    active.pop_back();
    if (stats.rebuilt && s.rebuild_in_flight()) saw_halving_migration = true;
  }
  EXPECT_TRUE(saw_halving_migration);
  EXPECT_EQ(s.active_jobs(), active.size());
}

// Runs an insert ramp until one partitioned migration completes (the
// generation swap carried the shadow's audit dirt across); returns the
// scheduler mid-story. The policy never audits on its own (cadence 0), so
// the carried-over backlog is intact for the caller to drain by hand.
std::unique_ptr<ReservationScheduler> ramp_past_one_swap(std::size_t post_swap_budget) {
  SchedulerOptions options = base_options();
  options.rebuild_batch = 16;
  options.audit_policy.mode = audit::Mode::kIncremental;
  options.audit_policy.cadence = 0;  // engine ingests; the test drains
  options.audit_policy.post_swap_budget = post_swap_budget;
  auto s = std::make_unique<ReservationScheduler>(options);

  const auto trace = churn_trace(4242, 2'000, 900);
  bool was_in_flight = false;
  for (const Request& r : trace) {
    serve(*s, r);
    const bool in_flight = s->rebuild_in_flight();
    if (was_in_flight && !in_flight) return s;  // swap happened this request
    was_in_flight = in_flight;
  }
  ADD_FAILURE() << "trace never completed a partitioned migration";
  return s;
}

TEST(PartitionedRebuild, PostSwapAuditDrainIsPaced) {
  // The generation flip hands the live engine a whole migration window's
  // dirt. With a post_swap_budget the backlog must drain at most
  // budget-regions per audit call — across calls, never inside one — and
  // still converge to a clean, fully verified state.
  constexpr std::size_t kBudget = 8;
  auto s = ramp_past_one_swap(kBudget);
  const std::size_t backlog = s->audit_backlog();
  ASSERT_GT(backlog, 4 * kBudget) << "swap carried too little dirt to test pacing";

  std::size_t calls = 0;
  while (s->audit_backlog() > 0) {
    const std::uint64_t before = s->audit_work().regions_checked;
    ASSERT_NO_THROW(s->incremental_audit());
    const std::uint64_t checked = s->audit_work().regions_checked - before;
    ASSERT_LE(checked, kBudget) << "post-swap drain exceeded the pacing budget";
    ASSERT_LT(++calls, backlog + 16) << "paced drain failed to converge";
  }
  EXPECT_GE(calls, backlog / kBudget) << "backlog drained in too few calls";
  // Once the carry-over clears, pacing disengages and the state is clean.
  ASSERT_NO_THROW(s->audit());
  ASSERT_NO_THROW(s->verify_fulfillment_cache());
}

TEST(PartitionedRebuild, PostSwapPacingDisabledDrainsInOneCall) {
  // post_swap_budget = 0 restores the pre-pacing behavior: the first audit
  // after the swap verifies the entire carried-over backlog at once.
  auto s = ramp_past_one_swap(0);
  ASSERT_GT(s->audit_backlog(), 0u);
  ASSERT_NO_THROW(s->incremental_audit());
  EXPECT_EQ(s->audit_backlog(), 0u);
}

TEST(IncrementalRebuildAdapter, AdaptivePaceAvoidsWholeSetBursts) {
  // The even/odd adapter must never reach a re-trigger with a backlog (the
  // old "flush the whole pending set in one burst" path) on realistic
  // churn: the adaptive pace drains it first.
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  IncrementalRebuildScheduler s(options);

  ChurnParams params;
  params.seed = 23;
  params.requests = 4'000;
  params.target_active = 700;
  params.min_span = 64;
  params.max_span = 2048;
  params.aligned = true;
  const auto trace = make_churn_trace(params);

  std::size_t triggers = 0;
  for (const Request& r : trace) {
    const std::size_t backlog_before = s.pending_migrations();
    const RequestStats stats = r.kind == RequestKind::kInsert
                                   ? s.insert(r.job, r.window)
                                   : s.erase(r.job);
    if (stats.rebuilt) {
      ++triggers;
      EXPECT_EQ(backlog_before, 0u)
          << "re-trigger hit a live backlog: whole-set burst fired";
    }
  }
  EXPECT_GT(triggers, 3u) << "trace never exercised the adapter's triggers";
  s.audit();
}

}  // namespace
}  // namespace reasched
