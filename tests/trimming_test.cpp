// §4 "Trimming Windows to n": n* tracking, trim geometry, and the
// amortized-rebuild accounting.
#include <gtest/gtest.h>

#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"

namespace reasched {
namespace {

SchedulerOptions trimmed_audited(std::uint64_t gamma = 8) {
  SchedulerOptions options;
  options.audit = true;
  options.trimming = true;
  options.gamma = gamma;
  return options;
}

TEST(Trimming, NStarDoublesExactlyAtThreshold) {
  ReservationScheduler s(trimmed_audited());
  EXPECT_EQ(s.n_star(), 8u);
  for (unsigned i = 0; i < 8; ++i) {
    s.insert(JobId{i + 1}, Window{0, 1024});
    EXPECT_EQ(s.n_star(), 8u) << "premature doubling at " << i;
  }
  const auto stats = s.insert(JobId{9}, Window{0, 1024});
  EXPECT_EQ(s.n_star(), 16u);
  EXPECT_TRUE(stats.rebuilt);
}

TEST(Trimming, NStarHalvesBelowQuarter) {
  ReservationScheduler s(trimmed_audited());
  for (unsigned i = 0; i < 17; ++i) s.insert(JobId{i + 1}, Window{0, 1024});
  EXPECT_EQ(s.n_star(), 32u);
  // Deleting down to 8 (= 32/4) keeps n*; one below halves it.
  for (unsigned i = 0; i < 9; ++i) s.erase(JobId{i + 1});
  EXPECT_EQ(s.n_star(), 32u);
  const auto stats = s.erase(JobId{10});
  EXPECT_EQ(s.n_star(), 16u);
  EXPECT_TRUE(stats.rebuilt);
}

TEST(Trimming, NStarNeverBelowFloor) {
  ReservationScheduler s(trimmed_audited());
  s.insert(JobId{1}, Window{0, 64});
  s.erase(JobId{1});
  EXPECT_EQ(s.n_star(), 8u);
}

TEST(Trimming, OnlyWideWindowsAreTrimmed) {
  // 2γn* = 2*8*8 = 128: spans <= 128 stay whole. Verify via placement of
  // many same-window jobs: untrimmed siblings share the window, so they
  // pack within it.
  ReservationScheduler s(trimmed_audited());
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 8; ++i) {
    const Window w{0, 128};
    s.insert(JobId{i + 1}, w);
    active.emplace(JobId{i + 1}, w);
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(Trimming, TrimmedPlacementsInsideOriginal) {
  ReservationScheduler s(trimmed_audited());
  const Time wide = static_cast<Time>(pow2(40));
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 30; ++i) {
    const Window w{0, wide};
    s.insert(JobId{i + 1}, w);
    active.emplace(JobId{i + 1}, w);
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(Trimming, HashSpreadUsesDistinctBlocks) {
  // Jobs trimmed from the same huge window should not all land in the same
  // 2γn* block (the trim block is chosen by job-id hash).
  SchedulerOptions options = trimmed_audited();
  ReservationScheduler s(options);
  const Time wide = static_cast<Time>(pow2(40));
  for (unsigned i = 0; i < 40; ++i) s.insert(JobId{i + 1}, Window{0, wide});
  const auto snap = s.snapshot();
  std::set<Time> blocks;
  const Time block_span = static_cast<Time>(2 * 8 * s.n_star());
  for (unsigned i = 0; i < 40; ++i) {
    blocks.insert(snap.find(JobId{i + 1})->slot / block_span);
  }
  EXPECT_GT(blocks.size(), 1u) << "trim blocks not spread";
}

TEST(Trimming, RebuildCostIsAmortizedConstant) {
  // Total reallocations over a pure-insert ramp divided by requests must be
  // O(1) even though individual rebuild requests move many jobs.
  ReservationScheduler s(trimmed_audited());
  std::uint64_t total = 0;
  const unsigned n = 2048;
  for (unsigned i = 0; i < n; ++i) {
    total += s.insert(JobId{i + 1}, Window{0, 1 << 20}).reallocations;
  }
  EXPECT_LT(static_cast<double>(total) / n, 4.0)
      << "amortized rebuild cost should be constant";
}

TEST(Trimming, DisabledMeansNoRebuilds) {
  SchedulerOptions options;
  options.audit = true;
  options.trimming = false;
  ReservationScheduler s(options);
  for (unsigned i = 0; i < 100; ++i) {
    const auto stats = s.insert(JobId{i + 1}, Window{0, 4096});
    EXPECT_FALSE(stats.rebuilt);
  }
  EXPECT_EQ(s.n_star(), 8u);  // untouched
}

TEST(Trimming, GammaScalesTrimWidth) {
  // With γ=32 the trim threshold is 2*32*8 = 512: a span-512 window stays
  // whole at n*=8, where γ=8 would have trimmed it to 128.
  ReservationScheduler wide(trimmed_audited(32));
  ReservationScheduler narrow(trimmed_audited(8));
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 4; ++i) {
    wide.insert(JobId{i + 1}, Window{0, 512});
    narrow.insert(JobId{i + 1}, Window{0, 512});
    active.emplace(JobId{i + 1}, Window{0, 512});
  }
  EXPECT_TRUE(validate_schedule(wide.snapshot(), active).ok());
  EXPECT_TRUE(validate_schedule(narrow.snapshot(), active).ok());
}

}  // namespace
}  // namespace reasched
