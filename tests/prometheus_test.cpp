// Prometheus/OpenMetrics exposition tests (telemetry/prometheus.hpp,
// DESIGN.md §12): family naming, a golden counter/gauge/histogram block,
// a format lint (bucket monotonicity, `_count` == +Inf bucket, TYPE before
// samples, `# EOF` terminator), and the PR 9 acceptance path — a forced
// p99.9 outlier whose exposition exemplar resolves to the exact
// chrome-trace span id and CSN. Uses the handle classes directly (not the
// RS_TELEM_* macros), so the same assertions hold in both telemetry
// flavors.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/prometheus.hpp"
#include "telemetry/registry.hpp"

namespace reasched::telemetry {
namespace {

class PrometheusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    Registry::set_metrics_enabled(true);
  }
  void TearDown() override {
    Registry::set_metrics_enabled(false);
    Registry::global().reset();
  }
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// Value of the first sample line starting with `name` followed by a space
/// or a label block. Returns true when found.
bool sample_value(const std::string& text, const std::string& prefix,
                  std::string& out) {
  for (const std::string& line : lines_of(text)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t space = line.find(' ', prefix.size());
    if (space == std::string::npos) continue;
    out = line.substr(space + 1);
    // Strip a trailing exemplar if present.
    const std::size_t hash = out.find(" # ");
    if (hash != std::string::npos) out = out.substr(0, hash);
    return true;
  }
  return false;
}

// ----------------------------------------------------------------- naming --

TEST_F(PrometheusTest, FamilyNamingIsStableAndSanitized) {
  EXPECT_EQ(prometheus_family("rs.insert"), "reasched_rs_insert");
  EXPECT_EQ(prometheus_family("ingest.shed_total"), "reasched_ingest_shed");
  EXPECT_EQ(prometheus_family("a-b.c d"), "reasched_a_b_c_d");
  EXPECT_EQ(prometheus_family("rs.insert", Registry::Unit::kTicks),
            "reasched_rs_insert_ns");
  EXPECT_EQ(prometheus_family("ingest.sojourn_ns", Registry::Unit::kCount),
            "reasched_ingest_sojourn_ns");
  // Already-suffixed tick histograms do not double the suffix.
  EXPECT_EQ(prometheus_family("ingest.sojourn_ns", Registry::Unit::kTicks),
            "reasched_ingest_sojourn_ns");
}

// ----------------------------------------------------------------- golden --

TEST_F(PrometheusTest, CounterAndGaugeGoldenBlock) {
  Counter counter("golden.count");
  counter.add(5);
  Gauge gauge("golden.gauge");
  gauge.add(-3);
  const std::string text = Registry::global().prometheus_text();
  EXPECT_NE(text.find("# TYPE reasched_golden_count counter\n"
                      "reasched_golden_count_total 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE reasched_golden_gauge gauge\n"
                      "reasched_golden_gauge -3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("reasched_exposition_time_seconds "), std::string::npos);
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
}

TEST_F(PrometheusTest, HistogramCumulativeBucketsGolden) {
  Histogram hist("golden.hist", Registry::Unit::kCount);
  for (const std::uint64_t v :
       {std::uint64_t{1}, std::uint64_t{1}, std::uint64_t{3}, std::uint64_t{70},
        (std::uint64_t{1} << 20) + 5}) {
    hist.record(v);
  }
  const std::string text = Registry::global().prometheus_text();
  const std::string family = "reasched_golden_hist";
  std::string value;
  // Cumulative counts are exact for "strictly below le": the HDR buckets
  // below bucket_of(2^k) hold exactly the samples below 2^k.
  ASSERT_TRUE(sample_value(text, family + "_bucket{le=\"1\"}", value));
  EXPECT_EQ(value, "0");
  ASSERT_TRUE(sample_value(text, family + "_bucket{le=\"4\"}", value));
  EXPECT_EQ(value, "3");  // 1, 1, 3
  ASSERT_TRUE(sample_value(text, family + "_bucket{le=\"64\"}", value));
  EXPECT_EQ(value, "3");
  ASSERT_TRUE(sample_value(text, family + "_bucket{le=\"128\"}", value));
  EXPECT_EQ(value, "4");  // + 70
  ASSERT_TRUE(sample_value(text, family + "_bucket{le=\"+Inf\"}", value));
  EXPECT_EQ(value, "5");
  ASSERT_TRUE(sample_value(text, family + "_count", value));
  EXPECT_EQ(value, "5");
}

// ------------------------------------------------------------------- lint --

TEST_F(PrometheusTest, ExpositionPassesFormatLint) {
  Counter counter("lint.ops");
  counter.add(123);
  Gauge gauge("lint.depth");
  gauge.add(7);
  Histogram counts("lint.counts", Registry::Unit::kCount);
  for (std::uint64_t v = 1; v < 100000; v *= 3) counts.record(v);
  Histogram spans("lint.span", Registry::Unit::kTicks);
  spans.record(100000);

  const std::string text = Registry::global().prometheus_text();
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");

  bool in_histogram = false;
  std::uint64_t prev_bucket = 0;
  std::uint64_t inf_bucket = 0;
  bool saw_inf = false;
  for (const std::string& line : lines) {
    if (line.rfind("# TYPE ", 0) == 0) {
      in_histogram = line.find(" histogram") != std::string::npos;
      prev_bucket = 0;
      saw_inf = false;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    // Every sample belongs to the reasched namespace.
    EXPECT_EQ(line.rfind("reasched_", 0), 0) << line;
    if (!in_histogram) continue;
    const std::size_t bucket_pos = line.find("_bucket{le=\"");
    if (bucket_pos != std::string::npos) {
      const std::size_t close = line.find("\"} ");
      ASSERT_NE(close, std::string::npos) << line;
      std::string value = line.substr(close + 3);
      const std::size_t hash = value.find(" # ");
      if (hash != std::string::npos) value = value.substr(0, hash);
      const std::uint64_t count = std::stoull(value);
      EXPECT_GE(count, prev_bucket) << "bucket counts must be monotone: " << line;
      prev_bucket = count;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket = count;
        saw_inf = true;
      }
    } else if (line.find("_count ") != std::string::npos) {
      EXPECT_TRUE(saw_inf) << "+Inf bucket must precede _count: " << line;
      EXPECT_EQ(std::stoull(line.substr(line.rfind(' ') + 1)), inf_bucket)
          << "_count must equal the +Inf bucket: " << line;
    }
  }
}

// -------------------------------------------------------------- exemplars --

TEST_F(PrometheusTest, NoExemplarsWithoutTracing) {
  Histogram hist("noex.hist", Registry::Unit::kCount);
  hist.record((std::uint64_t{1} << 20) + 17);
  const Registry::Snapshot snap = Registry::global().snapshot();
  for (const auto& h : snap.histograms) EXPECT_TRUE(h.exemplars.empty());
  EXPECT_EQ(Registry::global().prometheus_text().find(" # {"),
            std::string::npos);
}

// The PR 9 acceptance path: force an outlier inside a traced span with a
// declared CSN, then resolve the Prometheus exemplar back to the exact
// chrome-trace span id and CSN.
TEST_F(PrometheusTest, OutlierExemplarResolvesToSpanAndCsn) {
  Registry::set_trace_enabled(true);
  set_current_csn(777);
  Histogram hist("outlier.lat", Registry::Unit::kTicks);
  {
    Span span(hist, "outlier.op");
    // Busy-wait until the span's duration is safely in the exemplar
    // octaves (>= 2^19 ticks), with slack for the final ticks() read.
    const std::uint64_t start = ticks();
    while (ticks() - start < (std::uint64_t{1} << 19) + (std::uint64_t{1} << 15)) {
    }
  }
  const Registry::Snapshot snap = Registry::global().snapshot();
  const Registry::HistogramSnapshot* found = nullptr;
  for (const auto& h : snap.histograms) {
    if (h.name == "outlier.lat") found = &h;
  }
  ASSERT_NE(found, nullptr);
  ASSERT_FALSE(found->exemplars.empty());
  const Registry::Exemplar ex = found->exemplars.back();
  EXPECT_GT(ex.trace_id, 0u);
  EXPECT_EQ(ex.csn, 777u);

  // Exposition carries the OpenMetrics exemplar...
  const std::string text = Registry::global().prometheus_text();
  const std::string needle = " # {trace_id=\"" + std::to_string(ex.trace_id) +
                             "\",csn=\"777\"} ";
  EXPECT_NE(text.find(needle), std::string::npos) << text;

  // ...and the chrome trace carries the matching span, cross-linked by id
  // and csn, so the outlier bucket resolves to one span.
  const std::string trace = Registry::global().trace_json();
  EXPECT_NE(trace.find("\"trace_id\":" + std::to_string(ex.trace_id)),
            std::string::npos)
      << trace;
  EXPECT_NE(trace.find("\"csn\":777"), std::string::npos) << trace;

  set_current_csn(0);
  Registry::set_trace_enabled(false);
}

}  // namespace
}  // namespace reasched::telemetry
