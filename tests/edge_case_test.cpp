// Edge cases across the model boundary: negative timelines, extreme spans,
// id reuse, minimal windows, and other corners a downstream user will hit.
#include <gtest/gtest.h>

#include "core/incremental_rebuild.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"

namespace reasched {
namespace {

SchedulerOptions audited() {
  SchedulerOptions options;
  options.audit = true;
  return options;
}

TEST(EdgeCases, NegativeTimelineReservation) {
  ReservationScheduler s(audited());
  std::unordered_map<JobId, Window> active;
  // Aligned windows straddling/below zero.
  const std::vector<Window> windows = {
      {-256, 0}, {-128, -64}, {-64, -32}, {-32, -24}, {-1024, 0},
  };
  std::uint64_t next = 1;
  for (const auto& w : windows) {
    for (int i = 0; i < 3; ++i) {
      const JobId id{next++};
      ASSERT_NO_THROW(s.insert(id, w)) << w;
      active.emplace(id, w);
    }
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  while (next > 1) s.erase(JobId{--next});
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST(EdgeCases, NegativeTimelinePipeline) {
  ReallocatingScheduler s(2);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  for (Time start = -5000; start < 0; start += 977) {
    const Window w{start, start + 300};
    const JobId id{next++};
    s.insert(id, w);
    active.emplace(id, w);
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(EdgeCases, SpanOneWindows) {
  ReservationScheduler s(audited());
  // Span-1 windows: the job must land exactly there.
  s.insert(JobId{1}, Window{41, 42});
  EXPECT_EQ(s.snapshot().find(JobId{1})->slot, 41);
  // A second one on the same slot is infeasible.
  EXPECT_THROW(s.insert(JobId{2}, Window{41, 42}), InfeasibleError);
  // A span-1 job displaces a longer job sitting on its only slot.
  s.insert(JobId{3}, Window{40, 48});
  const Time slot3 = s.snapshot().find(JobId{3})->slot;
  if (slot3 == 44) {
    s.insert(JobId{4}, Window{44, 45});
    EXPECT_EQ(s.snapshot().find(JobId{4})->slot, 44);
    EXPECT_NE(s.snapshot().find(JobId{3})->slot, 44);
  }
}

TEST(EdgeCases, MaximalSpanAccepted) {
  SchedulerOptions options = audited();
  options.trimming = false;
  ReservationScheduler s(options);
  const Time huge = static_cast<Time>(pow2(62));
  ASSERT_NO_THROW(s.insert(JobId{1}, Window{0, huge}));
  const auto p = s.snapshot().find(JobId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_GE(p->slot, 0);
  EXPECT_LT(p->slot, huge);
}

TEST(EdgeCases, IdReuseAfterErase) {
  ReservationScheduler s(audited());
  for (int round = 0; round < 5; ++round) {
    s.insert(JobId{7}, Window{0, 64});
    s.erase(JobId{7});
  }
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST(EdgeCases, LargeJobIdValues) {
  ReservationScheduler s(audited());
  const JobId id{~std::uint64_t{0}};
  s.insert(id, Window{0, 64});
  EXPECT_TRUE(s.snapshot().find(id).has_value());
  s.erase(id);
}

TEST(EdgeCases, InterleavedLevelsAtBoundarySpans) {
  // Spans exactly at the level thresholds: 32 (level 0), 64 (level 1),
  // 256 (level 1), 512 (level 2).
  SchedulerOptions options = audited();
  options.trimming = false;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  for (const Time span : {32, 64, 256, 512}) {
    for (int i = 0; i < 3; ++i) {
      const JobId id{next++};
      const Window w{0, span};
      s.insert(id, w);
      active.emplace(id, w);
    }
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  // Delete in insertion order (stresses reservation removal at every level).
  for (std::uint64_t i = 1; i < next; ++i) s.erase(JobId{i});
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST(EdgeCases, AdjacentWindowsDoNotInterfere) {
  ReservationScheduler s(audited());
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  for (Time block = 0; block < 8; ++block) {
    const Window w{block * 64, (block + 1) * 64};
    for (int i = 0; i < 8; ++i) {
      const JobId id{next++};
      s.insert(id, w);
      active.emplace(id, w);
    }
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  // Every job must be inside its own block.
  const auto snap = s.snapshot();
  for (const auto& [id, w] : active) {
    EXPECT_TRUE(w.contains(snap.find(id)->slot));
  }
}

TEST(EdgeCases, IncrementalRebuildNegativeTimeline) {
  IncrementalRebuildScheduler s(audited());
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 6; ++i) {
    const Window w{-512, -256};
    const JobId id{i + 1};
    s.insert(id, w);
    active.emplace(id, w);
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(EdgeCases, NaiveHandlesSingleSlotTimelineChurn) {
  NaiveScheduler s;
  for (int round = 0; round < 100; ++round) {
    s.insert(JobId{1}, Window{0, 1});
    s.erase(JobId{1});
  }
  EXPECT_EQ(s.active_jobs(), 0u);
}

}  // namespace
}  // namespace reasched
