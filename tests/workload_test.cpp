#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "feasibility/underallocation.hpp"
#include "workload/adversary.hpp"
#include "workload/churn.hpp"
#include "workload/doctor_office.hpp"
#include "workload/trace_io.hpp"

namespace reasched {
namespace {

TEST(Churn, DeterministicForSeed) {
  ChurnParams params;
  params.requests = 500;
  params.target_active = 64;
  const auto a = make_churn_trace(params);
  const auto b = make_churn_trace(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].window, b[i].window);
  }
}

TEST(Churn, DifferentSeedsDiffer) {
  ChurnParams params;
  params.requests = 200;
  ChurnParams other = params;
  other.seed = 999;
  const auto a = make_churn_trace(params);
  const auto b = make_churn_trace(other);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i) {
    differ = a[i].window != b[i].window || a[i].kind != b[i].kind;
  }
  EXPECT_TRUE(differ);
}

TEST(Churn, WellFormedRequests) {
  ChurnParams params;
  params.requests = 2000;
  params.target_active = 128;
  const auto trace = make_churn_trace(params);
  EXPECT_EQ(trace.size(), params.requests);
  std::unordered_set<std::uint64_t> active;
  for (const auto& request : trace) {
    if (request.kind == RequestKind::kInsert) {
      EXPECT_TRUE(request.window.valid());
      EXPECT_TRUE(active.insert(request.job.value).second) << "duplicate insert";
    } else {
      EXPECT_EQ(active.erase(request.job.value), 1u) << "delete of inactive job";
    }
  }
}

TEST(Churn, AlignedModeEmitsAlignedWindows) {
  ChurnParams params;
  params.requests = 500;
  params.aligned = true;
  for (const auto& request : make_churn_trace(params)) {
    if (request.kind == RequestKind::kInsert) {
      EXPECT_TRUE(request.window.aligned()) << request.window;
    }
  }
}

TEST(Churn, EveryPrefixIsGammaUnderallocated) {
  ChurnParams params;
  params.requests = 600;
  params.target_active = 48;
  params.gamma = 8;
  params.min_span = 64;
  params.max_span = 512;
  const auto trace = make_churn_trace(params);

  std::unordered_map<std::uint64_t, Window> active;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& request = trace[i];
    if (request.kind == RequestKind::kInsert) {
      active.emplace(request.job.value, request.window);
    } else {
      active.erase(request.job.value);
    }
    if (i % 97 == 0 && !active.empty()) {
      std::vector<JobSpec> jobs;
      for (const auto& [id, w] : active) jobs.push_back({JobId{id}, w});
      EXPECT_TRUE(gamma_underallocated(jobs, params.machines, params.gamma))
          << "prefix " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Churn, UnalignedModeEnforcesDensityOnAlignedImages) {
  ChurnParams params;
  params.requests = 400;
  params.aligned = false;
  params.min_span = 64;
  params.max_span = 512;
  const auto trace = make_churn_trace(params);
  std::size_t inserts = 0;
  for (const auto& request : trace) {
    if (request.kind == RequestKind::kInsert) ++inserts;
  }
  EXPECT_GT(inserts, 0u);
}

TEST(Churn, ParameterValidation) {
  ChurnParams params;
  params.min_span = 4;  // below gamma=8
  EXPECT_THROW(make_churn_trace(params), ContractViolation);
  ChurnParams bad_gamma;
  bad_gamma.gamma = 3;
  EXPECT_THROW(make_churn_trace(bad_gamma), ContractViolation);
}

TEST(Lemma12Trace, Shape) {
  const auto trace = make_lemma12_trace(10, 3);
  EXPECT_EQ(trace.size(), 10u + 12u);
  // First eta requests are the staircase inserts.
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_EQ(trace[j].kind, RequestKind::kInsert);
    EXPECT_EQ(trace[j].window.span(), 2);
  }
  // Then insert/delete toggles of span-1 fillers.
  EXPECT_EQ(trace[10].kind, RequestKind::kInsert);
  EXPECT_EQ(trace[10].window.span(), 1);
  EXPECT_EQ(trace[11].kind, RequestKind::kDelete);
}

TEST(DoctorOffice, GeneratesBalancedTrace) {
  DoctorOfficeParams params;
  params.days = 32;
  const auto trace = make_doctor_office_trace(params);
  EXPECT_GT(trace.size(), 50u);
  std::unordered_set<std::uint64_t> active;
  for (const auto& request : trace) {
    if (request.kind == RequestKind::kInsert) {
      EXPECT_TRUE(active.insert(request.job.value).second);
      EXPECT_TRUE(request.window.valid());
    } else {
      EXPECT_EQ(active.erase(request.job.value), 1u);
    }
  }
}

TEST(TraceIo, RoundTrip) {
  ChurnParams params;
  params.requests = 300;
  const auto trace = make_churn_trace(params);
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto loaded = read_trace(buffer);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].kind, trace[i].kind);
    EXPECT_EQ(loaded[i].job, trace[i].job);
    if (trace[i].kind == RequestKind::kInsert) {
      EXPECT_EQ(loaded[i].window, trace[i].window);
    }
  }
}

TEST(TraceIo, CommentsAndBlanksIgnored) {
  std::stringstream buffer("# comment\n\nI 1 0 8\nD 1\n");
  const auto trace = read_trace(buffer);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].window, Window(0, 8));
}

TEST(TraceIo, MalformedRejected) {
  std::stringstream bad1("I 1 8 0\n");  // deadline before arrival
  EXPECT_THROW(read_trace(bad1), ContractViolation);
  std::stringstream bad2("X 1\n");
  EXPECT_THROW(read_trace(bad2), ContractViolation);
  std::stringstream bad3("D\n");
  EXPECT_THROW(read_trace(bad3), ContractViolation);
}

}  // namespace
}  // namespace reasched
