// Admission control + backpressure tests (ingest/admission.hpp,
// ingest/ingest_service.hpp):
//
//   * unit layer — the AdmissionController's depth and p99-budget verdicts,
//     epoch close/clear rules, and the drain-clears-shedding recovery
//     guarantee;
//   * service layer — queue-depth shedding with EXACT accounting (the
//     verdict is taken against the same counter the "ingest.queue.depth"
//     gauge mirrors: admitted + rejected reconciles to the push count, and
//     the in-flight count never exceeds the threshold), producers admitted
//     again after drain, latency shedding that recovers once the backlog
//     is gone;
//   * crash lane (PR-6 crashpoint harness, fork + _exit(137) mid
//     WAL-frame) — a crash under concurrent ingestion recovers to exactly
//     the durable ticket prefix, scheduler-level rejections are
//     deterministically re-rejected during replay (RecoveryReport::
//     rejected_replays), and admission-rejected pushes are re-rejected *by
//     absence*: they never claimed a CSN, so no replay can resurrect them.
//
// ctest labels: fast + crash (CMakeLists.txt).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/naive_scheduler.hpp"
#include "durability/crashpoint.hpp"
#include "durability/wal.hpp"
#include "ingest/ingest_service.hpp"
#include "service/sharded_scheduler.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

using durability::CrashPoint;
using durability::DurabilityPolicy;
using ingest::Admit;
using ingest::AdmissionController;
using ingest::IngestOptions;
using ingest::IngestService;
using ingest::IngestStats;

// ------------------------------------------------------------- unit layer

TEST(AdmissionController, DepthThresholdIsExactAtTheBoundary) {
  AdmissionController::Options options;
  options.max_queue_depth = 4;
  AdmissionController admission(options);
  EXPECT_EQ(admission.admit(0), Admit::kAdmitted);
  EXPECT_EQ(admission.admit(3), Admit::kAdmitted);
  EXPECT_EQ(admission.admit(4), Admit::kRejectedDepth);
  EXPECT_EQ(admission.admit(1000), Admit::kRejectedDepth);
}

TEST(AdmissionController, DisabledThresholdsAlwaysAdmit) {
  AdmissionController admission(AdmissionController::Options{});
  EXPECT_EQ(admission.admit(1u << 30), Admit::kAdmitted);
  admission.observe(1'000'000'000);  // no budget: observation is a no-op
  admission.evaluate(1u << 30);
  EXPECT_FALSE(admission.shedding());
}

TEST(AdmissionController, LatencyEpochShedsAndRecoversOnCompliantEpoch) {
  AdmissionController::Options options;
  options.p99_budget_ns = 10'000;
  options.epoch_samples = 4;
  AdmissionController admission(options);

  // Not enough samples: no verdict change.
  admission.observe(1'000'000);
  admission.evaluate(/*depth=*/8);
  EXPECT_FALSE(admission.shedding());

  for (int i = 0; i < 3; ++i) admission.observe(1'000'000);
  admission.evaluate(8);  // epoch closes over budget
  EXPECT_TRUE(admission.shedding());
  EXPECT_GT(admission.last_p99_ns(), options.p99_budget_ns);
  EXPECT_EQ(admission.admit(0), Admit::kRejectedLatency);

  // A compliant epoch clears the verdict.
  for (int i = 0; i < 4; ++i) admission.observe(1'000);
  admission.evaluate(8);
  EXPECT_FALSE(admission.shedding());
  EXPECT_EQ(admission.admit(0), Admit::kAdmitted);
}

TEST(AdmissionController, DrainClearsSheddingWithoutSamples) {
  AdmissionController::Options options;
  options.p99_budget_ns = 10'000;
  options.epoch_samples = 4;
  AdmissionController admission(options);
  for (int i = 0; i < 4; ++i) admission.observe(1'000'000);
  admission.evaluate(8);
  ASSERT_TRUE(admission.shedding());

  // All producers are being shed: no samples will ever arrive. A non-empty
  // queue keeps the verdict...
  admission.evaluate(3);
  EXPECT_TRUE(admission.shedding());
  // ...but a fully drained queue clears it — the recovery guarantee.
  admission.evaluate(0);
  EXPECT_FALSE(admission.shedding());
}

// ---------------------------------------------------------- service layer

ShardedScheduler::Factory naive_factory() {
  return [] { return std::make_unique<NaiveScheduler>(); };
}

Request wide_insert(std::uint64_t id) {
  return Request::insert(JobId{id}, 0, 1024);
}

TEST(IngestAdmission, DepthSheddingHasExactAccountingAndUnblocksAfterDrain) {
  ShardedScheduler sharded(1, naive_factory());
  IngestOptions options;
  options.max_queue_depth = 8;
  options.lanes = 1;
  options.lane_capacity = 64;
  options.record_stats = true;
  IngestService service(sharded, options);

  // Park the consumer first (and give it a beat to observe the flag), so
  // the queue depth the verdicts see is exactly the number of pushes.
  service.pause_consumer();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::uint64_t id = 1;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(service.push(wide_insert(id++)), Admit::kAdmitted) << i;
  }
  EXPECT_EQ(service.queue_depth(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(service.push(wide_insert(id++)), Admit::kRejectedDepth) << i;
  }
  // Exact reconciliation: every push accounted, none in flight beyond the
  // threshold, rejected pushes left no queue entry and no ticket.
  IngestStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_EQ(stats.rejected_depth, 4u);
  EXPECT_EQ(stats.rejected_latency, 0u);
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(service.queue_depth(), 8u);

  service.resume_consumer();
  service.drain();
  stats = service.stats();
  EXPECT_EQ(stats.applied, 8u);
  EXPECT_EQ(service.queue_depth(), 0u);

  // Producers unblock after drain: depth is back under the threshold.
  EXPECT_EQ(service.push(wide_insert(id++)), Admit::kAdmitted);
  service.drain();
  service.stop();
  EXPECT_EQ(service.applied_stats().size(), 9u);
  EXPECT_EQ(sharded.active_jobs(), 9u);
}

TEST(IngestAdmission, LatencySheddingRejectsThenRecoversOnceDrained) {
  ShardedScheduler sharded(1, naive_factory());
  IngestOptions options;
  options.p99_budget_us = 1;  // any real sojourn blows this budget
  options.admission_epoch_samples = 8;
  options.lanes = 1;
  IngestService service(sharded, options);

  std::uint64_t id = 1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(service.push(wide_insert(id++)), Admit::kAdmitted);
  }
  service.drain();  // 8 sojourn samples ≫ 1µs → the epoch closes shedding
  // last_p99_ns is the deterministic over-budget witness: it is written at
  // epoch close and synchronized to us by the drain handshake, and the
  // drain rule does not reset it. shedding() itself is TRANSIENT here by
  // design — the consumer's idle evaluate clears it the moment it sees the
  // empty queue, which races with anything this thread does after drain()
  // returns — so the verdict flag and the fate of the next push are
  // observed, not asserted (the controller's shed-then-recover sequencing
  // is pinned deterministically in
  // AdmissionController.LatencyEpochShedsAndRecoversOnCompliantEpoch).
  EXPECT_GT(service.admission().last_p99_ns(), 1'000u);

  // Recovery: the drain rule admits producers again — bounded wait. Count
  // the pushes shed meanwhile so the accounting check below stays exact in
  // every schedule.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::uint64_t shed = 0;
  for (;;) {
    const Admit verdict = service.push(wide_insert(id));
    if (verdict == Admit::kAdmitted) break;
    ASSERT_EQ(verdict, Admit::kRejectedLatency);
    ++shed;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "latency shedding never cleared after drain";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  service.drain();
  service.stop();
  const IngestStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 9u);
  EXPECT_EQ(stats.applied, 9u);
  EXPECT_EQ(stats.rejected_latency, shed);
}

// ------------------------------------------------------------- crash lane

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/reasched-ingest-crash-XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    std::system(cmd.c_str());  // NOLINT: test scratch cleanup
  }
};

DurabilityPolicy wal_policy(const std::string& dir) {
  DurabilityPolicy policy;
  policy.dir = dir;
  policy.frame_bytes = 256;  // many frames → many "wal.frame" hits
  policy.sync_every = 1;
  return policy;
}

/// Deterministic trace with scheduler-level rejections up front: window
/// [0,4) across 2 machines offers 8 slots, so the inserts at trace
/// positions 8 and 9 are infeasible no matter how batches split (the
/// window is completely full once jobs 1..8 land); positions 10+ churn a
/// wide window feasibly (insert 100..179, erase the even ones). No moot
/// deletes, so CSN i+1 always corresponds to trace position i.
std::vector<Request> crash_trace() {
  std::vector<Request> trace;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    trace.push_back(Request::insert(JobId{id}, 0, 4));
  }
  for (std::uint64_t id = 100; id < 180; ++id) {
    trace.push_back(Request::insert(JobId{id}, 4, 1024));
  }
  for (std::uint64_t id = 100; id < 180; id += 2) {
    trace.push_back(Request::erase(JobId{id}));
  }
  return trace;
}

std::size_t expected_rejections_in_prefix(std::uint64_t cut) {
  std::size_t expected = 0;
  if (cut > 8) ++expected;  // trace position 8: insert of JobId 9
  if (cut > 9) ++expected;  // trace position 9: insert of JobId 10
  return expected;
}

ShardedScheduler::Options wal_scheduler_options(const std::string& dir) {
  ShardedScheduler::Options options;
  options.shards = 2;
  options.wal = wal_policy(dir);
  return options;
}

void serve_tolerant(IReallocScheduler& scheduler, const Request& request) {
  if (request.kind == RequestKind::kInsert) {
    try {
      scheduler.insert(request.job, request.window);
    } catch (const InfeasibleError&) {
    }
  } else {
    scheduler.erase(request.job);
  }
}

void expect_identical_schedules(const Schedule& a, const Schedule& b,
                                const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (const auto& [id, placement] : a.assignments()) {
    const auto other = b.find(id);
    ASSERT_TRUE(other.has_value()) << where << ": job " << id.value;
    EXPECT_EQ(placement.machine, other->machine) << where << ": job " << id.value;
    EXPECT_EQ(placement.slot, other->slot) << where << ": job " << id.value;
  }
}

/// Child: serve `trace` through the concurrent ingest front end (2
/// producers, external sequencing → CSN order = trace order) with the
/// "wal.frame" crashpoint armed, dying mid-frame via _exit(137).
bool run_ingest_child_until_crash(const std::string& dir,
                                  const std::vector<Request>& trace,
                                  std::uint64_t countdown) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    try {
      CrashPoint::arm("wal.frame", countdown);
      auto naive = [] { return std::make_unique<NaiveScheduler>(); };
      ShardedScheduler sharded(2, naive, wal_scheduler_options(dir));
      IngestOptions options;
      options.external_sequencing = true;
      options.lanes = 2;
      options.max_batch = 8;
      IngestService service(sharded, options);
      std::vector<std::thread> producers;
      for (std::size_t p = 0; p < 2; ++p) {
        producers.emplace_back([&, p] {
          for (std::size_t i = p; i < trace.size(); i += 2) {
            service.push_sequenced(i, trace[i]);
          }
        });
      }
      for (auto& producer : producers) producer.join();
      service.drain();
      service.stop();
      sharded.sync_wal();
    } catch (const std::exception& error) {
      std::fprintf(stderr, "ingest crash child: %s\n", error.what());
      ::_exit(1);
    } catch (...) {
      ::_exit(1);
    }
    ::_exit(0);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  const int code = WEXITSTATUS(status);
  EXPECT_TRUE(code == 0 || code == CrashPoint::kExitStatus)
      << "child failed (exit " << code << ") rather than crashing on cue";
  return code == CrashPoint::kExitStatus;
}

TEST(IngestAdmissionCrash, RecoveryReplaysDurablePrefixAndReRejects) {
  const std::vector<Request> trace = crash_trace();
  auto naive = [] { return std::make_unique<NaiveScheduler>(); };
  for (const std::uint64_t countdown : {2ull, 9ull, 23ull, 1'000'000ull}) {
    TempDir dir;
    const bool crashed =
        run_ingest_child_until_crash(dir.path, trace, countdown);
    const std::string where =
        "countdown=" + std::to_string(countdown) +
        (crashed ? "" : " (ran to completion)");

    // Recovery: construction replays the gap-free CSN prefix; tickets were
    // external, so the prefix is exactly trace[0, cut).
    ShardedScheduler recovered(2, naive, wal_scheduler_options(dir.path));
    const std::uint64_t cut = recovered.csn();
    ASSERT_LE(cut, trace.size()) << where;
    if (!crashed) {
      EXPECT_EQ(cut, trace.size()) << where;
    }

    // Scheduler-level rejections re-reject deterministically on replay.
    EXPECT_EQ(recovered.recovery_report().rejected_replays,
              expected_rejections_in_prefix(cut))
        << where;

    ShardedScheduler twin(2, naive);
    for (std::uint64_t i = 0; i < cut; ++i) serve_tolerant(twin, trace[i]);
    expect_identical_schedules(twin.snapshot(), recovered.snapshot(), where);
    EXPECT_EQ(twin.active_jobs(), recovered.active_jobs()) << where;
    recovered.audit_balance();

    // Both keep serving the suffix in lockstep.
    for (std::uint64_t i = cut; i < trace.size(); ++i) {
      serve_tolerant(twin, trace[i]);
      serve_tolerant(recovered, trace[i]);
    }
    expect_identical_schedules(twin.snapshot(), recovered.snapshot(),
                               where + " (post-crash suffix)");
    recovered.audit_balance();
  }
}

TEST(IngestAdmissionCrash, AdmissionRejectedPushesAreAbsentFromReplay) {
  TempDir dir;
  auto naive = [] { return std::make_unique<NaiveScheduler>(); };
  std::vector<std::uint64_t> admitted_ids;
  {
    ShardedScheduler sharded(1, naive, wal_scheduler_options(dir.path));
    IngestOptions options;
    options.max_queue_depth = 4;
    options.lanes = 1;
    IngestService service(sharded, options);
    service.pause_consumer();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // 4 admitted (tickets + CSNs), 4 rejected at admission: the rejected
    // pushes never claim a CSN and never reach the WAL.
    for (std::uint64_t id = 1; id <= 8; ++id) {
      if (service.push(wide_insert(id)) == Admit::kAdmitted) {
        admitted_ids.push_back(id);
      }
    }
    ASSERT_EQ(admitted_ids.size(), 4u);
    service.resume_consumer();
    service.drain();
    service.stop();
    sharded.sync_wal();
    EXPECT_EQ(sharded.csn(), 4u);
  }

  // Replay: exactly the admitted pushes come back — the rejected ones are
  // re-rejected by absence, deterministically.
  ShardedScheduler recovered(1, naive, wal_scheduler_options(dir.path));
  EXPECT_EQ(recovered.csn(), 4u);
  EXPECT_EQ(recovered.recovery_report().replayed, 4u);
  EXPECT_EQ(recovered.active_jobs(), admitted_ids.size());
  const Schedule snapshot = recovered.snapshot();
  for (const std::uint64_t id : admitted_ids) {
    EXPECT_TRUE(snapshot.find(JobId{id}).has_value()) << "job " << id;
  }
  EXPECT_EQ(snapshot.size(), admitted_ids.size());
}

}  // namespace
}  // namespace reasched
