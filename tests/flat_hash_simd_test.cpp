// Group-probe edge cases for the flat-hash tier (DESIGN.md §13).
//
// The probe kernels scan ctrl bytes 16 at a time through the
// util/probe_group.hpp dispatch seam (SSE2 / NEON / portable SWAR). These
// suites pin exactly the places where a vectorized scan could diverge from
// the sequential one it replaced:
//   * mask identity: the dispatched Group must agree with ScalarGroup
//     byte-for-byte on adversarial ctrl patterns — every probe decision
//     flows from those masks, so mask identity IS cross-arm layout
//     identity (the scalar-probe CI lane then runs the whole tier on the
//     other arm for real);
//   * probe chains that wrap around the table end, including on
//     minimum-size (16-slot, single-group) tables where the wrapped lap
//     re-examines the partial first group;
//   * tombstone-saturated groups (16+ adjacent tombstones must be skipped
//     in whole-group steps without losing first-tombstone placement);
//   * erase/take during an in-flight two-table migration with the
//     partner-table prefetch active, including the fused take_reindex path
//     DenseHashSet's swap-with-last erase rides on.
// Runs under both dispatch arms (the scalar-probe CI flavor rebuilds this
// binary with REASCHED_FORCE_SCALAR_PROBE) and under ASan/UBSan, where the
// 16-byte group loads at table edges would fault if any were out of
// bounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_hash.hpp"
#include "util/probe_group.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

using Key = std::int64_t;

/// Identity hash: tests pick the exact probe start slot (capacity is a
/// power of two, so the start is key & (capacity-1)).
struct PinHash {
  [[nodiscard]] std::size_t operator()(const Key& key) const noexcept {
    return static_cast<std::size_t>(key);
  }
};

using PinnedMap = FlatHashMap<Key, int, PinHash>;

// ---- dispatch-arm mask identity -------------------------------------------

TEST(ProbeGroup, DispatchedArmMatchesScalarOnAdversarialPatterns) {
  // Group buffers cover: all-empty, all-full, all-tombstone, alternating,
  // single-match-at-every-position, and random bytes over the full 0..255
  // range (match() must key on exact equality, not on the 0/1/2 ctrl
  // domain).
  std::vector<std::vector<std::uint8_t>> patterns;
  patterns.push_back(std::vector<std::uint8_t>(probe::kGroupWidth, 0));
  patterns.push_back(std::vector<std::uint8_t>(probe::kGroupWidth, 1));
  patterns.push_back(std::vector<std::uint8_t>(probe::kGroupWidth, 2));
  for (std::size_t hot = 0; hot < probe::kGroupWidth; ++hot) {
    std::vector<std::uint8_t> one(probe::kGroupWidth, 0);
    one[hot] = 1;
    patterns.push_back(one);
    std::vector<std::uint8_t> inverted(probe::kGroupWidth, 2);
    inverted[hot] = 0;
    patterns.push_back(inverted);
  }
  Rng rng(31);
  for (int i = 0; i < 2'000; ++i) {
    std::vector<std::uint8_t> random(probe::kGroupWidth);
    for (auto& byte : random)
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    patterns.push_back(std::move(random));
  }
  for (const auto& pattern : patterns) {
    const probe::Group dispatched(pattern.data());
    const probe::ScalarGroup scalar(pattern.data());
    for (const std::uint8_t value : {0, 1, 2, 3, 0x7F, 0x80, 0xFF}) {
      ASSERT_EQ(dispatched.match(value), scalar.match(value));
    }
  }
}

TEST(ProbeGroup, MaskHelpers) {
  EXPECT_EQ(probe::below_first(0), probe::kAllBytes);
  EXPECT_EQ(probe::below_first(0b1000), 0b0111u);
  EXPECT_EQ(probe::below_first(0b1001), 0u);
  EXPECT_EQ(probe::lowest_bit(0b0100), 2u);
  EXPECT_EQ(probe::clear_lowest(0b0110), 0b0100u);
}

// ---- wraparound and table-edge probing ------------------------------------

TEST(FlatHashSimd, ProbeChainStraddlingTableEnd) {
  // Pin a collision chain into the LAST group of a 1024-slot table so the
  // chain wraps past the table end into slot 0. Keys 1019+1024k all start
  // at slot 1019; the chain runs 1019..1023 then wraps to 0..2.
  PinnedMap map;
  map.reserve(512);  // capacity 1024, load stays below threshold
  ASSERT_EQ(map.capacity(), 1024u);
  std::vector<Key> keys;
  for (int i = 0; i < 8; ++i) keys.push_back(1019 + 1024 * i);
  for (const Key key : keys) map[key] = static_cast<int>(key);
  for (const Key key : keys) {
    ASSERT_NE(map.find(key), nullptr);
    EXPECT_EQ(*map.find(key), static_cast<int>(key));
  }
  // A miss whose probe start sits in the wrapped chain terminates at the
  // first empty after wraparound, not before.
  EXPECT_EQ(map.find(1020 + 8 * 1024), nullptr);
  // Erase mid-chain and re-find across the seam (tombstones keep the
  // wrapped chain intact).
  EXPECT_EQ(map.erase(keys[2]), 1u);
  for (const Key key : keys) {
    if (key == keys[2]) continue;
    ASSERT_NE(map.find(key), nullptr);
  }
  // Reinsert reuses the first tombstone on the (wrapped) probe path.
  map[keys[2]] = 7;
  EXPECT_EQ(*map.find(keys[2]), 7);
}

TEST(FlatHashSimd, WraparoundOnMinimumSizeTable) {
  // A fresh table has exactly 16 slots = one probe group. Start every key
  // at slot 15 so every chain wraps immediately; the group walk must
  // revisit the table head as its wrapped lap.
  PinnedMap map;
  for (int i = 0; i < 8; ++i) map[15 + 16 * i] = i;  // 8 keys, all hash to 15
  ASSERT_EQ(map.capacity(), 16u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(map.find(15 + 16 * i), nullptr);
    EXPECT_EQ(*map.find(15 + 16 * i), i);
  }
  EXPECT_EQ(map.find(15 + 16 * 9), nullptr);
  // Churn the wrapped chain: erase every other key, probe, reinsert.
  for (int i = 0; i < 8; i += 2) EXPECT_EQ(map.erase(15 + 16 * i), 1u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(map.find(15 + 16 * i) != nullptr, i % 2 == 1);
  }
  for (int i = 0; i < 8; i += 2) map[15 + 16 * i] = -i;
  for (int i = 0; i < 8; i += 2) EXPECT_EQ(*map.find(15 + 16 * i), -i);
}

TEST(FlatHashSimd, TombstoneSaturatedGroups) {
  // Fill three full groups with entries hashed to one start slot, erase
  // them all (48 adjacent tombstones), then probe: a lookup miss must scan
  // whole tombstone groups per step and terminate at the empty beyond
  // them; an insert must land on the FIRST tombstone of the run.
  PinnedMap map;
  map.reserve(512);
  ASSERT_EQ(map.capacity(), 1024u);
  constexpr Key kStart = 32;  // group-aligned start keeps the run contiguous
  std::vector<Key> keys;
  for (int i = 0; i < 48; ++i) keys.push_back(kStart + 1024 * (i + 1));
  for (const Key key : keys) map[key] = 1;
  for (const Key key : keys) ASSERT_EQ(map.erase(key), 1u);
  EXPECT_TRUE(map.empty());
  // Miss probe rides the whole tombstone run.
  EXPECT_EQ(map.find(kStart), nullptr);
  // Insert with the same start lands on the run's first slot: the probe
  // path visits only tombstones, whose first is slot kStart.
  map[kStart + 1024 * 99] = 5;
  ASSERT_NE(map.find(kStart + 1024 * 99), nullptr);
  // The key after it reuses the SECOND tombstone, preserving order.
  map[kStart + 1024 * 98] = 6;
  EXPECT_EQ(*map.find(kStart + 1024 * 98), 6);
  EXPECT_EQ(*map.find(kStart + 1024 * 99), 5);
}

TEST(FlatHashSimd, MixedFullTombstoneEmptyWithinOneGroup) {
  // One group containing [full, tombstone, full, empty, ...] in the probe
  // window: candidates past the first empty must be ignored, the tombstone
  // must win placement over the empty.
  PinnedMap map;
  map.reserve(512);
  map[100] = 1;            // slot 100
  map[100 + 1024] = 2;     // slot 101
  map[100 + 2048] = 3;     // slot 102
  ASSERT_EQ(map.erase(100 + 1024), 1u);  // tombstone at 101
  // Probe for a missing key starting at 100: full(100), tomb(101),
  // full(102), empty(103) — terminate, report miss.
  EXPECT_EQ(map.find(100 + 3 * 1024), nullptr);
  // Insert starting at 100 takes the tombstone at 101, not the empty at 103.
  map[100 + 4 * 1024] = 4;
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(*map.find(100), 1);
  EXPECT_EQ(*map.find(100 + 2048), 3);
  EXPECT_EQ(*map.find(100 + 4 * 1024), 4);
}

// ---- migration + prefetch paths -------------------------------------------

// Inserts ascending keys until a two-table migration starts (default hash:
// the migration machinery, not placement, is under test here).
template <class Map>
Key push_until_migrating(Map& map) {
  Key key = 0;
  while (!map.rehash_in_flight()) {
    map[key] = static_cast<int>(key);
    ++key;
  }
  return key;
}

TEST(FlatHashSimd, EraseAndTakeDuringMigrationWithPrefetchActive) {
  // Every erase/take below runs the migrating slow path: partner-table
  // ctrl-group prefetch, two-table group probe, tombstone-never-empty in
  // the retiring table, and a drain step per mutation. Differential
  // against std::unordered_map throughout.
  FlatHashMap<Key, std::uint64_t> map;
  std::unordered_map<Key, std::uint64_t> reference;
  Key next = 0;
  while (!map.rehash_in_flight()) {
    map[next] = static_cast<std::uint64_t>(next);
    reference[next] = static_cast<std::uint64_t>(next);
    ++next;
  }
  Rng rng(17);
  bool still_migrating = true;
  while (still_migrating) {
    const Key key = static_cast<Key>(rng.uniform(0, static_cast<int>(next)));
    switch (rng.uniform(0, 2)) {
      case 0: {
        std::uint64_t out = 0;
        const std::size_t took = map.take(key, out);
        const auto it = reference.find(key);
        ASSERT_EQ(took, it != reference.end() ? 1u : 0u);
        if (took != 0) {
          ASSERT_EQ(out, it->second);
          reference.erase(it);
        }
        break;
      }
      case 1:
        ASSERT_EQ(map.erase(key), reference.erase(key));
        break;
      default: {
        const auto* found = map.find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(found != nullptr, it != reference.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
    }
    still_migrating = map.rehash_in_flight();
  }
  ASSERT_EQ(map.size(), reference.size());
  std::size_t seen = 0;
  map.for_each([&](Key k, const std::uint64_t& v) {
    ++seen;
    const auto it = reference.find(k);
    ASSERT_NE(it, reference.end());
    ASSERT_EQ(v, it->second);
  });
  EXPECT_EQ(seen, reference.size());
}

TEST(FlatHashSimd, TakeReindexMatchesUnfusedPair) {
  // The fused take_reindex must leave the same mapping as the take + at
  // pair it replaces, across growth and migration. The "reference" map
  // runs the unfused sequence.
  FlatHashMap<Key, std::uint32_t> fused;
  FlatHashMap<Key, std::uint32_t> unfused;
  Rng rng(23);
  std::vector<Key> live;
  for (int step = 0; step < 60'000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const Key key = static_cast<Key>(rng.uniform(0, 19'999));
      const std::uint32_t value = static_cast<std::uint32_t>(step);
      if (fused.try_emplace(key).second) {
        *fused.find(key) = value;
        *unfused.try_emplace(key).first = value;
        live.push_back(key);
      } else {
        ASSERT_FALSE(unfused.try_emplace(key).second);
      }
    } else {
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(live.size()) - 1));
      const Key victim = live[at];
      // Mimic DenseHashSet: reindex some OTHER live key to the taken value
      // (or the victim itself when it is the last element).
      const Key moved = live.back();
      std::uint32_t hole_fused = 0;
      ASSERT_EQ(fused.take_reindex(victim, hole_fused, moved), 1u);
      std::uint32_t hole_unfused = 0;
      ASSERT_EQ(unfused.take(victim, hole_unfused), 1u);
      ASSERT_EQ(hole_fused, hole_unfused);
      if (!(moved == victim)) unfused.at(moved) = hole_unfused;
      live[at] = moved;
      live.pop_back();
    }
    if (step % 7'000 == 0) {
      ASSERT_EQ(fused.size(), unfused.size());
      fused.for_each([&](Key k, const std::uint32_t& v) {
        const std::uint32_t* other = unfused.find(k);
        ASSERT_NE(other, nullptr);
        ASSERT_EQ(v, *other);
      });
    }
  }
  // take_reindex on a missing key is a no-op returning 0.
  std::uint32_t out = 0;
  EXPECT_EQ(fused.take_reindex(777'777, out, 777'777), 0u);
}

TEST(FlatHashSimd, DenseHashSetFusedEraseUnderMigration) {
  // DenseHashSet::erase rides take_reindex; drive its index map through
  // two-table migrations and verify order-exact behavior against a plain
  // vector model (order IS the container's contract).
  DenseHashSet<Key> set;
  std::vector<Key> model;
  Rng rng(29);
  for (int step = 0; step < 50'000; ++step) {
    if (model.empty() || rng.chance(0.58)) {
      const Key key = static_cast<Key>(rng.uniform(0, 9'999));
      const bool inserted = set.insert(key);
      const bool expect_inserted =
          std::find(model.begin(), model.end(), key) == model.end();
      ASSERT_EQ(inserted, expect_inserted);
      if (inserted) model.push_back(key);
    } else {
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(model.size()) - 1));
      const Key victim = model[at];
      ASSERT_EQ(set.erase(victim), 1u);
      model[at] = model.back();
      model.pop_back();
    }
    if (!model.empty()) {
      ASSERT_EQ(set.back(), model.back());
    }
  }
  std::vector<Key> order;
  set.for_each([&](Key k) { order.push_back(k); });
  EXPECT_EQ(order, model);
}

TEST(FlatHashSimd, RelocateOnTouchDuringMigrationUsesGroupPlacement) {
  // try_emplace hitting a retiring-table key relocates it via the
  // no-key-compare placement kernel; the relocated entry must stay
  // reachable and reference-stable.
  FlatHashMap<Key, int> map;
  const Key next = push_until_migrating(map);
  ASSERT_TRUE(map.rehash_in_flight());
  int relocated = 0;
  for (Key key = 0; key < next && map.rehash_in_flight(); key += 17) {
    int* address = map.try_emplace(key).first;
    ASSERT_EQ(*address, static_cast<int>(key));
    ASSERT_EQ(map.find(key), address);  // now active-table resident
    ++relocated;
  }
  EXPECT_GT(relocated, 0);
  map.drain_rehash(0);
  for (Key key = 0; key < next; ++key) {
    ASSERT_NE(map.find(key), nullptr);
    ASSERT_EQ(*map.find(key), static_cast<int>(key));
  }
}

TEST(FlatHashSimd, NonTrivialValuesThroughGroupProbePaths) {
  // std::string values exercise the non-trivial slot lifetime rules
  // through every new kernel (ASan would flag a destroy/relocate slip).
  FlatHashMap<Key, std::string> map;
  for (Key key = 0; key < 4'000; ++key) {
    map[key] = "v" + std::to_string(key);
  }
  std::string out;
  ASSERT_EQ(map.take(123, out), 1u);
  EXPECT_EQ(out, "v123");
  ASSERT_EQ(map.take_reindex(200, out, 300), 1u);
  EXPECT_EQ(out, "v200");
  EXPECT_EQ(map.at(300), "v200");  // reindexed
  for (Key key = 0; key < 4'000; key += 2) map.erase(key);
  for (Key key = 1; key < 4'000; key += 2) {
    if (key == 123 || key == 200) continue;
    ASSERT_NE(map.find(key), nullptr);
  }
}

}  // namespace
}  // namespace reasched
