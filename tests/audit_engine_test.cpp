// Unit coverage for the incremental audit subsystem (src/audit/): the
// dirty-set primitives, the invariant-check registry, and the engine wired
// into the schedulers (clean workloads stay clean, budgeted slices drain,
// mid-stream attach escalates then seeds, migrations carry the tracking
// across the generation flip).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/dirty_set.hpp"
#include "audit/invariant_check.hpp"
#include "baseline/rigid_block_sim.hpp"
#include "core/incremental_rebuild.hpp"
#include "core/multi_machine.hpp"
#include "core/reservation_scheduler.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

audit::AuditPolicy incremental_policy(std::uint64_t cadence = 1,
                                      std::size_t budget = 0,
                                      bool differential = false) {
  audit::AuditPolicy policy;
  policy.mode = audit::Mode::kIncremental;
  policy.cadence = cadence;
  policy.budget = budget;
  policy.differential = differential;
  return policy;
}

// ---------------------------------------------------------------- dirty sets

TEST(PagedDirtySet, MarkDedupeDrain) {
  audit::PagedDirtySet set;
  EXPECT_TRUE(set.mark(3));
  EXPECT_FALSE(set.mark(3));  // dedupe
  EXPECT_TRUE(set.mark(70));  // second page
  EXPECT_TRUE(set.mark(0));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(70));
  EXPECT_FALSE(set.contains(71));

  std::vector<Time> drained;
  EXPECT_EQ(set.drain(0, [&](Time key) { drained.push_back(key); }), 3u);
  EXPECT_TRUE(set.empty());
  ASSERT_EQ(drained.size(), 3u);
  // First-dirtied page first; within a page, ascending bit order.
  EXPECT_EQ(drained[0], 0);
  EXPECT_EQ(drained[1], 3);
  EXPECT_EQ(drained[2], 70);
}

TEST(PagedDirtySet, BudgetedDrainKeepsRemainder) {
  audit::PagedDirtySet set;
  for (Time key = 0; key < 10; ++key) set.mark(key * 64);  // 10 pages
  std::vector<Time> drained;
  EXPECT_EQ(set.drain(4, [&](Time key) { drained.push_back(key); }), 4u);
  EXPECT_EQ(set.size(), 6u);
  EXPECT_EQ(set.drain(0, [&](Time key) { drained.push_back(key); }), 6u);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(drained.size(), 10u);
  // Re-marking after a full drain works (page queue reset).
  EXPECT_TRUE(set.mark(64));
  EXPECT_EQ(set.size(), 1u);
}

TEST(PagedDirtySet, BudgetSplitsWithinOnePage) {
  audit::PagedDirtySet set;
  for (Time key = 0; key < 8; ++key) set.mark(key);  // one page, 8 bits
  std::size_t seen = 0;
  EXPECT_EQ(set.drain(3, [&](Time) { ++seen; }), 3u);
  EXPECT_EQ(set.size(), 5u);
  EXPECT_EQ(set.drain(0, [&](Time) { ++seen; }), 5u);
  EXPECT_EQ(seen, 8u);
}

TEST(PagedDirtySet, NegativeKeys) {
  audit::PagedDirtySet set;
  EXPECT_TRUE(set.mark(-1));
  EXPECT_TRUE(set.mark(-64));
  EXPECT_TRUE(set.contains(-1));
  std::size_t seen = 0;
  set.drain(0, [&](Time) { ++seen; });
  EXPECT_EQ(seen, 2u);
}

TEST(DirtyQueue, DedupeUnmarkBudgetFifo) {
  audit::DirtyQueue<JobId> queue;
  EXPECT_TRUE(queue.mark(JobId{1}));
  EXPECT_FALSE(queue.mark(JobId{1}));
  EXPECT_TRUE(queue.mark(JobId{2}));
  EXPECT_TRUE(queue.mark(JobId{3}));
  queue.unmark(JobId{2});  // retracted: drain must skip it
  EXPECT_EQ(queue.size(), 2u);

  std::vector<std::uint64_t> drained;
  EXPECT_EQ(queue.drain(1, [&](JobId id) { drained.push_back(id.value); }), 1u);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], 1u);  // FIFO: oldest dirt first
  EXPECT_EQ(queue.drain(0, [&](JobId id) { drained.push_back(id.value); }), 1u);
  EXPECT_EQ(drained.back(), 3u);
  EXPECT_TRUE(queue.empty());
  // Marks after a drain start a fresh queue.
  EXPECT_TRUE(queue.mark(JobId{2}));
  EXPECT_EQ(queue.size(), 1u);
}

// ------------------------------------------------------------------ registry

TEST(InvariantTable, RegisterFindRunAll) {
  audit::InvariantTable table;
  std::vector<std::string> ran;
  table.add("t.first", "Test", "first", [&] { ran.push_back("first"); });
  table.add("t.second", "Test", "second", [&] { ran.push_back("second"); });
  ASSERT_EQ(table.size(), 2u);
  EXPECT_NE(table.find("t.first"), nullptr);
  EXPECT_EQ(table.find("t.missing"), nullptr);

  table.run("t.second");
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_EQ(ran[0], "second");

  ran.clear();
  table.run_all();
  ASSERT_EQ(ran.size(), 2u);
  EXPECT_EQ(ran[0], "first");  // registration order

  EXPECT_THROW(table.run("t.missing"), ContractViolation);
  EXPECT_THROW(table.add("t.first", "Test", "dup", [] {}), ContractViolation);
}

TEST(InvariantTable, FailingCheckThrowsInternalError) {
  audit::InvariantTable table;
  table.add("t.fail", "Test", "always fails",
            [] { RS_CHECK(false, "deliberate"); });
  EXPECT_THROW(table.run_all(), InternalError);
}

// ----------------------------------------------- engine-in-scheduler basics

std::vector<Window> aligned_window_pool() {
  // Aligned power-of-two windows across a few spans and positions.
  std::vector<Window> pool;
  for (Time start = 0; start < 1024; start += 256) pool.push_back(Window{start, start + 256});
  for (Time start = 0; start < 1024; start += 128) pool.push_back(Window{start, start + 128});
  pool.push_back(Window{0, 1024});
  pool.push_back(Window{0, 512});
  return pool;
}

/// Random insert/erase churn against a ReservationScheduler; returns the
/// number of requests served.
std::size_t churn(ReservationScheduler& scheduler, std::size_t steps,
                  std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<Window> pool = aligned_window_pool();
  std::vector<JobId> active;
  std::uint64_t next = seed * 1'000'000 + 1;  // disjoint id ranges per call
  std::size_t served = 0;
  for (std::size_t step = 0; step < steps; ++step) {
    if (!active.empty() && rng.chance(0.45)) {
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform(0, active.size() - 1));
      scheduler.erase(active[at]);
      active[at] = active.back();
      active.pop_back();
      ++served;
    } else {
      const Window w = pool[static_cast<std::size_t>(
          rng.uniform(0, pool.size() - 1))];
      const JobId id{next++};
      try {
        scheduler.insert(id, w);
        active.push_back(id);
        ++served;
      } catch (const InfeasibleError&) {
        // Deliberately overloaded pockets are fine for this test.
      }
    }
  }
  return served;
}

TEST(AuditEngine, CleanWorkloadPassesDifferentialAudit) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.audit_policy = incremental_policy(1, 0, /*differential=*/true);
  ReservationScheduler scheduler(options);
  churn(scheduler, 600, 11);
  const auto work = scheduler.audit_work();
  EXPECT_GT(work.incremental_audits, 0u);
  EXPECT_GT(work.events, 0u);
  EXPECT_GT(work.regions_checked, 0u);
}

TEST(AuditEngine, AuditOffMeansZeroWork) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  ReservationScheduler scheduler(options);
  churn(scheduler, 300, 12);
  EXPECT_TRUE(scheduler.audit_work().zero());
  EXPECT_EQ(scheduler.audit_backlog(), 0u);
}

TEST(AuditEngine, BudgetedSliceDrainsBacklogEventually) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.trimming = false;  // no rebuild escalations; pure slice behavior
  options.audit_policy = incremental_policy(1, /*budget=*/2);
  ReservationScheduler scheduler(options);
  churn(scheduler, 400, 13);
  // Each request checks at most 2 regions; a backlog may remain. Draining
  // it with explicit audits must terminate with an empty backlog and no
  // violation.
  std::size_t guard = 0;
  while (scheduler.audit_backlog() > 0) {
    scheduler.incremental_audit();
    ASSERT_LT(++guard, 10'000u);
  }
  scheduler.audit();  // and the full sweep agrees
}

TEST(AuditEngine, MidStreamAttachEscalatesOnceThenTracks) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.trimming = false;  // keep rebuild escalations out of the count
  ReservationScheduler scheduler(options);
  churn(scheduler, 200, 14);
  EXPECT_TRUE(scheduler.audit_work().zero());

  scheduler.set_audit_policy(incremental_policy(/*cadence=*/0));
  scheduler.incremental_audit();  // full sweep + reseed
  const auto after_first = scheduler.audit_work();
  EXPECT_EQ(after_first.full_sweeps, 1u);

  churn(scheduler, 100, 15);
  scheduler.incremental_audit();  // now dirty-region only
  const auto after_second = scheduler.audit_work();
  EXPECT_EQ(after_second.full_sweeps, 1u);
  EXPECT_GT(after_second.regions_checked, 0u);
}

TEST(AuditEngine, PartitionedMigrationCarriesTrackingAcrossSwap) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.rebuild_batch = 16;  // force partitioned migrations early
  options.audit_policy = incremental_policy(1, 0, /*differential=*/true);
  ReservationScheduler scheduler(options);
  // Ramp through several doubling boundaries, then tear down through
  // halving boundaries; differential mode asserts incremental == full
  // throughout, including mid-migration and across the swap.
  std::vector<JobId> active;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    const Time start = static_cast<Time>(((i * 7) % 64) * 64);
    scheduler.insert(JobId{i}, Window{start, start + 64});
    active.push_back(JobId{i});
  }
  while (active.size() > 20) {
    scheduler.erase(active.back());
    active.pop_back();
  }
  EXPECT_GT(scheduler.audit_work().incremental_audits, 0u);
}

TEST(AuditEngine, RegisteredChecksMatchGlossaryAndPass) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  ReservationScheduler scheduler(options);
  churn(scheduler, 200, 16);

  audit::InvariantTable table;
  scheduler.register_invariants(table);
  ASSERT_EQ(table.size(), 5u);
  for (const char* name :
       {"rs.I1.jobs-and-occupancy", "rs.I2.window-ledgers",
        "rs.I3.interval-assignment-bound", "rs.I4.fulfillment-cache",
        "rs.I5.migration-coherence"}) {
    EXPECT_NE(table.find(name), nullptr) << name;
  }
  table.run_all();
  table.run("rs.I3.interval-assignment-bound");
}

TEST(AuditEngine, IncrementalRebuildAdapterAuditsThroughPolicy) {
  SchedulerOptions options;
  options.audit_policy = incremental_policy(1);
  IncrementalRebuildScheduler scheduler(options);
  std::vector<JobId> active;
  for (std::uint64_t i = 1; i <= 120; ++i) {
    const Time start = static_cast<Time>(((i * 5) % 32) * 64);
    scheduler.insert(JobId{i}, Window{start, start + 64});
    active.push_back(JobId{i});
  }
  while (active.size() > 10) {
    scheduler.erase(active.back());
    active.pop_back();
  }
  scheduler.incremental_audit();
  scheduler.audit();

  audit::InvariantTable table;
  scheduler.register_invariants(table);
  EXPECT_NE(table.find("irs.adapter-coherence"), nullptr);
  EXPECT_NE(table.find("irs.generations"), nullptr);
  table.run_all();
}

TEST(AuditEngine, SimDriverAuditHookFiresAtCadence) {
  // SimOptions::audit_every / audit_hook wire any scheduler's audit
  // machinery into the replay driver — per-request and batched modes.
  ChurnParams params;
  params.seed = 77;
  params.target_active = 64;
  params.requests = 256;
  params.min_span = 64;
  params.max_span = 512;
  params.aligned = true;
  const auto trace = make_churn_trace(params);

  for (const std::size_t batch_size : {std::size_t{0}, std::size_t{16}}) {
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    options.audit_policy = incremental_policy(/*cadence=*/0);
    ReservationScheduler scheduler(options);
    std::size_t hook_calls = 0;
    SimOptions sim;
    sim.batch_size = batch_size;
    sim.audit_every = 32;
    sim.audit_hook = [&] {
      ++hook_calls;
      scheduler.incremental_audit();
    };
    const SimReport report = replay_trace(scheduler, trace, sim);
    EXPECT_TRUE(report.clean());
    EXPECT_GT(hook_calls, 0u) << "batch_size " << batch_size;
    EXPECT_GE(scheduler.audit_work().incremental_audits, hook_calls);
  }
}

TEST(AuditEngine, ComponentAuditsEnumerableFromOneTable) {
  // Satellite: the stray per-component audit() entry points are unified
  // behind the registration table — one table can hold every component.
  RigidBlockSim sim;
  ASSERT_TRUE(sim.insert(JobId{1}, 2, Window{0, 8}).has_value());
  ASSERT_TRUE(sim.insert(JobId{2}, 1, Window{0, 8}).has_value());

  MultiMachineScheduler machines(
      3, [] { return std::make_unique<ReservationScheduler>(); });
  for (std::uint64_t i = 1; i <= 9; ++i) {
    machines.insert(JobId{i}, Window{0, 64});
  }

  SchedulerOptions options;
  IncrementalRebuildScheduler rebuild(options);
  rebuild.insert(JobId{1}, Window{0, 64});

  audit::InvariantTable table;
  sim.register_invariants(table);
  machines.register_invariants(table);
  rebuild.register_invariants(table);
  EXPECT_NE(table.find("rbs.blocks-on-slot-map"), nullptr);
  EXPECT_NE(table.find("rbs.no-orphan-slots"), nullptr);
  EXPECT_NE(table.find("mm.L3.balance-shares"), nullptr);
  EXPECT_NE(table.find("irs.generations"), nullptr);
  table.run_all();

  // Incremental balance audit on the sequential reduction: first call is
  // the tracked full sweep, later calls only touch dirty windows.
  EXPECT_GT(machines.audit_balance_incremental(), 0u);
  EXPECT_EQ(machines.audit_balance_incremental(), 0u);
  machines.insert(JobId{50}, Window{64, 128});
  EXPECT_EQ(machines.audit_balance_incremental(), 1u);
}

}  // namespace
}  // namespace reasched
