// Differential guarantee of the incremental audit engine: it must accept /
// reject EXACTLY when the full O(state) sweep does — across random
// workloads (both accept everywhere), and under deliberate state
// corruption (both reject). The sharded half runs the striped balancer
// ledger's per-stripe incremental audit against the full ledger sweep at
// 1/2/4/8 shards, with random batched workloads and injected ledger
// corruption (acceptance criterion of ISSUE 4).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/reservation_scheduler.hpp"
#include "service/sharded_scheduler.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

using Corruption = ReservationScheduler::Corruption;

/// Outcome of one auditor on the current state.
enum class Verdict { kAccept, kReject };

Verdict full_verdict(ReservationScheduler& scheduler) {
  try {
    scheduler.audit();
    return Verdict::kAccept;
  } catch (const InternalError&) {
    return Verdict::kReject;
  }
}

Verdict incremental_verdict(ReservationScheduler& scheduler) {
  try {
    scheduler.incremental_audit();
    return Verdict::kAccept;
  } catch (const InternalError&) {
    return Verdict::kReject;
  }
}

std::vector<Request> random_trace(std::size_t n, std::uint64_t seed) {
  ChurnParams params;
  params.seed = seed;
  params.target_active = n;
  params.requests = 3 * n;
  params.min_span = 64;
  params.max_span = 1024;
  params.aligned = true;
  return make_churn_trace(params);
}

TEST(AuditDifferential, RandomWorkloadsAgreeOnAccept) {
  for (const std::uint64_t seed : {7u, 23u, 101u}) {
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    audit::AuditPolicy policy;
    policy.mode = audit::Mode::kIncremental;
    policy.cadence = 0;  // driven explicitly below
    options.audit_policy = policy;
    ReservationScheduler scheduler(options);

    const auto trace = random_trace(150, seed);
    std::size_t step = 0;
    for (const Request& request : trace) {
      try {
        if (request.kind == RequestKind::kInsert) {
          scheduler.insert(request.job, request.window);
        } else {
          scheduler.erase(request.job);
        }
      } catch (const InfeasibleError&) {
        continue;
      }
      // Both auditors on every single request: exact agreement, everywhere.
      ASSERT_EQ(incremental_verdict(scheduler), Verdict::kAccept)
          << "seed " << seed << " step " << step;
      ASSERT_EQ(full_verdict(scheduler), Verdict::kAccept)
          << "seed " << seed << " step " << step;
      ++step;
    }
  }
}

/// Builds a scheduler with enough state that every corruption kind has a
/// target, engine attached and seeded (one audit drains the initial dirt).
std::unique_ptr<ReservationScheduler> corruptible_scheduler(bool parked_state) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.trimming = false;  // keep windows/intervals stable for targeting
  audit::AuditPolicy policy;
  policy.mode = audit::Mode::kIncremental;
  policy.cadence = 0;
  options.audit_policy = policy;
  auto scheduler = std::make_unique<ReservationScheduler>(options);
  std::uint64_t next = 1;
  for (int i = 0; i < 24; ++i) {
    scheduler->insert(JobId{next++}, Window{0, 256});
  }
  if (parked_state) {
    // Overload a narrow region so some placements park.
    for (int i = 0; i < 64; ++i) {
      try {
        scheduler->insert(JobId{next++}, Window{0, 64});
      } catch (const InfeasibleError&) {
        break;
      }
    }
  }
  scheduler->incremental_audit();  // seed + verify the starting state
  return scheduler;
}

TEST(AuditDifferential, CorruptionsRejectedByBothAuditors) {
  const Corruption kinds[] = {
      Corruption::kFlipLowerOccupied, Corruption::kDesyncLowerCount,
      Corruption::kOrphanLedgerSlot, Corruption::kDesyncWindowJobs,
      Corruption::kDesyncParkedCount,
  };
  for (const Corruption kind : kinds) {
    // Two independent instances: one judged by the full sweep, one by the
    // incremental engine — the corruption must not survive either.
    for (const bool use_incremental : {false, true}) {
      auto scheduler = corruptible_scheduler(
          /*parked_state=*/kind == Corruption::kDesyncParkedCount);
      ASSERT_TRUE(scheduler->corrupt_for_test(kind))
          << "corruption kind " << static_cast<int>(kind) << " found no target";
      const Verdict verdict = use_incremental ? incremental_verdict(*scheduler)
                                              : full_verdict(*scheduler);
      EXPECT_EQ(verdict, Verdict::kReject)
          << (use_incremental ? "incremental" : "full")
          << " auditor accepted corruption kind " << static_cast<int>(kind);
    }
  }
}

TEST(AuditDifferential, StaleDirtSetCannotMaskASecondCorruption) {
  // Budgeted slicing leaves dirt behind; a corruption marked dirty must be
  // flagged no later than the drain that reaches it — never silently
  // dropped.
  auto scheduler = corruptible_scheduler(false);
  audit::AuditPolicy policy;
  policy.mode = audit::Mode::kIncremental;
  policy.cadence = 0;
  policy.budget = 1;  // one region per audit: worst case for staleness
  scheduler->set_audit_policy(policy);
  ASSERT_TRUE(scheduler->corrupt_for_test(Corruption::kDesyncLowerCount));
  bool rejected = false;
  for (int i = 0; i < 1000 && !rejected; ++i) {
    try {
      scheduler->incremental_audit();
    } catch (const InternalError&) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected) << "budgeted engine never reached the corrupt region";
}

// ------------------------------------------------------------- sharded half

std::vector<Request> batch_of(Rng& rng, std::vector<JobId>& active,
                              std::uint64_t& next, std::size_t count) {
  std::vector<Request> batch;
  for (std::size_t i = 0; i < count; ++i) {
    if (!active.empty() && rng.chance(0.4)) {
      const std::size_t at =
          static_cast<std::size_t>(rng.uniform(0, active.size() - 1));
      batch.push_back(Request{RequestKind::kDelete, active[at], Window{}});
      active[at] = active.back();
      active.pop_back();
    } else {
      const Time start = static_cast<Time>(rng.uniform(0, 31) * 128);
      const JobId id{next++};
      batch.push_back(Request{RequestKind::kInsert, id, Window{start, start + 128}});
      active.push_back(id);
    }
  }
  return batch;
}

TEST(AuditDifferential, ShardedLedgerAgreesAcrossShardCounts) {
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    ShardedScheduler::Options options;
    options.shards = shards;
    ShardedScheduler scheduler(
        8, [] { return std::make_unique<ReservationScheduler>(); }, options);

    Rng rng(1000 + shards);
    std::vector<JobId> active;
    std::uint64_t next = 1;
    for (int round = 0; round < 12; ++round) {
      const auto batch = batch_of(rng, active, next, 48);
      const BatchResult result = scheduler.apply(batch);
      ASSERT_TRUE(result.rejected.empty());
      // Both auditors accept after every batch (the incremental one checks
      // only the stripes' dirty windows — concurrently across shards).
      // Incremental FIRST: a successful full sweep discharges the dirty
      // queues, so the reverse order would hand the incremental path an
      // empty queue and verify nothing.
      EXPECT_NO_THROW(scheduler.audit_balance_incremental()) << "shards " << shards;
      EXPECT_NO_THROW(scheduler.audit_balance()) << "shards " << shards;
    }
    // A second incremental call with no intervening mutations has nothing
    // to verify.
    EXPECT_EQ(scheduler.audit_balance_incremental(), 0u);

    // Injected ledger corruption: both auditors must reject.
    ASSERT_TRUE(scheduler.corrupt_balance_for_test());
    EXPECT_THROW(scheduler.audit_balance(), InternalError) << "shards " << shards;
    EXPECT_THROW(scheduler.audit_balance_incremental(), InternalError)
        << "shards " << shards;
  }
}

TEST(AuditDifferential, ShardedLedgerCorruptionUnderChurn) {
  // Failure injection mid-workload: corrupt, keep serving one more batch
  // (the dirty marks must survive the churn), then audit.
  for (const unsigned shards : {2u, 8u}) {
    ShardedScheduler::Options options;
    options.shards = shards;
    ShardedScheduler scheduler(
        8, [] { return std::make_unique<ReservationScheduler>(); }, options);
    Rng rng(2000 + shards);
    std::vector<JobId> active;
    std::uint64_t next = 1;
    scheduler.apply(batch_of(rng, active, next, 64));
    EXPECT_NO_THROW(scheduler.audit_balance_incremental());
    ASSERT_TRUE(scheduler.corrupt_balance_for_test());
    // Keep serving before auditing — inserts into a disjoint window range,
    // so the corrupted window's (now inconsistent) share sets are not
    // touched by the serving path itself. The dirty mark must survive.
    std::vector<Request> inserts;
    for (int i = 0; i < 32; ++i) {
      const Time start = static_cast<Time>(10'000 + i) * 128;
      inserts.push_back(
          Request{RequestKind::kInsert, JobId{next++}, Window{start, start + 128}});
    }
    scheduler.apply(inserts);
    EXPECT_THROW(scheduler.audit_balance_incremental(), InternalError)
        << "shards " << shards;
  }
}

}  // namespace
}  // namespace reasched
