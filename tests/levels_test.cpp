#include <gtest/gtest.h>

#include "core/levels.hpp"
#include "util/assert.hpp"

namespace reasched {
namespace {

TEST(LevelTable, PaperConstants) {
  const LevelTable table = LevelTable::paper();
  EXPECT_EQ(table.level_count(), 3u);
  EXPECT_EQ(table.max_span(0), 32u);    // L1 = 2^5
  EXPECT_EQ(table.max_span(1), 256u);   // L2 = 2^{32/4} = 2^8
  EXPECT_EQ(table.max_span(2), pow2(62));  // L3 = 2^64 capped to Time range
  EXPECT_EQ(table.interval_size(1), 32u);
  EXPECT_EQ(table.interval_size(2), 256u);
  EXPECT_EQ(table.interval_size_log(1), 5u);
  EXPECT_EQ(table.interval_size_log(2), 8u);
}

TEST(LevelTable, LevelOfSpans) {
  const LevelTable table = LevelTable::paper();
  EXPECT_EQ(table.level_of(1), 0u);
  EXPECT_EQ(table.level_of(32), 0u);
  EXPECT_EQ(table.level_of(33), 1u);
  EXPECT_EQ(table.level_of(64), 1u);
  EXPECT_EQ(table.level_of(256), 1u);
  EXPECT_EQ(table.level_of(257), 2u);
  EXPECT_EQ(table.level_of(pow2(40)), 2u);
  EXPECT_EQ(table.level_of(pow2(62)), 2u);
}

TEST(LevelTable, LevelOfRejectsOutOfRange) {
  const LevelTable table = LevelTable::paper();
  EXPECT_THROW(table.level_of(0), ContractViolation);
  EXPECT_THROW((void)table.level_of(pow2(62) + 1), ContractViolation);
}

TEST(LevelTable, LogStarGrowth) {
  // The tower growth is the whole point: each threshold is exponential in
  // the previous, so the number of levels for span Δ is O(log* Δ).
  const LevelTable table = LevelTable::paper();
  EXPECT_LE(table.level_count(), 3u);  // covers spans up to 2^62 with 3 levels
}

TEST(LevelTable, CustomTowerValidated) {
  // Valid: lg(L_{l+1}) <= L_l / 4 at every step.
  EXPECT_NO_THROW(LevelTable::custom({32, 256, pow2(16), pow2(62)}));
  EXPECT_NO_THROW(LevelTable::custom({64, pow2(16)}));
  // Invalid: first threshold too small.
  EXPECT_THROW(LevelTable::custom({16, 64}), ContractViolation);
  // Invalid: not increasing.
  EXPECT_THROW(LevelTable::custom({64, 64}), ContractViolation);
  // Invalid: not a power of two.
  EXPECT_THROW(LevelTable::custom({48, 256}), ContractViolation);
  // Invalid: Equation (1) violated — lg(2^40) = 40 > 32/4 = 8.
  EXPECT_THROW(LevelTable::custom({32, pow2(40)}), ContractViolation);
}

TEST(LevelTable, CustomTowerReachesDeepLevels) {
  const LevelTable table = LevelTable::custom({32, 256, pow2(16), pow2(62)});
  EXPECT_EQ(table.level_count(), 4u);
  EXPECT_EQ(table.level_of(512), 2u);
  EXPECT_EQ(table.level_of(pow2(16)), 2u);
  EXPECT_EQ(table.level_of(pow2(17)), 3u);
  EXPECT_EQ(table.interval_size(3), pow2(16));
}

TEST(LevelTable, IntervalSizeUndefinedForLevel0) {
  const LevelTable table = LevelTable::paper();
  EXPECT_THROW(table.interval_size(0), ContractViolation);
}

}  // namespace
}  // namespace reasched
