// Background scraper tests (telemetry/scraper.hpp, DESIGN.md §12): delta
// semantics against serial ground truth, the sum-of-deltas == cumulative-
// totals invariant (including under concurrent recorders — this file runs
// in the TSan lane), rotation of the delta JSONL file, and the loopback
// HTTP listener. Uses the handle classes directly so both telemetry
// flavors compile and pass.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/scraper.hpp"

namespace reasched::telemetry {
namespace {

class ScraperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    Registry::set_metrics_enabled(true);
  }
  void TearDown() override {
    Registry::set_metrics_enabled(false);
    Registry::global().reset();
  }
};

const DeltaSnapshot::CounterDelta* find_counter(const DeltaSnapshot& delta,
                                                const std::string& name) {
  for (const auto& c : delta.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const DeltaSnapshot::HistogramDelta* find_histogram(const DeltaSnapshot& delta,
                                                    const std::string& name) {
  for (const auto& h : delta.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Scraper::Options paused_options() {
  Scraper::Options options;
  options.interval_ms = 3'600'000;  // cadence never fires; scrape_now drives
  options.start_paused = true;
  return options;
}

// ------------------------------------------------------------ delta logic --

TEST_F(ScraperTest, DeltaSemanticsAgainstSerialGroundTruth) {
  Counter ops("scr.ops");
  Histogram hist("scr.hist", Registry::Unit::kCount);
  Scraper scraper(paused_options());

  ops.add(5);
  hist.record(10);
  hist.record(3000);
  scraper.scrape_now();
  DeltaSnapshot d1 = scraper.last_delta();
  const auto* c1 = find_counter(d1, "scr.ops");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->total, 5u);
  EXPECT_EQ(c1->delta, 5u);  // first scrape: delta == total
  const auto* h1 = find_histogram(d1, "scr.hist");
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1->total_count, 2u);
  EXPECT_EQ(h1->interval.total(), 2u);

  ops.add(2);
  hist.record(10);
  scraper.scrape_now();
  DeltaSnapshot d2 = scraper.last_delta();
  EXPECT_EQ(d2.sequence, d1.sequence + 1);
  const auto* c2 = find_counter(d2, "scr.ops");
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->total, 7u);
  EXPECT_EQ(c2->delta, 2u);  // only the new increments
  const auto* h2 = find_histogram(d2, "scr.hist");
  ASSERT_NE(h2, nullptr);
  EXPECT_EQ(h2->total_count, 3u);
  EXPECT_EQ(h2->interval.total(), 1u);
  // Unit::kCount interval buckets are exact: the one new sample sits in
  // value 10's bucket.
  EXPECT_EQ(h2->interval.buckets()[LatencyHistogram::bucket_of(10)], 1u);
  EXPECT_EQ(h2->interval.percentile(0.5), 10u);

  // A scrape with nothing recorded is all-zero deltas.
  scraper.scrape_now();
  DeltaSnapshot d3 = scraper.last_delta();
  EXPECT_EQ(find_counter(d3, "scr.ops")->delta, 0u);
  EXPECT_EQ(find_histogram(d3, "scr.hist")->interval.total(), 0u);
  scraper.stop();
}

TEST_F(ScraperTest, RatesFollowFromDeltaAndInterval) {
  Counter ops("rate.ops");
  Scraper scraper(paused_options());
  scraper.scrape_now();  // arm the previous snapshot
  ops.add(1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scraper.scrape_now();
  const DeltaSnapshot delta = scraper.last_delta();
  const auto* c = find_counter(delta, "rate.ops");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->delta, 1000u);
  ASSERT_GT(delta.interval_s, 0.0);
  EXPECT_NEAR(c->per_s, 1000.0 / delta.interval_s, 1e-6);
  scraper.stop();
}

// Sum of every emitted delta equals the cumulative totals — stop() takes
// the final scrape that closes the books. Concurrent recorders exercise
// the shard-merge race surface (the TSan lane's target).
TEST_F(ScraperTest, SumOfDeltasEqualsTotalsUnderConcurrentRecorders) {
  Counter ops("conc.ops");
  Histogram hist("conc.hist", Registry::Unit::kCount);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;

  std::uint64_t counter_sum = 0;
  std::uint64_t hist_sum = 0;
  Scraper::Options options;
  options.interval_ms = 1;  // scrape as fast as the cadence allows
  options.on_scrape = [&](const DeltaSnapshot& delta) {
    if (const auto* c = find_counter(delta, "conc.ops")) counter_sum += c->delta;
    if (const auto* h = find_histogram(delta, "conc.hist")) {
      hist_sum += h->interval.total();
    }
  };
  Scraper scraper(std::move(options));

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ops.add(1);
        hist.record((t + 1) * 64 + (i & 31));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  scraper.stop();  // final scrape: books must balance exactly

  EXPECT_GE(scraper.scrapes(), 1u);
  EXPECT_EQ(counter_sum, kThreads * kPerThread);
  EXPECT_EQ(hist_sum, kThreads * kPerThread);
}

// --------------------------------------------------------------- rotation --

TEST_F(ScraperTest, RotationShiftsAndBoundsTheDeltaFiles) {
  Counter ops("rot.ops");
  const std::string out =
      ::testing::TempDir() + "scraper_rotation_test.jsonl";
  for (const std::string& stale :
       {out, out + ".1", out + ".2", out + ".3"}) {
    std::remove(stale.c_str());
  }
  Scraper::Options options = paused_options();
  options.out_path = out;
  options.rotate_bytes = 1;  // every scrape overflows: one line per file
  options.keep_files = 2;
  Scraper scraper(std::move(options));
  for (int i = 0; i < 5; ++i) {
    ops.add(1);
    scraper.scrape_now();
  }
  scraper.stop();  // 6th scrape

  EXPECT_TRUE(std::ifstream(out).good());
  EXPECT_TRUE(std::ifstream(out + ".1").good());
  EXPECT_TRUE(std::ifstream(out + ".2").good());
  EXPECT_FALSE(std::ifstream(out + ".3").good()) << "keep_files must bound";

  // The active file holds the latest (final) scrape.
  std::ifstream in(out);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"seq\":6"), std::string::npos) << line;
  EXPECT_NE(line.find("\"rot.ops\""), std::string::npos) << line;
}

// --------------------------------------------------------------- listener --

TEST_F(ScraperTest, LoopbackListenerServesLatestExposition) {
  Counter ops("http.ops");
  ops.add(9);
  Scraper::Options options = paused_options();
  options.port = 0;  // ephemeral
  Scraper scraper(std::move(options));
  ASSERT_GT(scraper.port(), 0);
  scraper.scrape_now();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(scraper.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  scraper.stop();

  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("reasched_http_ops_total 9"), std::string::npos) << reply;
  EXPECT_NE(reply.find("# EOF"), std::string::npos);
}

TEST_F(ScraperTest, CadenceFiresAndStopIsIdempotent) {
  Scraper::Options options;
  options.interval_ms = 5;
  Scraper scraper(std::move(options));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  scraper.stop();
  const std::uint64_t after_stop = scraper.scrapes();
  EXPECT_GE(after_stop, 2u);
  scraper.stop();  // idempotent: no second final scrape
  EXPECT_EQ(scraper.scrapes(), after_stop);
}

}  // namespace
}  // namespace reasched::telemetry
