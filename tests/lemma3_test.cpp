// Lemma 3, measured: if the full instance is 6γ-underallocated, the job
// subset the round-robin balancer delegates to each machine is 1-machine
// γ-underallocated. We replay churn through the multi-machine pipeline,
// reconstruct each machine's active subset from the snapshot, and check it
// with the offline γ-underallocation oracle.
#include <gtest/gtest.h>

#include <memory>

#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "feasibility/underallocation.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

class Lemma3Sweep : public testing::TestWithParam<unsigned> {};

TEST_P(Lemma3Sweep, PerMachineSubsetsStayUnderallocated) {
  const unsigned machines = GetParam();
  ChurnParams params;
  params.seed = 400 + machines;
  params.requests = 1200;
  params.target_active = 64 * machines;
  params.machines = machines;
  params.gamma = 32;  // 6γ' with headroom: per-machine check uses γ' below
  params.min_span = 64;
  params.max_span = 2048;
  params.aligned = true;
  const auto trace = make_churn_trace(params);

  ReallocatingScheduler scheduler(machines);
  std::unordered_map<JobId, Window> active;
  std::size_t index = 0;
  std::size_t checked = 0;
  for (const auto& request : trace) {
    if (request.kind == RequestKind::kInsert) {
      scheduler.insert(request.job, request.window);
      active.emplace(request.job, request.window);
    } else {
      scheduler.erase(request.job);
      active.erase(request.job);
    }
    if (++index % 200 != 0 || active.empty()) continue;
    ++checked;
    const Schedule snapshot = scheduler.snapshot();
    for (unsigned machine = 0; machine < machines; ++machine) {
      std::vector<JobSpec> subset;
      for (const auto& [id, window] : active) {
        const auto placement = snapshot.find(id);
        ASSERT_TRUE(placement.has_value());
        if (placement->machine == machine) subset.push_back({id, window});
      }
      if (subset.empty()) continue;
      // The full (aligned) instance is 32-underallocated by construction;
      // Lemma 3's statement guarantees the per-machine subsets at 32/6 ≈ 5;
      // check the weaker γ' = 4 certificate (grid relaxation is exact on
      // aligned instances).
      EXPECT_TRUE(gamma_underallocated(subset, 1, 4))
          << "machine " << machine << " at request " << index;
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, Lemma3Sweep, testing::Values(2u, 3u, 4u, 6u, 8u));

TEST(Lemma3, SingleWindowClassSplitsEvenly) {
  // The cleanest instance of the lemma: n_W jobs of one window class spread
  // ⌈n_W/m⌉-wise; each machine's subset trivially fits with dilation.
  const unsigned machines = 4;
  ReallocatingScheduler scheduler(machines);
  const Window w{0, 1024};
  std::vector<JobSpec> all;
  for (unsigned i = 0; i < 32; ++i) {
    scheduler.insert(JobId{i + 1}, w);
    all.push_back({JobId{i + 1}, w});
  }
  const Schedule snapshot = scheduler.snapshot();
  for (unsigned machine = 0; machine < machines; ++machine) {
    std::vector<JobSpec> subset;
    for (const auto& spec : all) {
      if (snapshot.find(spec.id)->machine == machine) subset.push_back(spec);
    }
    EXPECT_EQ(subset.size(), 8u);  // 32 / 4, exact
    EXPECT_TRUE(gamma_underallocated(subset, 1, 8));
  }
}

}  // namespace
}  // namespace reasched
