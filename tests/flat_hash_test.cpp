#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "base/types.hpp"
#include "util/flat_hash.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

TEST(FlatHashMap, BasicInsertFindErase) {
  FlatHashMap<Time, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);

  map[7] = 42;
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 42);
  EXPECT_EQ(map.at(7), 42);
  EXPECT_TRUE(map.contains(7));

  EXPECT_EQ(map.erase(7), 1u);
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(7));
}

TEST(FlatHashMap, TryEmplaceReportsInsertion) {
  FlatHashMap<Time, int> map;
  auto [first, inserted1] = map.try_emplace(5);
  EXPECT_TRUE(inserted1);
  *first = 10;
  auto [second, inserted2] = map.try_emplace(5);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*second, 10);
}

TEST(FlatHashMap, AtThrowsOnMissingKey) {
  FlatHashMap<Time, int> map;
  EXPECT_THROW(map.at(3), InternalError);
}

TEST(FlatHashMap, StridedKeysStaySpread) {
  // Interval bases are strided (multiples of 32/256); the identity hash of
  // common standard libraries clusters them catastrophically under
  // power-of-two masking — the default FlatHash must not.
  FlatHashMap<Time, int> map;
  for (Time t = 0; t < 4096 * 256; t += 256) map[t] = 1;
  EXPECT_EQ(map.size(), 4096u);
  for (Time t = 0; t < 4096 * 256; t += 256) EXPECT_TRUE(map.contains(t));
}

TEST(FlatHashMap, NegativeKeys) {
  FlatHashMap<Time, int> map;
  map[-1] = 1;
  map[-64] = 2;
  map[0] = 3;
  EXPECT_EQ(map.at(-1), 1);
  EXPECT_EQ(map.at(-64), 2);
  EXPECT_EQ(map.at(0), 3);
}

TEST(FlatHashMap, ErasedSlotsAreReusedAndValuesReset) {
  FlatHashMap<Time, std::string> map;
  map[1] = "payload";
  EXPECT_EQ(map.erase(1), 1u);
  // Re-inserting the key finds a default-constructed value, not the relic.
  auto [slot, inserted] = map.try_emplace(1);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(slot->empty());
}

TEST(FlatHashMap, RandomizedAgainstStdUnorderedMap) {
  FlatHashMap<Time, std::uint64_t> map;
  std::unordered_map<Time, std::uint64_t> reference;
  Rng rng(2024);
  for (int step = 0; step < 20'000; ++step) {
    const Time key = static_cast<Time>(rng.uniform(0, 999)) - 500;
    const auto op = rng.uniform(0, 2);
    if (op == 0) {
      const std::uint64_t value = rng();
      map[key] = value;
      reference[key] = value;
    } else if (op == 1) {
      EXPECT_EQ(map.erase(key), reference.erase(key));
    } else {
      const auto it = reference.find(key);
      const auto* found = map.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) EXPECT_EQ(*found, it->second);
    }
    if (step % 1000 == 0) {
      ASSERT_EQ(map.size(), reference.size());
      std::size_t seen = 0;
      map.for_each([&](Time k, const std::uint64_t& v) {
        ++seen;
        const auto it = reference.find(k);
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(v, it->second);
      });
      EXPECT_EQ(seen, reference.size());
    }
  }
}

TEST(FlatHashMap, ClearRetainsCapacityAndEmpties) {
  FlatHashMap<Time, int> map;
  for (Time t = 0; t < 1000; ++t) map[t] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(5));
  map[5] = 9;
  EXPECT_EQ(map.at(5), 9);
}

TEST(FlatHashSet, BasicOperations) {
  FlatHashSet<JobId> set;
  EXPECT_TRUE(set.insert(JobId{1}));
  EXPECT_FALSE(set.insert(JobId{1}));
  EXPECT_TRUE(set.contains(JobId{1}));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.any().value, 1u);
  EXPECT_EQ(set.erase(JobId{1}), 1u);
  EXPECT_TRUE(set.empty());
}

TEST(FlatHashSet, ForEachUntilStopsEarly) {
  FlatHashSet<Time> set;
  for (Time t = 0; t < 100; ++t) set.insert(t);
  int visited = 0;
  const bool stopped = set.for_each_until([&](Time) { return ++visited == 5; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(visited, 5);
}

TEST(FlatHashSet, RandomizedAgainstStdUnorderedSet) {
  FlatHashSet<Time> set;
  std::unordered_set<Time> reference;
  Rng rng(11);
  for (int step = 0; step < 10'000; ++step) {
    const Time key = static_cast<Time>(rng.uniform(0, 499));
    if (rng.chance(0.5)) {
      EXPECT_EQ(set.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), reference.erase(key));
    }
  }
  EXPECT_EQ(set.size(), reference.size());
  std::set<Time> seen;
  set.for_each([&](Time t) { seen.insert(t); });
  EXPECT_EQ(seen.size(), reference.size());
  for (const Time t : seen) EXPECT_TRUE(reference.contains(t));
}

}  // namespace
}  // namespace reasched
