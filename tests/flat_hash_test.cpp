#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "base/types.hpp"
#include "durability/codec.hpp"
#include "util/flat_hash.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

TEST(FlatHashMap, BasicInsertFindErase) {
  FlatHashMap<Time, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);

  map[7] = 42;
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 42);
  EXPECT_EQ(map.at(7), 42);
  EXPECT_TRUE(map.contains(7));

  EXPECT_EQ(map.erase(7), 1u);
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(7));
}

TEST(FlatHashMap, TryEmplaceReportsInsertion) {
  FlatHashMap<Time, int> map;
  auto [first, inserted1] = map.try_emplace(5);
  EXPECT_TRUE(inserted1);
  *first = 10;
  auto [second, inserted2] = map.try_emplace(5);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*second, 10);
}

TEST(FlatHashMap, AtThrowsOnMissingKey) {
  FlatHashMap<Time, int> map;
  EXPECT_THROW(map.at(3), InternalError);
}

TEST(FlatHashMap, StridedKeysStaySpread) {
  // Interval bases are strided (multiples of 32/256); the identity hash of
  // common standard libraries clusters them catastrophically under
  // power-of-two masking — the default FlatHash must not.
  FlatHashMap<Time, int> map;
  for (Time t = 0; t < 4096 * 256; t += 256) map[t] = 1;
  EXPECT_EQ(map.size(), 4096u);
  for (Time t = 0; t < 4096 * 256; t += 256) EXPECT_TRUE(map.contains(t));
}

TEST(FlatHashMap, NegativeKeys) {
  FlatHashMap<Time, int> map;
  map[-1] = 1;
  map[-64] = 2;
  map[0] = 3;
  EXPECT_EQ(map.at(-1), 1);
  EXPECT_EQ(map.at(-64), 2);
  EXPECT_EQ(map.at(0), 3);
}

TEST(FlatHashMap, ErasedSlotsAreReusedAndValuesReset) {
  FlatHashMap<Time, std::string> map;
  map[1] = "payload";
  EXPECT_EQ(map.erase(1), 1u);
  // Re-inserting the key finds a default-constructed value, not the relic.
  auto [slot, inserted] = map.try_emplace(1);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(slot->empty());
}

TEST(FlatHashMap, RandomizedAgainstStdUnorderedMap) {
  FlatHashMap<Time, std::uint64_t> map;
  std::unordered_map<Time, std::uint64_t> reference;
  Rng rng(2024);
  for (int step = 0; step < 20'000; ++step) {
    const Time key = static_cast<Time>(rng.uniform(0, 999)) - 500;
    const auto op = rng.uniform(0, 2);
    if (op == 0) {
      const std::uint64_t value = rng();
      map[key] = value;
      reference[key] = value;
    } else if (op == 1) {
      EXPECT_EQ(map.erase(key), reference.erase(key));
    } else {
      const auto it = reference.find(key);
      const auto* found = map.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) EXPECT_EQ(*found, it->second);
    }
    if (step % 1000 == 0) {
      ASSERT_EQ(map.size(), reference.size());
      std::size_t seen = 0;
      map.for_each([&](Time k, const std::uint64_t& v) {
        ++seen;
        const auto it = reference.find(k);
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(v, it->second);
      });
      EXPECT_EQ(seen, reference.size());
    }
  }
}

TEST(FlatHashMap, ClearRetainsCapacityAndEmpties) {
  FlatHashMap<Time, int> map;
  for (Time t = 0; t < 1000; ++t) map[t] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(5));
  map[5] = 9;
  EXPECT_EQ(map.at(5), 9);
}

// ---- incremental two-table rehash (DESIGN.md §8) ---------------------------

// Inserts ascending keys until a two-table migration starts; returns the
// next unused key. Requires incremental mode (the default).
template <class Map>
Time push_until_migrating(Map& map) {
  Time key = 0;
  while (!map.rehash_in_flight()) {
    map[key] = static_cast<int>(key);
    ++key;
  }
  return key;
}

TEST(FlatHashMapRehash, SmallTablesNeverMigrate) {
  FlatHashMap<Time, int> map;
  // Below kMinIncrementalCapacity growth stays in place even in
  // incremental mode: no cliff to amortize at these sizes.
  for (Time t = 0; t < 500; ++t) {
    map[t] = 1;
    EXPECT_FALSE(map.rehash_in_flight());
  }
}

TEST(FlatHashMapRehash, LegacyModeNeverMigrates) {
  FlatHashMap<Time, int> map;
  map.set_legacy_rehash(true);
  for (Time t = 0; t < 5000; ++t) {
    map[t] = static_cast<int>(t);
    ASSERT_FALSE(map.rehash_in_flight());
  }
  for (Time t = 0; t < 5000; ++t) ASSERT_EQ(map.at(t), static_cast<int>(t));
}

TEST(FlatHashMapRehash, LookupsServedFromBothTablesDuringMigration) {
  FlatHashMap<Time, int> map;
  const Time next = push_until_migrating(map);
  ASSERT_TRUE(map.rehash_in_flight());
  EXPECT_GT(map.migration_pending(), 0u);
  // Every key inserted so far is findable mid-migration, whichever table
  // currently holds it.
  for (Time t = 0; t < next; ++t) {
    ASSERT_NE(map.find(t), nullptr);
    ASSERT_EQ(*map.find(t), static_cast<int>(t));
  }
  EXPECT_EQ(map.size(), static_cast<std::size_t>(next));
}

TEST(FlatHashMapRehash, MigrationCompletesUnderMutationLoad) {
  FlatHashMap<Time, int> map;
  Time next = push_until_migrating(map);
  // Ride the migration out on ordinary inserts only: the bounded batch per
  // mutation must drain the retiring table long before the next doubling.
  std::size_t mutations = 0;
  while (map.rehash_in_flight()) {
    map[next] = static_cast<int>(next);
    ++next;
    ++mutations;
  }
  EXPECT_LE(mutations, map.capacity());  // drained well before refilling
  EXPECT_EQ(map.migration_pending(), 0u);
  for (Time t = 0; t < next; ++t) ASSERT_EQ(map.at(t), static_cast<int>(t));
}

TEST(FlatHashMapRehash, EraseDuringMigration) {
  FlatHashMap<Time, int> map;
  const Time next = push_until_migrating(map);
  ASSERT_TRUE(map.rehash_in_flight());
  // Erase a spread of keys mid-migration: some still sit in the retiring
  // table, some have already moved. Probe chains in the retiring table
  // must survive (tombstones, never empties).
  std::size_t erased = 0;
  for (Time t = 0; t < next; t += 3) erased += map.erase(t);
  EXPECT_EQ(erased, static_cast<std::size_t>((next + 2) / 3));
  for (Time t = 0; t < next; ++t) {
    if (t % 3 == 0) {
      ASSERT_EQ(map.find(t), nullptr);
    } else {
      ASSERT_NE(map.find(t), nullptr);
      ASSERT_EQ(*map.find(t), static_cast<int>(t));
    }
  }
  map.drain_rehash(0);
  EXPECT_FALSE(map.rehash_in_flight());
  EXPECT_EQ(map.size(), static_cast<std::size_t>(next) - erased);
}

TEST(FlatHashMapRehash, DrainRehashBudgetedAndFull) {
  FlatHashMap<Time, int> map;
  push_until_migrating(map);
  const std::size_t pending = map.migration_pending();
  ASSERT_GT(pending, 16u);
  // A budgeted drain examines at most `budget` buckets, so it moves at
  // most that many entries and leaves the rest pending.
  const std::size_t moved = map.drain_rehash(16);
  EXPECT_LE(moved, 16u);
  EXPECT_TRUE(map.rehash_in_flight());
  EXPECT_EQ(map.migration_pending(), pending - moved);
  // Budget 0 = drain everything.
  map.drain_rehash(0);
  EXPECT_FALSE(map.rehash_in_flight());
  EXPECT_EQ(map.migration_pending(), 0u);
}

TEST(FlatHashMapRehash, ReserveSkipsMigrationEntirely) {
  FlatHashMap<Time, int> map;
  map.reserve(100'000);
  for (Time t = 0; t < 100'000; ++t) {
    map[t] = 1;
    ASSERT_FALSE(map.rehash_in_flight());
  }
}

TEST(FlatHashMapRehash, ReserveFinishesInFlightMigration) {
  FlatHashMap<Time, int> map;
  const Time next = push_until_migrating(map);
  ASSERT_TRUE(map.rehash_in_flight());
  map.reserve(100'000);
  EXPECT_FALSE(map.rehash_in_flight());
  for (Time t = 0; t < next; ++t) ASSERT_EQ(map.at(t), static_cast<int>(t));
}

TEST(FlatHashMapRehash, PresentKeyCallsAreReferenceStableDuringMigration) {
  FlatHashMap<Time, int> map;
  const Time next = push_until_migrating(map);
  ASSERT_TRUE(map.rehash_in_flight());
  // A try_emplace that hits a key in the retiring table relocates exactly
  // that entry; addresses of other already-active entries must not move.
  const Time fresh = next;  // not yet inserted
  map[fresh] = 7;           // forces a migration batch; some keys now active
  std::vector<std::pair<Time, int*>> pinned;
  for (Time t = 0; t < next && pinned.size() < 8; ++t) {
    // Relocate-on-touch guarantees the returned address is in the active
    // table and stable under further present-key calls.
    pinned.emplace_back(t, map.try_emplace(t).first);
  }
  for (auto& [key, address] : pinned) {
    EXPECT_EQ(map.try_emplace(key).first, address);
    EXPECT_EQ(map.find(key), address);
  }
}

TEST(FlatHashMap, MoveAssignOntoNonEmptyDestroysOnce) {
  // Move-assignment onto a map holding non-trivial values must destroy
  // the overwritten slots exactly once (regression: a double-destroy here
  // was a double-free under ASan).
  FlatHashMap<Time, std::string> target;
  for (Time t = 0; t < 64; ++t) target[t] = "overwritten";
  FlatHashMap<Time, std::string> source;
  source[7] = "kept";
  target = std::move(source);
  ASSERT_EQ(target.size(), 1u);
  EXPECT_EQ(target.at(7), "kept");
  // Self-move and moved-from reuse stay well-formed.
  FlatHashMap<Time, std::string> fresh;
  fresh[1] = "x";
  fresh = std::move(fresh);
  EXPECT_EQ(fresh.at(1), "x");
}

TEST(FlatHashMapRehash, TombstoneHeavyChurnBothModes) {
  // Heavy insert/erase churn in a bounded key range drives tombstone
  // accumulation across the in-place-purge vs two-table-growth boundary.
  // Both modes must agree with the reference map throughout.
  for (const bool legacy : {false, true}) {
    FlatHashMap<Time, std::uint64_t> map;
    map.set_legacy_rehash(legacy);
    std::unordered_map<Time, std::uint64_t> reference;
    Rng rng(99);
    for (int step = 0; step < 200'000; ++step) {
      const Time key = static_cast<Time>(rng.uniform(0, 2999));
      if (rng.chance(0.5)) {
        const std::uint64_t value = rng();
        map[key] = value;
        reference[key] = value;
      } else {
        ASSERT_EQ(map.erase(key), reference.erase(key)) << "legacy=" << legacy;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
    map.drain_rehash(0);
    std::size_t seen = 0;
    map.for_each([&](Time k, const std::uint64_t& v) {
      ++seen;
      const auto it = reference.find(k);
      ASSERT_NE(it, reference.end());
      ASSERT_EQ(v, it->second);
    });
    ASSERT_EQ(seen, reference.size());
  }
}

TEST(FlatHashMapRehash, RandomizedLargeBothModesAgree) {
  // Cross-mode content equality: the same operation sequence leaves the
  // same key→value mapping whichever growth path is active.
  FlatHashMap<Time, std::uint64_t> incremental;
  FlatHashMap<Time, std::uint64_t> legacy;
  legacy.set_legacy_rehash(true);
  Rng rng(4242);
  bool saw_migration = false;
  for (int step = 0; step < 100'000; ++step) {
    const Time key = static_cast<Time>(rng.uniform(0, 49'999));
    if (rng.chance(0.7)) {
      const std::uint64_t value = rng();
      incremental[key] = value;
      legacy[key] = value;
    } else {
      ASSERT_EQ(incremental.erase(key), legacy.erase(key));
    }
    saw_migration |= incremental.rehash_in_flight();
  }
  EXPECT_TRUE(saw_migration);  // the scale above must exercise the scheme
  ASSERT_EQ(incremental.size(), legacy.size());
  incremental.for_each([&](Time k, const std::uint64_t& v) {
    const std::uint64_t* other = legacy.find(k);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(v, *other);
  });
}

TEST(DenseHashSet, InsertionOrderedIterationIndependentOfRehashMode) {
  // The scheduler's layout-sensitive choice points (acquire_slot's scan,
  // the balance ledger's donor pick) rely on DenseHashSet iterating in an
  // order that is a pure function of the operation sequence — the index
  // map's rehash mode must never show through.
  DenseHashSet<Time> incremental;
  DenseHashSet<Time> legacy;
  legacy.set_legacy_rehash(true);
  Rng rng(7);
  std::vector<Time> live;
  for (int step = 0; step < 20'000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const Time key = static_cast<Time>(rng.uniform(0, 4999));
      if (incremental.insert(key)) live.push_back(key);
      legacy.insert(key);
    } else {
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(live.size()) - 1));
      EXPECT_EQ(incremental.erase(live[at]), 1u);
      EXPECT_EQ(legacy.erase(live[at]), 1u);
      live[at] = live.back();
      live.pop_back();
    }
  }
  ASSERT_EQ(incremental.size(), legacy.size());
  ASSERT_FALSE(incremental.empty());
  EXPECT_EQ(incremental.back(), legacy.back());
  std::vector<Time> order_a;
  std::vector<Time> order_b;
  incremental.for_each([&](Time t) { order_a.push_back(t); });
  legacy.for_each([&](Time t) { order_b.push_back(t); });
  ASSERT_EQ(order_a, order_b);  // identical ORDER, not just content
}

TEST(DenseHashSet, SwapPopEraseKeepsMembershipExact) {
  DenseHashSet<JobId> set;
  std::unordered_set<std::uint64_t> reference;
  Rng rng(13);
  for (int step = 0; step < 10'000; ++step) {
    const std::uint64_t value = rng.uniform(0, 499);
    if (rng.chance(0.5)) {
      EXPECT_EQ(set.insert(JobId{value}), reference.insert(value).second);
    } else {
      EXPECT_EQ(set.erase(JobId{value}), reference.erase(value));
    }
    ASSERT_EQ(set.size(), reference.size());
  }
  set.for_each([&](const JobId& id) { EXPECT_TRUE(reference.contains(id.value)); });
}

TEST(FlatHashSet, BasicOperations) {
  FlatHashSet<JobId> set;
  EXPECT_TRUE(set.insert(JobId{1}));
  EXPECT_FALSE(set.insert(JobId{1}));
  EXPECT_TRUE(set.contains(JobId{1}));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.any().value, 1u);
  EXPECT_EQ(set.erase(JobId{1}), 1u);
  EXPECT_TRUE(set.empty());
}

TEST(FlatHashSet, ForEachUntilStopsEarly) {
  FlatHashSet<Time> set;
  for (Time t = 0; t < 100; ++t) set.insert(t);
  int visited = 0;
  const bool stopped = set.for_each_until([&](Time) { return ++visited == 5; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(visited, 5);
}

TEST(FlatHashSet, RandomizedAgainstStdUnorderedSet) {
  FlatHashSet<Time> set;
  std::unordered_set<Time> reference;
  Rng rng(11);
  for (int step = 0; step < 10'000; ++step) {
    const Time key = static_cast<Time>(rng.uniform(0, 499));
    if (rng.chance(0.5)) {
      EXPECT_EQ(set.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), reference.erase(key));
    }
  }
  EXPECT_EQ(set.size(), reference.size());
  std::set<Time> seen;
  set.for_each([&](Time t) { seen.insert(t); });
  EXPECT_EQ(seen.size(), reference.size());
  for (const Time t : seen) EXPECT_TRUE(reference.contains(t));
}

// ---- serialization round-trips (durability tier, DESIGN.md §9) ----

void write_time_int(durability::ByteSink& sink, const Time& key, const int& value) {
  sink.i64(key);
  sink.u64(static_cast<std::uint64_t>(value));
}
void read_time_int(durability::ByteSource& source, Time& key, int& value) {
  key = source.i64();
  value = static_cast<int>(source.u64());
}

std::vector<std::pair<Time, int>> iteration_order(const FlatHashMap<Time, int>& map) {
  std::vector<std::pair<Time, int>> order;
  map.for_each([&](Time key, const int& value) { order.emplace_back(key, value); });
  return order;
}

TEST(FlatHashMapSerialize, ExactLayoutRoundTripWithTombstones) {
  FlatHashMap<Time, int> map;
  Rng rng(7);
  for (Time t = 0; t < 500; ++t) map[t * 32] = static_cast<int>(t);
  for (Time t = 0; t < 500; t += 3) map.erase(t * 32);  // leave tombstones

  durability::ByteSink sink;
  map.serialize(sink, write_time_int);
  durability::ByteSource source(sink.bytes().data(), sink.size());
  FlatHashMap<Time, int> copy;
  copy.deserialize(source, read_time_int);
  EXPECT_TRUE(source.exhausted());

  EXPECT_EQ(copy.size(), map.size());
  // Bit-identical layout: iteration order — not just membership — matches.
  EXPECT_EQ(iteration_order(copy), iteration_order(map));

  // And the layouts stay in lockstep through further mutation (probe
  // sequences, growth triggers and tombstone budgets were all restored).
  for (int step = 0; step < 2'000; ++step) {
    const Time key = static_cast<Time>(rng.uniform(0, 799)) * 32;
    if (rng.chance(0.6)) {
      map[key] = step;
      copy[key] = step;
    } else {
      EXPECT_EQ(map.erase(key), copy.erase(key));
    }
  }
  EXPECT_EQ(iteration_order(copy), iteration_order(map));
}

TEST(FlatHashMapSerialize, MidMigrationRoundTripKeepsBothTables) {
  // Grow an incremental-mode map until a two-table migration is in flight,
  // then round-trip: the retiring table, cursor included, must survive so
  // the copy drains the migration exactly like the original.
  FlatHashMap<Time, int> map;
  Time t = 0;
  // Default growth doubles at 7/8 load; keep inserting until a serialize →
  // deserialize at this instant exposes a non-empty old table (checked via
  // behavioral lockstep below regardless).
  for (; t < 3'000; ++t) map[t * 8] = static_cast<int>(t);

  durability::ByteSink sink;
  map.serialize(sink, write_time_int);
  durability::ByteSource source(sink.bytes().data(), sink.size());
  FlatHashMap<Time, int> copy;
  copy.deserialize(source, read_time_int);

  EXPECT_EQ(iteration_order(copy), iteration_order(map));
  for (; t < 6'000; ++t) {
    map[t * 8] = static_cast<int>(t);
    copy[t * 8] = static_cast<int>(t);
  }
  EXPECT_EQ(iteration_order(copy), iteration_order(map));
}

TEST(FlatHashSetSerialize, RoundTripPreservesLayout) {
  FlatHashSet<JobId> set;
  for (std::uint64_t i = 0; i < 300; ++i) set.insert(JobId{i});
  for (std::uint64_t i = 0; i < 300; i += 5) set.erase(JobId{i});

  durability::ByteSink sink;
  set.serialize(sink, [](durability::ByteSink& s, const JobId& id) { s.u64(id.value); });
  durability::ByteSource source(sink.bytes().data(), sink.size());
  FlatHashSet<JobId> copy;
  copy.deserialize(source,
                   [](durability::ByteSource& s, JobId& id) { id.value = s.u64(); });

  EXPECT_EQ(copy.size(), set.size());
  std::vector<std::uint64_t> a, b;
  set.for_each([&](const JobId& id) { a.push_back(id.value); });
  copy.for_each([&](const JobId& id) { b.push_back(id.value); });
  EXPECT_EQ(a, b);
}

TEST(DenseHashSetSerialize, RoundTripPreservesIterationOrder) {
  // The dense vector's order is behavior (acquire_slot picks, ledger donor
  // picks); swap-pop erases reshuffle it, and the round-trip must keep the
  // reshuffled order exactly.
  DenseHashSet<Time> set;
  for (Time t = 0; t < 200; ++t) set.insert(t * 16);
  for (Time t = 0; t < 200; t += 7) set.erase(t * 16);  // swap-pop reshuffle

  durability::ByteSink sink;
  set.serialize(sink, [](durability::ByteSink& s, const Time& t) { s.i64(t); });
  durability::ByteSource source(sink.bytes().data(), sink.size());
  DenseHashSet<Time> copy;
  copy.deserialize(source, [](durability::ByteSource& s, Time& t) { t = s.i64(); });

  std::vector<Time> a, b;
  set.for_each([&](Time t) { a.push_back(t); });
  copy.for_each([&](Time t) { b.push_back(t); });
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(set.back(), copy.back());

  // Continued mutation agrees too (the rebuilt index maps keys correctly).
  set.erase(a.front());
  copy.erase(a.front());
  set.insert(99'999);
  copy.insert(99'999);
  a.clear();
  b.clear();
  set.for_each([&](Time t) { a.push_back(t); });
  copy.for_each([&](Time t) { b.push_back(t); });
  EXPECT_EQ(a, b);
}

TEST(FlatHashMapSerialize, CorruptCtrlByteIsRejected) {
  FlatHashMap<Time, int> map;
  for (Time t = 0; t < 32; ++t) map[t] = 1;
  durability::ByteSink sink;
  map.serialize(sink, write_time_int);
  // First table's ctrl bytes start right after the u64 capacity; smash one
  // to an out-of-range value.
  std::vector<std::byte> bytes(sink.bytes().begin(), sink.bytes().end());
  bytes[8] = std::byte{0xEE};
  durability::ByteSource source(bytes.data(), bytes.size());
  FlatHashMap<Time, int> copy;
  EXPECT_THROW(copy.deserialize(source, read_time_int), InternalError);
}

}  // namespace
}  // namespace reasched
