// Parameterized property sweeps: for every (scheduler, workload shape)
// combination the same invariants must hold — feasible schedule after every
// request, self-reported costs consistent with snapshot diffs, at most one
// migration per request for balancer-based schedulers.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/greedy_repair_scheduler.hpp"
#include "baseline/opt_rebuild_scheduler.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "sim/driver.hpp"
#include "workload/churn.hpp"
#include "workload/doctor_office.hpp"

namespace reasched {
namespace {

enum class Kind { kReservation, kNaiveAligned, kEdfRepair, kLatestFit, kOptRebuild };

struct Combo {
  Kind kind;
  unsigned machines;
  bool aligned_workload;
  std::uint64_t seed;
};

std::string combo_name(const testing::TestParamInfo<Combo>& info) {
  std::string name;
  switch (info.param.kind) {
    case Kind::kReservation: name = "reservation"; break;
    case Kind::kNaiveAligned: name = "naive"; break;
    case Kind::kEdfRepair: name = "edfrepair"; break;
    case Kind::kLatestFit: name = "latestfit"; break;
    case Kind::kOptRebuild: name = "optrebuild"; break;
  }
  name += "_m" + std::to_string(info.param.machines);
  name += info.param.aligned_workload ? "_aligned" : "_unaligned";
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

std::unique_ptr<IReallocScheduler> make_scheduler(const Combo& combo) {
  SchedulerOptions options;
  options.audit = true;
  options.overflow = OverflowPolicy::kBestEffort;
  switch (combo.kind) {
    case Kind::kReservation:
      return std::make_unique<ReallocatingScheduler>(combo.machines, options);
    case Kind::kNaiveAligned:
      return std::make_unique<ReallocatingScheduler>(
          combo.machines, [] { return std::make_unique<NaiveScheduler>(); },
          "aligned-naive");
    case Kind::kEdfRepair:
      return std::make_unique<ReallocatingScheduler>(
          combo.machines,
          [] {
            return std::make_unique<GreedyRepairScheduler>(
                GreedyRepairScheduler::Fit::kEarliest);
          },
          "aligned-edf-repair");
    case Kind::kLatestFit:
      return std::make_unique<ReallocatingScheduler>(
          combo.machines,
          [] {
            return std::make_unique<GreedyRepairScheduler>(
                GreedyRepairScheduler::Fit::kLatest);
          },
          "aligned-latest-fit");
    case Kind::kOptRebuild:
      return std::make_unique<OptRebuildScheduler>(combo.machines);
  }
  return nullptr;
}

class SchedulerProperty : public testing::TestWithParam<Combo> {};

TEST_P(SchedulerProperty, ChurnInvariants) {
  const Combo combo = GetParam();
  ChurnParams params;
  params.seed = combo.seed;
  params.requests = 1200;
  params.target_active = 96;
  params.machines = combo.machines;
  params.aligned = combo.aligned_workload;
  const auto trace = make_churn_trace(params);

  auto scheduler = make_scheduler(combo);
  SimOptions options;
  options.validate_every = 10;
  options.check_costs_every = 25;
  const auto report = replay_trace(*scheduler, trace, options);
  EXPECT_TRUE(report.clean()) << scheduler->name() << ": " << report.first_issue;
  // Balancer-based schedulers migrate at most one job per request.
  if (combo.kind != Kind::kOptRebuild) {
    EXPECT_LE(report.metrics.max_migrations(), 1u) << scheduler->name();
  }
  EXPECT_EQ(report.metrics.rejected(), 0u) << scheduler->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerProperty,
    testing::Values(
        Combo{Kind::kReservation, 1, true, 1}, Combo{Kind::kReservation, 1, false, 2},
        Combo{Kind::kReservation, 4, true, 3}, Combo{Kind::kReservation, 4, false, 4},
        Combo{Kind::kReservation, 7, false, 5}, Combo{Kind::kNaiveAligned, 1, true, 6},
        Combo{Kind::kNaiveAligned, 3, false, 7}, Combo{Kind::kEdfRepair, 1, true, 8},
        Combo{Kind::kEdfRepair, 2, false, 9}, Combo{Kind::kLatestFit, 2, true, 10},
        Combo{Kind::kOptRebuild, 1, true, 11}, Combo{Kind::kOptRebuild, 2, false, 12}),
    combo_name);

class DoctorOfficeProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DoctorOfficeProperty, BookingsStayFeasible) {
  DoctorOfficeParams params;
  params.seed = GetParam();
  params.days = 48;
  SchedulerOptions options;
  options.audit = true;
  options.overflow = OverflowPolicy::kBestEffort;
  ReallocatingScheduler scheduler(1, options);
  SimOptions sim;
  sim.validate_every = 5;
  const auto report = replay_trace(scheduler, make_doctor_office_trace(params), sim);
  EXPECT_TRUE(report.clean()) << report.first_issue;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoctorOfficeProperty, testing::Values(1, 2, 3, 4, 5));

// Gamma sweep: with generous slack the reservation scheduler must never
// degrade (no parked jobs); the guarantee's precondition is satisfied by
// construction.
class SlackSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SlackSweep, NoDegradationWhenUnderallocated) {
  const std::uint64_t gamma = GetParam();
  ChurnParams params;
  params.requests = 1000;
  params.target_active = 64;
  params.gamma = gamma;
  params.min_span = std::max<std::uint64_t>(64, gamma);
  params.max_span = 2048;
  const auto trace = make_churn_trace(params);
  SchedulerOptions options;
  options.audit = true;
  options.overflow = OverflowPolicy::kBestEffort;
  ReallocatingScheduler scheduler(1, options);
  const auto report = replay_trace(scheduler, trace);
  if (gamma >= 32) {
    // 8-underallocation of the aligned image is guaranteed for γ >= 32
    // (alignment costs 4x): Lemma 8 must hold throughout.
    EXPECT_EQ(report.metrics.degraded(), 0u) << "gamma=" << gamma;
  }
  EXPECT_EQ(report.metrics.rejected(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Gammas, SlackSweep, testing::Values(8, 16, 32, 64, 128));

}  // namespace
}  // namespace reasched
