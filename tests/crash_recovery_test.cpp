// Kill-at-random-point crash-recovery differentials (DESIGN.md §9).
//
// Each case forks a child that runs a churn workload against a
// DurableScheduler with a CrashPoint armed at a random countdown — the
// child dies mid-WAL-frame, mid-snapshot-write, just before a snapshot
// rename, or at the generation flip, via _exit(137) with no cleanup,
// exactly like SIGKILL landing mid-syscall. The parent then recovers from
// whatever the child left on disk and compares against an uninterrupted
// twin that served the same durable prefix [1, last_csn]:
//
//   * schedules byte-identical (machine + slot for every job),
//   * scalar state identical (n*, parked, active),
//   * the full invariant audit passes on the recovered instance,
//   * both keep serving the remaining trace suffix in lockstep.
//
// The full matrix (seeds × kill sites, >= 32 seeds) carries the "slow"
// ctest label; CI's PR gate runs the *Fast* subset (see CMakeLists.txt).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "durability/crashpoint.hpp"
#include "durability/durable_scheduler.hpp"
#include "durability/recovery.hpp"
#include "durability/wal.hpp"
#include "service/sharded_scheduler.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

using durability::CrashPoint;
using durability::DurabilityPolicy;
using durability::DurableScheduler;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/reasched-crash-XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    std::system(cmd.c_str());  // NOLINT: test scratch cleanup
  }
};

std::vector<Request> churn_trace(std::uint64_t seed) {
  ChurnParams params;
  params.seed = seed;
  params.requests = 3'000;
  params.target_active = 512;
  params.min_span = 64;
  params.max_span = 4096;
  params.placement = WindowPlacement::kNestedHotspots;
  return make_churn_trace(params);
}

SchedulerOptions base_options() {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.rebuild_batch = 32;
  return options;
}

DurabilityPolicy crash_policy(const std::string& dir) {
  DurabilityPolicy policy;
  policy.dir = dir;
  policy.frame_bytes = 512;   // many frames → many "wal.frame" hits
  policy.sync_every = 1;      // every frame durable: crash loses <1 frame
  policy.snapshot_every = 400;
  policy.keep_snapshots = 3;
  return policy;
}

void serve_tolerant(IReallocScheduler& s, const Request& r) {
  if (r.kind == RequestKind::kInsert) {
    try {
      s.insert(r.job, r.window);
    } catch (const InfeasibleError&) {
      // Best-effort churn may still reject; the WAL records it either way.
    }
  } else {
    s.erase(r.job);
  }
}

void expect_identical_schedules(const Schedule& sa, const Schedule& sb,
                                const std::string& where) {
  ASSERT_EQ(sa.size(), sb.size()) << where;
  for (const auto& [id, placement] : sa.assignments()) {
    const auto other = sb.find(id);
    ASSERT_TRUE(other.has_value()) << where << ": job " << id.value;
    EXPECT_EQ(placement.machine, other->machine) << where << ": job " << id.value;
    EXPECT_EQ(placement.slot, other->slot) << where << ": job " << id.value;
  }
}

/// Forks a child that serves `trace` with `site` armed at `countdown`.
/// Returns true when the child actually died at the crashpoint (it may
/// finish the whole trace first when the countdown exceeds the number of
/// hits — the matrix spans countdowns on purpose, so both happen).
bool run_child_until_crash(const std::string& dir, const std::vector<Request>& trace,
                           const char* site, std::uint64_t countdown) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child. No gtest machinery in here: any throw or assert-failure must
    // surface as a non-137 exit so the parent flags it.
    try {
      CrashPoint::arm(site, countdown);
      DurableScheduler durable(crash_policy(dir), base_options());
      // Resume from the recovered CSN: requests [1, csn] are already in the
      // durable state (a fresh dir recovers to 0 and serves everything).
      for (std::uint64_t i = durable.csn(); i < trace.size(); ++i) {
        serve_tolerant(durable, trace[i]);
      }
      durable.sync();
    } catch (const std::exception& error) {
      std::fprintf(stderr, "crash child: %s\n", error.what());
      ::_exit(1);
    } catch (...) {
      ::_exit(1);
    }
    ::_exit(0);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  const int code = WEXITSTATUS(status);
  EXPECT_TRUE(code == 0 || code == CrashPoint::kExitStatus)
      << "child failed (exit " << code << ") rather than crashing on cue";
  return code == CrashPoint::kExitStatus;
}

/// The differential: recover from `dir`, rebuild a twin from the trace
/// prefix [1, last_csn] through a plain scheduler, compare exhaustively,
/// then run BOTH through the rest of the trace and compare again.
void verify_recovery(const std::string& dir, const std::vector<Request>& trace,
                     const std::string& where) {
  DurableScheduler recovered(crash_policy(dir), base_options());
  const std::uint64_t cut = recovered.csn();
  ASSERT_LE(cut, trace.size()) << where;

  ReservationScheduler twin(base_options());
  for (std::uint64_t i = 0; i < cut; ++i) serve_tolerant(twin, trace[i]);

  expect_identical_schedules(twin.snapshot(), recovered.snapshot(), where);
  ASSERT_NE(recovered.reservation(), nullptr) << where;
  EXPECT_EQ(twin.n_star(), recovered.reservation()->n_star()) << where;
  EXPECT_EQ(twin.parked_jobs(), recovered.reservation()->parked_jobs()) << where;
  EXPECT_EQ(twin.active_jobs(), recovered.active_jobs()) << where;
  recovered.reservation()->audit();

  for (std::uint64_t i = cut; i < trace.size(); ++i) {
    serve_tolerant(twin, trace[i]);
    serve_tolerant(recovered, trace[i]);
  }
  expect_identical_schedules(twin.snapshot(), recovered.snapshot(),
                             where + " (post-crash suffix)");
  recovered.reservation()->audit();
}

constexpr const char* kSites[] = {"wal.frame", "snapshot.mid", "snapshot.rename",
                                  "flip"};

/// One matrix cell: crash seed `seed` at `site`, recover, differential.
void kill_and_recover(std::uint64_t seed, const char* site) {
  TempDir dir;
  const std::vector<Request> trace = churn_trace(seed);
  // Countdown sampled per (seed, site): early, mid, and late kills all
  // occur across the matrix. "flip"/snapshot sites are hit tens of times
  // per run, "wal.frame" thousands of times.
  Rng rng(seed * 1000003 + std::hash<std::string_view>{}(site));
  const bool frequent = std::string_view(site) == "wal.frame";
  const std::uint64_t countdown = rng.uniform(1, frequent ? 2048 : 6);

  const bool crashed = run_child_until_crash(dir.path, trace, site, countdown);
  const std::string where = std::string(site) + " seed=" + std::to_string(seed) +
                            " countdown=" + std::to_string(countdown) +
                            (crashed ? "" : " (ran to completion)");
  verify_recovery(dir.path, trace, where);
}

// ---------------------------------------------------------- fast PR gate

// A 2-seed slice of the matrix per kill site — fast enough for the PR
// gate, still exercising every crashpoint and the full differential.
TEST(CrashRecoveryFast, WalFrame) {
  for (std::uint64_t seed : {1u, 2u}) kill_and_recover(seed, "wal.frame");
}
TEST(CrashRecoveryFast, SnapshotMid) {
  for (std::uint64_t seed : {1u, 2u}) kill_and_recover(seed, "snapshot.mid");
}
TEST(CrashRecoveryFast, SnapshotRename) {
  for (std::uint64_t seed : {1u, 2u}) kill_and_recover(seed, "snapshot.rename");
}
TEST(CrashRecoveryFast, GenerationFlip) {
  for (std::uint64_t seed : {1u, 2u}) kill_and_recover(seed, "flip");
}

// Crash during *recovery's own* compensating work: kill a child that is
// itself recovering from a crashed directory, then recover again.
TEST(CrashRecoveryFast, CrashDuringRecovery) {
  TempDir dir;
  const std::vector<Request> trace = churn_trace(99);
  ASSERT_TRUE(run_child_until_crash(dir.path, trace, "wal.frame", 40));
  // Second child: recovers the torn dir, keeps serving, dies again later.
  ASSERT_TRUE(run_child_until_crash(dir.path, trace, "wal.frame", 60));
  verify_recovery(dir.path, trace, "double crash");
}

// ------------------------------------------------------- full kill matrix

// >= 32 seeds x 4 kill sites, randomized countdowns. Slow lane only.
TEST(CrashRecoveryMatrix, KillAtRandomPoints) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    for (const char* site : kSites) {
      kill_and_recover(seed, site);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Sharded service tier: kill mid-frame while per-shard logs are being
// written from batched applies; construction-is-recovery must converge to
// the gap-free CSN prefix and pass the balance audit.
TEST(CrashRecoveryMatrix, ShardedKillMidBatch) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    TempDir dir;
    ChurnParams params;
    params.seed = seed;
    params.requests = 2'000;
    params.target_active = 512;
    params.machines = 8;
    params.min_span = 64;
    params.max_span = 2048;
    const std::vector<Request> trace = make_churn_trace(params);

    const SchedulerOptions machine_options = base_options();
    const auto factory = [&] {
      return std::make_unique<ReservationScheduler>(machine_options);
    };
    ShardedScheduler::Options options;
    options.shards = 4;
    options.wal = DurabilityPolicy{};
    options.wal->dir = dir.path;
    options.wal->frame_bytes = 256;
    options.wal->sync_every = 1;

    const pid_t pid = ::fork();
    if (pid == 0) {
      try {
        CrashPoint::arm("wal.frame", 20 + seed * 7);
        ShardedScheduler sharded(8, factory, options);
        for (std::size_t i = 0; i < trace.size(); i += 64) {
          const std::size_t n = std::min<std::size_t>(64, trace.size() - i);
          sharded.apply({trace.data() + i, n});
        }
        sharded.sync_wal();
      } catch (...) {
        ::_exit(1);
      }
      ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), CrashPoint::kExitStatus)
        << "seed " << seed << ": child exit " << WEXITSTATUS(status);

    // Construction is recovery. The recovered cut is the longest gap-free
    // CSN prefix; requests at CSN > cut were lost with the crash, exactly
    // as if they had never been acknowledged.
    ShardedScheduler recovered(8, factory, options);
    const std::uint64_t cut = recovered.csn();
    ASSERT_GT(cut, 0u) << "seed " << seed;
    recovered.audit_balance();

    // Twin: drive the surviving prefix through an *unsharded* scheduler of
    // the same machine count — the sharded tier's contract is that
    // sharding (and now crash recovery) never changes the schedule.
    ReallocatingScheduler twin(8, machine_options);
    std::unordered_map<JobId, Window> live;
    std::uint64_t csn = 0;
    for (const Request& r : trace) {
      // Mirror the service tier's precondition filter: requests it
      // rejected before logging consumed no CSN.
      if (r.kind == RequestKind::kInsert) {
        if (live.contains(r.job)) continue;
        if (++csn > cut) break;
        try {
          twin.insert(r.job, r.window);
          live.emplace(r.job, r.window);
        } catch (const InfeasibleError&) {
        }
      } else {
        if (!live.contains(r.job)) continue;
        if (++csn > cut) break;
        twin.erase(r.job);
        live.erase(r.job);
      }
    }
    expect_identical_schedules(twin.snapshot(), recovered.snapshot(),
                               "sharded seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace reasched
