#include <gtest/gtest.h>

#include "core/alignment.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

TEST(AlignedShrink, AlreadyAlignedIsIdentity) {
  const Window w{64, 128};
  EXPECT_EQ(aligned_shrink(w), w);
}

TEST(AlignedShrink, SpanOneIsIdentity) {
  const Window w{37, 38};
  EXPECT_EQ(aligned_shrink(w), w);
}

TEST(AlignedShrink, ShrinksToLargestAlignedSubwindow) {
  // [1, 9): span 8; the largest aligned sub-window is [4, 8) (span 4).
  const Window result = aligned_shrink(Window{1, 9});
  EXPECT_TRUE(result.aligned());
  EXPECT_TRUE(Window(1, 9).contains(result));
  EXPECT_EQ(result, Window(4, 8));
}

TEST(AlignedShrink, KeepsFullPow2WhenItFits) {
  // [8, 17): span 9; an aligned span-8 window [8, 16) fits.
  EXPECT_EQ(aligned_shrink(Window{8, 17}), Window(8, 16));
}

TEST(AlignedShrink, QuarterSpanLowerBound) {
  // Paper §5: |ALIGNED(W)| >= |W|/4 (strictly more than |W|/4 in this
  // implementation, which always keeps at least 2^{floor(lg|W|)-1}).
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const Time start = static_cast<Time>(rng.uniform(0, 1u << 20));
    const Time span = static_cast<Time>(rng.uniform(1, 1u << 12));
    const Window w{start, start + span};
    const Window a = aligned_shrink(w);
    EXPECT_TRUE(a.aligned()) << w;
    EXPECT_TRUE(w.contains(a)) << w;
    EXPECT_GT(a.span() * 4, w.span()) << w << " -> " << a;
  }
}

TEST(AlignedShrink, NegativeTimelineWorks) {
  const Window w{-100, -60};  // span 40
  const Window a = aligned_shrink(w);
  EXPECT_TRUE(a.aligned());
  EXPECT_TRUE(w.contains(a));
  EXPECT_GT(a.span() * 4, w.span());
}

TEST(AlignedShrink, RejectsEmptyWindow) {
  EXPECT_THROW(aligned_shrink(Window{3, 3}), ContractViolation);
}

TEST(AlignedShrink, DeterministicLeftmost) {
  // [0, 12): both [0,8) and (if it existed) another span-8 block could be
  // candidates; the implementation picks the leftmost: [0, 8).
  EXPECT_EQ(aligned_shrink(Window{0, 12}), Window(0, 8));
  // [3, 15): span-8 block [8,16) does not fit (ends at 16 > 15); falls back
  // to span 4: leftmost aligned span-4 inside is [4, 8).
  EXPECT_EQ(aligned_shrink(Window{3, 15}), Window(4, 8));
}

TEST(AllAligned, DetectsMisalignment) {
  std::vector<JobSpec> jobs = {
      {JobId{1}, Window{0, 8}},
      {JobId{2}, Window{8, 16}},
  };
  EXPECT_TRUE(all_aligned(jobs));
  jobs.push_back({JobId{3}, Window{1, 9}});
  EXPECT_FALSE(all_aligned(jobs));
}

}  // namespace
}  // namespace reasched
