// Ingestion differential suite: requests pushed from 1/2/4/8 concurrent
// producer threads through the lock-free front end
// (ingest/ingest_service.hpp) must produce schedules, per-request stats,
// and audit results *byte-identical* to the same requests applied as
// sequential batches by a single caller — the property that keeps the
// SPAA'13 cost model meaningful under concurrent load (ISSUE 8 /
// DESIGN.md §11). External sequencing assigns each request its trace index
// as ticket, so whatever interleaving the producers and the ring produce,
// the consumer's reorder stage must reconstruct exactly the trace order;
// any lost, duplicated, or mis-ordered request shows up as a stats or
// snapshot mismatch. Covers the clean path (reservation pipeline, no
// rejections), the rejection path (naive scheduler, infeasible inserts —
// ingest batching must reproduce the same rejected set regardless of where
// its adaptive batch boundaries fall), work stealing on vs off, and
// internal ticketing with one producer (where claim order IS trace order).
//
// ctest label: slow (CMakeLists.txt).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/multi_machine.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "ingest/ingest_service.hpp"
#include "service/sharded_scheduler.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

ShardedScheduler::Factory reservation_factory() {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  return [options] { return std::make_unique<ReservationScheduler>(options); };
}

ShardedScheduler::Factory naive_factory() {
  return [] { return std::make_unique<NaiveScheduler>(); };
}

std::vector<Request> churn_trace(std::uint64_t seed, unsigned machines,
                                 std::size_t requests) {
  ChurnParams params;
  params.seed = seed;
  params.target_active = 256;
  params.requests = requests;
  params.machines = machines;
  params.min_span = 64;
  params.max_span = 2048;
  params.placement = WindowPlacement::kNestedHotspots;
  return make_churn_trace(params);
}

void expect_same_stats(const RequestStats& a, const RequestStats& b, std::size_t at) {
  EXPECT_EQ(a.reallocations, b.reallocations) << "request " << at;
  EXPECT_EQ(a.migrations, b.migrations) << "request " << at;
  EXPECT_EQ(a.levels_touched, b.levels_touched) << "request " << at;
  EXPECT_EQ(a.degraded, b.degraded) << "request " << at;
  EXPECT_EQ(a.rebuilt, b.rebuilt) << "request " << at;
}

void expect_same_schedule(const Schedule& want, const Schedule& got) {
  ASSERT_EQ(want.machines(), got.machines());
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [job, placement] : want.assignments()) {
    const auto other = got.find(job);
    ASSERT_TRUE(other.has_value()) << "job " << job.value << " missing";
    EXPECT_EQ(other->machine, placement.machine) << "job " << job.value;
    EXPECT_EQ(other->slot, placement.slot) << "job " << job.value;
  }
}

/// Single-caller reference: the whole trace through apply() in fixed
/// sequential batches. Returns per-request stats; expects no rejections.
std::vector<RequestStats> batched_reference(ShardedScheduler& scheduler,
                                            const std::vector<Request>& trace,
                                            std::size_t batch_size) {
  std::vector<RequestStats> stats;
  stats.reserve(trace.size());
  for (std::size_t first = 0; first < trace.size(); first += batch_size) {
    const std::size_t count = std::min(batch_size, trace.size() - first);
    const BatchResult result =
        scheduler.apply(std::span<const Request>(trace).subspan(first, count));
    EXPECT_TRUE(result.all_served());
    stats.insert(stats.end(), result.stats.begin(), result.stats.end());
  }
  return stats;
}

/// Pushes `trace` through an IngestService from `producers` concurrent
/// threads in round-robin partition, with seeded-random yields so every
/// seed exercises a different arrival interleaving. External sequencing:
/// ticket = trace index. Returns after drain + stop (results readable).
void concurrent_ingest(ingest::IngestService& service,
                       const std::vector<Request>& trace, std::size_t producers,
                       std::uint64_t seed) {
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(seed ^ (0xbf58476d1ce4e5b9ULL * (p + 1)));
      for (std::size_t i = p; i < trace.size(); i += producers) {
        service.push_sequenced(i, trace[i]);
        if (rng.chance(0.03)) std::this_thread::yield();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  service.drain();
  service.stop();
}

ingest::IngestOptions differential_options() {
  ingest::IngestOptions options;
  options.external_sequencing = true;
  options.record_stats = true;
  options.lanes = 4;
  options.lane_capacity = 256;  // small: wrap-around + backpressure in play
  options.max_batch = 128;
  options.batch_deadline_us = 100;
  return options;
}

// The acceptance matrix: 1/2/4/8 producers against a single-caller batched
// reference, same trace, same scheduler configuration.
TEST(IngestDifferential, MatchesSequentialBatchesAtEveryProducerCount) {
  const auto trace = churn_trace(31, 8, 3000);

  ShardedScheduler::Options scheduler_options;
  scheduler_options.shards = 4;
  ShardedScheduler reference(8, reservation_factory(), scheduler_options);
  const auto want = batched_reference(reference, trace, 64);
  reference.audit_balance();

  for (const std::size_t producers : {1u, 2u, 4u, 8u}) {
    ShardedScheduler sharded(8, reservation_factory(), scheduler_options);
    ingest::IngestService service(sharded, differential_options());
    concurrent_ingest(service, trace, producers, 1000 + producers);

    const auto& got = service.applied_stats();
    ASSERT_EQ(got.size(), want.size()) << producers << " producers";
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_same_stats(want[i], got[i], i);
    }
    EXPECT_TRUE(service.rejected_tickets().empty());
    expect_same_schedule(reference.snapshot(), sharded.snapshot());
    EXPECT_EQ(sharded.active_jobs(), reference.active_jobs());
    sharded.audit_balance();
    EXPECT_GT(sharded.audit_balance_incremental(), 0u);

    const ingest::IngestStats stats = service.stats();
    EXPECT_EQ(stats.admitted, trace.size());
    EXPECT_EQ(stats.applied, trace.size());
    EXPECT_EQ(stats.scheduler_rejected, 0u);
    EXPECT_EQ(stats.rejected_depth + stats.rejected_latency, 0u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_LE(stats.max_batch, 128u);
  }
}

// Work stealing must be invisible in results: same trace, same shard
// count, stealing on vs off, byte-identical stats and schedules (the
// pinned path is the escape hatch AND the determinism witness).
TEST(IngestDifferential, WorkStealingIsInvisibleInResults) {
  const auto trace = churn_trace(47, 8, 2500);

  ShardedScheduler::Options pinned_options;
  pinned_options.shards = 4;
  pinned_options.work_stealing = false;
  ShardedScheduler pinned(8, reservation_factory(), pinned_options);
  const auto want = batched_reference(pinned, trace, 64);
  EXPECT_EQ(pinned.steal_count(), 0u);

  ShardedScheduler::Options stealing_options;
  stealing_options.shards = 4;
  stealing_options.work_stealing = true;
  ShardedScheduler stealing(8, reservation_factory(), stealing_options);
  const auto got = batched_reference(stealing, trace, 64);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_same_stats(want[i], got[i], i);
  }
  expect_same_schedule(pinned.snapshot(), stealing.snapshot());
  pinned.audit_balance();
  stealing.audit_balance();

  // And through the full ingest front end, concurrently.
  ShardedScheduler stealing_ingest(8, reservation_factory(), stealing_options);
  ingest::IngestService service(stealing_ingest, differential_options());
  concurrent_ingest(service, trace, 4, 77);
  ASSERT_EQ(service.applied_stats().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_same_stats(want[i], service.applied_stats()[i], i);
  }
  expect_same_schedule(pinned.snapshot(), stealing_ingest.snapshot());
  stealing_ingest.audit_balance();
}

// Internal ticketing with a single producer: claim order is push order is
// trace order, so results must match the external-sequencing run exactly.
TEST(IngestDifferential, InternalTicketsSingleProducerMatchesReference) {
  const auto trace = churn_trace(59, 4, 1500);

  ShardedScheduler::Options scheduler_options;
  scheduler_options.shards = 2;
  ShardedScheduler reference(4, reservation_factory(), scheduler_options);
  const auto want = batched_reference(reference, trace, 64);

  ShardedScheduler sharded(4, reservation_factory(), scheduler_options);
  ingest::IngestOptions options = differential_options();
  options.external_sequencing = false;
  ingest::IngestService service(sharded, options);
  for (const Request& request : trace) {
    ASSERT_EQ(service.push(request), ingest::Admit::kAdmitted);
  }
  service.drain();
  service.stop();

  ASSERT_EQ(service.applied_stats().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_same_stats(want[i], service.applied_stats()[i], i);
  }
  expect_same_schedule(reference.snapshot(), sharded.snapshot());
}

// Rejection path: infeasible inserts (naive scheduler, overfull window)
// must be rejected with exact per-ticket attribution, and the rejected set
// must not depend on where the adaptive batcher's boundaries fall — the
// same jobs are rejected whether the trace arrives as one batch or as
// whatever splits 4 concurrent producers induce.
TEST(IngestDifferential, SchedulerRejectionsAreTicketExact) {
  // Window [0,4) on one machine offers 4 slots; inserts 5..8 are
  // infeasible no matter how the batches split.
  std::vector<Request> trace;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    trace.push_back(Request::insert(JobId{id}, 0, 4));
  }

  ShardedScheduler reference(1, naive_factory());
  const BatchResult want = reference.apply(trace);
  ASSERT_EQ(want.rejected.size(), 4u);

  ShardedScheduler sharded(1, naive_factory());
  ingest::IngestOptions options = differential_options();
  options.max_batch = 3;  // force several batch boundaries inside the trace
  ingest::IngestService service(sharded, options);
  concurrent_ingest(service, trace, 4, 13);

  ASSERT_EQ(service.applied_stats().size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    expect_same_stats(want.stats[i], service.applied_stats()[i], i);
  }
  std::vector<std::uint64_t> want_rejected(want.rejected.begin(), want.rejected.end());
  EXPECT_EQ(service.rejected_tickets(), want_rejected);
  EXPECT_EQ(service.stats().scheduler_rejected, 4u);
  expect_same_schedule(reference.snapshot(), sharded.snapshot());
}

}  // namespace
}  // namespace reasched
