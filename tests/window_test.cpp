#include <gtest/gtest.h>

#include <unordered_set>

#include "base/window.hpp"
#include "core/window_key.hpp"

namespace reasched {
namespace {

TEST(Window, SpanCountsSlots) {
  const Window w{3, 7};
  EXPECT_EQ(w.span(), 4);
  EXPECT_TRUE(w.valid());
  EXPECT_TRUE(w.contains(3));
  EXPECT_TRUE(w.contains(6));
  EXPECT_FALSE(w.contains(7));
  EXPECT_FALSE(w.contains(2));
}

TEST(Window, EmptyWindowInvalid) {
  EXPECT_FALSE(Window(5, 5).valid());
  EXPECT_FALSE(Window(5, 4).valid());
}

TEST(Window, ContainmentAndOverlap) {
  const Window outer{0, 16};
  const Window inner{4, 8};
  const Window disjoint{16, 20};
  const Window straddle{12, 20};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_FALSE(outer.overlaps(disjoint));
  EXPECT_TRUE(outer.overlaps(straddle));
}

TEST(Window, AlignedPredicate) {
  EXPECT_TRUE(Window(0, 8).aligned());
  EXPECT_TRUE(Window(8, 16).aligned());
  EXPECT_TRUE(Window(5, 6).aligned());   // span 1, any start
  EXPECT_FALSE(Window(4, 12).aligned()); // span 8 but start 4
  EXPECT_FALSE(Window(0, 6).aligned());  // span 6 not a power of two
  EXPECT_TRUE(Window(-8, 0).aligned());  // negative aligned start
  EXPECT_FALSE(Window(-4, 4).aligned());
}

TEST(Window, AlignedWindowsAreLaminar) {
  // Two aligned windows are equal, disjoint, or nested (paper §2).
  const std::vector<Window> aligned = {
      {0, 32}, {0, 16}, {16, 32}, {0, 8}, {8, 16}, {24, 32}, {28, 30},
  };
  for (const auto& a : aligned) {
    for (const auto& b : aligned) {
      const bool ok = !a.overlaps(b) || a.contains(b) || b.contains(a);
      EXPECT_TRUE(ok) << a << " vs " << b;
    }
  }
}

TEST(Window, HashDistinguishes) {
  std::unordered_set<Window> set;
  set.insert(Window{0, 8});
  set.insert(Window{0, 16});
  set.insert(Window{8, 16});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(Window{0, 8}));
}

TEST(Request, FactoryValidation) {
  EXPECT_NO_THROW(Request::insert(JobId{1}, 0, 4));
  EXPECT_THROW(Request::insert(JobId{1}, 4, 4), ContractViolation);
  const Request erase = Request::erase(JobId{9});
  EXPECT_EQ(erase.kind, RequestKind::kDelete);
  EXPECT_EQ(erase.job, JobId{9});
}

TEST(WindowKey, RoundTrip) {
  const Window w{32, 64};
  const WindowKey key(w);
  EXPECT_EQ(key.span(), 32u);
  EXPECT_EQ(key.window(), w);
}

TEST(WindowKey, RejectsUnaligned) {
  EXPECT_THROW(WindowKey(Window{1, 9}), ContractViolation);
}

TEST(WindowKey, HashAndEquality) {
  std::unordered_set<WindowKey> set;
  set.insert(WindowKey(Window{0, 32}));
  set.insert(WindowKey(Window{32, 64}));
  set.insert(WindowKey(Window{0, 64}));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(WindowKey(Window{0, 32})));
}

TEST(RequestStats, Accumulate) {
  RequestStats a;
  a.reallocations = 2;
  a.migrations = 1;
  RequestStats b;
  b.reallocations = 3;
  b.rebuilt = true;
  b.degraded = 1;
  a += b;
  EXPECT_EQ(a.reallocations, 5u);
  EXPECT_EQ(a.migrations, 1u);
  EXPECT_EQ(a.degraded, 1u);
  EXPECT_TRUE(a.rebuilt);
}

}  // namespace
}  // namespace reasched
