#include <gtest/gtest.h>

#include "feasibility/edf.hpp"
#include "feasibility/hall.hpp"
#include "feasibility/matching.hpp"
#include "feasibility/underallocation.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

std::vector<JobSpec> staircase(std::uint64_t n) {
  // Jobs [j, j+2): feasible on one machine with zero slack.
  std::vector<JobSpec> jobs;
  for (std::uint64_t j = 0; j < n; ++j) {
    jobs.push_back({JobId{j + 1}, Window{static_cast<Time>(j), static_cast<Time>(j + 2)}});
  }
  return jobs;
}

TEST(Edf, EmptyIsFeasible) { EXPECT_TRUE(edf_feasible({}, 1)); }

TEST(Edf, TightStaircaseFeasible) {
  const auto jobs = staircase(50);
  EXPECT_TRUE(edf_feasible(jobs, 1));
}

TEST(Edf, OverloadedSlotInfeasible) {
  std::vector<JobSpec> jobs = {
      {JobId{1}, Window{0, 1}},
      {JobId{2}, Window{0, 1}},
  };
  EXPECT_FALSE(edf_feasible(jobs, 1));
  EXPECT_TRUE(edf_feasible(jobs, 2));  // two machines fix it
}

TEST(Edf, PigeonholeInfeasible) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back({JobId{(unsigned)i + 1}, Window{0, 4}});
  EXPECT_FALSE(edf_feasible(jobs, 1));
  EXPECT_TRUE(edf_feasible(jobs, 2));
}

TEST(Edf, ScheduleIsValid) {
  const auto jobs = staircase(20);
  const auto schedule = edf_schedule(jobs, 1);
  ASSERT_TRUE(schedule.has_value());
  ASSERT_EQ(schedule->size(), jobs.size());
  std::set<Time> used;
  for (const auto& [id, placement] : *schedule) {
    const auto& spec = jobs[id.value - 1];
    EXPECT_TRUE(spec.window.contains(placement.slot));
    EXPECT_TRUE(used.insert(placement.slot).second) << "slot reuse";
  }
}

TEST(Edf, RespectsMachineCount) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back({JobId{(unsigned)i + 1}, Window{0, 4}});
  const auto schedule = edf_schedule(jobs, 2);
  ASSERT_TRUE(schedule.has_value());
  std::set<std::pair<MachineId, Time>> used;
  for (const auto& [id, placement] : *schedule) {
    EXPECT_LT(placement.machine, 2u);
    EXPECT_TRUE(used.insert({placement.machine, placement.slot}).second);
  }
}

TEST(Edf, GapsAreSkipped) {
  std::vector<JobSpec> jobs = {
      {JobId{1}, Window{0, 2}},
      {JobId{2}, Window{1'000'000, 1'000'002}},
  };
  EXPECT_TRUE(edf_feasible(jobs, 1));
}

TEST(Hall, AgreesWithEdfOnRandomInstances) {
  Rng rng(123);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::vector<JobSpec> jobs;
    const auto n = rng.uniform(1, 24);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Time start = static_cast<Time>(rng.uniform(0, 20));
      const Time span = static_cast<Time>(rng.uniform(1, 6));
      jobs.push_back({JobId{i + 1}, Window{start, start + span}});
    }
    const unsigned machines = static_cast<unsigned>(rng.uniform(1, 3));
    EXPECT_EQ(edf_feasible(jobs, machines), hall_feasible(jobs, machines))
        << "instance " << iteration;
  }
}

TEST(Hall, WitnessIntervalIsActuallyOverloaded) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back({JobId{(unsigned)i + 1}, Window{2, 6}});
  const auto witness = hall_violation(jobs, 1);
  ASSERT_TRUE(witness.has_value());
  EXPECT_GT(witness->jobs, witness->slots);
  EXPECT_LE(witness->interval.start, 2);
  EXPECT_GE(witness->interval.end, 6);
}

TEST(Matching, AgreesWithEdfOnRandomInstances) {
  Rng rng(321);
  for (int iteration = 0; iteration < 100; ++iteration) {
    std::vector<JobSpec> jobs;
    const auto n = rng.uniform(1, 16);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Time start = static_cast<Time>(rng.uniform(0, 12));
      const Time span = static_cast<Time>(rng.uniform(1, 5));
      jobs.push_back({JobId{i + 1}, Window{start, start + span}});
    }
    const unsigned machines = static_cast<unsigned>(rng.uniform(1, 2));
    const auto result = matching_feasible(jobs, machines);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, edf_feasible(jobs, machines)) << "instance " << iteration;
  }
}

TEST(Matching, BudgetRefusal) {
  std::vector<JobSpec> jobs = {{JobId{1}, Window{0, 1 << 20}}};
  EXPECT_EQ(matching_feasible(jobs, 1, /*budget=*/1024), std::nullopt);
}

TEST(Matching, HopcroftKarpPerfectMatching) {
  BipartiteMatcher matcher(3, 3);
  matcher.add_edge(0, 0);
  matcher.add_edge(0, 1);
  matcher.add_edge(1, 1);
  matcher.add_edge(2, 1);
  matcher.add_edge(2, 2);
  EXPECT_EQ(matcher.max_matching(), 3u);
}

TEST(Matching, HopcroftKarpDeficientGraph) {
  BipartiteMatcher matcher(3, 2);
  matcher.add_edge(0, 0);
  matcher.add_edge(1, 0);
  matcher.add_edge(2, 1);
  EXPECT_EQ(matcher.max_matching(), 2u);
}

TEST(Underallocation, DilationShrinksWindows) {
  const std::vector<JobSpec> jobs = {{JobId{1}, Window{0, 32}}};
  const auto cells = dilate_to_grid(jobs, 8);
  ASSERT_TRUE(cells.has_value());
  EXPECT_EQ((*cells)[0].window, Window(0, 4));  // 32/8 = 4 grid cells
}

TEST(Underallocation, WindowTooSmallForGamma) {
  const std::vector<JobSpec> jobs = {{JobId{1}, Window{0, 4}}};
  EXPECT_FALSE(gamma_underallocated(jobs, 1, 8));
}

TEST(Underallocation, DensityBoundRespected) {
  // 4 jobs of window [0, 32) with γ=8: exactly 32/8 = 4 dilated jobs fit.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back({JobId{(unsigned)i + 1}, Window{0, 32}});
  EXPECT_TRUE(gamma_underallocated(jobs, 1, 8));
  jobs.push_back({JobId{5}, Window{0, 32}});
  EXPECT_FALSE(gamma_underallocated(jobs, 1, 8));
}

TEST(Underallocation, GammaOneEqualsFeasibility) {
  const auto jobs = staircase(10);
  EXPECT_TRUE(gamma_underallocated(jobs, 1, 1));
}

TEST(Underallocation, MachinesMultiplyCapacity) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back({JobId{(unsigned)i + 1}, Window{0, 32}});
  EXPECT_FALSE(gamma_underallocated(jobs, 1, 8));
  EXPECT_TRUE(gamma_underallocated(jobs, 2, 8));
}

}  // namespace
}  // namespace reasched
