#include <gtest/gtest.h>

#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

SchedulerOptions audited() {
  SchedulerOptions options;
  options.audit = true;
  return options;
}

TEST(ReservationScheduler, SingleLevel0Job) {
  ReservationScheduler s(audited());
  const auto stats = s.insert(JobId{1}, Window{0, 8});
  EXPECT_EQ(stats.reallocations, 0u);
  const auto p = s.snapshot().find(JobId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(Window(0, 8).contains(p->slot));
}

TEST(ReservationScheduler, SingleLevel1Job) {
  ReservationScheduler s(audited());
  const auto stats = s.insert(JobId{1}, Window{0, 64});
  EXPECT_EQ(stats.reallocations, 0u);
  const auto p = s.snapshot().find(JobId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(Window(0, 64).contains(p->slot));
}

TEST(ReservationScheduler, SingleLevel2Job) {
  ReservationScheduler s(audited());
  const auto stats = s.insert(JobId{1}, Window{0, 1024});
  EXPECT_EQ(stats.reallocations, 0u);
  ASSERT_TRUE(s.snapshot().find(JobId{1}).has_value());
}

TEST(ReservationScheduler, RequiresAlignedWindows) {
  ReservationScheduler s;
  EXPECT_THROW(s.insert(JobId{1}, Window{1, 9}), ContractViolation);
  EXPECT_THROW(s.insert(JobId{1}, Window{0, 6}), ContractViolation);
}

TEST(ReservationScheduler, RejectsDuplicateIds) {
  ReservationScheduler s;
  s.insert(JobId{1}, Window{0, 8});
  EXPECT_THROW(s.insert(JobId{1}, Window{0, 8}), ContractViolation);
}

TEST(ReservationScheduler, EraseRejectsUnknown) {
  ReservationScheduler s;
  EXPECT_THROW(s.erase(JobId{5}), ContractViolation);
}

TEST(ReservationScheduler, InsertEraseRoundTrip) {
  ReservationScheduler s(audited());
  for (unsigned i = 0; i < 16; ++i) s.insert(JobId{i + 1}, Window{0, 256});
  EXPECT_EQ(s.active_jobs(), 16u);
  for (unsigned i = 0; i < 16; ++i) s.erase(JobId{i + 1});
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST(ReservationScheduler, ManyJobsSameWindowStayFeasible) {
  SchedulerOptions options = audited();
  options.trimming = false;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  // Window [0, 512): level 2. The 8-underallocation budget allows
  // 512/8 = 64 jobs; insert 48 to stay within it comfortably.
  for (unsigned i = 0; i < 48; ++i) {
    const JobId id{i + 1};
    s.insert(id, Window{0, 512});
    active.emplace(id, Window{0, 512});
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  EXPECT_EQ(s.parked_jobs(), 0u);
}

TEST(ReservationScheduler, MixedLevelsNested) {
  SchedulerOptions options = audited();
  options.trimming = false;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  auto add = [&](Window w) {
    const JobId id{next++};
    s.insert(id, w);
    active.emplace(id, w);
  };
  // A level-2 window with level-1 and level-0 jobs nested inside it.
  for (int i = 0; i < 8; ++i) add(Window{0, 4096});
  for (int i = 0; i < 4; ++i) add(Window{0, 64});
  for (int i = 0; i < 2; ++i) add(Window{0, 16});
  for (int i = 0; i < 2; ++i) add(Window{32, 40});
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  EXPECT_EQ(s.parked_jobs(), 0u);
}

TEST(ReservationScheduler, ShortJobsEvictLongJobsFromTheirRange) {
  SchedulerOptions options = audited();
  options.trimming = false;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  // Fill [0, 64) level-1 window with 6 jobs, then saturate [0, 8) with 8
  // level-0 jobs: every level-1 job in [0, 8) must be displaced.
  for (unsigned i = 0; i < 6; ++i) {
    s.insert(JobId{i + 1}, Window{0, 64});
    active.emplace(JobId{i + 1}, Window{0, 64});
  }
  for (unsigned i = 0; i < 8; ++i) {
    const JobId id{100 + i};
    s.insert(id, Window{0, 8});
    active.emplace(id, Window{0, 8});
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(ReservationScheduler, DeletionTriggersAtMostConstantMoves) {
  SchedulerOptions options = audited();
  options.trimming = false;
  ReservationScheduler s(options);
  for (unsigned i = 0; i < 24; ++i) s.insert(JobId{i + 1}, Window{0, 1024});
  for (unsigned i = 0; i < 24; ++i) {
    const auto stats = s.erase(JobId{i + 1});
    // Deleting removes two reservations → at most two MOVEs, each of which
    // can relocate one same-level job plus one higher-level job.
    EXPECT_LE(stats.reallocations, 4u) << "delete " << i;
  }
}

TEST(ReservationScheduler, TrimmingKeepsWindowsNearN) {
  SchedulerOptions options = audited();
  options.trimming = true;
  options.gamma = 8;
  ReservationScheduler s(options);
  // Huge windows, few jobs: with trimming the effective span is 2γn*.
  for (unsigned i = 0; i < 20; ++i) {
    s.insert(JobId{i + 1}, Window{0, static_cast<Time>(u64{1} << 40)});
  }
  EXPECT_EQ(s.active_jobs(), 20u);
  // n* tracks the population: 20 jobs → n* = 32.
  EXPECT_EQ(s.n_star(), 32u);
  const auto snap = s.snapshot();
  for (unsigned i = 0; i < 20; ++i) {
    const auto p = snap.find(JobId{i + 1});
    ASSERT_TRUE(p.has_value());
    // All jobs live inside some trimmed block of span 2*8*32 = 512.
    EXPECT_LT(p->slot, static_cast<Time>(u64{1} << 40));
  }
}

TEST(ReservationScheduler, NStarShrinksOnDeletions) {
  SchedulerOptions options;  // audit off: rebuilds make it slow
  options.trimming = true;
  ReservationScheduler s(options);
  for (unsigned i = 0; i < 100; ++i) s.insert(JobId{i + 1}, Window{0, 4096});
  const auto grown = s.n_star();
  EXPECT_GE(grown, 100u);
  for (unsigned i = 0; i < 95; ++i) s.erase(JobId{i + 1});
  EXPECT_LT(s.n_star(), grown);
  EXPECT_EQ(s.active_jobs(), 5u);
}

TEST(ReservationScheduler, OverflowThrowsWhenRequested) {
  SchedulerOptions options;
  options.trimming = false;
  options.overflow = OverflowPolicy::kThrow;
  ReservationScheduler s(options);
  // Saturate a span-1 window: the second job genuinely cannot fit.
  s.insert(JobId{1}, Window{0, 1});
  EXPECT_THROW(s.insert(JobId{2}, Window{0, 1}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 1u);
}

TEST(ReservationScheduler, ShortestWindowNeverParks) {
  // The shortest window at a level is first in fulfillment priority, so its
  // fulfilled count equals the whole allowance: it can absorb jobs up to
  // physical capacity without ever degrading.
  SchedulerOptions options = audited();
  options.trimming = false;
  options.overflow = OverflowPolicy::kBestEffort;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 40; ++i) {
    const JobId id{i + 1};
    ASSERT_NO_THROW(s.insert(id, Window{0, 64})) << i;
    active.emplace(id, Window{0, 64});
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  EXPECT_EQ(s.parked_jobs(), 0u);
}

TEST(ReservationScheduler, BestEffortParksSqueezedLongerWindow) {
  // A longer window squeezed by shorter same-level windows loses its
  // fulfilled reservations (the waitlist); once its fulfilled count is
  // exhausted, additional jobs must be parked — but stay feasible.
  SchedulerOptions options = audited();
  options.trimming = false;
  options.overflow = OverflowPolicy::kBestEffort;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  auto add = [&](Window w) {
    const JobId id{next++};
    ASSERT_NO_THROW(s.insert(id, w)) << w << " #" << id.value;
    active.emplace(id, w);
  };
  // Shorter level-1 windows hog the allowance of all four intervals...
  for (int i = 0; i < 30; ++i) add(Window{0, 64});
  for (int i = 0; i < 30; ++i) add(Window{64, 128});
  // ...so the longer [0, 128) window gets at most ~1 fulfilled reservation
  // per interval; the jobs beyond that must park (physically there is
  // plenty of room: 128 slots, 68 jobs).
  for (int i = 0; i < 8; ++i) add(Window{0, 128});
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  EXPECT_GT(s.parked_jobs(), 0u);
  // Parked jobs clean up like any other.
  while (next > 1) s.erase(JobId{--next});
  EXPECT_EQ(s.active_jobs(), 0u);
  EXPECT_EQ(s.parked_jobs(), 0u);
}

TEST(ReservationScheduler, FailedInsertRollsBackState) {
  SchedulerOptions options = audited();
  options.trimming = false;
  ReservationScheduler s(options);
  s.insert(JobId{1}, Window{4, 5});
  EXPECT_THROW(s.insert(JobId{2}, Window{4, 5}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 1u);
  // Scheduler remains usable after the rejection.
  EXPECT_NO_THROW(s.insert(JobId{3}, Window{0, 64}));
  EXPECT_NO_THROW(s.erase(JobId{3}));
}

TEST(ReservationScheduler, SnapshotMatchesActiveSet) {
  ReservationScheduler s(audited());
  s.insert(JobId{1}, Window{0, 64});
  s.insert(JobId{2}, Window{64, 128});
  const auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap.find(JobId{1}).has_value());
  EXPECT_TRUE(snap.find(JobId{2}).has_value());
}

TEST(ReservationScheduler, CostBoundedOnUnderallocatedChurn) {
  SchedulerOptions options;
  options.trimming = false;  // isolate the reservation machinery
  ReservationScheduler s(options);
  Rng rng(5);
  std::vector<std::pair<JobId, Time>> active;  // (job, window start)
  std::uint64_t next = 1;
  std::uint64_t worst = 0;
  // Windows of span 64 at 8 distinct positions; cap each window's
  // population at 64/8 = 8 jobs so the instance stays 8-underallocated.
  std::unordered_map<Time, unsigned> load;
  for (int step = 0; step < 4000; ++step) {
    if (!active.empty() && rng.chance(0.5)) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform(0, active.size() - 1));
      const auto [id, start] = active[pick];
      const auto stats = s.erase(id);
      worst = std::max(worst, stats.reallocations);
      --load[start];
      active[pick] = active.back();
      active.pop_back();
    } else {
      const Time start = static_cast<Time>(64 * rng.uniform(0, 7));
      auto& count = load[start];
      if (count >= 8) continue;
      const JobId id{next++};
      const auto stats = s.insert(id, Window{start, start + 64});
      worst = std::max(worst, stats.reallocations);
      active.emplace_back(id, start);
      ++count;
    }
  }
  EXPECT_EQ(s.parked_jobs(), 0u);
  // O(log* Δ) with Δ=64 is a small constant; allow generous headroom.
  EXPECT_LE(worst, 8u);
}

TEST(ReservationScheduler, GammaMustBePowerOfTwo) {
  SchedulerOptions options;
  options.gamma = 6;
  EXPECT_THROW(ReservationScheduler{options}, ContractViolation);
}

TEST(ReservationScheduler, SpanBeyondTableRejected) {
  ReservationScheduler s;
  const Time huge = static_cast<Time>(u64{1} << 62);
  EXPECT_THROW(s.insert(JobId{1}, Window{0, huge * 2}), ContractViolation);
}

}  // namespace
}  // namespace reasched
