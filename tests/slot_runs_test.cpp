#include <gtest/gtest.h>

#include <set>

#include "schedule/slot_runs.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

TEST(SlotRuns, EmptyEverythingFree) {
  SlotRuns runs;
  EXPECT_FALSE(runs.occupied(0));
  EXPECT_EQ(runs.next_free(5), 5);
  EXPECT_EQ(runs.prev_free(5), 5);
  EXPECT_FALSE(runs.covered(0, 10));
}

TEST(SlotRuns, SingleSlot) {
  SlotRuns runs;
  runs.occupy(7);
  EXPECT_TRUE(runs.occupied(7));
  EXPECT_FALSE(runs.occupied(6));
  EXPECT_EQ(runs.next_free(7), 8);
  EXPECT_EQ(runs.prev_free(7), 6);
  EXPECT_EQ(runs.next_free(6), 6);
  runs.release(7);
  EXPECT_FALSE(runs.occupied(7));
}

TEST(SlotRuns, CoalescesAdjacent) {
  SlotRuns runs;
  runs.occupy(3);
  runs.occupy(5);
  EXPECT_EQ(runs.run_count(), 2u);
  runs.occupy(4);  // bridges
  EXPECT_EQ(runs.run_count(), 1u);
  EXPECT_EQ(runs.next_free(3), 6);
  EXPECT_TRUE(runs.covered(3, 6));
}

TEST(SlotRuns, ExtendsLeftAndRight) {
  SlotRuns runs;
  runs.occupy(10);
  runs.occupy(11);  // extend pred
  EXPECT_EQ(runs.run_count(), 1u);
  runs.occupy(9);  // extend succ
  EXPECT_EQ(runs.run_count(), 1u);
  EXPECT_EQ(runs.next_free(9), 12);
  EXPECT_EQ(runs.prev_free(11), 8);
}

TEST(SlotRuns, ReleaseSplitsRun) {
  SlotRuns runs;
  for (Time t = 0; t < 5; ++t) runs.occupy(t);
  EXPECT_EQ(runs.run_count(), 1u);
  runs.release(2);
  EXPECT_EQ(runs.run_count(), 2u);
  EXPECT_EQ(runs.next_free(0), 2);
  EXPECT_TRUE(runs.occupied(1));
  EXPECT_TRUE(runs.occupied(3));
  runs.release(0);  // shrink head
  runs.release(4);  // shrink tail
  EXPECT_TRUE(runs.occupied(1));
  EXPECT_TRUE(runs.occupied(3));
  EXPECT_EQ(runs.run_count(), 2u);
}

TEST(SlotRuns, PreconditionsEnforced) {
  SlotRuns runs;
  runs.occupy(1);
  EXPECT_THROW(runs.occupy(1), InternalError);
  EXPECT_THROW(runs.release(2), InternalError);
}

TEST(SlotRuns, NegativeTimeline) {
  SlotRuns runs;
  runs.occupy(-5);
  runs.occupy(-4);
  EXPECT_TRUE(runs.covered(-5, -3));
  EXPECT_EQ(runs.next_free(-5), -3);
  EXPECT_EQ(runs.prev_free(-4), -6);
}

TEST(SlotRuns, RandomizedAgainstReferenceSet) {
  SlotRuns runs;
  std::set<Time> reference;
  Rng rng(77);
  for (int step = 0; step < 20000; ++step) {
    const Time t = static_cast<Time>(rng.uniform(0, 199));
    if (reference.contains(t)) {
      runs.release(t);
      reference.erase(t);
    } else {
      runs.occupy(t);
      reference.insert(t);
    }
    // Spot-check queries against the reference implementation.
    const Time q = static_cast<Time>(rng.uniform(0, 199));
    EXPECT_EQ(runs.occupied(q), reference.contains(q));
    Time expect_next = q;
    while (reference.contains(expect_next)) ++expect_next;
    EXPECT_EQ(runs.next_free(q), expect_next);
    Time expect_prev = q;
    while (reference.contains(expect_prev)) --expect_prev;
    EXPECT_EQ(runs.prev_free(q), expect_prev);
  }
}

TEST(SlotRuns, NextOccupied) {
  SlotRuns runs;
  EXPECT_EQ(runs.next_occupied(0), SlotRuns::kNone);
  runs.occupy(5);
  runs.occupy(200);
  EXPECT_EQ(runs.next_occupied(0), 5);
  EXPECT_EQ(runs.next_occupied(5), 5);
  EXPECT_EQ(runs.next_occupied(6), 200);
  EXPECT_EQ(runs.next_occupied(201), SlotRuns::kNone);
}

TEST(SlotRuns, ForEachOccupiedVisitsRangeInOrder) {
  SlotRuns runs;
  for (const Time t : {1, 2, 3, 64, 65, 130, 400}) runs.occupy(t);
  std::vector<Time> seen;
  runs.for_each_occupied(2, 400, [&](Time t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<Time>{2, 3, 64, 65, 130}));
  seen.clear();
  runs.for_each_occupied(0, 2, [&](Time t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<Time>{1}));
  seen.clear();
  runs.for_each_occupied(5, 5, [&](Time t) { seen.push_back(t); });
  EXPECT_TRUE(seen.empty());
}

TEST(SlotRuns, ForEachOccupiedNegativeRange) {
  SlotRuns runs;
  for (const Time t : {-130, -65, -64, -1, 0}) runs.occupy(t);
  std::vector<Time> seen;
  runs.for_each_occupied(-130, 1, [&](Time t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<Time>{-130, -65, -64, -1, 0}));
}

TEST(SlotRuns, FullPageSkipsStayExact) {
  // Fill several whole 64-slot pages so next_free/prev_free must jump the
  // full-page run map, then poke holes at page boundaries.
  SlotRuns runs;
  for (Time t = 0; t < 4 * 64; ++t) runs.occupy(t);
  EXPECT_EQ(runs.next_free(0), 4 * 64);
  EXPECT_EQ(runs.prev_free(4 * 64 - 1), -1);
  EXPECT_TRUE(runs.covered(0, 4 * 64));

  runs.release(130);  // inside the second page
  EXPECT_EQ(runs.next_free(0), 130);
  EXPECT_EQ(runs.next_free(131), 4 * 64);
  EXPECT_EQ(runs.prev_free(200), 130);
  runs.occupy(130);
  EXPECT_EQ(runs.next_free(0), 4 * 64);
}

TEST(SlotRuns, SummaryBitmapBoundsScanProbesOnSparseWideRanges) {
  // Two occupants ~15.6k pages apart: without the second-level summary a
  // scan probes every page in the range; with it, only the populated ones
  // (plus the query's own page).
  SlotRuns runs;
  runs.occupy(0);
  runs.occupy(1'000'000);

  runs.reset_scan_page_probes();
  EXPECT_EQ(runs.next_occupied(1), 1'000'000);
  EXPECT_LE(runs.scan_page_probes(), 2u);

  runs.reset_scan_page_probes();
  std::vector<Time> seen;
  runs.for_each_occupied(0, 1'000'001, [&](Time t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<Time>{0, 1'000'000}));
  EXPECT_LE(runs.scan_page_probes(), 2u);

  // Releasing the far occupant must clear its summary bit: the scan then
  // terminates without probing any page beyond the first.
  runs.release(1'000'000);
  runs.reset_scan_page_probes();
  EXPECT_EQ(runs.next_occupied(1), SlotRuns::kNone);
  EXPECT_LE(runs.scan_page_probes(), 1u);

  // Re-occupying a page whose bitmap entry still exists (zeroed) must
  // re-set the summary bit.
  runs.occupy(1'000'000);
  EXPECT_EQ(runs.next_occupied(1), 1'000'000);
}

TEST(SlotRuns, SummaryTracksNegativePages) {
  SlotRuns runs;
  runs.occupy(-100'000);
  runs.occupy(50'000);
  std::vector<Time> seen;
  runs.for_each_occupied(-200'000, 100'000, [&](Time t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<Time>{-100'000, 50'000}));
  EXPECT_EQ(runs.next_occupied(-99'999), 50'000);
  runs.release(-100'000);
  EXPECT_EQ(runs.next_occupied(-200'000), 50'000);
}

TEST(SlotRuns, RandomizedWideKeysAgainstReferenceSet) {
  // Sparse, strided and negative keys spanning many pages.
  SlotRuns runs;
  std::set<Time> reference;
  Rng rng(1312);
  for (int step = 0; step < 5000; ++step) {
    const Time t = (static_cast<Time>(rng.uniform(0, 599)) - 300) * 17;
    if (reference.contains(t)) {
      runs.release(t);
      reference.erase(t);
    } else {
      runs.occupy(t);
      reference.insert(t);
    }
    const Time q = (static_cast<Time>(rng.uniform(0, 599)) - 300) * 17;
    Time expect_next = q;
    while (reference.contains(expect_next)) ++expect_next;
    EXPECT_EQ(runs.next_free(q), expect_next);
    const auto it = reference.lower_bound(q);
    EXPECT_EQ(runs.next_occupied(q), it == reference.end() ? SlotRuns::kNone : *it);
  }
  // Exhaustive range-iteration check against the reference.
  std::vector<Time> seen;
  runs.for_each_occupied(-6000, 6000, [&](Time t) { seen.push_back(t); });
  std::vector<Time> expected;
  for (const Time t : reference) {
    if (t >= -6000 && t < 6000) expected.push_back(t);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(runs.run_count(), [&] {
    std::size_t count = 0;
    Time prev = std::numeric_limits<Time>::min();
    for (const Time t : reference) {
      if (t != prev + 1) ++count;
      prev = t;
    }
    return count;
  }());
}

}  // namespace
}  // namespace reasched
