#include <gtest/gtest.h>

#include "core/reallocating_scheduler.hpp"
#include "sim/sweep.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

TEST(Sweep, MatchesSerialReplay) {
  ChurnParams params;
  params.requests = 600;
  params.target_active = 64;
  const auto trace = make_churn_trace(params);

  // Serial reference.
  ReallocatingScheduler reference(2);
  const auto serial = replay_trace(reference, trace);

  // Parallel sweep over four identical cells: every report must agree with
  // the serial run (schedulers are deterministic).
  std::vector<SweepJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(SweepJob{
        [] { return std::make_unique<ReallocatingScheduler>(2); }, &trace, {}});
  }
  const auto reports = replay_sweep(jobs, /*threads=*/4);
  ASSERT_EQ(reports.size(), 4u);
  for (const auto& report : reports) {
    EXPECT_EQ(report.metrics.requests(), serial.metrics.requests());
    EXPECT_DOUBLE_EQ(report.metrics.reallocations().sum(),
                     serial.metrics.reallocations().sum());
    EXPECT_EQ(report.metrics.max_migrations(), serial.metrics.max_migrations());
  }
}

TEST(Sweep, PreservesJobOrder) {
  ChurnParams small;
  small.requests = 100;
  small.target_active = 16;
  const auto trace_small = make_churn_trace(small);
  ChurnParams big = small;
  big.requests = 400;
  const auto trace_big = make_churn_trace(big);

  std::vector<SweepJob> jobs;
  jobs.push_back(SweepJob{
      [] { return std::make_unique<ReallocatingScheduler>(1); }, &trace_small, {}});
  jobs.push_back(SweepJob{
      [] { return std::make_unique<ReallocatingScheduler>(1); }, &trace_big, {}});
  const auto reports = replay_sweep(jobs, 2);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_LT(reports[0].metrics.requests(), reports[1].metrics.requests());
}

TEST(Sweep, RejectsIncompleteJobs) {
  std::vector<SweepJob> jobs;
  jobs.push_back(SweepJob{nullptr, nullptr, {}});
  EXPECT_THROW((void)replay_sweep(jobs), ContractViolation);
}

}  // namespace
}  // namespace reasched
