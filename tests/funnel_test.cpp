#include <gtest/gtest.h>

#include <unordered_set>

#include "feasibility/underallocation.hpp"
#include "workload/funnel.hpp"

namespace reasched {
namespace {

TEST(Funnel, WellFormedTrace) {
  FunnelParams params;
  params.min_span_log = 6;
  params.max_span_log = 12;
  params.churn_pairs = 200;
  const auto trace = make_funnel_trace(params);
  std::unordered_set<std::uint64_t> active;
  for (const auto& request : trace) {
    if (request.kind == RequestKind::kInsert) {
      EXPECT_TRUE(request.window.valid());
      EXPECT_TRUE(request.window.aligned());
      EXPECT_TRUE(active.insert(request.job.value).second);
    } else {
      EXPECT_EQ(active.erase(request.job.value), 1u);
    }
  }
  EXPECT_FALSE(active.empty());
}

TEST(Funnel, WarmFillSizes) {
  // quota(e) = 2^{e-1}/gamma; min 6, max 12, gamma 8:
  // 4+8+16+32+64+128+256 = 508 warm inserts.
  FunnelParams params;
  params.min_span_log = 6;
  params.max_span_log = 12;
  params.gamma = 8;
  params.churn_pairs = 0;
  const auto trace = make_funnel_trace(params);
  EXPECT_EQ(trace.size(), 508u);
  for (const auto& request : trace) {
    EXPECT_EQ(request.kind, RequestKind::kInsert);
  }
}

TEST(Funnel, MaxJobsCapsPopulation) {
  FunnelParams params;
  params.min_span_log = 6;
  params.max_span_log = 16;
  params.max_jobs = 100;
  params.churn_pairs = 0;
  const auto trace = make_funnel_trace(params);
  EXPECT_EQ(trace.size(), 100u);
}

TEST(Funnel, EveryPrefixStaysGammaUnderallocated) {
  FunnelParams params;
  params.min_span_log = 6;
  params.max_span_log = 11;
  params.gamma = 8;
  params.churn_pairs = 150;
  params.adversarial = false;
  const auto trace = make_funnel_trace(params);

  std::unordered_map<std::uint64_t, Window> active;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].kind == RequestKind::kInsert) {
      active.emplace(trace[i].job.value, trace[i].window);
    } else {
      active.erase(trace[i].job.value);
    }
    if (i % 53 == 0 && !active.empty()) {
      std::vector<JobSpec> jobs;
      for (const auto& [id, w] : active) jobs.push_back({JobId{id}, w});
      EXPECT_TRUE(gamma_underallocated(jobs, 1, params.gamma)) << "prefix " << i;
    }
  }
}

TEST(Funnel, AdversarialVariantAlsoUnderallocated) {
  FunnelParams params;
  params.min_span_log = 6;
  params.max_span_log = 11;
  params.gamma = 8;
  params.churn_pairs = 100;
  params.adversarial = true;
  const auto trace = make_funnel_trace(params);
  std::unordered_map<std::uint64_t, Window> active;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].kind == RequestKind::kInsert) {
      active.emplace(trace[i].job.value, trace[i].window);
    } else {
      active.erase(trace[i].job.value);
    }
  }
  std::vector<JobSpec> jobs;
  for (const auto& [id, w] : active) jobs.push_back({JobId{id}, w});
  EXPECT_TRUE(gamma_underallocated(jobs, 1, params.gamma));
}

TEST(Funnel, DeterministicForSeed) {
  FunnelParams params;
  params.churn_pairs = 120;
  const auto a = make_funnel_trace(params);
  const auto b = make_funnel_trace(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
}

TEST(Funnel, ParameterValidation) {
  FunnelParams params;
  params.min_span_log = 3;  // 2^2 = 4 < gamma = 8
  EXPECT_THROW(make_funnel_trace(params), ContractViolation);
  FunnelParams unaligned;
  unaligned.base = 3;
  EXPECT_THROW(make_funnel_trace(unaligned), ContractViolation);
}

}  // namespace
}  // namespace reasched
