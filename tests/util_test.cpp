#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace reasched {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(u64{1} << 62));
  EXPECT_FALSE(is_pow2((u64{1} << 62) + 1));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(255), 7u);
  EXPECT_EQ(floor_log2(256), 8u);
  EXPECT_EQ(floor_log2(~u64{0}), 63u);
  EXPECT_THROW(floor_log2(0), ContractViolation);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, AlignDownHandlesNegatives) {
  EXPECT_EQ(align_down(0, 8), 0);
  EXPECT_EQ(align_down(7, 8), 0);
  EXPECT_EQ(align_down(8, 8), 8);
  EXPECT_EQ(align_down(-1, 8), -8);
  EXPECT_EQ(align_down(-8, 8), -8);
  EXPECT_EQ(align_down(-9, 8), -16);
}

TEST(Bits, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0);
  EXPECT_EQ(align_up(1, 8), 8);
  EXPECT_EQ(align_up(8, 8), 8);
  EXPECT_EQ(align_up(-1, 8), 0);
  EXPECT_EQ(align_up(-9, 8), -8);
}

TEST(Bits, LogStar) {
  EXPECT_EQ(log_star(1), 0u);
  EXPECT_EQ(log_star(2), 1u);
  EXPECT_EQ(log_star(4), 2u);
  EXPECT_EQ(log_star(16), 3u);
  EXPECT_EQ(log_star(65536), 4u);
  // 2^65536 is unrepresentable, so every u64 has log* <= 5.
  EXPECT_LE(log_star(~u64{0}), 5u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, LogUniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.log_uniform(16, 4096);
    EXPECT_GE(v, 16u);
    EXPECT_LE(v, 4096u);
  }
}

TEST(Rng, Uniform01InHalfOpenUnit) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(IntHistogram, PercentilesExact) {
  IntHistogram hist;
  for (std::uint64_t v = 1; v <= 100; ++v) hist.add(v);
  EXPECT_EQ(hist.percentile(0.5), 50u);
  EXPECT_EQ(hist.percentile(0.99), 99u);
  EXPECT_EQ(hist.percentile(1.0), 100u);
  EXPECT_EQ(hist.max_value(), 100u);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
}

TEST(IntHistogram, MergeAddsCounts) {
  IntHistogram a;
  IntHistogram b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_of(2), 2u);
}

TEST(Table, RendersAlignedColumns) {
  Table table("demo");
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table table("demo");
  table.set_header({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowArityMismatchRejected) {
  Table table("demo");
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ShardedThreadPool, TasksOnOneWorkerRunInSubmissionOrder) {
  ShardedThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit_to(1, [&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  // Same worker → same queue → strictly sequential, no synchronization
  // needed around `order` beyond the futures' completion.
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ShardedThreadPool, WorkersRunIndependently) {
  ShardedThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (std::size_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 25; ++i) {
      futures.push_back(pool.submit_to(w, [&counter] { ++counter; }));
    }
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ShardedThreadPool, ZeroWorkersIsValid) {
  ShardedThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_THROW(pool.submit_to(0, [] {}), ContractViolation);
}

TEST(ShardedThreadPool, StealableTasksAllRunExactlyOnce) {
  ShardedThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  // Everything homed on worker 0: completion of all 64 with a nonzero
  // steals() would prove migration, but even without steals the contract
  // is exactly-once execution.
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit_stealable(0, [&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ShardedThreadPool, IdleWorkersStealFromALoadedHome) {
  ShardedThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  // One slow pinned task occupies the home worker while its stealable
  // backlog sits behind it; the other three workers are idle and must
  // drain the backlog — the futures cannot all complete before the pinned
  // sleeper otherwise, so the time bound is the proof.
  const auto t0 = std::chrono::steady_clock::now();
  auto pinned = pool.submit_to(0, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit_stealable(0, [&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++counter;
    }));
  }
  for (auto& f : futures) f.get();
  const auto stolen_done = std::chrono::steady_clock::now() - t0;
  pinned.get();
  EXPECT_EQ(counter.load(), 32);
  EXPECT_GE(pool.steals(), 1u);
  EXPECT_LT(stolen_done, std::chrono::milliseconds(200))
      << "stealable backlog waited for the busy home worker";
}

TEST(ShardedThreadPool, CallerCanRunStealableWork) {
  ShardedThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  // Block the only worker so the caller is the sole source of progress.
  std::atomic<bool> release{false};
  auto blocker = pool.submit_to(0, [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit_stealable(0, [&counter] { ++counter; }));
  }
  while (counter.load() < 8) {
    if (!pool.try_run_stealable()) std::this_thread::yield();
  }
  EXPECT_FALSE(pool.try_run_stealable());  // queue is empty now
  release.store(true, std::memory_order_release);
  blocker.get();
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 8);
  EXPECT_GE(pool.steals(), 8u);
}

TEST(ShardedThreadPool, PinnedTasksAreNeverStolen) {
  ShardedThreadPool pool(4);
  std::thread::id home_thread;
  auto probe = pool.submit_to(2, [&home_thread] {
    home_thread = std::this_thread::get_id();
  });
  probe.get();
  std::vector<std::future<void>> futures;
  std::atomic<int> misplaced{0};
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit_to(2, [&home_thread, &misplaced] {
      if (std::this_thread::get_id() != home_thread) ++misplaced;
    }));
  }
  // Give the other (idle) workers every chance to misbehave.
  for (int i = 0; i < 100; ++i) pool.try_run_stealable();
  for (auto& f : futures) f.get();
  EXPECT_EQ(misplaced.load(), 0);
}

TEST(Contracts, RequireThrowsContractViolation) {
  EXPECT_THROW(RS_REQUIRE(false, "boom"), ContractViolation);
  EXPECT_NO_THROW(RS_REQUIRE(true, "fine"));
}

TEST(Contracts, CheckThrowsInternalError) {
  EXPECT_THROW(RS_CHECK(false, "bug"), InternalError);
}

}  // namespace
}  // namespace reasched
