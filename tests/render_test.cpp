#include <gtest/gtest.h>

#include "schedule/render.hpp"

namespace reasched {
namespace {

TEST(Render, EmptyScheduleAllDots) {
  Schedule s(2);
  RenderOptions options;
  options.from = 0;
  options.to = 8;
  const std::string out = render_schedule(s, options);
  EXPECT_EQ(out, "m0 |........|\nm1 |........|\n");
}

TEST(Render, DigitsShowJobIds) {
  Schedule s(1);
  s.assign(JobId{12}, Placement{0, 0});
  s.assign(JobId{7}, Placement{0, 3});
  RenderOptions options;
  options.to = 5;
  EXPECT_EQ(render_schedule(s, options), "m0 |2..7.|\n");
}

TEST(Render, HashMode) {
  Schedule s(1);
  s.assign(JobId{12}, Placement{0, 1});
  RenderOptions options;
  options.to = 3;
  options.digits = false;
  EXPECT_EQ(render_schedule(s, options), "m0 |.#.|\n");
}

TEST(Render, HighlightMarksJob) {
  Schedule s(1);
  s.assign(JobId{5}, Placement{0, 0});
  s.assign(JobId{6}, Placement{0, 1});
  RenderOptions options;
  options.to = 3;
  options.highlight = JobId{6};
  EXPECT_EQ(render_schedule(s, options), "m0 |5*.|\n");
}

TEST(Render, WindowMarkers) {
  Schedule s(1);
  RenderOptions options;
  options.to = 6;
  const std::string out = render_window(s, Window{2, 5}, options);
  EXPECT_NE(out.find("|  ^^^ |"), std::string::npos) << out;
  EXPECT_NE(out.find("window [2,5)"), std::string::npos);
}

TEST(Render, RangeWindowing) {
  Schedule s(1);
  s.assign(JobId{1}, Placement{0, 100});
  RenderOptions options;
  options.from = 99;
  options.to = 102;
  EXPECT_EQ(render_schedule(s, options), "m0 |.1.|\n");
}

TEST(Render, EmptyRangeRejected) {
  Schedule s(1);
  RenderOptions options;
  options.from = 5;
  options.to = 5;
  EXPECT_THROW((void)render_schedule(s, options), ContractViolation);
}

TEST(Render, ColumnCap) {
  Schedule s(1);
  RenderOptions options;
  options.from = 0;
  options.to = 100000;  // capped internally to 512 columns
  const std::string out = render_schedule(s, options);
  EXPECT_LT(out.size(), 600u);
}

}  // namespace
}  // namespace reasched
