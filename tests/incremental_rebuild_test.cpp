// §4 deamortization: the even/odd incremental rebuild adapter.
#include <gtest/gtest.h>

#include "core/incremental_rebuild.hpp"
#include "schedule/validator.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

SchedulerOptions audited() {
  SchedulerOptions options;
  options.audit = true;
  return options;
}

TEST(IncrementalRebuild, BasicInsertErase) {
  IncrementalRebuildScheduler s(audited());
  const auto stats = s.insert(JobId{1}, Window{0, 64});
  EXPECT_EQ(stats.reallocations, 0u);
  const auto p = s.snapshot().find(JobId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(Window(0, 64).contains(p->slot));
  s.erase(JobId{1});
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST(IncrementalRebuild, RejectsSpanOneAndUnaligned) {
  IncrementalRebuildScheduler s;
  EXPECT_THROW(s.insert(JobId{1}, Window{5, 6}), ContractViolation);
  EXPECT_THROW(s.insert(JobId{1}, Window{1, 9}), ContractViolation);
}

TEST(IncrementalRebuild, GenerationsKeepParity) {
  IncrementalRebuildScheduler s(audited());
  // Stay below n* = 8 so no migration starts: a single generation, a single
  // parity.
  for (unsigned i = 0; i < 5; ++i) s.insert(JobId{i + 1}, Window{0, 256});
  ASSERT_FALSE(s.migrating());
  std::set<Time> parities;
  const Schedule snap = s.snapshot();
  for (const auto& [id, placement] : snap.assignments()) {
    parities.insert(placement.slot & 1);
  }
  EXPECT_EQ(parities.size(), 1u);
}

TEST(IncrementalRebuild, MidMigrationUsesBothParities) {
  IncrementalRebuildScheduler s(audited());
  for (unsigned i = 0; i < 9; ++i) s.insert(JobId{i + 1}, Window{0, 256});
  // The 9th insert crossed n* = 8: old and new generations coexist on
  // opposite parities (the audit() inside every request already checks the
  // parity-generation correspondence).
  ASSERT_TRUE(s.migrating());
  std::set<Time> parities;
  const Schedule snap = s.snapshot();
  for (const auto& [id, placement] : snap.assignments()) {
    parities.insert(placement.slot & 1);
  }
  EXPECT_EQ(parities.size(), 2u);
}

TEST(IncrementalRebuild, MigrationSpreadsOverRequests) {
  SchedulerOptions options = audited();
  IncrementalRebuildScheduler s(options);
  // Push past n* = 8: a migration starts; it must NOT complete immediately.
  for (unsigned i = 0; i < 9; ++i) s.insert(JobId{i + 1}, Window{0, 1024});
  EXPECT_TRUE(s.migrating());
  const auto pending_before = s.pending_migrations();
  EXPECT_GT(pending_before, 0u);
  // Each further request retires up to two pending migrations.
  s.insert(JobId{100}, Window{0, 1024});
  EXPECT_LE(s.pending_migrations() + 2, pending_before + 1);
}

TEST(IncrementalRebuild, PerRequestCostStaysBounded) {
  // The whole point: across n* doublings no single request moves Θ(n) jobs.
  IncrementalRebuildScheduler s(audited());
  std::uint64_t worst = 0;
  for (unsigned i = 0; i < 300; ++i) {
    const auto stats = s.insert(JobId{i + 1}, Window{0, 4096});
    worst = std::max(worst, stats.reallocations);
  }
  // Two migrations per request, each O(1) expected moves plus its own
  // reallocation: far below n = 300.
  EXPECT_LE(worst, 12u);
}

TEST(IncrementalRebuild, AmortizedMatchesValidator) {
  IncrementalRebuildScheduler s(audited());
  Rng rng(9);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  for (int step = 0; step < 1500; ++step) {
    if (!active.empty() && rng.chance(0.45)) {
      const auto victim = std::next(
          active.begin(), static_cast<long>(rng.uniform(0, active.size() - 1)));
      s.erase(victim->first);
      active.erase(victim);
    } else {
      const unsigned exp = static_cast<unsigned>(rng.uniform(3, 12));
      const Time span = static_cast<Time>(u64{1} << exp);
      const Time start = static_cast<Time>(
          span * static_cast<Time>(rng.uniform(0, (u64{1} << (14 - std::min(14u, exp))))));
      const JobId id{next++};
      const Window w{start, start + span};
      s.insert(id, w);
      active.emplace(id, w);
    }
    if (step % 50 == 0) {
      EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok()) << "step " << step;
    }
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(IncrementalRebuild, ShrinkTriggersDownwardMigration) {
  IncrementalRebuildScheduler s(audited());
  for (unsigned i = 0; i < 200; ++i) s.insert(JobId{i + 1}, Window{0, 8192});
  const auto grown = s.n_star();
  EXPECT_GE(grown, 200u);
  for (unsigned i = 0; i < 195; ++i) s.erase(JobId{i + 1});
  EXPECT_LT(s.n_star(), grown);
  // The survivors are still valid.
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 195; i < 200; ++i) active.emplace(JobId{i + 1}, Window{0, 8192});
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(IncrementalRebuild, TrimmedPlacementsStayInOriginalWindows) {
  IncrementalRebuildScheduler s(audited());
  const Time huge = static_cast<Time>(u64{1} << 30);
  for (unsigned i = 0; i < 50; ++i) s.insert(JobId{i + 1}, Window{0, huge});
  const auto snap = s.snapshot();
  for (unsigned i = 0; i < 50; ++i) {
    const auto p = snap.find(JobId{i + 1});
    ASSERT_TRUE(p.has_value());
    EXPECT_GE(p->slot, 0);
    EXPECT_LT(p->slot, huge);
  }
}

TEST(IncrementalRebuild, DuplicateIdRejected) {
  IncrementalRebuildScheduler s;
  s.insert(JobId{1}, Window{0, 16});
  EXPECT_THROW(s.insert(JobId{1}, Window{0, 16}), ContractViolation);
  EXPECT_THROW(s.erase(JobId{404}), ContractViolation);
}

}  // namespace
}  // namespace reasched
