// MetricsCollector::merge audit (ISSUE 7 satellite): merging per-shard
// collectors must reproduce the single-collector aggregate exactly — every
// counter, both RunningStats, both IntHistograms, and the new latency
// block — and a sharded run's per-shard-merged metrics must round-trip
// against the sequential twin's.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/multi_machine.hpp"
#include "core/reservation_scheduler.hpp"
#include "metrics/collector.hpp"
#include "service/sharded_scheduler.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

TEST(MetricsMergeTest, MergeMatchesSingleCollectorExactly) {
  Rng rng(0x5eedc0de);
  MetricsCollector all;
  std::array<MetricsCollector, 4> shards;
  for (int i = 0; i < 4000; ++i) {
    RequestStats stats;
    stats.reallocations = rng.uniform(0, 16);
    stats.migrations = rng.uniform(0, 2);
    stats.levels_touched = rng.uniform(0, 5);
    stats.degraded = rng.chance(0.1) ? 1 : 0;
    stats.rebuilt = rng.chance(0.02);
    const RequestKind kind =
        rng.chance(0.5) ? RequestKind::kInsert : RequestKind::kDelete;
    MetricsCollector& shard = shards[static_cast<std::size_t>(i) % shards.size()];
    all.add(kind, stats);
    shard.add(kind, stats);
    const std::uint64_t latency = rng.log_uniform(100, 1u << 24);
    all.add_latency_ns(latency);
    shard.add_latency_ns(latency);
    if (rng.chance(0.05)) {
      all.add_rejected();
      shard.add_rejected();
    }
  }

  MetricsCollector merged;
  for (const MetricsCollector& shard : shards) merged.merge(shard);

  EXPECT_EQ(merged.requests(), all.requests());
  EXPECT_EQ(merged.inserts(), all.inserts());
  EXPECT_EQ(merged.deletes(), all.deletes());
  EXPECT_EQ(merged.rejected(), all.rejected());
  EXPECT_EQ(merged.rebuilds(), all.rebuilds());
  EXPECT_EQ(merged.degraded(), all.degraded());
  // Welford merges in a different summation order than streaming adds;
  // equality is up to rounding, not bit-exact.
  EXPECT_NEAR(merged.amortized_reallocations(), all.amortized_reallocations(), 1e-9);
  EXPECT_NEAR(merged.steady_reallocations(), all.steady_reallocations(), 1e-9);
  EXPECT_EQ(merged.steady_max_reallocations(), all.steady_max_reallocations());
  EXPECT_EQ(merged.max_reallocations(), all.max_reallocations());
  EXPECT_EQ(merged.p99_reallocations(), all.p99_reallocations());
  EXPECT_EQ(merged.max_migrations(), all.max_migrations());
  EXPECT_EQ(merged.reallocation_hist().buckets(), all.reallocation_hist().buckets());
  EXPECT_EQ(merged.migration_hist().buckets(), all.migration_hist().buckets());
  // The new latency block must merge like everything else (histogram
  // equality is bucket-exact).
  EXPECT_TRUE(merged.latency_hist() == all.latency_hist());
  EXPECT_EQ(merged.latency_hist().total(), all.latency_hist().total());
}

TEST(MetricsMergeTest, MergeOfEmptiesStaysEmpty) {
  MetricsCollector a, b;
  a.merge(b);
  EXPECT_EQ(a.requests(), 0u);
  EXPECT_EQ(a.max_reallocations(), 0u);       // the satellite fix: no abort
  EXPECT_EQ(a.p99_reallocations(), 0u);
  EXPECT_EQ(a.latency_hist().percentile(0.999), 0u);
  EXPECT_EQ(a.latency_hist().max(), 0u);
}

TEST(MetricsMergeTest, ShardedRunRoundTripsAgainstSequentialTwin) {
  constexpr unsigned kMachines = 8;
  ChurnParams params;
  params.seed = 77;
  params.target_active = 256;
  params.requests = 4000;
  params.machines = kMachines;
  params.min_span = 64;
  params.max_span = 2048;
  params.placement = WindowPlacement::kUniform;
  const std::vector<Request> trace = make_churn_trace(params);

  SchedulerOptions inner;
  inner.overflow = OverflowPolicy::kBestEffort;
  const auto factory = [inner] {
    return std::make_unique<ReservationScheduler>(inner);
  };

  // Sequential twin: one collector, per-request path.
  MultiMachineScheduler sequential(kMachines, factory);
  SimOptions seq_options;
  seq_options.record_latency = true;
  const SimReport seq_report = replay_trace(sequential, trace, seq_options);

  // Sharded run: batched apply; per-request stats fanned out round-robin
  // into per-shard collectors, then merged — the scrape path a sharded
  // service uses.
  ShardedScheduler::Options service;
  service.shards = 4;
  ShardedScheduler sharded(kMachines, factory, service);
  std::array<MetricsCollector, 4> shard_collectors;
  SimOptions sharded_options;
  sharded_options.batch_size = 64;
  sharded_options.on_request = [&](std::size_t index, const Request& request,
                                   const RequestStats& stats) {
    shard_collectors[index % shard_collectors.size()].add(request.kind, stats);
  };
  const SimReport sharded_report = replay_trace(sharded, trace, sharded_options);

  MetricsCollector merged;
  for (const MetricsCollector& c : shard_collectors) merged.merge(c);

  // The sharded batch path is stat-identical to the sequential twin
  // (sharded_scheduler_test proves per-request equality); the merged
  // per-shard collectors must therefore agree with both the sharded run's
  // own collector and the sequential twin's.
  const MetricsCollector& twin = seq_report.metrics;
  const MetricsCollector& whole = sharded_report.metrics;
  for (const MetricsCollector* other : {&twin, &whole}) {
    EXPECT_EQ(merged.requests(), other->requests());
    EXPECT_EQ(merged.inserts(), other->inserts());
    EXPECT_EQ(merged.deletes(), other->deletes());
    EXPECT_EQ(merged.rebuilds(), other->rebuilds());
    EXPECT_EQ(merged.degraded(), other->degraded());
    EXPECT_EQ(merged.max_reallocations(), other->max_reallocations());
    EXPECT_EQ(merged.p99_reallocations(), other->p99_reallocations());
    EXPECT_EQ(merged.reallocation_hist().buckets(),
              other->reallocation_hist().buckets());
    EXPECT_EQ(merged.migration_hist().buckets(),
              other->migration_hist().buckets());
  }
  // Latency lives in the run's own collector (the hook feeds none): wall
  // clock is not comparable across runs, but the sample counts are pinned —
  // one per request sequentially, none here in the sharded hook.
  EXPECT_EQ(twin.latency_hist().total(), twin.requests());
  EXPECT_EQ(merged.latency_hist().total(), 0u);
}

}  // namespace
}  // namespace reasched
