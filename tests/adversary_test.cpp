// Executable lower bounds: the §6 constructions must actually force the
// costs the paper proves, against our own schedulers.
#include <gtest/gtest.h>

#include "baseline/greedy_repair_scheduler.hpp"
#include "baseline/opt_rebuild_scheduler.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "feasibility/underallocation.hpp"
#include "sim/driver.hpp"
#include "workload/adversary.hpp"

namespace reasched {
namespace {

TEST(Lemma11, ForcesLinearMigrations) {
  // m = 4 machines, 10 rounds of 6m = 24 requests. Lemma 11: at least m/2
  // migrations per round for ANY deterministic scheduler — ours included.
  constexpr unsigned kMachines = 4;
  constexpr std::uint64_t kRounds = 10;
  ReallocatingScheduler scheduler(kMachines);
  Lemma11Adversary adversary(kMachines, kRounds);
  SimOptions options;
  options.validate_every = 1;
  const auto report = run_adaptive(
      scheduler, [&](const Schedule& s) { return adversary.next(s); }, options);
  EXPECT_TRUE(report.clean()) << report.first_issue;
  // Total migrations >= rounds * m/2 (the span-1 jobs squeeze one span-2
  // job off each of the emptied machines).
  EXPECT_GE(report.metrics.migrations().sum(),
            static_cast<double>(kRounds * kMachines / 2));
}

TEST(Lemma11, AdversaryEmitsSixMRequestsPerRound) {
  constexpr unsigned kMachines = 2;
  Lemma11Adversary adversary(kMachines, 3);
  OptRebuildScheduler scheduler(kMachines);
  const auto report = run_adaptive(
      scheduler, [&](const Schedule& s) { return adversary.next(s); });
  EXPECT_EQ(adversary.requests_emitted(), 3u * 6u * kMachines);
  EXPECT_EQ(report.metrics.requests(), 3u * 6u * kMachines);
}

TEST(Lemma11, RejectsOddMachineCount) {
  EXPECT_THROW(Lemma11Adversary(3, 1), ContractViolation);
  EXPECT_THROW(Lemma11Adversary(1, 1), ContractViolation);
}

TEST(Lemma12, ForcesQuadraticTotalReallocations) {
  // η staircase jobs + toggling fillers: every toggle moves every job, for
  // any scheduler (the schedule is forced). Verify with the EDF-canonical
  // scheduler, which realizes the minimum possible cost here.
  constexpr std::uint64_t kEta = 40;
  constexpr std::uint64_t kToggles = 20;
  const auto trace = make_lemma12_trace(kEta, kToggles);
  OptRebuildScheduler scheduler(1);
  SimOptions options;
  options.validate_every = 1;
  const auto report = replay_trace(scheduler, trace, options);
  EXPECT_TRUE(report.clean()) << report.first_issue;
  // Each of the 2*kToggles filler inserts forces ~kEta moves: Θ(η·toggles),
  // i.e. Θ(s²) when toggles ~ η ~ s.
  EXPECT_GE(report.metrics.reallocations().sum(),
            static_cast<double>(kEta * kToggles));
}

TEST(Lemma12, EdfRepairPaysFullCascadeOnUpwardToggles) {
  // The deadline-driven repair baseline serves the *upward* toggles (its
  // displacement chain moves later-deadline jobs) and pays the full Θ(η)
  // cascade on each one it serves; the downward toggles it cannot serve at
  // all (no occupant has a strictly later deadline) and must reject —
  // greedy repair is not even complete on zero-slack instances.
  constexpr std::uint64_t kEta = 32;
  const auto trace = make_lemma12_trace(kEta, 16);
  GreedyRepairScheduler scheduler(GreedyRepairScheduler::Fit::kEarliest);
  const auto report = replay_trace(scheduler, trace);
  EXPECT_GE(report.metrics.max_reallocations(), kEta);  // the first cascade
  EXPECT_GT(report.metrics.rejected(), 0u);             // downward toggles
  EXPECT_EQ(report.skipped_deletes, report.metrics.rejected());
}

TEST(Lemma12, SpanPeckingOrderCannotServeZeroSlackInstances) {
  // Documented limitation the paper's underallocation assumption exists
  // for: span-based pecking order only displaces strictly-longer jobs, so
  // the zero-slack staircase rejects the filler inserts outright.
  const auto trace = make_lemma12_trace(8, 2);
  NaiveScheduler scheduler;
  const auto report = replay_trace(scheduler, trace);
  EXPECT_GT(report.metrics.rejected(), 0u);
}

TEST(Lemma12, InstanceIsNotUnderallocated) {
  // Sanity: the construction has zero slack — it cannot contradict
  // Theorem 1, whose guarantee needs γ-underallocation.
  const auto trace = make_lemma12_trace(16, 1);
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 16; ++i) {
    jobs.push_back({trace[i].job, trace[i].window});
  }
  EXPECT_FALSE(gamma_underallocated(jobs, 1, 2));
}

}  // namespace
}  // namespace reasched
