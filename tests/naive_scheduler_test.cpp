#include <gtest/gtest.h>

#include "core/naive_scheduler.hpp"
#include "schedule/validator.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

TEST(NaiveScheduler, SingleJobPlacedInWindow) {
  NaiveScheduler s;
  const auto stats = s.insert(JobId{1}, Window{0, 8});
  EXPECT_EQ(stats.reallocations, 0u);
  const auto snap = s.snapshot();
  const auto p = snap.find(JobId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(Window(0, 8).contains(p->slot));
}

TEST(NaiveScheduler, FillsWindowExactly) {
  NaiveScheduler s;
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_NO_THROW(s.insert(JobId{i + 1}, Window{0, 8}));
  }
  // Ninth equal job cannot fit.
  EXPECT_THROW(s.insert(JobId{9}, Window{0, 8}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 8u);
}

TEST(NaiveScheduler, ShortJobDisplacesLongJob) {
  NaiveScheduler s;
  // Long job sits somewhere in [0, 16); then 8 short jobs fill [0, 8).
  s.insert(JobId{100}, Window{0, 16});
  std::uint64_t displacements = 0;
  for (unsigned i = 0; i < 8; ++i) {
    const auto stats = s.insert(JobId{i + 1}, Window{0, 8});
    displacements += stats.reallocations;
  }
  // The long job must have been pushed out of [0, 8) at most once... but at
  // least everything stays feasible:
  std::unordered_map<JobId, Window> active{{JobId{100}, Window{0, 16}}};
  for (unsigned i = 0; i < 8; ++i) active.emplace(JobId{i + 1}, Window{0, 8});
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  EXPECT_LE(displacements, 8u);
}

TEST(NaiveScheduler, CascadeStrictlyIncreasesSpan) {
  NaiveScheduler s;
  // Nested aligned windows: [0,2) ⊂ [0,4) ⊂ [0,8) ⊂ [0,16). Fill from the
  // largest down so each insert of a smaller window displaces upward.
  s.insert(JobId{16}, Window{0, 16});
  s.insert(JobId{8}, Window{0, 8});
  s.insert(JobId{4}, Window{0, 4});
  s.insert(JobId{2}, Window{0, 2});
  // Window [0,2) has 2 slots; inserting two more span-2 jobs forces the
  // longer jobs out of [0,2).
  const auto stats = s.insert(JobId{3}, Window{0, 2});
  // Cascade length is bounded by the number of distinct spans (Lemma 4).
  EXPECT_LE(stats.reallocations, 4u);
  std::unordered_map<JobId, Window> active{
      {JobId{16}, Window{0, 16}}, {JobId{8}, Window{0, 8}}, {JobId{4}, Window{0, 4}},
      {JobId{2}, Window{0, 2}},   {JobId{3}, Window{0, 2}},
  };
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(NaiveScheduler, DeletionIsFree) {
  NaiveScheduler s;
  s.insert(JobId{1}, Window{0, 8});
  s.insert(JobId{2}, Window{0, 8});
  const auto stats = s.erase(JobId{1});
  EXPECT_EQ(stats.reallocations, 0u);
  EXPECT_EQ(s.active_jobs(), 1u);
}

TEST(NaiveScheduler, InsertRejectsDuplicates) {
  NaiveScheduler s;
  s.insert(JobId{1}, Window{0, 8});
  EXPECT_THROW(s.insert(JobId{1}, Window{0, 8}), ContractViolation);
}

TEST(NaiveScheduler, EraseRejectsUnknown) {
  NaiveScheduler s;
  EXPECT_THROW(s.erase(JobId{42}), ContractViolation);
}

TEST(NaiveScheduler, FailedInsertRollsBack) {
  NaiveScheduler s;
  s.insert(JobId{1}, Window{0, 1});
  EXPECT_THROW(s.insert(JobId{2}, Window{0, 1}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 1u);
  // The id can be reused after the failure.
  EXPECT_NO_THROW(s.insert(JobId{2}, Window{1, 2}));
}

TEST(NaiveScheduler, RandomChurnStaysFeasible) {
  NaiveScheduler s;
  Rng rng(17);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next_id = 1;
  for (int step = 0; step < 2000; ++step) {
    if (!active.empty() && rng.chance(0.45)) {
      const auto victim = std::next(active.begin(),
                                    static_cast<long>(rng.uniform(0, active.size() - 1)));
      s.erase(victim->first);
      active.erase(victim);
    } else {
      const unsigned exp = static_cast<unsigned>(rng.uniform(2, 8));
      const Time span = static_cast<Time>(u64{1} << exp);
      const Time start = static_cast<Time>(span * rng.uniform(0, 512 / (u64{1} << (exp - 2))));
      const JobId id{next_id++};
      const Window w{start, start + span};
      try {
        s.insert(id, w);
        active.emplace(id, w);
      } catch (const InfeasibleError&) {
        // dense spot; fine
      }
    }
    if (step % 100 == 0) {
      EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace reasched
