// Audit event-coverage fuzz harness (ROADMAP item): the incremental audit
// engine trusts its event stream — every mutation path in the scheduler
// must fire the matching on_* event, or the engine's shadow counters and
// dirty sets silently diverge from reality. These suites turn that review
// discipline into a tested property: randomized operation *interleavings*
// (insert/erase phase storms, hotspot window reuse, id recycling, random
// batch slicing) run under AuditPolicy differential mode, where every
// incremental audit cross-runs the full O(state) sweep and throws if the
// two ever disagree. A mutation path that forgot its event shows up as a
// shadow-counter mismatch or as dirt the incremental pass never drained —
// either way, a loud InternalError here. The sharded half fuzzes the
// striped balancer ledger's per-stripe dirty sets at 1/2/4 shards.
//
// ctest labels: slow + audit (CMakeLists.txt).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/reservation_scheduler.hpp"
#include "service/sharded_scheduler.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

struct FuzzOp {
  RequestKind kind = RequestKind::kInsert;
  JobId job{};
  Window window{};
};

/// Randomized operation interleavings with deliberately nasty shapes:
/// alternating insert-heavy / erase-heavy phases (forcing n* doublings AND
/// halvings mid-stream), hotspot bases shared by many windows (round-robin
/// reservation churn), erase of a *random* active job (not LIFO/FIFO), and
/// id recycling after erase (dirty-job retraction then re-mark).
std::vector<FuzzOp> make_fuzz_ops(std::uint64_t seed, std::size_t steps) {
  Rng rng(seed);
  std::vector<FuzzOp> ops;
  ops.reserve(steps);
  std::vector<std::pair<JobId, Window>> active;
  std::vector<JobId> recycled;
  std::uint64_t next_id = 1;
  double insert_bias = 0.85;

  for (std::size_t step = 0; step < steps; ++step) {
    if (step % 400 == 399) insert_bias = 1.15 - insert_bias;  // 0.85 <-> 0.30
    const bool insert = active.empty() || rng.chance(insert_bias);
    if (insert) {
      JobId id{next_id++};
      if (!recycled.empty() && rng.chance(0.25)) {
        id = recycled.back();  // recycle: erased ids return to the stream
        recycled.pop_back();
      }
      const Time span = Time{64} << rng.uniform(0, 5);  // 64..2048, aligned
      const Time base = rng.chance(0.4)
                            ? (static_cast<Time>(rng.uniform(0, 3)) * 8192)
                            : (static_cast<Time>(rng.uniform(0, 63)) * span);
      const Window window{base, base + span};
      ops.push_back({RequestKind::kInsert, id, window});
      active.emplace_back(id, window);
    } else {
      const std::size_t at =
          static_cast<std::size_t>(rng.uniform(0, static_cast<int>(active.size()) - 1));
      ops.push_back({RequestKind::kDelete, active[at].first, Window{}});
      recycled.push_back(active[at].first);
      active[at] = active.back();
      active.pop_back();
    }
  }
  return ops;
}

TEST(AuditEventCoverageFuzz, SingleMachineDifferentialInterleavings) {
  // Differential mode: every cadence-th request the incremental pass runs,
  // and (backlog permitting) the full sweep immediately cross-checks it.
  // Any mutation path that skipped its event diverges the shadows → throw.
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    options.rebuild_batch = 16;  // migrations span requests mid-fuzz
    options.audit_policy.mode = audit::Mode::kIncremental;
    options.audit_policy.cadence = 5;
    options.audit_policy.differential = true;
    ReservationScheduler scheduler(options);

    std::size_t rebuilds = 0;
    for (const FuzzOp& op : make_fuzz_ops(seed, 2'500)) {
      try {
        const RequestStats stats = op.kind == RequestKind::kInsert
                                       ? scheduler.insert(op.job, op.window)
                                       : scheduler.erase(op.job);
        rebuilds += stats.rebuilt ? 1 : 0;
      } catch (const InfeasibleError&) {
        // Overloaded interleaving; the state must still audit clean.
      }
    }
    EXPECT_GT(rebuilds, 2u) << "seed " << seed
                            << ": fuzz never crossed an n* boundary";
    ASSERT_NO_THROW(scheduler.incremental_audit()) << "seed " << seed;
    ASSERT_NO_THROW(scheduler.audit()) << "seed " << seed;
  }
}

TEST(AuditEventCoverageFuzz, BudgetedSlicesStayCoherentUnderFuzz) {
  // Budgeted + paced drains leave dirt behind by design; detection must be
  // delayed, never lost. Fuzz with small budgets, then drain everything
  // and demand full agreement at the end.
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.rebuild_batch = 16;
  options.audit_policy.mode = audit::Mode::kIncremental;
  options.audit_policy.cadence = 3;
  options.audit_policy.budget = 24;
  options.audit_policy.post_swap_budget = 8;
  ReservationScheduler scheduler(options);

  for (const FuzzOp& op : make_fuzz_ops(97, 2'500)) {
    try {
      if (op.kind == RequestKind::kInsert) {
        scheduler.insert(op.job, op.window);
      } else {
        scheduler.erase(op.job);
      }
    } catch (const InfeasibleError&) {
    }
  }
  std::size_t drains = 0;
  while (scheduler.audit_backlog() > 0) {
    ASSERT_NO_THROW(scheduler.incremental_audit());
    ASSERT_LT(++drains, 100'000u) << "backlog failed to converge";
  }
  ASSERT_NO_THROW(scheduler.audit());
  ASSERT_NO_THROW(scheduler.verify_fulfillment_cache());
}

TEST(AuditEventCoverageFuzz, ShardedLedgerDifferentialAtShardCounts) {
  // The striped balancer ledger's per-stripe dirty sets see the same fuzz
  // through random batch slicing; after every slice both the incremental
  // per-stripe audit and the full Lemma 3 sweep must accept, and the
  // per-machine engines run their own differential audits throughout.
  for (const unsigned shards : {1u, 2u, 4u}) {
    SchedulerOptions machine_options;
    machine_options.overflow = OverflowPolicy::kBestEffort;
    machine_options.audit_policy.mode = audit::Mode::kIncremental;
    machine_options.audit_policy.cadence = 16;
    machine_options.audit_policy.differential = true;
    ShardedScheduler::Options options;
    options.shards = shards;
    ShardedScheduler scheduler(
        4,
        [machine_options] {
          return std::make_unique<ReservationScheduler>(machine_options);
        },
        options);

    const auto ops = make_fuzz_ops(1'000 + shards, 2'000);
    std::vector<Request> requests;
    requests.reserve(ops.size());
    for (const FuzzOp& op : ops) requests.push_back({op.kind, op.job, op.window});

    Rng rng(555 + shards);
    std::size_t first = 0;
    std::size_t slices = 0;
    while (first < requests.size()) {
      const std::size_t len = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform(1, 64)), requests.size() - first);
      scheduler.apply({requests.data() + first, len});
      first += len;
      if (++slices % 5 == 0) {
        ASSERT_NO_THROW(scheduler.audit_balance_incremental()) << "shards " << shards;
        ASSERT_NO_THROW(scheduler.audit_balance()) << "shards " << shards;
      }
    }
    ASSERT_NO_THROW(scheduler.audit_balance_incremental()) << "shards " << shards;
    ASSERT_NO_THROW(scheduler.audit_balance()) << "shards " << shards;
  }
}

}  // namespace
}  // namespace reasched
