#include <gtest/gtest.h>

#include <memory>

#include "core/multi_machine.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"

namespace reasched {
namespace {

MultiMachineScheduler::Factory naive_factory() {
  return [] { return std::make_unique<NaiveScheduler>(); };
}

TEST(MultiMachine, RoundRobinDelegation) {
  MultiMachineScheduler s(4, naive_factory());
  for (unsigned i = 0; i < 8; ++i) s.insert(JobId{i + 1}, Window{0, 32});
  const auto snap = s.snapshot();
  std::vector<unsigned> per_machine(4, 0);
  for (const auto& [id, placement] : snap.assignments()) {
    ++per_machine[placement.machine];
  }
  for (const auto count : per_machine) EXPECT_EQ(count, 2u);
  s.audit_balance();
}

TEST(MultiMachine, ExtrasOnEarliestMachines) {
  MultiMachineScheduler s(4, naive_factory());
  for (unsigned i = 0; i < 6; ++i) s.insert(JobId{i + 1}, Window{0, 32});
  const auto snap = s.snapshot();
  std::vector<unsigned> per_machine(4, 0);
  for (const auto& [id, placement] : snap.assignments()) ++per_machine[placement.machine];
  EXPECT_EQ(per_machine[0], 2u);
  EXPECT_EQ(per_machine[1], 2u);
  EXPECT_EQ(per_machine[2], 1u);
  EXPECT_EQ(per_machine[3], 1u);
  s.audit_balance();
}

TEST(MultiMachine, DeleteCausesAtMostOneMigration) {
  MultiMachineScheduler s(4, naive_factory());
  for (unsigned i = 0; i < 16; ++i) s.insert(JobId{i + 1}, Window{0, 32});
  for (unsigned i = 0; i < 16; ++i) {
    const auto stats = s.erase(JobId{i + 1});
    EXPECT_LE(stats.migrations, 1u);
    s.audit_balance();
  }
}

TEST(MultiMachine, InsertNeverMigrates) {
  MultiMachineScheduler s(3, naive_factory());
  for (unsigned i = 0; i < 30; ++i) {
    const auto stats = s.insert(JobId{i + 1}, Window{0, 64});
    EXPECT_EQ(stats.migrations, 0u);
  }
}

TEST(MultiMachine, BalanceHoldsUnderChurnAcrossWindows) {
  MultiMachineScheduler s(2, naive_factory());
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  const std::vector<Window> windows = {{0, 32}, {32, 64}, {0, 64}, {64, 96}};
  for (int round = 0; round < 6; ++round) {
    for (const auto& w : windows) {
      for (int i = 0; i < 3; ++i) {
        const JobId id{next++};
        s.insert(id, w);
        active.emplace(id, w);
      }
    }
    // Delete a third of everything.
    std::vector<JobId> victims;
    std::size_t count = 0;
    for (const auto& [id, w] : active) {
      if (++count % 3 == 0) victims.push_back(id);
    }
    for (const JobId id : victims) {
      const auto stats = s.erase(id);
      EXPECT_LE(stats.migrations, 1u);
      active.erase(id);
    }
    s.audit_balance();
    EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  }
}

TEST(MultiMachine, SingleMachineDegeneratesGracefully) {
  MultiMachineScheduler s(1, naive_factory());
  for (unsigned i = 0; i < 8; ++i) {
    const auto stats = s.insert(JobId{i + 1}, Window{0, 16});
    EXPECT_EQ(stats.migrations, 0u);
  }
  for (unsigned i = 0; i < 8; ++i) {
    const auto stats = s.erase(JobId{i + 1});
    EXPECT_EQ(stats.migrations, 0u);  // nowhere to migrate to
  }
}

TEST(MultiMachine, FailedInsertLeavesLedgerClean) {
  MultiMachineScheduler s(2, naive_factory());
  // Window [0,1): one slot per machine → jobs 1 and 2 fit, 3 cannot.
  s.insert(JobId{1}, Window{0, 1});
  s.insert(JobId{2}, Window{0, 1});
  EXPECT_THROW(s.insert(JobId{3}, Window{0, 1}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 2u);
  s.audit_balance();
  // Deleting still works and migrates at most once.
  const auto stats = s.erase(JobId{1});
  EXPECT_LE(stats.migrations, 1u);
}

TEST(MultiMachine, WorksWithReservationScheduler) {
  SchedulerOptions options;
  options.audit = true;
  MultiMachineScheduler s(
      2, [&] { return std::make_unique<ReservationScheduler>(options); });
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 24; ++i) {
    const JobId id{i + 1};
    s.insert(id, Window{0, 256});
    active.emplace(id, Window{0, 256});
  }
  for (unsigned i = 0; i < 12; ++i) {
    const auto stats = s.erase(JobId{i + 1});
    EXPECT_LE(stats.migrations, 1u);
    active.erase(JobId{i + 1});
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  s.audit_balance();
}

TEST(MultiMachine, RejectsZeroMachines) {
  EXPECT_THROW(MultiMachineScheduler(0, naive_factory()), ContractViolation);
}

}  // namespace
}  // namespace reasched
