#include <gtest/gtest.h>

#include "baseline/greedy_repair_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "sim/driver.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

TEST(SimDriver, ReplayCollectsMetrics) {
  ChurnParams params;
  params.requests = 800;
  params.target_active = 64;
  const auto trace = make_churn_trace(params);

  ReallocatingScheduler scheduler(1);
  SimOptions options;
  options.validate_every = 50;
  const auto report = replay_trace(scheduler, trace, options);
  EXPECT_TRUE(report.clean()) << report.first_issue;
  EXPECT_EQ(report.metrics.requests() + report.metrics.rejected(), trace.size());
  EXPECT_GT(report.metrics.inserts(), 0u);
  EXPECT_GT(report.metrics.deletes(), 0u);
}

TEST(SimDriver, CostCrossCheckAgainstDiff) {
  ChurnParams params;
  params.requests = 600;
  params.target_active = 48;
  const auto trace = make_churn_trace(params);

  ReallocatingScheduler scheduler(2);
  SimOptions options;
  options.validate_every = 1;
  options.check_costs_every = 1;
  const auto report = replay_trace(scheduler, trace, options);
  EXPECT_EQ(report.cost_mismatches, 0u) << report.first_issue;
  EXPECT_EQ(report.validation_failures, 0u) << report.first_issue;
}

TEST(SimDriver, OnRequestHookSeesEveryRequest) {
  ChurnParams params;
  params.requests = 100;
  params.target_active = 16;
  const auto trace = make_churn_trace(params);
  ReallocatingScheduler scheduler(1);
  SimOptions options;
  std::size_t seen = 0;
  options.on_request = [&](std::size_t index, const Request&, const RequestStats&) {
    EXPECT_EQ(index, seen);
    ++seen;
  };
  const auto report = replay_trace(scheduler, trace, options);
  EXPECT_EQ(seen, report.metrics.requests());
}

TEST(SimDriver, ToleratesInfeasibleInserts) {
  // A trace that double-books a single slot: second insert is rejected.
  std::vector<Request> trace = {
      Request::insert(JobId{1}, Window{0, 1}),
      Request::insert(JobId{2}, Window{0, 1}),
  };
  GreedyRepairScheduler scheduler;
  SimOptions options;
  options.tolerate_infeasible = true;
  const auto report = replay_trace(scheduler, trace, options);
  EXPECT_EQ(report.metrics.rejected(), 1u);
  EXPECT_EQ(report.metrics.inserts(), 1u);
}

TEST(SimDriver, RethrowsWhenNotTolerated) {
  std::vector<Request> trace = {
      Request::insert(JobId{1}, Window{0, 1}),
      Request::insert(JobId{2}, Window{0, 1}),
  };
  GreedyRepairScheduler scheduler;
  SimOptions options;
  options.tolerate_infeasible = false;
  EXPECT_THROW((void)replay_trace(scheduler, trace, options), InfeasibleError);
}

TEST(SimDriver, AdaptiveAdversaryLoop) {
  // A tiny adaptive adversary: insert three jobs, then delete the one the
  // scheduler placed earliest.
  GreedyRepairScheduler scheduler;
  int phase = 0;
  const auto adversary = [&](const Schedule& current) -> std::optional<Request> {
    if (phase < 3) {
      return Request::insert(JobId{static_cast<std::uint64_t>(++phase)}, Window{0, 8});
    }
    if (phase == 3) {
      ++phase;
      JobId earliest{};
      Time best = 1000;
      for (const auto& [id, placement] : current.assignments()) {
        if (placement.slot < best) {
          best = placement.slot;
          earliest = id;
        }
      }
      return Request::erase(earliest);
    }
    return std::nullopt;
  };
  const auto report = run_adaptive(scheduler, adversary);
  EXPECT_EQ(report.metrics.requests(), 4u);
  EXPECT_EQ(scheduler.active_jobs(), 2u);
}

}  // namespace
}  // namespace reasched
