// White-box tests of the reservation machinery: Invariant 5 arithmetic,
// fulfillment priority, Lemma 8 surplus, Observation 7 history independence.
#include <gtest/gtest.h>

#include "core/reservation_scheduler.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

SchedulerOptions bare() {
  SchedulerOptions options;
  options.trimming = false;
  options.audit = true;
  return options;
}

using Entries = std::vector<ReservationScheduler::FulfillmentEntry>;

const ReservationScheduler::FulfillmentEntry* row_for(const Entries& entries,
                                                      Window w) {
  for (const auto& entry : entries) {
    if (entry.window.window() == w) return &entry;
  }
  return nullptr;
}

TEST(ReservationLedger, BaselineOneReservationPerInterval) {
  ReservationScheduler s(bare());
  // No jobs at all: every window holds exactly its baseline reservation.
  const auto entries = s.fulfillment_of_interval(1, 0);
  ASSERT_FALSE(entries.empty());
  for (const auto& entry : entries) {
    EXPECT_FALSE(entry.active);
    EXPECT_EQ(entry.reservations, 1u);
    EXPECT_EQ(entry.fulfilled, 1u);  // empty interval fulfils everything
  }
}

TEST(ReservationLedger, Invariant5TotalsAndRoundRobin) {
  ReservationScheduler s(bare());
  // Window [0, 256): level 1, 2^k = 8 intervals of 32 slots.
  const Window w{0, 256};
  for (unsigned x = 1; x <= 12; ++x) {
    s.insert(JobId{x}, w);
    std::uint64_t total = 0;
    std::uint32_t low = ~0u;
    std::uint32_t high = 0;
    std::uint32_t previous = ~0u;
    bool monotone_after_drop = true;
    for (Time base = 0; base < 256; base += 32) {
      const auto entries = s.fulfillment_of_interval(1, base);
      const auto* row = row_for(entries, w);
      ASSERT_NE(row, nullptr);
      EXPECT_TRUE(row->active);
      total += row->reservations;
      low = std::min(low, row->reservations);
      high = std::max(high, row->reservations);
      if (previous != ~0u && row->reservations > previous) monotone_after_drop = false;
      previous = row->reservations;
    }
    // Invariant 5: total = 2x + 2^k, counts differ by at most 1, and the
    // leftmost intervals carry the extras (monotone non-increasing).
    EXPECT_EQ(total, 2ull * x + 8) << "x=" << x;
    EXPECT_LE(high - low, 1u) << "x=" << x;
    EXPECT_TRUE(monotone_after_drop) << "x=" << x;
    EXPECT_EQ(low, (2 * x) / 8 + 1) << "x=" << x;
  }
}

TEST(ReservationLedger, ShorterWindowsHavePriority) {
  ReservationScheduler s(bare());
  // Saturate a level-1 interval's allowance with level-0 jobs, shrinking
  // what is left for level-1 windows: shortest window wins the remainder.
  const Window short_window{0, 64};
  const Window long_window{0, 256};
  for (unsigned i = 0; i < 4; ++i) s.insert(JobId{i + 1}, short_window);
  for (unsigned i = 0; i < 4; ++i) s.insert(JobId{100 + i}, long_window);
  // Fill slots [0, 28) of interval [0, 32) with level-0 jobs.
  for (unsigned i = 0; i < 28; ++i) s.insert(JobId{1000 + i}, Window{0, 32});

  const auto entries = s.fulfillment_of_interval(1, 0);
  const auto* short_row = row_for(entries, short_window);
  const auto* long_row = row_for(entries, long_window);
  ASSERT_NE(short_row, nullptr);
  ASSERT_NE(long_row, nullptr);
  // Allowance is 4 slots; the short window's demand is served first.
  EXPECT_EQ(short_row->fulfilled,
            std::min<std::uint32_t>(short_row->reservations, 4));
  EXPECT_LE(long_row->fulfilled + short_row->fulfilled, 4u);
  EXPECT_LE(long_row->fulfilled, long_row->reservations);
}

TEST(ReservationLedger, Lemma8SurplusHolds) {
  // Under 8-underallocation every window with x jobs has >= x+1 fulfilled
  // reservations in total.
  ReservationScheduler s(bare());
  const Window w{0, 256};
  for (unsigned x = 1; x <= 20; ++x) {  // 256/8 = 32 budget; stay below
    s.insert(JobId{x}, w);
    std::uint64_t fulfilled = 0;
    for (Time base = 0; base < 256; base += 32) {
      const auto* row = row_for(s.fulfillment_of_interval(1, base), w);
      ASSERT_NE(row, nullptr);
      fulfilled += row->fulfilled;
    }
    EXPECT_GE(fulfilled, static_cast<std::uint64_t>(x) + 1) << "x=" << x;
  }
}

TEST(ReservationLedger, HistoryIndependenceObservation7) {
  // Build the same active set along three different request histories; the
  // fulfillment tables must be identical (Observation 7).
  const Window a{0, 64};
  const Window b{0, 256};
  const Window c{64, 128};
  const Window level0{0, 16};

  auto fulfillment_signature = [](ReservationScheduler& s) {
    std::vector<std::uint32_t> signature;
    for (Time base = 0; base < 256; base += 32) {
      for (const auto& entry : s.fulfillment_of_interval(1, base)) {
        signature.push_back(entry.reservations);
        signature.push_back(entry.fulfilled);
      }
    }
    return signature;
  };

  ReservationScheduler s1(bare());
  s1.insert(JobId{1}, a);
  s1.insert(JobId{2}, a);
  s1.insert(JobId{3}, b);
  s1.insert(JobId{4}, c);
  s1.insert(JobId{5}, level0);

  ReservationScheduler s2(bare());
  s2.insert(JobId{5}, level0);
  s2.insert(JobId{4}, c);
  s2.insert(JobId{3}, b);
  s2.insert(JobId{2}, a);
  s2.insert(JobId{1}, a);

  ReservationScheduler s3(bare());
  // Same multiset reached through inserts and deletes.
  s3.insert(JobId{9}, b);
  s3.insert(JobId{1}, a);
  s3.insert(JobId{3}, b);
  s3.erase(JobId{9});
  s3.insert(JobId{2}, a);
  s3.insert(JobId{8}, a);
  s3.insert(JobId{4}, c);
  s3.erase(JobId{8});
  s3.insert(JobId{5}, level0);

  EXPECT_EQ(fulfillment_signature(s1), fulfillment_signature(s2));
  EXPECT_EQ(fulfillment_signature(s1), fulfillment_signature(s3));
}

TEST(ReservationLedger, FulfillmentRespectsAllowance) {
  ReservationScheduler s(bare());
  const Window w{0, 64};
  s.insert(JobId{1}, w);
  s.insert(JobId{2}, w);
  // Sum of fulfilled never exceeds the interval size minus lower-level jobs.
  for (unsigned i = 0; i < 16; ++i) s.insert(JobId{100 + i}, Window{0, 32});
  const auto entries = s.fulfillment_of_interval(1, 0);
  std::uint64_t total_fulfilled = 0;
  for (const auto& entry : entries) total_fulfilled += entry.fulfilled;
  EXPECT_LE(total_fulfilled, 32u - 16u);
}

TEST(ReservationLedger, DeepTowerLevelsWork) {
  // Custom tower makes level 3 reachable at span 2^17: exercise the
  // cross-level machinery deeper than the paper constants allow.
  SchedulerOptions options;
  options.trimming = false;
  options.audit = true;
  options.levels = LevelTable::custom({32, 256, pow2(16), pow2(62)});
  ReservationScheduler s(options);
  s.insert(JobId{1}, Window{0, static_cast<Time>(pow2(17))});  // level 3
  s.insert(JobId{2}, Window{0, static_cast<Time>(pow2(12))});  // level 2
  s.insert(JobId{3}, Window{0, 64});                           // level 1
  s.insert(JobId{4}, Window{0, 8});                            // level 0
  EXPECT_EQ(s.active_jobs(), 4u);
  s.erase(JobId{2});
  s.erase(JobId{1});
  s.erase(JobId{4});
  s.erase(JobId{3});
  EXPECT_EQ(s.active_jobs(), 0u);
}

}  // namespace
}  // namespace reasched
