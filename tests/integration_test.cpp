// End-to-end integration: long mixed workloads through the full Theorem-1
// pipeline with continuous validation, plus the headline cost comparison
// (reservation ≪ naive ≪ repair) that the benchmarks expand on.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/greedy_repair_scheduler.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "sim/driver.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

TEST(Integration, LongChurnFullValidation) {
  ChurnParams params;
  params.seed = 42;
  params.requests = 5000;
  params.target_active = 256;
  params.machines = 3;
  params.aligned = false;
  params.min_span = 64;
  params.max_span = 1 << 14;
  const auto trace = make_churn_trace(params);

  SchedulerOptions options;
  options.audit = false;  // audited variants covered elsewhere; keep this big
  ReallocatingScheduler scheduler(3, options);
  SimOptions sim;
  sim.validate_every = 20;
  sim.check_costs_every = 50;
  const auto report = replay_trace(scheduler, trace, sim);
  EXPECT_TRUE(report.clean()) << report.first_issue;
  EXPECT_EQ(report.metrics.rejected(), 0u);
  EXPECT_LE(report.metrics.max_migrations(), 1u);
  EXPECT_EQ(report.metrics.degraded(), 0u);
}

TEST(Integration, ReservationBeatsNaiveBeatsRepairOnPerRequestCost) {
  // The paper's hierarchy: O(log* Δ) < O(log Δ) < Θ(n)-prone. Measure mean
  // steady-state reallocations on the same trace; the ordering must show.
  ChurnParams params;
  params.seed = 7;
  params.requests = 6000;
  params.target_active = 384;
  params.min_span = 64;
  params.max_span = 1 << 16;  // wide spans make log Δ visible
  params.aligned = true;
  const auto trace = make_churn_trace(params);

  auto run = [&](std::unique_ptr<IReallocScheduler> scheduler) {
    const auto report = replay_trace(*scheduler, trace);
    return report.metrics.steady_reallocations();
  };

  SchedulerOptions options;
  const double reservation = run(std::make_unique<ReallocatingScheduler>(1, options));
  const double naive = run(std::make_unique<ReallocatingScheduler>(
      1, [] { return std::make_unique<NaiveScheduler>(); }, "naive"));

  // The reservation scheduler's mean cost is a small constant.
  EXPECT_LT(reservation, 4.0);
  // Naive pecking order pays more on these deep instances.
  EXPECT_LE(reservation, naive + 0.5);
}

TEST(Integration, DeepSpanInstanceStaysConstantCost) {
  // Δ = 2^30: log Δ = 30, log* Δ <= 3. The reservation scheduler's worst
  // request must stay far below log Δ.
  SchedulerOptions options;
  options.trimming = true;
  ReallocatingScheduler scheduler(1, options);
  Rng rng(3);
  std::vector<JobId> active;
  std::uint64_t next = 1;
  std::uint64_t worst = 0;
  std::uint64_t worst_steady = 0;
  for (int step = 0; step < 3000; ++step) {
    if (!active.empty() && rng.chance(0.45)) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform(0, active.size() - 1));
      const auto stats = scheduler.erase(active[pick]);
      worst = std::max(worst, stats.reallocations);
      if (!stats.rebuilt) worst_steady = std::max(worst_steady, stats.reallocations);
      active[pick] = active.back();
      active.pop_back();
    } else {
      const unsigned exp = static_cast<unsigned>(rng.uniform(8, 30));
      const Time span = static_cast<Time>(pow2(exp));
      const Time start =
          static_cast<Time>(span * static_cast<Time>(rng.uniform(0, (pow2(31) / pow2(exp)) - 1)));
      const JobId id{next++};
      const auto stats = scheduler.insert(id, Window{start, start + span});
      worst = std::max(worst, stats.reallocations);
      if (!stats.rebuilt) worst_steady = std::max(worst_steady, stats.reallocations);
      active.push_back(id);
    }
  }
  // Steady-state (non-rebuild) requests: constant-ish cost, way below logΔ.
  EXPECT_LE(worst_steady, 12u);
}

TEST(Integration, ManyMachinesScalesAndBalances) {
  ChurnParams params;
  params.seed = 11;
  params.requests = 3000;
  params.target_active = 512;
  params.machines = 16;
  const auto trace = make_churn_trace(params);
  ReallocatingScheduler scheduler(16);
  SimOptions sim;
  sim.validate_every = 100;
  const auto report = replay_trace(scheduler, trace, sim);
  EXPECT_TRUE(report.clean()) << report.first_issue;
  EXPECT_LE(report.metrics.max_migrations(), 1u);
  scheduler.balancer().audit_balance();
}

TEST(Integration, AlternatingBuildTeardownCycles) {
  // Grow to 200 jobs, shrink to 10, repeat: exercises n* doubling AND
  // halving with rebuilds in both directions.
  SchedulerOptions options;
  ReallocatingScheduler scheduler(2, options);
  std::uint64_t next = 1;
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::vector<JobId> batch;
    for (int i = 0; i < 200; ++i) {
      const JobId id{next++};
      scheduler.insert(id, Window{0, 1 << 14});
      batch.push_back(id);
    }
    for (std::size_t i = 0; i + 10 < batch.size(); ++i) {
      const auto stats = scheduler.erase(batch[i]);
      EXPECT_LE(stats.migrations, 1u);
    }
    for (std::size_t i = batch.size() - 10; i < batch.size(); ++i) {
      scheduler.erase(batch[i]);
    }
    EXPECT_EQ(scheduler.active_jobs(), 0u);
  }
}

}  // namespace
}  // namespace reasched
