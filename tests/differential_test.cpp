// Differential testing: every scheduler in the repository replays the same
// traces; all must maintain feasibility, report costs consistent with the
// snapshot diff, and (for balancer-based ones) respect the one-migration
// bound. Any divergence in these universals is a bug in somebody.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/greedy_repair_scheduler.hpp"
#include "baseline/opt_rebuild_scheduler.hpp"
#include "core/incremental_rebuild.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "sim/driver.hpp"
#include "sim/sweep.hpp"
#include "workload/churn.hpp"
#include "workload/funnel.hpp"

namespace reasched {
namespace {

std::vector<SweepJob> full_roster_jobs(const std::vector<Request>& trace,
                                       unsigned machines, const SimOptions& sim) {
  SchedulerOptions best_effort;
  best_effort.overflow = OverflowPolicy::kBestEffort;
  std::vector<SweepJob> jobs;
  jobs.push_back({[machines, best_effort] {
                    return std::make_unique<ReallocatingScheduler>(machines,
                                                                   best_effort);
                  },
                  &trace, sim});
  jobs.push_back({[machines, best_effort] {
                    return std::make_unique<ReallocatingScheduler>(
                        machines,
                        [best_effort] {
                          return std::make_unique<IncrementalRebuildScheduler>(
                              best_effort);
                        },
                        "incremental");
                  },
                  &trace, sim});
  jobs.push_back({[machines] {
                    return std::make_unique<ReallocatingScheduler>(
                        machines, [] { return std::make_unique<NaiveScheduler>(); },
                        "naive");
                  },
                  &trace, sim});
  jobs.push_back({[machines] {
                    return std::make_unique<ReallocatingScheduler>(
                        machines,
                        [] {
                          return std::make_unique<GreedyRepairScheduler>(
                              GreedyRepairScheduler::Fit::kEarliest);
                        },
                        "edf");
                  },
                  &trace, sim});
  jobs.push_back(
      {[machines] { return std::make_unique<OptRebuildScheduler>(machines); }, &trace,
       sim});
  return jobs;
}

TEST(Differential, AllSchedulersCleanOnChurn) {
  ChurnParams params;
  params.seed = 77;
  params.requests = 1500;
  params.target_active = 128;
  params.machines = 2;
  params.min_span = 64;
  params.max_span = 2048;
  const auto trace = make_churn_trace(params);

  SimOptions sim;
  sim.validate_every = 10;
  sim.check_costs_every = 20;
  const auto reports = replay_sweep(full_roster_jobs(trace, 2, sim));
  const char* names[] = {"reservation", "incremental", "naive", "edf", "opt"};
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_TRUE(reports[i].clean()) << names[i] << ": " << reports[i].first_issue;
    EXPECT_EQ(reports[i].metrics.rejected(), 0u) << names[i];
    if (i != 4) {  // all but opt-rebuild sit behind the §3 balancer
      EXPECT_LE(reports[i].metrics.max_migrations(), 1u) << names[i];
    }
  }
}

TEST(Differential, AllSchedulersCleanOnFunnel) {
  FunnelParams params;
  params.seed = 5;
  params.min_span_log = 6;
  params.max_span_log = 13;
  params.churn_pairs = 500;
  params.adversarial = true;
  const auto trace = make_funnel_trace(params);

  SimOptions sim;
  sim.validate_every = 25;
  sim.check_costs_every = 50;
  const auto reports = replay_sweep(full_roster_jobs(trace, 1, sim));
  for (const auto& report : reports) {
    EXPECT_TRUE(report.clean()) << report.first_issue;
  }
}

TEST(Differential, ReservationNeverDegradesWhereNaiveSucceeds) {
  // On γ-underallocated traces the reservation scheduler must never park;
  // the comparison quantifies the paper's core promise.
  for (const std::uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    ChurnParams params;
    params.seed = seed;
    params.requests = 800;
    params.target_active = 96;
    params.min_span = 64;
    params.max_span = 4096;
    const auto trace = make_churn_trace(params);
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    ReallocatingScheduler reservation(1, options);
    const auto report = replay_trace(reservation, trace);
    EXPECT_EQ(report.metrics.degraded(), 0u) << "seed " << seed;
    EXPECT_EQ(report.metrics.rejected(), 0u) << "seed " << seed;
  }
}

TEST(Differential, DoubledTraceKeepsDeamortizedVariantHealthy) {
  // §4: the deamortized variant needs the duplicated instance to stay
  // feasible, i.e. the original to be 2γ-underallocated. Our generator's
  // γ=16 traces satisfy the γ=8 machinery with the required factor 2.
  ChurnParams params;
  params.seed = 31;
  params.requests = 1200;
  params.target_active = 128;
  params.gamma = 16;
  params.min_span = 64;
  params.max_span = 4096;
  const auto trace = make_churn_trace(params);

  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  ReallocatingScheduler incremental(
      1, [options] { return std::make_unique<IncrementalRebuildScheduler>(options); },
      "incremental");
  SimOptions sim;
  sim.validate_every = 10;
  const auto report = replay_trace(incremental, trace, sim);
  EXPECT_TRUE(report.clean()) << report.first_issue;
  EXPECT_EQ(report.metrics.degraded(), 0u);
}

}  // namespace
}  // namespace reasched
