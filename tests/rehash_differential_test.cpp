// Incremental two-table rehash (DESIGN.md §8): growing the flat-hash tier
// incrementally must be *observably invisible* — schedules, per-request
// stats and machine assignments byte-identical to the stop-the-world
// legacy_rehash path, whichever rebuild path is active, at every shard
// count. The guarantee rests on every layout-sensitive choice point in the
// scheduler iterating insertion-ordered DenseHashSets (acquire_slot's
// fast-path scan, the balance ledger's pool.back() donor pick), whose
// order is a pure function of the operation sequence rather than of hash
// layout; these suites would catch any future choice point that leaks
// hash layout into behavior.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/multi_machine.hpp"
#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"
#include "service/sharded_scheduler.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

std::vector<Request> churn_trace(std::uint64_t seed, std::size_t requests,
                                 std::size_t target, unsigned machines = 1) {
  ChurnParams params;
  params.seed = seed;
  params.requests = requests;
  params.target_active = target;
  params.machines = machines;
  params.min_span = 64;
  params.max_span = 4096;
  params.aligned = true;
  params.placement = WindowPlacement::kNestedHotspots;
  return make_churn_trace(params);
}

void expect_same_schedule(const Schedule& want, const Schedule& got,
                          const char* where) {
  ASSERT_EQ(want.size(), got.size()) << where;
  for (const auto& [job, placement] : want.assignments()) {
    const auto other = got.find(job);
    ASSERT_TRUE(other.has_value()) << where << ": job " << job.value << " missing";
    ASSERT_EQ(placement.machine, other->machine) << where << ": job " << job.value;
    ASSERT_EQ(placement.slot, other->slot) << where << ": job " << job.value;
  }
}

void expect_same_stats(const RequestStats& a, const RequestStats& b, std::size_t at) {
  ASSERT_EQ(a.reallocations, b.reallocations) << "request " << at;
  ASSERT_EQ(a.levels_touched, b.levels_touched) << "request " << at;
  ASSERT_EQ(a.degraded, b.degraded) << "request " << at;
  ASSERT_EQ(a.rebuilt, b.rebuilt) << "request " << at;
}

// The job table / occupancy index reach ~3000 entries in these traces —
// well past FlatHashMap::kMinIncrementalCapacity·3/4 = 768, so the
// incremental run genuinely exercises two-table migrations on the hot
// tables (flat_hash_test pins the threshold arithmetic itself).
constexpr std::size_t kTarget = 3'000;
constexpr std::size_t kRequests = 9'000;

TEST(RehashDifferential, SingleMachineByteIdenticalBothRebuildPaths) {
  for (const bool legacy_rebuild : {false, true}) {
    SchedulerOptions base;
    base.overflow = OverflowPolicy::kBestEffort;
    base.legacy_rebuild = legacy_rebuild;

    SchedulerOptions incremental = base;
    SchedulerOptions legacy = base;
    legacy.legacy_rehash = true;
    ReservationScheduler a(incremental);
    ReservationScheduler b(legacy);

    const auto trace = churn_trace(1234, kRequests, kTarget);
    std::size_t at = 0;
    for (const Request& r : trace) {
      const RequestStats sa = r.kind == RequestKind::kInsert
                                  ? a.insert(r.job, r.window)
                                  : a.erase(r.job);
      const RequestStats sb = r.kind == RequestKind::kInsert
                                  ? b.insert(r.job, r.window)
                                  : b.erase(r.job);
      expect_same_stats(sa, sb, at);
      if (++at % 512 == 0) {
        expect_same_schedule(b.snapshot(), a.snapshot(),
                             legacy_rebuild ? "mid/legacy-rebuild" : "mid/partitioned");
      }
    }
    ASSERT_EQ(a.n_star(), b.n_star());
    ASSERT_EQ(a.parked_jobs(), b.parked_jobs());
    expect_same_schedule(b.snapshot(), a.snapshot(),
                         legacy_rebuild ? "final/legacy-rebuild" : "final/partitioned");
    ASSERT_NO_THROW(a.audit());
    ASSERT_NO_THROW(b.audit());
  }
}

TEST(RehashDifferential, MultiMachineByteIdentical) {
  SchedulerOptions base;
  base.overflow = OverflowPolicy::kBestEffort;
  SchedulerOptions legacy = base;
  legacy.legacy_rehash = true;

  ReallocatingScheduler a(4, base);
  ReallocatingScheduler b(4, legacy);

  const auto trace = churn_trace(77, kRequests, kTarget, 4);
  std::size_t at = 0;
  for (const Request& r : trace) {
    if (r.kind == RequestKind::kInsert) {
      a.insert(r.job, r.window);
      b.insert(r.job, r.window);
    } else {
      a.erase(r.job);
      b.erase(r.job);
    }
    if (++at % 1024 == 0) {
      expect_same_schedule(b.snapshot(), a.snapshot(), "mid/multi-machine");
    }
  }
  expect_same_schedule(b.snapshot(), a.snapshot(), "final/multi-machine");
  ASSERT_NO_THROW(a.balancer().audit_balance());
  ASSERT_NO_THROW(b.balancer().audit_balance());
}

TEST(RehashDifferential, ShardedServiceByteIdenticalAcrossRehashModes) {
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    const auto factory_for = [](bool legacy_rehash) -> ShardedScheduler::Factory {
      SchedulerOptions options;
      options.overflow = OverflowPolicy::kBestEffort;
      options.legacy_rehash = legacy_rehash;
      return [options] { return std::make_unique<ReservationScheduler>(options); };
    };
    ShardedScheduler::Options incremental_opts;
    incremental_opts.shards = shards;
    ShardedScheduler::Options legacy_opts;
    legacy_opts.shards = shards;
    legacy_opts.legacy_rehash = true;
    ShardedScheduler a(8, factory_for(false), incremental_opts);
    ShardedScheduler b(8, factory_for(true), legacy_opts);

    const auto trace = churn_trace(9'000 + shards, 4'000, 1'200, 8);
    for (std::size_t first = 0; first < trace.size(); first += 256) {
      const std::size_t len = std::min<std::size_t>(256, trace.size() - first);
      const BatchResult ra = a.apply({trace.data() + first, len});
      const BatchResult rb = b.apply({trace.data() + first, len});
      ASSERT_EQ(ra.rejected, rb.rejected) << "shards " << shards;
    }
    expect_same_schedule(b.snapshot(), a.snapshot(), "final/sharded");
    ASSERT_NO_THROW(a.audit_balance());
    ASSERT_NO_THROW(b.audit_balance());
  }
}

}  // namespace
}  // namespace reasched
