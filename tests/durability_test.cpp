// Durability tier (DESIGN.md §9): WAL framing + checksums, snapshot
// round-trips, recovery differentials, graceful degradation on corrupt or
// missing durable state, and the audit engine's post-recovery reseed.
// Kill-at-random-point process crashes live in crash_recovery_test.cpp;
// this suite covers everything reachable without dying.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "durability/durable_scheduler.hpp"
#include "durability/recovery.hpp"
#include "durability/snapshot.hpp"
#include "durability/wal.hpp"
#include "schedule/validator.hpp"
#include "service/sharded_scheduler.hpp"
#include "sim/driver.hpp"
#include "util/crc32c.hpp"
#include "workload/churn.hpp"
#include "workload/trace_io.hpp"

namespace reasched {
namespace {

using durability::DurabilityPolicy;
using durability::DurableScheduler;
using durability::Recovery;
using durability::WalReadResult;
using durability::WalRecord;
using durability::WalWriter;

// Unique scratch directory per test, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/reasched-dur-XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    std::system(cmd.c_str());  // NOLINT: test scratch cleanup
  }
};

std::vector<Request> churn_trace(std::uint64_t seed, std::size_t requests,
                                 std::size_t target = 512) {
  ChurnParams params;
  params.seed = seed;
  params.requests = requests;
  params.target_active = target;
  params.min_span = 64;
  params.max_span = 4096;
  params.aligned = true;
  params.placement = WindowPlacement::kNestedHotspots;
  return make_churn_trace(params);
}

SchedulerOptions base_options() {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  options.rebuild_batch = 32;  // migrations genuinely span requests
  return options;
}

RequestStats serve(IReallocScheduler& s, const Request& r) {
  return r.kind == RequestKind::kInsert ? s.insert(r.job, r.window) : s.erase(r.job);
}

void expect_identical_schedules(const Schedule& sa, const Schedule& sb,
                                const char* where) {
  ASSERT_EQ(sa.size(), sb.size()) << where;
  for (const auto& [id, placement] : sa.assignments()) {
    const auto other = sb.find(id);
    ASSERT_TRUE(other.has_value()) << where << ": job " << id.value;
    EXPECT_EQ(placement.machine, other->machine) << where << ": job " << id.value;
    EXPECT_EQ(placement.slot, other->slot) << where << ": job " << id.value;
  }
}

// ------------------------------------------------------------------ crc32c

TEST(Crc32c, KnownVector) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  std::uint32_t chunked = 0;
  for (std::size_t split = 1; split < data.size(); ++split) {
    chunked = crc32c_update(0, data.data(), split);
    chunked = crc32c_update(chunked, data.data() + split, data.size() - split);
    EXPECT_EQ(chunked, whole) << "split " << split;
  }
  EXPECT_NE(crc32c(data.data(), data.size() - 1), whole);
}

// --------------------------------------------------------------------- WAL

std::vector<WalRecord> sample_records(std::size_t count) {
  std::vector<WalRecord> records;
  for (std::size_t i = 1; i <= count; ++i) {
    if (i % 3 == 0) {
      records.push_back(WalRecord::erase(i, JobId{i / 3}));
    } else {
      records.push_back(WalRecord::insert(
          i, JobId{i}, Window{static_cast<Time>(i * 64), static_cast<Time>(i * 64 + 64)}));
    }
  }
  return records;
}

TEST(Wal, RoundTripAcrossFramesAndReopen) {
  TempDir dir;
  const std::string path = durability::wal_path(dir.path, 0);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.frame_bytes = 128;  // force many frames
  policy.sync_every = 2;

  const std::vector<WalRecord> records = sample_records(100);
  {
    WalWriter writer;
    writer.open(path, policy);
    for (std::size_t i = 0; i < 60; ++i) writer.append(records[i]);
    writer.sync();
  }
  {
    // Append more after a clean close — the reader sees one stream.
    WalWriter writer;
    writer.open(path, policy);
    for (std::size_t i = 60; i < records.size(); ++i) writer.append(records[i]);
    EXPECT_GE(writer.stats().frames, 2u);
    EXPECT_GE(writer.stats().syncs, 1u);
  }
  const WalReadResult result = durability::read_wal(path);
  EXPECT_FALSE(result.missing);
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(result.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(result.records[i], records[i]) << "record " << i;
  }
}

TEST(Wal, TornTailIsTruncatedAndAppendResumes) {
  TempDir dir;
  const std::string path = durability::wal_path(dir.path, 0);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.frame_bytes = 64;

  const std::vector<WalRecord> records = sample_records(40);
  {
    WalWriter writer;
    writer.open(path, policy);
    for (std::size_t i = 0; i < 20; ++i) writer.append(records[i]);
  }
  // Simulate a torn write: a frame header promising more payload than the
  // file holds.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    const char garbage[] = "\x40\x00\x00\x00\xde\xad\xbe\xef half a frame";
    torn.write(garbage, sizeof(garbage) - 1);
  }
  WalReadResult result = durability::read_wal(path);
  EXPECT_TRUE(result.torn_tail);
  ASSERT_EQ(result.records.size(), 20u);

  // Truncate-at-bad-checksum, then appending resumes cleanly.
  durability::truncate_wal(path, result.valid_end);
  {
    WalWriter writer;
    writer.open(path, policy);
    for (std::size_t i = 20; i < records.size(); ++i) writer.append(records[i]);
  }
  result = durability::read_wal(path);
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(result.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(result.records[i], records[i]) << "record " << i;
  }
}

TEST(Wal, CorruptPayloadByteStopsAtThatFrame) {
  TempDir dir;
  const std::string path = durability::wal_path(dir.path, 0);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.frame_bytes = 64;
  {
    WalWriter writer;
    writer.open(path, policy);
    for (const WalRecord& record : sample_records(40)) writer.append(record);
  }
  const WalReadResult intact = durability::read_wal(path);
  ASSERT_FALSE(intact.torn_tail);
  ASSERT_EQ(intact.records.size(), 40u);

  // Flip one byte two thirds in: every frame before it survives, the rest
  // is reported as a tear — never a crash, never garbage records.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    file.seekp(size * 2 / 3);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(size * 2 / 3);
    byte = static_cast<char>(byte ^ 0x01);
    file.write(&byte, 1);
  }
  const WalReadResult result = durability::read_wal(path);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_LT(result.records.size(), 40u);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i], intact.records[i]);
  }
}

TEST(Wal, MissingFileAndForeignHeader) {
  TempDir dir;
  const WalReadResult missing = durability::read_wal(dir.path + "/nope.log");
  EXPECT_TRUE(missing.missing);
  EXPECT_TRUE(missing.records.empty());

  const std::string foreign = dir.path + "/foreign.log";
  {
    std::ofstream file(foreign, std::ios::binary);
    file << "definitely not a WAL file, much longer than a header";
  }
  EXPECT_THROW(durability::read_wal(foreign), durability::CorruptInput);
  WalWriter writer;
  EXPECT_THROW(writer.open(foreign, DurabilityPolicy{.dir = dir.path}),
               durability::CorruptInput);
}

// --------------------------------------------------------------- snapshots

TEST(Snapshot, RoundTripIsByteIdenticalAndContinuesInLockstep) {
  TempDir dir;
  const SchedulerOptions options = base_options();
  const std::vector<Request> trace = churn_trace(41, 4'000);

  ReservationScheduler original(options);
  std::size_t cut = 0;
  for (; cut < trace.size(); ++cut) {
    serve(original, trace[cut]);
    // Snapshot at an arbitrary quiescent point mid-trace.
    if (cut >= 2'500 && !original.rebuild_in_flight()) break;
  }
  DurabilityPolicy policy;
  policy.dir = dir.path;
  durability::write_snapshot(dir.path, 1, original, policy);

  ReservationScheduler recovered(options);
  ASSERT_TRUE(
      durability::load_snapshot(durability::snapshot_path(dir.path, 1), recovered));
  expect_identical_schedules(original.snapshot(), recovered.snapshot(), "post-load");
  EXPECT_EQ(original.n_star(), recovered.n_star());
  EXPECT_EQ(original.parked_jobs(), recovered.parked_jobs());
  EXPECT_EQ(original.active_jobs(), recovered.active_jobs());
  recovered.audit();  // full invariant sweep on the recovered state

  // The two instances must now be indistinguishable request by request —
  // including through n*-rebuilds and rehashes the suffix triggers.
  for (std::size_t i = cut + 1; i < trace.size(); ++i) {
    const RequestStats a = serve(original, trace[i]);
    const RequestStats b = serve(recovered, trace[i]);
    EXPECT_EQ(a.reallocations, b.reallocations) << "request " << i;
    EXPECT_EQ(a.levels_touched, b.levels_touched) << "request " << i;
    EXPECT_EQ(a.degraded, b.degraded) << "request " << i;
    EXPECT_EQ(a.rebuilt, b.rebuilt) << "request " << i;
  }
  expect_identical_schedules(original.snapshot(), recovered.snapshot(), "post-suffix");
  recovered.audit();
}

TEST(Snapshot, CorruptionIsDetectedNotTrusted) {
  TempDir dir;
  const SchedulerOptions options = base_options();
  ReservationScheduler s(options);
  for (const Request& r : churn_trace(7, 800)) serve(s, r);
  ASSERT_FALSE(s.rebuild_in_flight());
  DurabilityPolicy policy;
  policy.dir = dir.path;
  durability::write_snapshot(dir.path, 5, s, policy);
  const std::string path = durability::snapshot_path(dir.path, 5);

  // Bit flip in the middle: CRC catches it.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    file.seekp(size / 2);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(size / 2);
    byte = static_cast<char>(byte ^ 0x10);
    file.write(&byte, 1);
  }
  {
    ReservationScheduler fresh(options);
    EXPECT_FALSE(durability::load_snapshot(path, fresh));
  }

  // Truncation (a crash mid-rename of a future overwrite, disk trouble):
  // the length/CRC trailer no longer matches.
  durability::write_snapshot(dir.path, 5, s, policy);  // rewrite intact
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
  }
  {
    ReservationScheduler fresh(options);
    EXPECT_FALSE(durability::load_snapshot(path, fresh));
  }

  // Missing file.
  {
    ReservationScheduler fresh(options);
    EXPECT_FALSE(durability::load_snapshot(dir.path + "/snap-99.snap", fresh));
  }
}

TEST(Snapshot, OptionsFingerprintMismatchRefusesToLoad) {
  TempDir dir;
  SchedulerOptions options = base_options();
  ReservationScheduler s(options);
  for (const Request& r : churn_trace(9, 400)) serve(s, r);
  ASSERT_FALSE(s.rebuild_in_flight());
  DurabilityPolicy policy;
  policy.dir = dir.path;
  durability::write_snapshot(dir.path, 1, s, policy);

  SchedulerOptions other = options;
  other.gamma = 16;  // placement-shaping knob → incompatible state
  ReservationScheduler fresh(other);
  EXPECT_FALSE(
      durability::load_snapshot(durability::snapshot_path(dir.path, 1), fresh));

  // The legacy_* toggles are deliberately NOT in the fingerprint (both
  // modes produce byte-identical schedules).
  SchedulerOptions legacy = options;
  legacy.legacy_rehash = true;
  legacy.legacy_fulfillment = true;
  ReservationScheduler crossmode(legacy);
  EXPECT_TRUE(
      durability::load_snapshot(durability::snapshot_path(dir.path, 1), crossmode));
  expect_identical_schedules(s.snapshot(), crossmode.snapshot(), "cross-mode");
}

TEST(Snapshot, ListAndPruneKeepNewest) {
  TempDir dir;
  const SchedulerOptions options = base_options();
  ReservationScheduler s(options);
  for (const Request& r : churn_trace(3, 300)) serve(s, r);
  ASSERT_FALSE(s.rebuild_in_flight());
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.keep_snapshots = 2;
  for (std::uint64_t csn : {10u, 20u, 30u, 40u}) {
    durability::write_snapshot(dir.path, csn, s, policy);
  }
  const std::vector<std::uint64_t> kept = durability::list_snapshots(dir.path);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 40u);
  EXPECT_EQ(kept[1], 30u);
}

// ---------------------------------------------------------------- recovery

TEST(Recovery, ColdStartOnFreshDirectory) {
  TempDir dir;
  DurabilityPolicy policy;
  policy.dir = dir.path + "/does/not/exist/yet";
  DurableScheduler durable(policy, base_options());
  EXPECT_TRUE(durable.recovery_report().cold_start());
  EXPECT_EQ(durable.csn(), 0u);
  EXPECT_EQ(durable.active_jobs(), 0u);
}

TEST(Recovery, WalOnlyReplayMatchesTwin) {
  TempDir dir;
  const SchedulerOptions options = base_options();
  const std::vector<Request> trace = churn_trace(11, 2'000);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.snapshot_on_flip = false;  // force pure WAL replay
  {
    DurableScheduler durable(policy, options);
    for (const Request& r : trace) serve(durable, r);
    durable.sync();
    EXPECT_EQ(durable.csn(), trace.size());
    EXPECT_EQ(durable.snapshots_written(), 0u);
  }
  DurableScheduler recovered(policy, options);
  EXPECT_EQ(recovered.recovery_report().replayed, trace.size());
  EXPECT_EQ(recovered.csn(), trace.size());

  ReservationScheduler twin(options);
  for (const Request& r : trace) serve(twin, r);
  expect_identical_schedules(twin.snapshot(), recovered.snapshot(), "wal-only");
  ASSERT_NE(recovered.reservation(), nullptr);
  recovered.reservation()->audit();
}

TEST(Recovery, SnapshotPlusSuffixMatchesTwinAndContinues) {
  TempDir dir;
  const SchedulerOptions options = base_options();
  const std::vector<Request> trace = churn_trace(13, 6'000, 768);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.frame_bytes = 1024;
  {
    DurableScheduler durable(policy, options);
    for (const Request& r : trace) serve(durable, r);
    durable.sync();
    // Churn at this scale doubles n* several times; at least one flip
    // snapshot must have fired, so recovery replays a proper suffix.
    EXPECT_GT(durable.snapshots_written(), 0u);
  }
  DurableScheduler recovered(policy, options);
  EXPECT_GT(recovered.recovery_report().snapshot_csn, 0u);
  EXPECT_LT(recovered.recovery_report().replayed, trace.size());
  EXPECT_EQ(recovered.csn(), trace.size());

  ReservationScheduler twin(options);
  for (const Request& r : trace) serve(twin, r);
  expect_identical_schedules(twin.snapshot(), recovered.snapshot(), "snap+suffix");
  EXPECT_EQ(twin.n_star(), recovered.reservation()->n_star());
  EXPECT_EQ(twin.parked_jobs(), recovered.reservation()->parked_jobs());

  // Keep running BOTH — the recovered instance and the twin must stay in
  // lockstep on a fresh suffix (and keep logging: a second recovery works).
  const std::vector<Request> more = churn_trace(14, 1'000);
  for (const Request& r : more) {
    if (r.kind == RequestKind::kInsert) {
      const JobId id{r.job.value + 1'000'000};  // avoid collisions
      const RequestStats a = recovered.insert(id, r.window);
      const RequestStats b = twin.insert(id, r.window);
      EXPECT_EQ(a.reallocations, b.reallocations);
    }
  }
  expect_identical_schedules(twin.snapshot(), recovered.snapshot(), "post-continue");
  recovered.reservation()->audit();
}

TEST(Recovery, CorruptNewestSnapshotFallsBackToOlder) {
  TempDir dir;
  const SchedulerOptions options = base_options();
  const std::vector<Request> trace = churn_trace(17, 3'000);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.snapshot_every = 500;  // several snapshots at known CSNs
  policy.keep_snapshots = 8;
  {
    DurableScheduler durable(policy, options);
    for (const Request& r : trace) serve(durable, r);
    durable.sync();
  }
  std::vector<std::uint64_t> snaps = durability::list_snapshots(dir.path);
  ASSERT_GE(snaps.size(), 2u);
  // Corrupt the newest snapshot.
  {
    const std::string newest = durability::snapshot_path(dir.path, snaps[0]);
    std::fstream file(newest, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(100);
    file.write("\xff\xff\xff\xff", 4);
  }
  DurableScheduler recovered(policy, options);
  EXPECT_EQ(recovered.recovery_report().snapshots_skipped, 1u);
  EXPECT_EQ(recovered.recovery_report().snapshot_csn, snaps[1]);
  EXPECT_EQ(recovered.csn(), trace.size());

  ReservationScheduler twin(options);
  for (const Request& r : trace) serve(twin, r);
  expect_identical_schedules(twin.snapshot(), recovered.snapshot(), "fallback");
}

TEST(Recovery, AuditEngineReseedsAfterRecovery) {
  TempDir dir;
  SchedulerOptions options = base_options();
  options.audit_policy.mode = audit::Mode::kIncremental;
  options.audit_policy.cadence = 0;  // driven manually
  const std::vector<Request> trace = churn_trace(19, 2'000);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  {
    DurableScheduler durable(policy, options);
    for (const Request& r : trace) serve(durable, r);
    durable.sync();
  }
  DurableScheduler recovered(policy, options);
  ASSERT_NE(recovered.reservation(), nullptr);
  ReservationScheduler& rs = *recovered.reservation();

  // The loader escalated via mark_all: the first incremental audit after
  // recovery is a full sweep that reseeds the dirty-tracking shadows.
  const auto before = rs.audit_work();
  rs.incremental_audit();
  const auto after_first = rs.audit_work();
  EXPECT_GT(after_first.full_sweeps, before.full_sweeps);

  // From then on the engine runs incrementally and stays clean.
  std::size_t served = 0;
  for (const Request& r : churn_trace(23, 500)) {
    if (r.kind != RequestKind::kInsert) continue;
    recovered.insert(JobId{r.job.value + 2'000'000}, r.window);
    if (++served % 100 == 0) rs.incremental_audit();
  }
  const auto after_churn = rs.audit_work();
  EXPECT_EQ(after_churn.full_sweeps, after_first.full_sweeps);
  EXPECT_GT(after_churn.incremental_audits, after_first.incremental_audits);
  rs.audit();  // and the full sweep agrees
}

// --------------------------------------------------------- generic wrapper

TEST(Recovery, GenericFactoryModeIsWalOnly) {
  TempDir dir;
  DurabilityPolicy policy;
  policy.dir = dir.path;
  const auto factory = [] {
    return std::make_unique<ReallocatingScheduler>(2, SchedulerOptions{
                                                          .overflow =
                                                              OverflowPolicy::kBestEffort,
                                                      });
  };
  ChurnParams params;
  params.seed = 29;
  params.requests = 1'500;
  params.target_active = 256;
  params.machines = 2;
  params.min_span = 64;
  params.max_span = 2048;
  const std::vector<Request> trace = make_churn_trace(params);
  {
    DurableScheduler durable(policy, factory);
    EXPECT_EQ(durable.reservation(), nullptr);  // multi-machine: WAL-only
    EXPECT_EQ(durable.machines(), 2u);
    for (const Request& r : trace) serve(durable, r);
    durable.sync();
    EXPECT_EQ(durable.snapshots_written(), 0u);
  }
  DurableScheduler recovered(policy, factory);
  EXPECT_EQ(recovered.recovery_report().replayed, trace.size());

  auto twin = factory();
  for (const Request& r : trace) serve(*twin, r);
  expect_identical_schedules(twin->snapshot(), recovered.snapshot(), "generic");
}

// ------------------------------------------------------------ sharded WAL

TEST(Recovery, ShardedPerShardLogsMergeByCsn) {
  TempDir dir;
  const SchedulerOptions machine_options = base_options();
  ShardedScheduler::Options options;
  options.shards = 4;
  options.wal = DurabilityPolicy{};
  options.wal->dir = dir.path;
  const auto factory = [&] {
    return std::make_unique<ReservationScheduler>(machine_options);
  };

  ChurnParams params;
  params.seed = 31;
  params.requests = 2'000;
  params.target_active = 512;
  params.machines = 8;
  params.min_span = 64;
  params.max_span = 2048;
  const std::vector<Request> trace = make_churn_trace(params);

  BatchResult last;
  {
    ShardedScheduler sharded(8, factory, options);
    // Batched feeding: CSNs must come back dense across batches.
    std::uint64_t expect_csn = 1;
    for (std::size_t i = 0; i < trace.size(); i += 64) {
      const std::size_t n = std::min<std::size_t>(64, trace.size() - i);
      last = sharded.apply({trace.data() + i, n});
      if (last.first_csn != 0) {
        EXPECT_EQ(last.first_csn, expect_csn);
        expect_csn = last.last_csn + 1;
      }
    }
    sharded.sync_wal();
    EXPECT_GT(sharded.csn(), 0u);
    // Several shard files actually exist.
    const durability::MergedWal merged = durability::merge_sharded_wal(dir.path);
    EXPECT_GT(merged.shards.size(), 1u);
    EXPECT_EQ(merged.last_csn, sharded.csn());
    EXPECT_EQ(merged.dropped, 0u);
  }

  // Construction is recovery: the per-shard logs replay to the same state.
  ShardedScheduler recovered(8, factory, options);
  EXPECT_GT(recovered.recovery_report().replayed, 0u);
  recovered.audit_balance();

  ShardedScheduler::Options no_wal;
  no_wal.shards = 4;
  ShardedScheduler twin(8, factory, no_wal);
  for (std::size_t i = 0; i < trace.size(); i += 64) {
    const std::size_t n = std::min<std::size_t>(64, trace.size() - i);
    twin.apply({trace.data() + i, n});
  }
  expect_identical_schedules(twin.snapshot(), recovered.snapshot(), "sharded");
  EXPECT_EQ(twin.active_jobs(), recovered.active_jobs());
}

// ------------------------------------------------------------ trace format

TEST(TraceWal, BinaryTraceRoundTrips) {
  TempDir dir;
  const std::string path = dir.path + "/trace.wal";
  const std::vector<Request> trace = churn_trace(37, 1'000);
  write_trace_wal(path, trace);
  const std::vector<Request> loaded = read_trace_wal(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].kind, trace[i].kind) << i;
    EXPECT_EQ(loaded[i].job, trace[i].job) << i;
    if (trace[i].kind == RequestKind::kInsert) {
      EXPECT_EQ(loaded[i].window.start, trace[i].window.start) << i;
      EXPECT_EQ(loaded[i].window.end, trace[i].window.end) << i;
    }
  }
}

TEST(TraceWal, WalFileDoublesAsTrace) {
  // A durability log read back as a trace replays to the recovered state —
  // the "surviving request stream is a bug reproducer" property.
  TempDir dir;
  const SchedulerOptions options = base_options();
  const std::vector<Request> trace = churn_trace(43, 1'200);
  DurabilityPolicy policy;
  policy.dir = dir.path;
  policy.snapshot_on_flip = false;
  {
    DurableScheduler durable(policy, options);
    for (const Request& r : trace) serve(durable, r);
    durable.sync();
  }
  const std::vector<Request> replayed =
      read_trace_wal(durability::wal_path(dir.path, 0));
  ASSERT_EQ(replayed.size(), trace.size());

  ReservationScheduler a(options);
  ReservationScheduler b(options);
  for (const Request& r : trace) serve(a, r);
  for (const Request& r : replayed) serve(b, r);
  expect_identical_schedules(a.snapshot(), b.snapshot(), "wal-as-trace");
}

TEST(TraceWal, SimDriverRecordsServedStream) {
  TempDir dir;
  const std::string path = dir.path + "/recorded.wal";
  const std::vector<Request> trace = churn_trace(47, 600);
  ReservationScheduler s(base_options());
  SimOptions sim;
  sim.record_trace = path;
  const SimReport report = replay_trace(s, trace, sim);
  EXPECT_TRUE(report.clean());
  const std::vector<Request> recorded = read_trace_wal(path);
  EXPECT_EQ(recorded.size(), trace.size());
}

}  // namespace
}  // namespace reasched
