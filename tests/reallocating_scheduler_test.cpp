#include <gtest/gtest.h>

#include <memory>

#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "schedule/validator.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

TEST(ReallocatingScheduler, AcceptsArbitraryWindows) {
  ReallocatingScheduler s(2);
  // Unaligned window: the pipeline aligns internally.
  const auto stats = s.insert(JobId{1}, Window{3, 77});
  EXPECT_EQ(stats.reallocations, 0u);
  const auto p = s.snapshot().find(JobId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(Window(3, 77).contains(p->slot));  // placement honors original
}

TEST(ReallocatingScheduler, PlacementInsideOriginalWindowAlways) {
  ReallocatingScheduler s(1);
  Rng rng(31);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  for (int i = 0; i < 300; ++i) {
    const Time start = static_cast<Time>(rng.uniform(0, 1 << 16));
    const Time span = static_cast<Time>(rng.uniform(64, 2048));
    const JobId id{next++};
    const Window w{start, start + span};
    s.insert(id, w);
    active.emplace(id, w);
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(ReallocatingScheduler, DeleteMigratesAtMostOne) {
  ReallocatingScheduler s(4);
  std::vector<JobId> ids;
  for (unsigned i = 0; i < 40; ++i) {
    const JobId id{i + 1};
    s.insert(id, Window{0, 512});
    ids.push_back(id);
  }
  for (const JobId id : ids) {
    const auto stats = s.erase(id);
    EXPECT_LE(stats.migrations, 1u);
  }
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST(ReallocatingScheduler, NameAndMachines) {
  ReallocatingScheduler s(3);
  EXPECT_EQ(s.machines(), 3u);
  EXPECT_NE(s.name().find("m=3"), std::string::npos);
}

TEST(ReallocatingScheduler, CustomInnerScheduler) {
  // The same §5+§3 front end over the naive §4 baseline.
  ReallocatingScheduler s(
      2, [] { return std::make_unique<NaiveScheduler>(); }, "aligned-naive[m=2]");
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 20; ++i) {
    const JobId id{i + 1};
    const Window w{static_cast<Time>(i * 3), static_cast<Time>(i * 3 + 100)};
    s.insert(id, w);
    active.emplace(id, w);
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  EXPECT_EQ(s.name(), "aligned-naive[m=2]");
}

TEST(ReallocatingScheduler, RejectsEmptyWindow) {
  ReallocatingScheduler s(1);
  EXPECT_THROW(s.insert(JobId{1}, Window{5, 5}), ContractViolation);
}

}  // namespace
}  // namespace reasched
