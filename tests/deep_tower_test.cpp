// Custom level tables make levels beyond the paper's reachable at laptop
// scale: these sweeps drive the cross-level machinery (allowance updates,
// MOVE swaps, displacement cascades) through 4-level towers with the full
// internal audit on every request — the hardest configuration the
// reservation scheduler supports.
#include <gtest/gtest.h>

#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

struct TowerCase {
  std::uint64_t seed;
  bool trimming;
};

class DeepTower : public testing::TestWithParam<TowerCase> {};

std::string tower_name(const testing::TestParamInfo<TowerCase>& info) {
  return "seed" + std::to_string(info.param.seed) +
         (info.param.trimming ? "_trim" : "_notrim");
}

TEST_P(DeepTower, ChurnAcrossFourLevels) {
  const TowerCase param = GetParam();
  SchedulerOptions options;
  options.levels = LevelTable::custom({32, 256, pow2(16), pow2(62)});
  options.trimming = param.trimming;
  options.overflow = OverflowPolicy::kBestEffort;
  options.audit = true;
  ReservationScheduler s(options);

  Rng rng(param.seed);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  std::uint64_t worst = 0;
  for (int step = 0; step < 800; ++step) {
    if (!active.empty() && rng.chance(0.45)) {
      const auto victim = std::next(
          active.begin(), static_cast<long>(rng.uniform(0, active.size() - 1)));
      const auto stats = s.erase(victim->first);
      if (!stats.rebuilt) worst = std::max(worst, stats.reallocations);
      active.erase(victim);
    } else {
      // Spans across all four levels: 8 (L0), 64 (L1), 4096 (L2), 2^17 (L3).
      const unsigned pick = static_cast<unsigned>(rng.uniform(0, 3));
      const unsigned exp = pick == 0 ? 3u : pick == 1 ? 6u : pick == 2 ? 12u : 17u;
      const Time span = static_cast<Time>(pow2(exp));
      const Time start = static_cast<Time>(
          span * static_cast<Time>(rng.uniform(0, pow2(18 - exp) - 1)));
      const JobId id{next++};
      const Window w{start, start + span};
      const auto stats = s.insert(id, w);
      if (!stats.rebuilt) worst = std::max(worst, stats.reallocations);
      active.emplace(id, w);
    }
    if (step % 80 == 0) {
      ASSERT_TRUE(validate_schedule(s.snapshot(), active).ok()) << "step " << step;
    }
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  // 4 levels: worst steady request stays O(levels), far below n.
  EXPECT_LE(worst, 16u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepTower,
                         testing::Values(TowerCase{1, true}, TowerCase{2, true},
                                         TowerCase{3, false}, TowerCase{4, false},
                                         TowerCase{5, true}, TowerCase{6, false}),
                         tower_name);

TEST(DeepTowerFunnelLike, PrefixPressureAcrossLevels) {
  // A funnel-style nested chain reaching level 3, with churn at the bottom.
  SchedulerOptions options;
  options.levels = LevelTable::custom({32, 256, pow2(16), pow2(62)});
  options.trimming = false;
  options.overflow = OverflowPolicy::kBestEffort;
  options.audit = true;
  ReservationScheduler s(options);
  std::uint64_t next = 1;
  std::unordered_map<JobId, Window> active;
  auto add = [&](Time span, int count) {
    for (int i = 0; i < count; ++i) {
      const JobId id{next++};
      const Window w{0, span};
      s.insert(id, w);
      active.emplace(id, w);
    }
  };
  add(64, 4);                               // level 1
  add(4096, 16);                            // level 2
  add(static_cast<Time>(pow2(17)), 64);     // level 3
  add(16, 2);                               // level 0
  ASSERT_TRUE(validate_schedule(s.snapshot(), active).ok());

  // Churn the level-0/1 jobs: displacement pressure reaches upward.
  Rng rng(12);
  std::vector<JobId> small;
  for (const auto& [id, w] : active) {
    if (w.span() <= 64) small.push_back(id);
  }
  for (int round = 0; round < 200; ++round) {
    const std::size_t pick = static_cast<std::size_t>(rng.uniform(0, small.size() - 1));
    const Window w = active.at(small[pick]);
    s.erase(small[pick]);
    active.erase(small[pick]);
    const JobId id{next++};
    s.insert(id, w);
    active.emplace(id, w);
    small[pick] = id;
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  EXPECT_EQ(s.parked_jobs(), 0u);
}

}  // namespace
}  // namespace reasched
