// MPSC ring torture suite (ingest/mpsc_ring.hpp): the lock-free claims the
// ingestion tier rests on, driven through the regimes where sequence-stamp
// rings actually break — wrap-around (stamps several generations past the
// capacity), full-ring backpressure (producers racing a slow consumer for
// reclaimed slots), and the claim/publish/retire handoff under maximal
// contention (tiny rings, many producers). Every multi-threaded case runs
// at 1/2/4/8 producers with seeded-random producer interleavings (mirroring
// the audit_fuzz_test harness shape: the schedule of yields is part of the
// seed, so a failing interleaving reproduces). The properties checked are
// the ring's full contract:
//
//   * exactly-once: every pushed value is popped exactly once, none lost,
//     none duplicated, none invented;
//   * per-producer FIFO: values from one producer arrive in push order
//     (MPSC rings do not promise cross-producer order — tickets do that,
//     one layer up);
//   * bounded: try_push fails while, and only while, capacity values are
//     unconsumed.
//
// The TSan CI lane runs this file with 2 producers (label: ingest suites)
// to catch ordering bugs the assertions can't see.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ingest/mpsc_ring.hpp"
#include "util/rng.hpp"

namespace reasched::ingest {
namespace {

/// Payload carrying (producer, per-producer sequence) so the consumer can
/// verify exactly-once + per-producer FIFO.
struct Tag {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
};

/// N producers × 1 consumer over a deliberately tiny ring. Producers spin
/// on try_push (the ingestion tier's backpressure loop), interleaving
/// seeded-random yields so each seed exercises a different schedule.
void torture(std::size_t producers, std::size_t per_producer,
             std::size_t capacity, std::uint64_t seed) {
  MpscRing<Tag> ring(capacity);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        while (!ring.try_push(Tag{static_cast<std::uint32_t>(p), i})) {
          std::this_thread::yield();
        }
        if (rng.chance(0.05)) std::this_thread::yield();
      }
    });
  }

  // Single consumer: popped counts + next expected sequence per producer.
  std::vector<std::uint64_t> next_seq(producers, 0);
  std::uint64_t popped = 0;
  const std::uint64_t total = producers * per_producer;
  Rng consumer_rng(seed * 0x94d049bb133111ebULL + 1);
  Tag tag;
  while (popped < total) {
    if (!ring.try_pop(tag)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(tag.producer, producers);
    ASSERT_EQ(tag.seq, next_seq[tag.producer])
        << "per-producer FIFO violated (producer " << tag.producer << ")";
    ++next_seq[tag.producer];
    ++popped;
    // A sometimes-slow consumer keeps the ring pinned at full, so slot
    // reclamation (stamp retirement) races the producers' claims.
    if (consumer_rng.chance(0.02)) std::this_thread::yield();
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(popped, total);
  for (std::size_t p = 0; p < producers; ++p) {
    EXPECT_EQ(next_seq[p], per_producer) << "producer " << p << " lost pushes";
  }
  EXPECT_TRUE(ring.approx_empty());
  EXPECT_FALSE(ring.try_pop(tag));
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(4096).capacity(), 4096u);
}

TEST(MpscRing, SingleThreadFifoAcrossManyWraps) {
  MpscRing<int> ring(8);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  // 1000 values through an 8-slot ring: every slot's stamp cycles ~125
  // generations, so wrap-around arithmetic is exercised far past one lap.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, FullRingRejectsUntilConsumed) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: next generation not retired
  EXPECT_EQ(ring.approx_size(), 4u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(99));  // the retired slot is claimable again
  EXPECT_FALSE(ring.try_push(100));
  for (const int expect : {1, 2, 3, 99}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, PopAllDrainsInOrderWithLimit) {
  MpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> seen;
  EXPECT_EQ(ring.pop_all([&](int&& v) { seen.push_back(v); }, 4), 4u);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.pop_all([&](int&& v) { seen.push_back(v); }), 6u);
  EXPECT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

// The acceptance matrix: 1/2/4/8 producers. Ring capacity 16 with
// thousands of pushes per producer forces constant wrap-around and
// full-ring backpressure on every schedule.
TEST(MpscRingTorture, OneProducer) { torture(1, 20'000, 16, 0xA1); }
TEST(MpscRingTorture, TwoProducers) { torture(2, 10'000, 16, 0xB2); }
TEST(MpscRingTorture, FourProducers) { torture(4, 5'000, 16, 0xC3); }
TEST(MpscRingTorture, EightProducers) { torture(8, 2'500, 16, 0xD4); }

// Minimal ring (2 slots) under 8 producers: every push races reclamation —
// the stamp handoff is the only thing between a claim and a stale slot.
TEST(MpscRingTorture, ReclamationRaceOnTinyRing) { torture(8, 1'000, 2, 0xE5); }

// Seed sweep on the nastiest shape, so CI covers several interleavings per
// run without a scheduler-dependent flake surface.
TEST(MpscRingTorture, SeededInterleavings) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    torture(4, 2'000, 8, seed * 0x9e3779b9ULL);
  }
}

}  // namespace
}  // namespace reasched::ingest
