#include <gtest/gtest.h>

#include "baseline/greedy_repair_scheduler.hpp"
#include "baseline/opt_rebuild_scheduler.hpp"
#include "baseline/rigid_block_sim.hpp"
#include "schedule/validator.hpp"

namespace reasched {
namespace {

TEST(GreedyRepair, EarliestFitPlacesAtStart) {
  GreedyRepairScheduler s(GreedyRepairScheduler::Fit::kEarliest);
  s.insert(JobId{1}, Window{0, 8});
  EXPECT_EQ(s.snapshot().find(JobId{1})->slot, 0);
  s.insert(JobId{2}, Window{0, 8});
  EXPECT_EQ(s.snapshot().find(JobId{2})->slot, 1);
}

TEST(GreedyRepair, LatestFitPlacesAtEnd) {
  GreedyRepairScheduler s(GreedyRepairScheduler::Fit::kLatest);
  s.insert(JobId{1}, Window{0, 8});
  EXPECT_EQ(s.snapshot().find(JobId{1})->slot, 7);
  s.insert(JobId{2}, Window{0, 8});
  EXPECT_EQ(s.snapshot().find(JobId{2})->slot, 6);
}

TEST(GreedyRepair, DisplacesLaterDeadline) {
  GreedyRepairScheduler s;
  s.insert(JobId{1}, Window{0, 16});  // deadline 16, sits at slot 0
  // Tight job needs slot 0..0; job 1 must yield.
  const auto stats = s.insert(JobId{2}, Window{0, 1});
  EXPECT_EQ(stats.reallocations, 1u);
  EXPECT_EQ(s.snapshot().find(JobId{2})->slot, 0);
  std::unordered_map<JobId, Window> active{{JobId{1}, Window{0, 16}},
                                           {JobId{2}, Window{0, 1}}};
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(GreedyRepair, CascadeOnStaircase) {
  GreedyRepairScheduler s;
  // Staircase [j, j+2): EDF packs job j at slot j. A [0,1) filler then
  // forces the entire staircase to shift — the Θ(n) brittleness.
  const unsigned n = 50;
  for (unsigned j = 0; j < n; ++j) {
    s.insert(JobId{j + 1}, Window{static_cast<Time>(j), static_cast<Time>(j + 2)});
  }
  const auto stats = s.insert(JobId{1000}, Window{0, 1});
  EXPECT_GE(stats.reallocations, n);  // every staircase job moved
}

TEST(GreedyRepair, ThrowsWhenNoLaterDeadlineExists) {
  GreedyRepairScheduler s;
  s.insert(JobId{1}, Window{0, 1});
  EXPECT_THROW(s.insert(JobId{2}, Window{0, 1}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 1u);
}

TEST(GreedyRepair, DeletionsFree) {
  GreedyRepairScheduler s;
  s.insert(JobId{1}, Window{0, 4});
  EXPECT_EQ(s.erase(JobId{1}).reallocations, 0u);
}

TEST(OptRebuild, MaintainsEdfCanonicalSchedule) {
  OptRebuildScheduler s(1);
  s.insert(JobId{1}, Window{0, 4});
  s.insert(JobId{2}, Window{0, 4});
  std::unordered_map<JobId, Window> active{{JobId{1}, Window{0, 4}},
                                           {JobId{2}, Window{0, 4}}};
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(OptRebuild, CountsDiffCosts) {
  OptRebuildScheduler s(1);
  // Staircase packed at slots 0..n-1; a [0,1) insert reshuffles everyone.
  const unsigned n = 30;
  for (unsigned j = 0; j < n; ++j) {
    s.insert(JobId{j + 1}, Window{static_cast<Time>(j), static_cast<Time>(j + 2)});
  }
  const auto stats = s.insert(JobId{999}, Window{0, 1});
  EXPECT_GE(stats.reallocations, n - 1);
}

TEST(OptRebuild, InfeasibleInsertRejectedCleanly) {
  OptRebuildScheduler s(1);
  s.insert(JobId{1}, Window{0, 1});
  EXPECT_THROW(s.insert(JobId{2}, Window{0, 1}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 1u);
  std::unordered_map<JobId, Window> active{{JobId{1}, Window{0, 1}}};
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(OptRebuild, MultiMachine) {
  OptRebuildScheduler s(3);
  for (unsigned i = 0; i < 9; ++i) s.insert(JobId{i + 1}, Window{0, 3});
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 9; ++i) active.emplace(JobId{i + 1}, Window{0, 3});
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(RigidBlock, PlacesAndEvicts) {
  RigidBlockSim sim;
  // Unit jobs across [0, 16).
  for (unsigned i = 0; i < 4; ++i) {
    const auto cost = sim.insert(JobId{i + 1}, 1, Window{0, 16});
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 0u);
  }
  sim.audit();
  // A size-4 block with window [0, 4): must evict the unit jobs there.
  const auto cost = sim.insert(JobId{100}, 4, Window{0, 4});
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, 4u);  // all four unit jobs sat in [0,4) (first fit)
  sim.audit();
}

TEST(RigidBlock, EraseFreesSlots) {
  RigidBlockSim sim;
  ASSERT_TRUE(sim.insert(JobId{1}, 4, Window{0, 4}).has_value());
  sim.erase(JobId{1});
  EXPECT_EQ(sim.active_jobs(), 0u);
  ASSERT_TRUE(sim.insert(JobId{2}, 4, Window{0, 4}).has_value());
  sim.audit();
}

TEST(RigidBlock, Observation13CostLinearInK) {
  // One toggle round of the Observation-13 adversary: k unit jobs with
  // window [0, m), big job hopping between offsets. Every hop costs ~k.
  const Time k = 8;
  const Time m = 2 * 8 * k;  // 2γk with γ=8
  RigidBlockSim sim;
  for (Time i = 0; i < k; ++i) {
    ASSERT_TRUE(sim.insert(JobId{static_cast<std::uint64_t>(i + 1)}, 1, Window{0, m})
                    .has_value());
  }
  std::uint64_t total = 0;
  JobId big{1000};
  auto cost = sim.insert(big, k, Window{0, k});
  ASSERT_TRUE(cost.has_value());
  total += *cost;
  for (Time pos = k; pos + k <= m; pos += k) {
    sim.erase(big);
    big.value++;
    cost = sim.insert(big, k, Window{pos, pos + k});
    ASSERT_TRUE(cost.has_value());
    total += *cost;
    sim.audit();
  }
  // First-fit packs the unit jobs to the left, so the first hops are the
  // expensive ones; total forced cost is Θ(k) per sweep of the timeline.
  EXPECT_GE(total, static_cast<std::uint64_t>(k));
}

TEST(RigidBlock, RejectsOversizedJob) {
  RigidBlockSim sim;
  EXPECT_THROW(sim.insert(JobId{1}, 8, Window{0, 4}), ContractViolation);
}

}  // namespace
}  // namespace reasched
