// Failure-path behavior: rejected inserts must leave observable state
// untouched (strong guarantee for the request), best-effort mode must stay
// feasible under deliberate overload, and accounting must stay consistent
// throughout.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/greedy_repair_scheduler.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"
#include "util/rng.hpp"

namespace reasched {
namespace {

/// Snapshot equality: same jobs on the same slots.
bool snapshots_equal(const Schedule& a, const Schedule& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [job, placement] : a.assignments()) {
    const auto other = b.find(job);
    if (!other.has_value() || *other != placement) return false;
  }
  return true;
}

template <typename Scheduler>
void expect_strong_rollback(Scheduler& scheduler, Window impossible) {
  const Schedule before = scheduler.snapshot();
  const std::size_t active = scheduler.active_jobs();
  EXPECT_THROW(scheduler.insert(JobId{999'999}, impossible), InfeasibleError);
  EXPECT_EQ(scheduler.active_jobs(), active);
  EXPECT_TRUE(snapshots_equal(before, scheduler.snapshot()))
      << "failed insert mutated the schedule";
}

TEST(FailureInjection, NaiveStrongRollback) {
  NaiveScheduler s;
  // Saturate [0, 8) with span-8 jobs, put longer jobs around them so the
  // cascade machinery engages before dead-ending.
  for (unsigned i = 0; i < 8; ++i) s.insert(JobId{i + 1}, Window{0, 8});
  expect_strong_rollback(s, Window{0, 8});
  // Still usable afterwards.
  EXPECT_NO_THROW(s.insert(JobId{50}, Window{8, 16}));
}

TEST(FailureInjection, NaiveRollbackAfterPartialCascade) {
  NaiveScheduler s;
  // [0,2) holds a span-4 job (displaceable); [0,4) otherwise full of
  // span-4 jobs: inserting a span-2 job displaces one span-4 job, whose
  // reinsertion dead-ends; everything must unwind.
  s.insert(JobId{1}, Window{0, 4});
  s.insert(JobId{2}, Window{0, 4});
  s.insert(JobId{3}, Window{0, 4});
  s.insert(JobId{4}, Window{0, 4});
  const Schedule before = s.snapshot();
  // span-2 insert: both [0,2) slots hold span-4 jobs; displacing either
  // leaves no room for its reinsertion ([0,4) is full) nor a longer victim.
  EXPECT_THROW(s.insert(JobId{5}, Window{0, 2}), InfeasibleError);
  EXPECT_TRUE(snapshots_equal(before, s.snapshot()));
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 1; i <= 4; ++i) active.emplace(JobId{i}, Window{0, 4});
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(FailureInjection, GreedyRepairRollbackAfterPartialCascade) {
  GreedyRepairScheduler s;
  // Same construction with deadlines: all occupants share deadline 4, so no
  // strictly-later victim exists past the first displacement.
  s.insert(JobId{1}, Window{0, 4});
  s.insert(JobId{2}, Window{0, 4});
  s.insert(JobId{3}, Window{0, 4});
  s.insert(JobId{4}, Window{0, 4});
  const Schedule before = s.snapshot();
  EXPECT_THROW(s.insert(JobId{5}, Window{0, 4}), InfeasibleError);
  EXPECT_TRUE(snapshots_equal(before, s.snapshot()));
}

TEST(FailureInjection, ReservationRejectedInsertKeepsFeasibility) {
  SchedulerOptions options;
  options.trimming = false;
  options.overflow = OverflowPolicy::kThrow;
  options.audit = true;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  for (unsigned i = 0; i < 8; ++i) {
    s.insert(JobId{i + 1}, Window{0, 8});
    active.emplace(JobId{i + 1}, Window{0, 8});
  }
  // A ninth span-8 job genuinely cannot fit.
  EXPECT_THROW(s.insert(JobId{100}, Window{0, 8}), InfeasibleError);
  EXPECT_EQ(s.active_jobs(), 8u);
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
  // The ledger rolled back: the same id is insertable elsewhere.
  EXPECT_NO_THROW(s.insert(JobId{100}, Window{8, 16}));
}

TEST(FailureInjection, ReservationThrowOnSqueezedWindow) {
  // kThrow + a longer window squeezed out of reservations AND out of
  // physical space: insert must throw, state stays feasible.
  SchedulerOptions options;
  options.trimming = false;
  options.overflow = OverflowPolicy::kThrow;
  options.audit = true;
  ReservationScheduler s(options);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  auto add = [&](Window w) {
    const JobId id{next++};
    s.insert(id, w);
    active.emplace(id, w);
  };
  for (int i = 0; i < 32; ++i) add(Window{0, 64});
  for (int i = 0; i < 32; ++i) add(Window{64, 128});
  // [0, 128) is now physically full; one more job cannot exist.
  EXPECT_THROW(s.insert(JobId{999}, Window{0, 128}), InfeasibleError);
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

TEST(FailureInjection, BestEffortSurvivesSustainedOverload) {
  // Drive a region far beyond the reservation budget (but within physical
  // capacity) with continuous churn; feasibility must never break and
  // parked bookkeeping must stay exact.
  SchedulerOptions options;
  options.trimming = false;
  options.overflow = OverflowPolicy::kBestEffort;
  options.audit = true;
  ReservationScheduler s(options);
  Rng rng(21);
  std::unordered_map<JobId, Window> active;
  std::uint64_t next = 1;
  const std::vector<Window> windows = {{0, 64}, {64, 128}, {0, 128}, {0, 256}};
  for (int step = 0; step < 1200; ++step) {
    if (!active.empty() && rng.chance(0.4)) {
      const auto victim = std::next(
          active.begin(), static_cast<long>(rng.uniform(0, active.size() - 1)));
      s.erase(victim->first);
      active.erase(victim);
    } else {
      const Window w = windows[static_cast<std::size_t>(rng.uniform(0, 3))];
      const JobId id{next++};
      try {
        s.insert(id, w);
        active.emplace(id, w);
      } catch (const InfeasibleError&) {
        // Physically full; acceptable under deliberate overload.
      }
    }
    if (step % 100 == 0) {
      EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok()) << "step " << step;
    }
  }
  EXPECT_TRUE(validate_schedule(s.snapshot(), active).ok());
}

// ---------------------------------------------------------------------------
// Corrupted-state detection (ISSUE 4 satellite): deliberately corrupt
// internal state through the test hook — which marks the touched region
// dirty, exactly as a buggy mutation path would — and assert that BOTH the
// full O(state) sweep and the incremental audit engine flag it. A stale
// dirty set must never produce a false accept.
// ---------------------------------------------------------------------------

using Corruption = ReservationScheduler::Corruption;

std::unique_ptr<ReservationScheduler> corrupted_target(Corruption kind) {
  SchedulerOptions options;
  options.trimming = false;
  options.overflow = OverflowPolicy::kBestEffort;
  audit::AuditPolicy policy;
  policy.mode = audit::Mode::kIncremental;
  policy.cadence = 0;  // audits driven explicitly
  options.audit_policy = policy;
  auto scheduler = std::make_unique<ReservationScheduler>(options);
  for (std::uint64_t i = 1; i <= 24; ++i) {
    scheduler->insert(JobId{i}, Window{0, 256});
  }
  scheduler->incremental_audit();  // verify + seed the clean baseline
  EXPECT_TRUE(scheduler->corrupt_for_test(kind));
  return scheduler;
}

TEST(FailureInjection, FlippedOccupancyBitIsFlaggedByBothAuditors) {
  auto a = corrupted_target(Corruption::kFlipLowerOccupied);
  EXPECT_THROW(a->audit(), InternalError);
  auto b = corrupted_target(Corruption::kFlipLowerOccupied);
  EXPECT_THROW(b->incremental_audit(), InternalError);
}

TEST(FailureInjection, DesyncedLowerCountIsFlaggedByBothAuditors) {
  auto a = corrupted_target(Corruption::kDesyncLowerCount);
  EXPECT_THROW(a->audit(), InternalError);
  auto b = corrupted_target(Corruption::kDesyncLowerCount);
  EXPECT_THROW(b->incremental_audit(), InternalError);
}

TEST(FailureInjection, OrphanedLedgerSlotIsFlaggedByBothAuditors) {
  auto a = corrupted_target(Corruption::kOrphanLedgerSlot);
  EXPECT_THROW(a->audit(), InternalError);
  auto b = corrupted_target(Corruption::kOrphanLedgerSlot);
  EXPECT_THROW(b->incremental_audit(), InternalError);
}

TEST(FailureInjection, DesyncedWindowJobsIsFlaggedByBothAuditors) {
  auto a = corrupted_target(Corruption::kDesyncWindowJobs);
  EXPECT_THROW(a->audit(), InternalError);
  auto b = corrupted_target(Corruption::kDesyncWindowJobs);
  EXPECT_THROW(b->incremental_audit(), InternalError);
}

TEST(FailureInjection, DesyncedParkedCountIsFlaggedByBothAuditors) {
  auto a = corrupted_target(Corruption::kDesyncParkedCount);
  EXPECT_THROW(a->audit(), InternalError);
  auto b = corrupted_target(Corruption::kDesyncParkedCount);
  EXPECT_THROW(b->incremental_audit(), InternalError);
}

TEST(FailureInjection, CorruptionRemainsFlaggedAfterFirstRejection) {
  // A failed check must not consume its dirty mark: a caller that catches
  // the first rejection and audits again must be rejected again (the drain
  // re-marks on throw), and the full sweep must agree throughout.
  auto scheduler = corrupted_target(Corruption::kFlipLowerOccupied);
  EXPECT_THROW(scheduler->incremental_audit(), InternalError);
  EXPECT_THROW(scheduler->incremental_audit(), InternalError);
  EXPECT_THROW(scheduler->audit(), InternalError);
}

TEST(FailureInjection, CorruptionSurvivesInterveningCleanRequests) {
  // The dirty mark must not be washed out by later unrelated mutations:
  // corrupt, serve clean requests elsewhere, then audit incrementally.
  auto scheduler = corrupted_target(Corruption::kDesyncLowerCount);
  for (std::uint64_t i = 100; i < 110; ++i) {
    scheduler->insert(JobId{i}, Window{1024, 1024 + 256});
  }
  EXPECT_THROW(scheduler->incremental_audit(), InternalError);
}

TEST(FailureInjection, ThrowAndBestEffortAgreeWhenFeasible) {
  // On an instance with ample slack the two overflow policies must behave
  // identically (no degradation ever happens).
  for (const auto policy : {OverflowPolicy::kThrow, OverflowPolicy::kBestEffort}) {
    SchedulerOptions options;
    options.overflow = policy;
    options.audit = true;
    ReservationScheduler s(options);
    std::uint64_t degraded = 0;
    for (unsigned i = 0; i < 64; ++i) {
      degraded += s.insert(JobId{i + 1}, Window{0, 4096}).degraded;
    }
    EXPECT_EQ(degraded, 0u);
    EXPECT_EQ(s.parked_jobs(), 0u);
  }
}

}  // namespace
}  // namespace reasched
