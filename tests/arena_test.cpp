// util/arena.hpp: the fixed-size-block bump arena backing per-interval
// scheduler state — zeroed carves, O(1) reset with reuse, wholesale
// release for deferred trimming.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/arena.hpp"

namespace reasched {
namespace {

TEST(BlockArena, CarveReturnsZeroedAlignedBlocks) {
  BlockArena arena;
  arena.configure(100);  // rounds up to alignment
  EXPECT_GE(arena.block_bytes(), 100u);
  EXPECT_EQ(arena.block_bytes() % BlockArena::kAlign, 0u);
  for (int i = 0; i < 100; ++i) {
    std::byte* block = arena.carve();
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % BlockArena::kAlign, 0u);
    for (std::size_t b = 0; b < arena.block_bytes(); ++b) {
      ASSERT_EQ(block[b], std::byte{0}) << "carve " << i << " byte " << b;
    }
    std::memset(block, 0xab, arena.block_bytes());  // dirty for later carves
  }
  EXPECT_EQ(arena.blocks_carved(), 100u);
}

TEST(BlockArena, BlocksAreDistinctAndStable) {
  BlockArena arena;
  arena.configure(64);
  std::set<std::byte*> blocks;
  for (int i = 0; i < 1000; ++i) {
    std::byte* block = arena.carve();
    EXPECT_TRUE(blocks.insert(block).second) << "duplicate block";
    block[0] = std::byte{0x7f};  // chunks must never move under later carves
  }
  for (std::byte* block : blocks) EXPECT_EQ(block[0], std::byte{0x7f});
}

TEST(BlockArena, ResetReusesMemoryRezeroed) {
  BlockArena arena;
  arena.configure(128);
  std::vector<std::byte*> first;
  for (int i = 0; i < 50; ++i) {
    std::byte* block = arena.carve();
    std::memset(block, 0xee, arena.block_bytes());
    first.push_back(block);
  }
  const std::size_t chunks_before = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.blocks_carved(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks_before) << "reset must keep chunks";
  for (int i = 0; i < 50; ++i) {
    std::byte* block = arena.carve();
    EXPECT_EQ(block, first[static_cast<std::size_t>(i)])
        << "reset must rewind to the same blocks";
    for (std::size_t b = 0; b < arena.block_bytes(); ++b) {
      ASSERT_EQ(block[b], std::byte{0}) << "reused block not re-zeroed";
    }
  }
  EXPECT_EQ(arena.blocks_reused(), 50u);
  EXPECT_EQ(arena.chunk_count(), chunks_before) << "reuse must not allocate";
}

TEST(BlockArena, ResetThenGrowPastHighWaterStaysZeroed) {
  BlockArena arena;
  arena.configure(64);
  for (int i = 0; i < 10; ++i) std::memset(arena.carve(), 0xcd, 64);
  arena.reset();
  // Carve past the pre-reset frontier: the tail blocks are virgin.
  for (int i = 0; i < 200; ++i) {
    std::byte* block = arena.carve();
    for (std::size_t b = 0; b < arena.block_bytes(); ++b) {
      ASSERT_EQ(block[b], std::byte{0});
    }
  }
}

TEST(BlockArena, MoveAssignReleasesOwnChunks) {
  // The deferred-trim path frees a retired generation by destroying (or
  // overwriting) the arena wholesale; a moved-from replacement must leave
  // the new owner fully functional.
  BlockArena retired;
  retired.configure(256);
  for (int i = 0; i < 300; ++i) std::memset(retired.carve(), 0x55, 256);
  EXPECT_GT(retired.chunk_count(), 0u);

  BlockArena fresh;
  fresh.configure(256);
  retired = std::move(fresh);  // the "trim": frees the old chunks
  EXPECT_EQ(retired.chunk_count(), 0u);
  EXPECT_EQ(retired.blocks_carved(), 0u);
  std::byte* block = retired.carve();
  for (std::size_t b = 0; b < retired.block_bytes(); ++b) {
    ASSERT_EQ(block[b], std::byte{0});
  }
}

TEST(BlockArena, MoveTransfersOwnership) {
  BlockArena a;
  a.configure(64);
  std::byte* block = a.carve();
  block[0] = std::byte{1};
  BlockArena b = std::move(a);
  EXPECT_EQ(b.blocks_carved(), 1u);
  EXPECT_EQ(block[0], std::byte{1});  // chunk survived the move
  std::byte* next = b.carve();
  EXPECT_NE(next, block);
}

}  // namespace
}  // namespace reasched
