// The IReallocScheduler::apply default implementation (sequential
// fallback): batch semantics must be indistinguishable from per-request
// serving for every scheduler, and rejections must be reported per-request
// instead of aborting the batch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "sim/driver.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

std::vector<Request> small_churn(std::uint64_t seed, unsigned machines) {
  ChurnParams params;
  params.seed = seed;
  params.target_active = 128;
  params.requests = 1500;
  params.machines = machines;
  params.min_span = 64;
  params.max_span = 2048;
  return make_churn_trace(params);
}

TEST(BatchApi, DefaultApplyMatchesPerRequestServing) {
  const auto trace = small_churn(11, 1);
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;

  ReservationScheduler per_request(options);
  std::vector<RequestStats> want;
  for (const Request& request : trace) {
    want.push_back(request.kind == RequestKind::kInsert
                       ? per_request.insert(request.job, request.window)
                       : per_request.erase(request.job));
  }

  ReservationScheduler batched(options);
  std::vector<RequestStats> got;
  for (std::size_t first = 0; first < trace.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, trace.size() - first);
    const BatchResult result =
        batched.apply(std::span<const Request>(trace).subspan(first, count));
    ASSERT_TRUE(result.all_served());
    got.insert(got.end(), result.stats.begin(), result.stats.end());
  }

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].reallocations, want[i].reallocations) << i;
    EXPECT_EQ(got[i].migrations, want[i].migrations) << i;
  }
  EXPECT_EQ(batched.active_jobs(), per_request.active_jobs());
}

TEST(BatchApi, RejectionsAreReportedNotThrown) {
  // Window [0,1) on one machine: the second insert is infeasible, and its
  // delete (same batch) is moot.
  NaiveScheduler scheduler;
  const std::vector<Request> batch = {
      Request::insert(JobId{1}, Window{0, 1}),
      Request::insert(JobId{2}, Window{0, 1}),
      Request::erase(JobId{2}),
      Request::erase(JobId{1}),
  };
  const BatchResult result = scheduler.apply(batch);
  EXPECT_EQ(result.rejected, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(scheduler.active_jobs(), 0u);
}

TEST(BatchApi, RejectedIdMayBeReusedWithinTheBatch) {
  NaiveScheduler scheduler;
  const std::vector<Request> batch = {
      Request::insert(JobId{1}, Window{0, 1}),
      Request::insert(JobId{2}, Window{0, 1}),  // rejected: slot taken
      Request::erase(JobId{1}),
      Request::insert(JobId{2}, Window{0, 1}),  // now feasible
      Request::erase(JobId{2}),
  };
  const BatchResult result = scheduler.apply(batch);
  EXPECT_EQ(result.rejected, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(scheduler.active_jobs(), 0u);
}

TEST(BatchApi, TotalSumsServedRequests) {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  ReallocatingScheduler scheduler(2, options);
  const auto trace = small_churn(3, 2);
  const BatchResult result = scheduler.apply(trace);
  ASSERT_TRUE(result.all_served());
  RequestStats sum;
  for (const RequestStats& stats : result.stats) sum += stats;
  EXPECT_EQ(sum.reallocations, result.total.reallocations);
  EXPECT_EQ(sum.migrations, result.total.migrations);
  EXPECT_EQ(sum.levels_touched, result.total.levels_touched);
}

TEST(BatchApi, DriverBatchedSkipsRepeatedDeletesLikePerRequestMode) {
  // A second delete of the same job must be skipped even while the first
  // delete is still sitting in the batch buffer — the per-request Runner
  // skips it after applying the first, and batched mode must agree.
  const std::vector<Request> trace = {
      Request::insert(JobId{1}, Window{0, 64}),
      Request::erase(JobId{1}),
      Request::erase(JobId{1}),
      Request::insert(JobId{2}, Window{0, 64}),
  };
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;

  ReallocatingScheduler sequential(1, options);
  const auto want = replay_trace(sequential, trace, {});

  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8}}) {
    ReallocatingScheduler batched(1, options);
    SimOptions sim;
    sim.batch_size = batch_size;
    const auto got = replay_trace(batched, trace, sim);
    EXPECT_EQ(got.skipped_deletes, want.skipped_deletes) << batch_size;
    EXPECT_EQ(got.metrics.requests(), want.metrics.requests()) << batch_size;
    EXPECT_EQ(batched.active_jobs(), sequential.active_jobs()) << batch_size;
  }
}

TEST(BatchApi, DriverBatchedReplayMatchesSequentialMetrics) {
  const auto trace = small_churn(7, 2);
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;

  ReallocatingScheduler sequential(2, options);
  SimOptions sim;
  sim.validate_every = 50;
  const auto want = replay_trace(sequential, trace, sim);

  ReallocatingScheduler batched(2, options);
  SimOptions batched_sim;
  batched_sim.validate_every = 50;
  batched_sim.batch_size = 32;
  const auto got = replay_trace(batched, trace, batched_sim);

  EXPECT_TRUE(want.clean()) << want.first_issue;
  EXPECT_TRUE(got.clean()) << got.first_issue;
  EXPECT_EQ(got.metrics.requests(), want.metrics.requests());
  EXPECT_EQ(got.metrics.inserts(), want.metrics.inserts());
  EXPECT_EQ(got.metrics.deletes(), want.metrics.deletes());
  EXPECT_EQ(got.metrics.rejected(), want.metrics.rejected());
  EXPECT_EQ(got.metrics.max_reallocations(), want.metrics.max_reallocations());
  EXPECT_EQ(got.metrics.max_migrations(), want.metrics.max_migrations());
  EXPECT_EQ(got.skipped_deletes, want.skipped_deletes);
}

}  // namespace
}  // namespace reasched
