#include <gtest/gtest.h>

#include "schedule/schedule.hpp"
#include "schedule/validator.hpp"

namespace reasched {
namespace {

TEST(Schedule, AssignFindErase) {
  Schedule s(2);
  s.assign(JobId{1}, Placement{0, 10});
  s.assign(JobId{2}, Placement{1, 10});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.find(JobId{1}), (Placement{0, 10}));
  EXPECT_EQ(s.occupant(1, 10), JobId{2});
  EXPECT_EQ(s.occupant(0, 11), std::nullopt);
  s.erase(JobId{1});
  EXPECT_EQ(s.find(JobId{1}), std::nullopt);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Schedule, ReassignMovesJob) {
  Schedule s(1);
  s.assign(JobId{1}, Placement{0, 5});
  s.assign(JobId{1}, Placement{0, 9});
  EXPECT_EQ(s.find(JobId{1}), (Placement{0, 9}));
  EXPECT_EQ(s.occupant(0, 5), std::nullopt);
}

TEST(Schedule, RejectsDoubleBooking) {
  Schedule s(1);
  s.assign(JobId{1}, Placement{0, 5});
  EXPECT_THROW(s.assign(JobId{2}, Placement{0, 5}), ContractViolation);
}

TEST(Schedule, RejectsBadMachine) {
  Schedule s(2);
  EXPECT_THROW(s.assign(JobId{1}, Placement{2, 0}), ContractViolation);
  EXPECT_THROW((void)s.occupant(2, 0), ContractViolation);
}

TEST(Schedule, EraseUnknownRejected) {
  Schedule s(1);
  EXPECT_THROW(s.erase(JobId{404}), ContractViolation);
}

TEST(DiffCosts, CountsMovesAndMigrations) {
  Schedule before(2);
  before.assign(JobId{1}, Placement{0, 0});
  before.assign(JobId{2}, Placement{0, 1});
  before.assign(JobId{3}, Placement{1, 0});

  Schedule after(2);
  after.assign(JobId{1}, Placement{0, 5});   // moved, same machine
  after.assign(JobId{2}, Placement{1, 1});   // migrated
  after.assign(JobId{3}, Placement{1, 0});   // unchanged
  after.assign(JobId{4}, Placement{0, 1});   // the inserted subject

  const DiffCosts costs = diff_costs(before, after, JobId{4});
  EXPECT_EQ(costs.reallocations, 2u);
  EXPECT_EQ(costs.migrations, 1u);
}

TEST(DiffCosts, SubjectExcluded) {
  Schedule before(1);
  before.assign(JobId{1}, Placement{0, 0});
  Schedule after(1);
  after.assign(JobId{1}, Placement{0, 3});
  const DiffCosts costs = diff_costs(before, after, JobId{1});
  EXPECT_EQ(costs.reallocations, 0u);
}

TEST(Validator, AcceptsFeasible) {
  Schedule s(1);
  s.assign(JobId{1}, Placement{0, 3});
  std::unordered_map<JobId, Window> active{{JobId{1}, Window{0, 8}}};
  EXPECT_TRUE(validate_schedule(s, active).ok());
}

TEST(Validator, FlagsUnscheduledActiveJob) {
  Schedule s(1);
  std::unordered_map<JobId, Window> active{{JobId{1}, Window{0, 8}}};
  const auto report = validate_schedule(s, active);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("not scheduled"), std::string::npos);
}

TEST(Validator, FlagsOutOfWindowPlacement) {
  Schedule s(1);
  s.assign(JobId{1}, Placement{0, 9});
  std::unordered_map<JobId, Window> active{{JobId{1}, Window{0, 8}}};
  EXPECT_FALSE(validate_schedule(s, active).ok());
}

TEST(Validator, FlagsGhostJob) {
  Schedule s(1);
  s.assign(JobId{2}, Placement{0, 1});
  std::unordered_map<JobId, Window> active;
  EXPECT_FALSE(validate_schedule(s, active).ok());
}

}  // namespace
}  // namespace reasched
