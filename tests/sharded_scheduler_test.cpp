// Service-layer differential tests: the sharded batch scheduler must be
// indistinguishable from the sequential MultiMachineScheduler — identical
// snapshots, identical per-request stats, identical ledger invariants — for
// every shard count, stripe count, and batch size, because delegation is
// fixed by the §3 round-robin rule. Rejection handling (rollback + exact
// sequential replay) is exercised separately with deliberately infeasible
// batches.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/multi_machine.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "schedule/validator.hpp"
#include "service/sharded_scheduler.hpp"
#include "sim/driver.hpp"
#include "workload/churn.hpp"

namespace reasched {
namespace {

ShardedScheduler::Factory reservation_factory() {
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  return [options] { return std::make_unique<ReservationScheduler>(options); };
}

ShardedScheduler::Factory naive_factory() {
  return [] { return std::make_unique<NaiveScheduler>(); };
}

std::vector<Request> churn_trace(std::uint64_t seed, unsigned machines,
                                 WindowPlacement placement, std::size_t requests) {
  ChurnParams params;
  params.seed = seed;
  params.target_active = 256;
  params.requests = requests;
  params.machines = machines;
  params.min_span = 64;
  params.max_span = 2048;
  params.placement = placement;
  return make_churn_trace(params);
}

void expect_same_stats(const RequestStats& a, const RequestStats& b, std::size_t at) {
  EXPECT_EQ(a.reallocations, b.reallocations) << "request " << at;
  EXPECT_EQ(a.migrations, b.migrations) << "request " << at;
  EXPECT_EQ(a.levels_touched, b.levels_touched) << "request " << at;
  EXPECT_EQ(a.degraded, b.degraded) << "request " << at;
  EXPECT_EQ(a.rebuilt, b.rebuilt) << "request " << at;
}

void expect_same_schedule(const Schedule& want, const Schedule& got) {
  ASSERT_EQ(want.machines(), got.machines());
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [job, placement] : want.assignments()) {
    const auto other = got.find(job);
    ASSERT_TRUE(other.has_value()) << "job " << job.value << " missing";
    EXPECT_EQ(other->machine, placement.machine) << "job " << job.value;
    EXPECT_EQ(other->slot, placement.slot) << "job " << job.value;
  }
}

/// Replays `trace` per-request through a sequential MultiMachineScheduler,
/// returning every request's stats.
std::vector<RequestStats> sequential_reference(MultiMachineScheduler& scheduler,
                                               const std::vector<Request>& trace) {
  std::vector<RequestStats> stats;
  stats.reserve(trace.size());
  for (const Request& request : trace) {
    stats.push_back(request.kind == RequestKind::kInsert
                        ? scheduler.insert(request.job, request.window)
                        : scheduler.erase(request.job));
  }
  return stats;
}

/// Replays `trace` through ShardedScheduler::apply in chunks of batch_size,
/// returning every request's stats. Expects no rejections.
std::vector<RequestStats> batched_run(ShardedScheduler& scheduler,
                                      const std::vector<Request>& trace,
                                      std::size_t batch_size) {
  std::vector<RequestStats> stats;
  stats.reserve(trace.size());
  for (std::size_t first = 0; first < trace.size(); first += batch_size) {
    const std::size_t count = std::min(batch_size, trace.size() - first);
    const BatchResult result =
        scheduler.apply(std::span<const Request>(trace).subspan(first, count));
    EXPECT_TRUE(result.all_served());
    stats.insert(stats.end(), result.stats.begin(), result.stats.end());
  }
  return stats;
}

TEST(ShardedScheduler, MatchesSequentialAtEveryShardCount) {
  for (const WindowPlacement placement :
       {WindowPlacement::kUniform, WindowPlacement::kNestedHotspots}) {
    const auto trace = churn_trace(17, 8, placement, 3000);
    MultiMachineScheduler reference(8, reservation_factory());
    const auto want = sequential_reference(reference, trace);
    reference.audit_balance();

    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
      ShardedScheduler::Options options;
      options.shards = shards;
      ShardedScheduler sharded(8, reservation_factory(), options);
      const auto got = batched_run(sharded, trace, 64);

      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        expect_same_stats(want[i], got[i], i);
      }
      expect_same_schedule(reference.snapshot(), sharded.snapshot());
      EXPECT_EQ(sharded.active_jobs(), reference.active_jobs());
      sharded.audit_balance();
    }
  }
}

TEST(ShardedScheduler, BatchSizeAndStripeCountAreInvisible) {
  const auto trace = churn_trace(23, 8, WindowPlacement::kNestedHotspots, 2000);
  MultiMachineScheduler reference(8, reservation_factory());
  const auto want = sequential_reference(reference, trace);

  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{256}}) {
    for (const std::size_t stripes : {std::size_t{4}, std::size_t{64}}) {
      ShardedScheduler::Options options;
      options.shards = 4;
      options.stripes = stripes;
      ShardedScheduler sharded(8, reservation_factory(), options);
      const auto got = batched_run(sharded, trace, batch);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        expect_same_stats(want[i], got[i], i);
      }
      expect_same_schedule(reference.snapshot(), sharded.snapshot());
      sharded.audit_balance();
    }
  }
}

TEST(ShardedScheduler, SequentialEntryPointsMatchMultiMachine) {
  const auto trace = churn_trace(5, 3, WindowPlacement::kUniform, 1200);
  MultiMachineScheduler reference(3, reservation_factory());
  const auto want = sequential_reference(reference, trace);

  ShardedScheduler::Options options;
  options.shards = 2;  // uneven machine ranges: {0}, {1, 2}
  ShardedScheduler sharded(3, reservation_factory(), options);
  std::vector<RequestStats> got;
  got.reserve(trace.size());
  for (const Request& request : trace) {
    got.push_back(request.kind == RequestKind::kInsert
                      ? sharded.insert(request.job, request.window)
                      : sharded.erase(request.job));
  }
  for (std::size_t i = 0; i < want.size(); ++i) expect_same_stats(want[i], got[i], i);
  expect_same_schedule(reference.snapshot(), sharded.snapshot());
  sharded.audit_balance();
}

TEST(ShardedScheduler, BatchedReplayThroughDriverStaysClean) {
  const auto trace = churn_trace(29, 8, WindowPlacement::kNestedHotspots, 2000);
  ShardedScheduler::Options options;
  options.shards = 4;
  ShardedScheduler sharded(8, reservation_factory(), options);
  SimOptions sim;
  sim.batch_size = 128;
  sim.validate_every = 100;
  const auto report = replay_trace(sharded, trace, sim);
  EXPECT_TRUE(report.clean()) << report.first_issue;
  EXPECT_EQ(report.metrics.rejected(), 0u);
  EXPECT_EQ(report.metrics.max_migrations(), 1u);
}

TEST(ShardedScheduler, RejectionRollsBackAndReplaysSequentially) {
  // Window [0,1): one slot per machine, so two jobs fit and the third is
  // infeasible. The optimistic plan sends jobs 1 and 3 to machine 0 and job
  // 2 to machine 1; job 3's rejection forces the rollback + sequential
  // replay path.
  const std::vector<Request> batch = {
      Request::insert(JobId{1}, Window{0, 1}),
      Request::insert(JobId{2}, Window{0, 1}),
      Request::insert(JobId{3}, Window{0, 1}),
  };
  MultiMachineScheduler reference(2, naive_factory());
  const BatchResult want = reference.apply(batch);

  ShardedScheduler::Options options;
  options.shards = 2;
  ShardedScheduler sharded(2, naive_factory(), options);
  const BatchResult got = sharded.apply(batch);

  EXPECT_EQ(got.rejected, want.rejected);
  ASSERT_EQ(got.rejected.size(), 1u);
  EXPECT_EQ(got.rejected[0], 2u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_stats(want.stats[i], got.stats[i], i);
  }
  EXPECT_EQ(sharded.active_jobs(), 2u);
  expect_same_schedule(reference.snapshot(), sharded.snapshot());
  sharded.audit_balance();

  // The schedulers remain fully usable after the rollback.
  EXPECT_EQ(sharded.erase(JobId{1}).migrations, reference.erase(JobId{1}).migrations);
  sharded.audit_balance();
}

TEST(ShardedScheduler, EraseOfBatchRejectedInsertIsMoot) {
  const std::vector<Request> batch = {
      Request::insert(JobId{1}, Window{0, 1}),
      Request::insert(JobId{2}, Window{0, 1}),
      Request::erase(JobId{2}),
      Request::erase(JobId{1}),
  };
  ShardedScheduler sharded(1, naive_factory(), {});
  const BatchResult result = sharded.apply(batch);
  EXPECT_EQ(result.rejected, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(sharded.active_jobs(), 0u);
  sharded.audit_balance();
}

TEST(ShardedScheduler, RejectedIdMayBeRetriedWithinTheBatch) {
  // Same batch as the default-apply test RejectedIdMayBeReusedWithinTheBatch
  // (tests/batch_api_test.cpp): the retry insert of id 2 looks like a double
  // insert to the optimistic scan and must cut a sub-batch, not throw.
  const std::vector<Request> batch = {
      Request::insert(JobId{1}, Window{0, 1}),
      Request::insert(JobId{2}, Window{0, 1}),  // rejected: slot taken
      Request::erase(JobId{1}),
      Request::insert(JobId{2}, Window{0, 1}),  // now feasible
      Request::erase(JobId{2}),
  };
  MultiMachineScheduler reference(1, naive_factory());
  const BatchResult want = reference.apply(batch);

  ShardedScheduler sharded(1, naive_factory(), {});
  const BatchResult got = sharded.apply(batch);
  EXPECT_EQ(got.rejected, want.rejected);
  EXPECT_EQ(got.rejected, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(sharded.active_jobs(), 0u);
  sharded.audit_balance();

  // A genuine double insert must still throw, sub-batch cut or not.
  ShardedScheduler strict(2, naive_factory(), {});
  EXPECT_THROW(
      strict.apply(std::vector<Request>{Request::insert(JobId{7}, Window{0, 8}),
                                        Request::insert(JobId{7}, Window{0, 8})}),
      ContractViolation);
  EXPECT_EQ(strict.active_jobs(), 1u);  // the first insert was served
}

TEST(ShardedScheduler, IdReuseUnderNewWindowSplitsTheBatch) {
  // Same id erased and re-inserted under a different window within one
  // batch: the scan must cut a sub-batch boundary so the id's requests
  // cannot race across stripes.
  ShardedScheduler::Options options;
  options.shards = 2;
  ShardedScheduler sharded(2, reservation_factory(), options);
  ASSERT_TRUE(sharded.apply(std::vector<Request>{
                                Request::insert(JobId{1}, Window{0, 64}),
                                Request::insert(JobId{2}, Window{64, 128}),
                            })
                  .all_served());

  const std::vector<Request> batch = {
      Request::erase(JobId{1}),
      Request::insert(JobId{1}, Window{64, 128}),
      Request::erase(JobId{1}),
      Request::insert(JobId{1}, Window{0, 64}),
  };
  const BatchResult result = sharded.apply(batch);
  EXPECT_TRUE(result.all_served());
  EXPECT_EQ(sharded.active_jobs(), 2u);
  const auto placement = sharded.snapshot().find(JobId{1});
  ASSERT_TRUE(placement.has_value());
  EXPECT_LT(placement->slot, 64);
  sharded.audit_balance();

  std::unordered_map<JobId, Window> active = {{JobId{1}, Window{0, 64}},
                                              {JobId{2}, Window{64, 128}}};
  EXPECT_TRUE(validate_schedule(sharded.snapshot(), active).ok());
}

TEST(ShardedScheduler, PreconditionViolationsThrow) {
  ShardedScheduler sharded(2, naive_factory(), {});
  ASSERT_TRUE(
      sharded.apply(std::vector<Request>{Request::insert(JobId{1}, Window{0, 8})})
          .all_served());
  EXPECT_THROW(
      sharded.apply(std::vector<Request>{Request::insert(JobId{1}, Window{0, 8})}),
      ContractViolation);
  EXPECT_THROW(sharded.apply(std::vector<Request>{Request::erase(JobId{99})}),
               ContractViolation);
  EXPECT_THROW(ShardedScheduler(0, naive_factory(), {}), ContractViolation);
}

}  // namespace
}  // namespace reasched
