// Compiled-out no-op test: with REASCHED_TELEMETRY absent the RS_TELEM_*
// macros must expand to nothing — no handle objects, no interning, no
// record-path code — so a production build without the flag carries zero
// telemetry cost (bench_e18_telemetry prices the same claim).
//
// The library target defines REASCHED_TELEMETRY PUBLIC-ly, so this TU gets
// the define on its command line; undefine it BEFORE including the
// telemetry headers to compile the off-flavor macros. Only telemetry
// headers may be included here: any instrumented repo header (e.g.
// util/flat_hash.hpp) compiled under the flipped macro would give its
// inline functions a different body than the library's — an ODR violation.
#undef REASCHED_TELEMETRY

#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <string>

namespace reasched::telemetry {
namespace {

static_assert(RS_TELEM_COMPILED == 0,
              "with REASCHED_TELEMETRY undefined the macros must report the "
              "compiled-out flavor");

TEST(TelemetryMacroOff, MacrosExpandToNothing) {
  Registry::set_metrics_enabled(true);
  Registry::set_trace_enabled(true);

  // Handle-declaring macros must not declare anything: the names below are
  // never defined, and the use-macros referencing them must still compile
  // (they expand to ((void)0), so the identifiers vanish).
  RS_TELEM_COUNTER(kOffCounter, "off.counter");
  RS_TELEM_GAUGE(kOffGauge, "off.gauge");
  RS_TELEM_HISTOGRAM(kOffHist, "off.hist");
  RS_TELEM_DURATION(kOffDuration, "off.duration");
  for (int i = 0; i < 100; ++i) {
    RS_TELEM_ADD(kOffCounter, 1);
    RS_TELEM_GAUGE_ADD(kOffGauge, 1);
    RS_TELEM_RECORD(kOffHist, 42);
    RS_TELEM_SPAN(span, kOffDuration, "off.span");
    RS_TELEM_INSTANT("off.instant");
  }

  // Nothing was interned, recorded, or traced.
  const Registry::Snapshot snap = Registry::global().snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name.substr(0, 4), "off.") << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_NE(name.substr(0, 4), "off.") << name;
  }
  for (const auto& h : snap.histograms) {
    EXPECT_NE(h.name.substr(0, 4), "off.") << h.name;
  }
  const std::string trace = Registry::global().trace_json();
  EXPECT_EQ(trace.find("off."), std::string::npos);

  Registry::set_metrics_enabled(false);
}

TEST(TelemetryMacroOff, RegistryItselfStillWorks) {
  // The registry API is compiled unconditionally — tools that scrape must
  // link and run in the off flavor, just with nothing recorded by macros.
  Registry::set_metrics_enabled(true);
  const Counter counter("off.manual");  // direct handle use, not the macro
  counter.add(3);
  std::uint64_t value = 0;
  for (const auto& [name, v] : Registry::global().snapshot().counters) {
    if (name == "off.manual") value = v;
  }
  EXPECT_EQ(value, 3u);
  Registry::set_metrics_enabled(false);
  Registry::global().reset();
}

}  // namespace
}  // namespace reasched::telemetry
