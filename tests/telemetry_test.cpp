// Telemetry-tier tests (src/telemetry/, DESIGN.md §10): histogram bucket
// error vs the documented ≤3% bound, the empty-histogram contracts (both
// LatencyHistogram and the IntHistogram satellite fix), per-thread shard
// recording merged on scrape — also run under TSan in CI, where concurrent
// record/scrape/retire must be race-free — TraceRing wrap-around, and the
// JSON surfaces.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_ring.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace reasched::telemetry {
namespace {

static_assert(RS_TELEM_COMPILED == 1,
              "telemetry_test must build against the instrumented flavor");

/// Every test runs against the process-global registry; scrub shared state
/// so tests stay order-independent.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    Registry::set_metrics_enabled(true);
  }
  void TearDown() override {
    Registry::set_metrics_enabled(false);
    Registry::global().reset();
  }
};

// ---------------------------------------------------------------- buckets --

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_mid(LatencyHistogram::bucket_of(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketErrorPropertyWithinDocumentedBound) {
  // The reported representative of any value's bucket must be within the
  // documented 3% relative error (the per-rounding bound is 2^-7 ≈ 0.8%;
  // the scrape's tick→ns re-bucketing compounds a second rounding).
  Rng rng(0xb13bde5);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t v = rng.log_uniform(1, std::uint64_t{1} << 39);
    const std::uint64_t mid =
        LatencyHistogram::bucket_mid(LatencyHistogram::bucket_of(v));
    const double rel = std::abs(static_cast<double>(mid) - static_cast<double>(v)) /
                       static_cast<double>(v);
    ASSERT_LE(rel, 0.03) << "value " << v << " reported as " << mid;
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotone) {
  std::uint32_t prev = 0;
  for (std::uint64_t v = 1; v < (1u << 20); v = v + 1 + v / 64) {
    const std::uint32_t idx = LatencyHistogram::bucket_of(v);
    ASSERT_GE(idx, prev) << "value " << v;
    prev = idx;
  }
}

TEST(LatencyHistogramTest, ClampsAtTop) {
  LatencyHistogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.max(), LatencyHistogram::bucket_mid(LatencyHistogram::kBuckets - 1));
}

TEST(LatencyHistogramTest, EmptyReturnsZeroEverywhere) {
  const LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(0.999), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, PercentilesOrderedAndNearTruth) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  const std::uint64_t p50 = h.percentile(0.50);
  const std::uint64_t p99 = h.percentile(0.99);
  const std::uint64_t p999 = h.percentile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, h.max());
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.03);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 * 0.03);
}

TEST(LatencyHistogramTest, MergeMatchesSingleStream) {
  Rng rng(42);
  LatencyHistogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.log_uniform(1, 1u << 30);
    ((i % 2 == 0) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_TRUE(a == all);
}

// The satellite fix: IntHistogram must scrape as zeros when empty instead
// of aborting (zero-request shards).
TEST(IntHistogramEmptyTest, PercentileAndMaxReturnZero) {
  const IntHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
  EXPECT_EQ(h.max_value(), 0u);
}

// ------------------------------------------------------------- trace ring --

TEST(TraceRingTest, WrapAroundKeepsNewestOldestFirst) {
  TraceRing ring(8);  // already a power of two
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.push(TraceEvent{"e", i, 0, 'i'});
  }
  EXPECT_EQ(ring.pushed(), 20u);
  const std::vector<TraceEvent> events = ring.drain();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].ts_ticks, 12 + k);  // oldest surviving first
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(5);
  for (std::uint64_t i = 0; i < 100; ++i) ring.push(TraceEvent{"e", i, 0, 'i'});
  EXPECT_EQ(ring.drain().size(), 8u);
}

TEST(TraceRingTest, DrainBelowCapacityReturnsAll) {
  TraceRing ring(64);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(TraceEvent{"e", i, 0, 'i'});
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 10u);
  EXPECT_EQ(events.front().ts_ticks, 0u);
  EXPECT_EQ(events.back().ts_ticks, 9u);
}

// ----------------------------------------------------------- shard & merge --

TEST_F(TelemetryTest, CountersMergeAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  const Counter counter("test.merge.count");
  const Gauge gauge("test.merge.gauge");
  const Histogram hist("test.merge.hist", Registry::Unit::kCount);

  // Concurrent scraper: under TSan this proves record/scrape/retire are
  // race-free, not merely that the totals come out right.
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)Registry::global().snapshot();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        gauge.add(2);
        gauge.add(-1);
        hist.record(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();  // shards retire on thread exit
  stop.store(true);
  scraper.join();

  const Registry::Snapshot snap = Registry::global().snapshot();
  std::uint64_t count = 0;
  std::int64_t gauge_value = -1;
  std::uint64_t hist_total = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.merge.count") count = value;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.merge.gauge") gauge_value = value;
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "test.merge.hist") hist_total = h.hist.total();
  }
  EXPECT_EQ(count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge_value, static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist_total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(TelemetryTest, DisabledRecordSitesAreInvisible) {
  Registry::set_metrics_enabled(false);
  const Counter counter("test.disabled.count");
  counter.add(100);
  const Registry::Snapshot snap = Registry::global().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.disabled.count") {
      EXPECT_EQ(value, 0u);
    }
  }
}

TEST_F(TelemetryTest, SpanFeedsHistogramAndTrace) {
  Registry::set_trace_enabled(true);
  const Histogram hist("test.span.hist", Registry::Unit::kTicks);
  for (int i = 0; i < 32; ++i) {
    Span span(hist, "test.span");
  }
  RS_TELEM_INSTANT("test.instant");
  const Registry::Snapshot snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "test.span.hist") continue;
    found = true;
    EXPECT_EQ(h.unit, Registry::Unit::kTicks);
    EXPECT_EQ(h.hist.total(), 32u);
  }
  EXPECT_TRUE(found);
  const std::string trace = Registry::global().trace_json();
  EXPECT_NE(trace.find("\"test.span\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.instant\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  Registry::set_trace_enabled(false);
}

TEST_F(TelemetryTest, SnapshotJsonCarriesTheLatencyBlock) {
  const Histogram hist("test.json.hist", Registry::Unit::kCount);
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  const std::string json = Registry::global().snapshot_json();
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"ns_per_tick\""), std::string::npos);
}

TEST_F(TelemetryTest, ResetZeroesButKeepsNames) {
  const Counter counter("test.reset.count");
  counter.add(7);
  Registry::global().reset();
  const Registry::Snapshot snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.reset.count") {
      found = true;
      EXPECT_EQ(value, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, EnableIsTurnOnOnly) {
  Registry::set_metrics_enabled(false);
  TelemetryOptions on;
  on.enabled = true;
  enable(on);
  EXPECT_TRUE(Registry::metrics_enabled());
  enable(TelemetryOptions{});  // all-off options must not disable
  EXPECT_TRUE(Registry::metrics_enabled());
  TelemetryOptions trace;
  trace.trace = true;
  enable(trace);  // trace implies metrics
  EXPECT_TRUE(Registry::trace_enabled());
  EXPECT_TRUE(Registry::metrics_enabled());
  Registry::set_trace_enabled(false);
}

}  // namespace
}  // namespace reasched::telemetry
