// Regression suite for the incremental fulfillment cache
// (reservation_scheduler, DESIGN.md §4).
//
// The cache's contract is that every cached table equals a cold
// recomputation off the ledgers whenever it is consumed (Observation 7
// makes fulfillment history independent, so "equal after every request" is
// the exact correctness bar — any missed invalidation shows up as a
// divergence). verify_fulfillment_cache() performs that comparison
// entry-by-entry and throws on mismatch; these tests drive it through
// every mutation class: inserts, erases, window activation/deactivation,
// displacement cascades, n* rebuilds, and best-effort degradation.
#include <gtest/gtest.h>

#include <unordered_map>

#include "reasched/reasched.hpp"
#include "schedule/validator.hpp"

namespace reasched {
namespace {

RequestStats serve(ReservationScheduler& s, const Request& r) {
  return r.kind == RequestKind::kInsert ? s.insert(r.job, r.window) : s.erase(r.job);
}

std::vector<Request> churn_trace(std::uint64_t seed, std::size_t requests,
                                 WindowPlacement placement) {
  ChurnParams params;
  params.seed = seed;
  params.target_active = 512;
  params.requests = requests;
  params.min_span = 64;
  params.max_span = 4096;
  params.aligned = true;
  params.placement = placement;
  return make_churn_trace(params);
}

TEST(FulfillmentCache, MatchesColdRecomputationAfterEveryRequest) {
  // The acceptance bar from the issue: a 10k-request randomized churn run
  // where cached tables match a cold recomputation after every mutation.
  for (const auto placement :
       {WindowPlacement::kUniform, WindowPlacement::kNestedHotspots}) {
    const auto trace = churn_trace(1234, 10'000, placement);
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    ReservationScheduler s(options);
    std::size_t verified_total = 0;
    for (const Request& r : trace) {
      serve(s, r);
      ASSERT_NO_THROW(verified_total += s.verify_fulfillment_cache());
    }
    // The run must actually exercise the cache, not vacuously pass.
    EXPECT_GT(verified_total, 10'000u) << "placement " << static_cast<int>(placement);
  }
}

TEST(FulfillmentCache, SurvivesRebuildCycles) {
  // Drive n* through repeated doublings and halvings (trimming enabled by
  // default): every rebuild clears and lazily rematerializes all interval
  // state, a classic place for stale-cache bugs.
  SchedulerOptions options;
  options.overflow = OverflowPolicy::kBestEffort;
  ReservationScheduler s(options);
  std::uint64_t next = 1;
  std::vector<JobId> active;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 300; ++i) {
      const JobId id{next++};
      s.insert(id, Window{(static_cast<Time>(i) % 8) * 512, (static_cast<Time>(i) % 8) * 512 + 512});
      active.push_back(id);
      ASSERT_NO_THROW(s.verify_fulfillment_cache());
    }
    while (active.size() > 20) {
      s.erase(active.back());
      active.pop_back();
      ASSERT_NO_THROW(s.verify_fulfillment_cache());
    }
  }
  EXPECT_EQ(s.active_jobs(), active.size());
}

TEST(FulfillmentCache, AuditUnderChurnStress) {
  // Full-invariant audit (which includes the cache comparison) after every
  // one of 2k randomized requests, in both placement regimes.
  for (const auto placement :
       {WindowPlacement::kUniform, WindowPlacement::kNestedHotspots}) {
    const auto trace = churn_trace(99, 2'000, placement);
    SchedulerOptions options;
    options.overflow = OverflowPolicy::kBestEffort;
    options.audit = true;  // audit() throws InternalError on any violation
    ReservationScheduler s(options);
    std::unordered_map<JobId, Window> live;
    for (const Request& r : trace) {
      ASSERT_NO_THROW(serve(s, r)) << "placement " << static_cast<int>(placement);
      if (r.kind == RequestKind::kInsert) {
        live.emplace(r.job, r.window);
      } else {
        live.erase(r.job);
      }
    }
    EXPECT_TRUE(validate_schedule(s.snapshot(), live).ok());
  }
}

TEST(FulfillmentCache, AuditUnderOverloadDegradation) {
  // Sustained overload exercises parking, emergency EDF rescheduling and
  // the recovery paths — all of which reset or bypass cached state.
  SchedulerOptions options;
  options.trimming = false;
  options.overflow = OverflowPolicy::kBestEffort;
  options.audit = true;
  ReservationScheduler s(options);
  Rng rng(7);
  std::vector<JobId> active;
  std::uint64_t next = 1;
  const std::vector<Window> windows = {{0, 64}, {64, 128}, {0, 128}, {0, 256}};
  for (int step = 0; step < 800; ++step) {
    if (!active.empty() && rng.chance(0.45)) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform(0, active.size() - 1));
      s.erase(active[pick]);
      active[pick] = active.back();
      active.pop_back();
    } else {
      const JobId id{next++};
      try {
        s.insert(id, windows[static_cast<std::size_t>(rng.uniform(0, 3))]);
        active.push_back(id);
      } catch (const InfeasibleError&) {
        // Physically full; acceptable under deliberate overload.
      }
    }
  }
  SUCCEED();  // no audit (hence no cache) violation during the run
}

TEST(FulfillmentCache, LegacyAndOptimizedProduceIdenticalSchedules) {
  // The cache is purely an optimization: the legacy (seed-equivalent,
  // recompute-cold) path and the cached path must make identical decisions
  // on identical inputs — compared snapshot-for-snapshot after every one of
  // 4k requests.
  const auto trace = churn_trace(5150, 4'000, WindowPlacement::kNestedHotspots);
  SchedulerOptions optimized_options;
  optimized_options.overflow = OverflowPolicy::kBestEffort;
  SchedulerOptions legacy_options = optimized_options;
  legacy_options.legacy_fulfillment = true;
  ReservationScheduler optimized(optimized_options);
  ReservationScheduler legacy(legacy_options);
  for (const Request& r : trace) {
    const RequestStats a = serve(optimized, r);
    const RequestStats b = serve(legacy, r);
    ASSERT_EQ(a.reallocations, b.reallocations);
    ASSERT_EQ(a.degraded, b.degraded);
    ASSERT_EQ(optimized.snapshot().assignments(), legacy.snapshot().assignments());
  }
}

TEST(FulfillmentCache, IntrospectionAgreesWithLegacy) {
  // fulfillment_of_interval must report the same tables with and without
  // the cache, for materialized and unmaterialized intervals alike.
  SchedulerOptions optimized_options;
  SchedulerOptions legacy_options;
  legacy_options.legacy_fulfillment = true;
  ReservationScheduler optimized(optimized_options);
  ReservationScheduler legacy(legacy_options);
  std::uint64_t next = 1;
  for (int i = 0; i < 64; ++i) {
    const Time start = (static_cast<Time>(i) % 4) * 1024;
    const Window w{start, start + 1024};
    optimized.insert(JobId{next}, w);
    legacy.insert(JobId{next}, w);
    ++next;
  }
  for (Time base = 0; base < 4096; base += 256) {
    const auto a = optimized.fulfillment_of_interval(2, base);
    const auto b = legacy.fulfillment_of_interval(2, base);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].window, b[i].window);
      EXPECT_EQ(a[i].active, b[i].active);
      EXPECT_EQ(a[i].reservations, b[i].reservations);
      EXPECT_EQ(a[i].fulfilled, b[i].fulfilled);
    }
  }
}

}  // namespace
}  // namespace reasched
