// Contract macros for the reasched library.
//
// Three tiers, following the C++ Core Guidelines (I.6, E.12):
//   RS_REQUIRE   - precondition on the public API; always on, throws
//                  reasched::ContractViolation so callers can recover/test.
//   RS_CHECK     - internal invariant that is cheap to evaluate; always on.
//                  A failure indicates a bug in this library (or an
//                  instance that violates a documented feasibility
//                  requirement); throws reasched::InternalError.
//   RS_ASSERT    - expensive internal audit; compiled out unless
//                  REASCHED_AUDIT is defined (tests define it).
//
// Checking-gate matrix — who turns which verification on. The macro tier
// above is COMPILE-time gated; the audit subsystem (src/audit/) is
// RUNTIME gated, and the two axes are independent:
//
//   mechanism              compile-time gate   runtime gate
//   ---------------------  ------------------  ---------------------------
//   RS_REQUIRE / RS_CHECK  none (always on)    none (always on)
//   RS_ASSERT              REASCHED_AUDIT      none - zero cost when the
//                          (tests define it)   macro compiles out
//   full sweep audit()     none (always built) SchedulerOptions::audit
//                                              (every request), an
//                                              audit_policy{kFull,cadence},
//                                              or an explicit call
//   incremental audit      none (always built) SchedulerOptions::audit_policy
//                                              {kIncremental, cadence,
//                                              budget, differential}
//   RS_TELEM_* records     REASCHED_TELEMETRY  TelemetryOptions (threaded
//   (src/telemetry/)       (ON by default;     through SchedulerOptions /
//                          OFF expands the     ShardedScheduler::Options /
//                          macros to nothing,  SimOptions) flips process-
//                          bench_e18 prices    wide metric + trace gates;
//                          both flavors)       span timing beyond 1-in-8
//                                              sampling arms with trace
//
// Consequences worth spelling out:
//   * A release build WITHOUT REASCHED_AUDIT still audits fully when asked
//     at runtime - the audit code is ordinary code, not RS_ASSERT bodies.
//   * A test build WITH REASCHED_AUDIT but both runtime gates off runs
//     only RS_CHECK plus the inline RS_ASSERT micro-asserts; no sweeps.
//   * "Audit off" (options.audit == false, audit_policy.mode == kOff)
//     must mean ZERO audit work - no engine is allocated, no mutation
//     events fire (one null-pointer branch), no sweep ever runs. The
//     bench smoke asserts ReservationScheduler::audit_work().zero() stays
//     true in that configuration (bench_e15_audit --quick).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace reasched {

/// Thrown when a public-API precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant fails (library bug or infeasible input
/// surfaced in a place where no graceful policy applies).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown by schedulers (under OverflowPolicy::kThrow) when the instance is
/// not sufficiently underallocated for the algorithm's guarantees.
class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_contract(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " - " << msg;
  throw ContractViolation(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " - " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace reasched

#define RS_REQUIRE(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::reasched::detail::throw_contract(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (0)

#define RS_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::reasched::detail::throw_internal(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (0)

#ifdef REASCHED_AUDIT
#define RS_ASSERT(expr, msg) RS_CHECK(expr, msg)
#else
#define RS_ASSERT(expr, msg) \
  do {                       \
  } while (0)
#endif
