// Deterministic, seedable random number generation for workloads and tests.
//
// xoshiro256** (Blackman & Vigna) seeded via splitmix64. Deterministic across
// platforms (unlike std::mt19937 distributions, whose outputs are
// implementation-defined), which keeps workload traces reproducible.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace reasched {

/// splitmix64 step; used for seeding and as a cheap hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234567890abcdefULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Unbiased (rejection sampling).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    RS_REQUIRE(lo <= hi, "Rng::uniform: empty range");
    const std::uint64_t span = hi - lo;
    if (span == max()) return (*this)();
    const std::uint64_t bound = span + 1;
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return lo + r % bound;
    }
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform01() < p; }

  /// Log-uniform integer in [lo, hi]: exponent drawn uniformly. Handy for
  /// window-span sampling across decades.
  [[nodiscard]] std::uint64_t log_uniform(std::uint64_t lo, std::uint64_t hi) {
    RS_REQUIRE(lo > 0 && lo <= hi, "Rng::log_uniform: invalid range");
    // Draw an exponent uniformly, then a value uniformly within the octave.
    const unsigned elo = floor_log2_local(lo);
    const unsigned ehi = floor_log2_local(hi);
    const unsigned e = static_cast<unsigned>(uniform(elo, ehi));
    const std::uint64_t octave_lo = std::uint64_t{1} << e;
    const std::uint64_t octave_hi = (e >= 63) ? hi : (std::uint64_t{2} << e) - 1;
    const std::uint64_t clo = octave_lo < lo ? lo : octave_lo;
    const std::uint64_t chi = octave_hi > hi ? hi : octave_hi;
    return uniform(clo, chi);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static constexpr unsigned floor_log2_local(std::uint64_t x) noexcept {
    unsigned r = 0;
    while (x >>= 1) ++r;
    return r;
  }

  std::uint64_t state_[4]{};
};

}  // namespace reasched
