#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace reasched {

void Table::set_header(std::vector<std::string> header) {
  RS_REQUIRE(rows_.empty(), "Table::set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  RS_REQUIRE(header_.empty() || row.size() == header_.size(),
             "Table::add_row arity mismatch with header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[i])) << cell << " | ";
    }
    os << '\n';
  };
  std::size_t total = 1;
  for (const auto w : width) total += w + 3;
  const std::string rule(total, '-');
  if (!header_.empty()) {
    emit(header_);
    os << rule << '\n';
  }
  for (const auto& row : rows_) emit(row);
  os.flush();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  os.flush();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

}  // namespace reasched
