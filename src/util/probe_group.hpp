// SIMD group probing for the flat-hash tier: scan 16 ctrl bytes per step.
//
// util/flat_hash.hpp keeps a SwissTable-style ctrl-byte array (one byte per
// slot: kEmpty / kFull / kTombstone) next to the slot storage. The probe
// loops used to walk that array byte-by-byte; every ledger the reallocation
// algorithms touch (occupancy, window sets, balance pools) sits on those
// loops, so probe cost is the floor under request throughput (DESIGN.md
// §13). A Group loads 16 adjacent ctrl bytes at once and answers "which of
// these bytes equal V?" as a 16-bit mask, so one load plus a couple of
// byte-wide compares replaces up to 16 iterations of load/compare/branch —
// tombstone runs and clustered probe chains collapse into single steps.
//
// Dispatch is a single compile-time seam:
//   * x86-64: SSE2 `_mm_cmpeq_epi8` + `_mm_movemask_epi8`. SSE2 is part of
//     the x86-64 baseline ABI, so no runtime CPUID dispatch is needed —
//     every x86-64 build takes this arm unconditionally.
//   * aarch64: NEON `vceqq_u8` with the add-across movemask emulation
//     (NEON is mandatory on AArch64, same reasoning).
//   * anything else, or -DREASCHED_FORCE_SCALAR_PROBE: ScalarGroup, a
//     portable SWAR fallback over two 64-bit words.
// The force-scalar flavor is a first-class CI lane (.github/workflows/
// ci.yml job `scalar-probe`): both arms must stay green on every PR, and
// tests/flat_hash_simd_test.cpp additionally checks Group against
// ScalarGroup mask-for-mask, which is what pins the two arms to identical
// probe decisions (and therefore byte-identical table layouts/schedules).
//
// Masks are ordered: bit i corresponds to ctrl[base + i], so
// BitMask::lowest() walks candidates in exactly the order the scalar loop
// visited them — group probing changes probe COST, never probe RESULTS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include <bit>

#if !defined(REASCHED_FORCE_SCALAR_PROBE) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__))
#define RS_PROBE_SSE2 1
#include <emmintrin.h>
#elif !defined(REASCHED_FORCE_SCALAR_PROBE) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define RS_PROBE_NEON 1
#include <arm_neon.h>
#endif

namespace reasched::probe {

/// Ctrl bytes examined per probe step. All arms use the same width so the
/// group-walk arithmetic in flat_hash.hpp is arm-independent.
inline constexpr std::size_t kGroupWidth = 16;

/// One bit per group byte, bit i = ctrl[base + i]. Low bits are earlier in
/// probe order.
using mask_t = std::uint32_t;

inline constexpr mask_t kAllBytes = 0xFFFFu;

/// Position of the first set bit (earliest matching byte in probe order).
/// Precondition: mask != 0.
[[nodiscard]] inline std::size_t lowest_bit(mask_t mask) noexcept {
  return static_cast<std::size_t>(std::countr_zero(mask));
}

/// Clears the lowest set bit — advance to the next candidate.
[[nodiscard]] inline mask_t clear_lowest(mask_t mask) noexcept {
  return mask & (mask - 1);
}

/// Bits strictly BELOW the first set bit of `mask`; all bits when mask is
/// empty. `candidates & below_first(empty)` selects exactly the full slots
/// a sequential scan would have visited before stopping at the first empty.
[[nodiscard]] inline mask_t below_first(mask_t mask) noexcept {
  return mask == 0 ? kAllBytes : ((mask & (0u - mask)) - 1);
}

/// Portable SWAR arm: two 64-bit words, positionally-exact zero-byte
/// detection (the borrow-free 0x7F-add form — the classic
/// `(v-0x01..)&~v&0x80..` haszero trick is only EXISTENCE-exact: a borrow
/// out of a genuinely-zero byte ripples into an adjacent 0x01 byte and
/// forges a match there), high bits collapsed to a 16-bit mask with a
/// carry-free multiply. Always compiled, whatever the dispatch picks: the
/// SIMD arms are differential-tested against it
/// (tests/flat_hash_simd_test.cpp) and the REASCHED_FORCE_SCALAR_PROBE CI
/// flavor runs the whole flat-hash tier on it.
class ScalarGroup {
 public:
  explicit ScalarGroup(const std::uint8_t* ctrl) noexcept {
    std::memcpy(&lo_, ctrl, sizeof(lo_));
    std::memcpy(&hi_, ctrl + sizeof(lo_), sizeof(hi_));
  }

  [[nodiscard]] mask_t match(std::uint8_t value) const noexcept {
    return static_cast<mask_t>(match_word(lo_, value)) |
           (static_cast<mask_t>(match_word(hi_, value)) << 8);
  }

 private:
  /// 8-bit mask of the bytes of `word` equal to `value`.
  [[nodiscard]] static std::uint32_t match_word(std::uint64_t word,
                                                std::uint8_t value) noexcept {
    const std::uint64_t pattern = 0x0101010101010101ULL * value;
    const std::uint64_t diff = word ^ pattern;  // zero byte <=> equal byte
    // Per-byte zero test with no cross-byte carries: (d&0x7F)+0x7F tops out
    // at 0xFE, so byte i's high bit here is set iff diff byte i == 0 —
    // positionally exact, unlike the borrow-rippling haszero trick.
    const std::uint64_t zero_high =
        ~(((diff & 0x7F7F7F7F7F7F7F7FULL) + 0x7F7F7F7F7F7F7F7FULL) | diff |
          0x7F7F7F7F7F7F7F7FULL);
    // zero_high has bit 8i+7 set iff byte i matched. Each (set bit of
    // zero_high) x (set bit of the constant) lands on a distinct product
    // bit — 8(i-i') = 7(j-j') has no non-trivial solution in [0,7]² — so
    // the multiply is carry-free and bits [56,63] read out the byte mask.
    return static_cast<std::uint32_t>(
        (zero_high * 0x0002040810204081ULL) >> 56);
  }

  std::uint64_t lo_;
  std::uint64_t hi_;
};

#if defined(RS_PROBE_SSE2)

class Sse2Group {
 public:
  explicit Sse2Group(const std::uint8_t* ctrl) noexcept
      : bytes_(_mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl))) {}

  [[nodiscard]] mask_t match(std::uint8_t value) const noexcept {
    const __m128i pattern = _mm_set1_epi8(static_cast<char>(value));
    return static_cast<mask_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(bytes_, pattern)));
  }

 private:
  __m128i bytes_;
};

using Group = Sse2Group;
inline constexpr const char* kBackendName = "sse2";

#elif defined(RS_PROBE_NEON)

class NeonGroup {
 public:
  explicit NeonGroup(const std::uint8_t* ctrl) noexcept
      : bytes_(vld1q_u8(ctrl)) {}

  [[nodiscard]] mask_t match(std::uint8_t value) const noexcept {
    const uint8x16_t eq = vceqq_u8(bytes_, vdupq_n_u8(value));
    // Movemask emulation: AND each matched lane (0xFF) down to its
    // positional bit, then horizontal-add each half (A64 vaddv).
    const uint8x16_t bits = {1, 2, 4, 8, 16, 32, 64, 128,
                             1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t masked = vandq_u8(eq, bits);
    return static_cast<mask_t>(vaddv_u8(vget_low_u8(masked))) |
           (static_cast<mask_t>(vaddv_u8(vget_high_u8(masked))) << 8);
  }

 private:
  uint8x16_t bytes_;
};

using Group = NeonGroup;
inline constexpr const char* kBackendName = "neon";

#else

using Group = ScalarGroup;
inline constexpr const char* kBackendName = "scalar";

#endif

/// Read-prefetch of the cache line holding `address`, low temporal
/// locality. Used to pull the partner table's ctrl group in while the
/// active table is being probed during a two-table migration.
inline void prefetch(const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/1);
#else
  static_cast<void>(address);
#endif
}

}  // namespace reasched::probe
