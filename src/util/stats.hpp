// Streaming statistics and integer histograms for per-request cost metrics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

#include "util/assert.hpp"

namespace reasched {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sparse histogram over non-negative integer values (e.g. reallocations per
/// request). Exact counts; supports percentile queries.
class IntHistogram {
 public:
  void add(std::uint64_t value) noexcept {
    ++buckets_[value];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count_of(std::uint64_t value) const noexcept {
    const auto it = buckets_.find(value);
    return it == buckets_.end() ? 0 : it->second;
  }

  /// Smallest value v such that at least q*total() samples are <= v.
  /// Returns 0 on an empty histogram: a zero-request shard must scrape as
  /// all-zero metrics, not abort the run.
  [[nodiscard]] std::uint64_t percentile(double q) const {
    RS_REQUIRE(q >= 0.0 && q <= 1.0, "percentile: q outside [0,1]");
    if (total_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (const auto& [value, count] : buckets_) {
      seen += count;
      if (seen >= target) return value;
    }
    return buckets_.rbegin()->first;
  }

  /// Largest recorded value; 0 on an empty histogram (same contract as
  /// percentile()).
  [[nodiscard]] std::uint64_t max_value() const {
    if (total_ == 0) return 0;
    return buckets_.rbegin()->first;
  }

  [[nodiscard]] double mean() const noexcept {
    if (total_ == 0) return 0.0;
    double s = 0.0;
    for (const auto& [value, count] : buckets_)
      s += static_cast<double>(value) * static_cast<double>(count);
    return s / static_cast<double>(total_);
  }

  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  void merge(const IntHistogram& other) {
    for (const auto& [value, count] : other.buckets_) buckets_[value] += count;
    total_ += other.total_;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace reasched
