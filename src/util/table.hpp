// Paper-style ASCII tables with optional CSV emission.
//
// The bench harness prints one table per experiment, mirroring how a paper
// reports a figure's data series. Cells are strings; numeric helpers format
// with fixed precision.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace reasched {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with box-drawing alignment to `os`.
  void print(std::ostream& os) const;

  /// Renders as CSV (header + rows, no title) to `os`.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Fixed-precision float formatting helper.
  static std::string num(double v, int precision = 2);
  /// Integer formatting helper.
  static std::string num(std::uint64_t v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reasched
