// Fixed-size-block bump arena for per-interval scheduler state.
//
// Every materialized Interval of a level needs exactly the same amount of
// backing memory — interval_size SlotInfo cells, class_count fulfillment
// rows, class_count assignment counters — so each LevelState owns one
// BlockArena configured with that block size, and interval materialization
// is a single O(1) carve instead of three heap allocations (the seed's
// `slots` / `ful_cache` / `assigned_by_class` vectors). The three arrays of
// one interval are adjacent in memory, which also helps the reconcile /
// acquire hot loops that touch all three.
//
// Lifecycle contract (matches how the scheduler uses interval state):
//   * carve() hands out a zeroed block; blocks are never freed one by one.
//   * reset() rewinds the bump cursor and keeps the chunks for reuse — the
//     legacy (stop-the-world) rebuild and the EDF emergency path clear a
//     level's intervals wholesale and immediately re-materialize, so reuse
//     avoids re-paying the allocator.
//   * Destruction frees all chunks at once. The partitioned rebuild retires
//     a whole generation of interval state by parking the old scheduler and
//     destroying one LevelState — intervals, ledgers, and this arena — per
//     subsequent request ("deferred trimming", trim_retired_step), so no
//     single request pays the teardown.
//
// Not thread-safe; each arena is owned by exactly one scheduler instance.
// In the sharded service layer every per-machine scheduler (and hence every
// arena) is private to one shard worker — arenas are shard-local by
// construction and need no locking (DESIGN.md §6).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace reasched {

class BlockArena {
 public:
  /// Chunks are sized to hold many blocks so carve() rarely touches the
  /// allocator: at least this many bytes, at least kMinBlocksPerChunk blocks.
  static constexpr std::size_t kMinChunkBytes = std::size_t{64} * 1024;
  static constexpr std::size_t kMinBlocksPerChunk = 8;

  BlockArena() = default;
  BlockArena(BlockArena&&) noexcept = default;
  BlockArena& operator=(BlockArena&&) noexcept = default;

  /// Fixes the block size (bytes; rounded up to kAlign). Must be called
  /// once, before the first carve; re-configuring a non-empty arena throws.
  void configure(std::size_t block_bytes) {
    RS_REQUIRE(block_bytes > 0, "BlockArena::configure: zero block size");
    RS_CHECK(blocks_carved_ == 0 && chunks_.empty(),
             "BlockArena::configure: arena already in use");
    block_bytes_ = (block_bytes + kAlign - 1) & ~(kAlign - 1);
    std::size_t chunk_blocks = kMinChunkBytes / block_bytes_;
    if (chunk_blocks < kMinBlocksPerChunk) chunk_blocks = kMinBlocksPerChunk;
    blocks_per_chunk_ = chunk_blocks;
  }

  [[nodiscard]] bool configured() const noexcept { return block_bytes_ != 0; }
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }

  /// O(1): returns a zeroed block of block_bytes(), aligned to kAlign. The
  /// pointer stays valid until reset() or destruction — chunks never move.
  [[nodiscard]] std::byte* carve() {
    RS_CHECK(configured(), "BlockArena::carve: configure() first");
    if (cursor_chunk_ == chunks_.size()) {
      // Value-initialized: virgin blocks are zero without a per-carve memset
      // (plain operator new[] already aligns to max_align_t).
      chunks_.emplace_back(new std::byte[blocks_per_chunk_ * block_bytes_]());
    }
    std::byte* block = chunks_[cursor_chunk_].get() + cursor_block_ * block_bytes_;
    if (++cursor_block_ == blocks_per_chunk_) {
      cursor_block_ = 0;
      ++cursor_chunk_;
    }
    ++blocks_carved_;
    if (cursor_chunk_ < high_water_chunk_ ||
        (cursor_chunk_ == high_water_chunk_ && cursor_block_ <= high_water_block_)) {
      // Reused memory from before the last reset(): must be re-zeroed.
      std::memset(block, 0, block_bytes_);
      ++blocks_reused_;
    }
    return block;
  }

  /// O(1): rewinds the cursor, keeping the chunks for reuse. Every block
  /// previously carved becomes invalid.
  void reset() noexcept {
    if (cursor_chunk_ > high_water_chunk_ ||
        (cursor_chunk_ == high_water_chunk_ && cursor_block_ > high_water_block_)) {
      high_water_chunk_ = cursor_chunk_;
      high_water_block_ = cursor_block_;
    }
    cursor_chunk_ = 0;
    cursor_block_ = 0;
    blocks_carved_ = 0;
  }

  // ---- introspection (tests, ARCHITECTURE.md numbers) ----
  [[nodiscard]] std::size_t blocks_carved() const noexcept { return blocks_carved_; }
  [[nodiscard]] std::size_t blocks_reused() const noexcept { return blocks_reused_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return chunks_.size() * blocks_per_chunk_ * block_bytes_;
  }

  static constexpr std::size_t kAlign = alignof(std::max_align_t);

 private:
  std::size_t block_bytes_ = 0;
  std::size_t blocks_per_chunk_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t cursor_chunk_ = 0;  // next carve position
  std::size_t cursor_block_ = 0;
  std::size_t high_water_chunk_ = 0;  // carve frontier before the last reset
  std::size_t high_water_block_ = 0;
  std::size_t blocks_carved_ = 0;
  std::size_t blocks_reused_ = 0;
};

}  // namespace reasched
