// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78) —
// the checksum guarding every WAL frame and snapshot payload in the
// durability tier (src/durability/, DESIGN.md §9).
//
// Two implementations behind one entry point: the SSE4.2 CRC32 instruction
// when the CPU has it (runtime-detected once; ~10 GB/s, which makes the
// checksum invisible on the WAL hot path the E17 bench gates), and a
// portable software slicing-by-4 fallback over compile-time tables
// (~1 GB/s). Both compute the same Castagnoli CRC — the hardware
// instruction implements exactly this polynomial, so on-disk artifacts are
// identical either way. Castagnoli rather than the zlib polynomial because
// its error-detection properties for short messages are strictly better
// and it is the de-facto standard for storage framing (iSCSI, ext4,
// leveldb).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace reasched {

namespace detail {

struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  constexpr Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

inline constexpr Crc32cTables kCrc32cTables{};

[[nodiscard]] inline std::uint32_t crc32c_update_sw(std::uint32_t crc, const void* data,
                                                    std::size_t len) noexcept {
  const auto& t = detail::kCrc32cTables.t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (len >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^ t[1][(crc >> 16) & 0xFFu] ^
          t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define REASCHED_CRC32C_HW 1
/// SSE4.2 path — the CRC32 instruction implements exactly the Castagnoli
/// polynomial, so this is bit-identical to the table fallback. Compiled
/// with a per-function target attribute; only called after a cpuid check.
__attribute__((target("sse4.2"))) [[nodiscard]] inline std::uint32_t
crc32c_update_hw(std::uint32_t crc, const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c = ~crc;
  while (len >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    len -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (len-- > 0) c32 = __builtin_ia32_crc32qi(c32, *p++);
  return ~c32;
}
#endif

}  // namespace detail

/// Incremental update: feed successive chunks, passing the previous return
/// value as `crc` (start from 0). The value returned is the finalized CRC
/// of everything fed so far — no separate finalize step.
[[nodiscard]] inline std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                                                 std::size_t len) noexcept {
#ifdef REASCHED_CRC32C_HW
  static const bool kHasHardwareCrc = __builtin_cpu_supports("sse4.2") != 0;
  if (kHasHardwareCrc) return detail::crc32c_update_hw(crc, data, len);
#endif
  return detail::crc32c_update_sw(crc, data, len);
}

/// One-shot CRC32C of a buffer.
[[nodiscard]] inline std::uint32_t crc32c(const void* data, std::size_t len) noexcept {
  return crc32c_update(0, data, len);
}

}  // namespace reasched
