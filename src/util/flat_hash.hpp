// Open-addressing hash containers for the scheduler hot path.
//
// std::unordered_map pays a heap allocation per node and a pointer chase per
// probe; the reservation scheduler's inner loops (interval lookup, window
// ledgers, occupancy) are dominated by exactly those lookups. FlatHashMap /
// FlatHashSet store slots contiguously (linear probing, power-of-two
// capacity, tombstone deletion) so a lookup is one hash, one masked index
// and a short linear scan over adjacent memory. The scan is *vectorized*
// (DESIGN.md §13): probe loops examine the ctrl-byte array 16 bytes at a
// time through util/probe_group.hpp (SSE2 / NEON / portable-SWAR behind
// one compile-time seam), which changes probe cost but never probe
// results — placements, and therefore schedules, stay byte-identical
// across SIMD, scalar and legacy-rehash arms.
//
// Growth is *incremental* by default (DESIGN.md §8). A stop-the-world
// rehash of a large table is a latency cliff of exactly the shape the
// paper's reallocation bounds amortize away — at n = 10⁵ the occupancy
// table's doubling was the worst per-request latency left after the
// partitioned n*-rebuild (bench E16). So growth mirrors the rebuild's
// two-generation scheme: on reaching the load threshold the map allocates
// the new table and *retires* the old one in place; every subsequent
// insert/erase migrates a bounded batch of old buckets (kMigrateBatch),
// lookups probe the new table first and fall back to the retiring one, and
// an optional drain_rehash(budget) hook lets idle callers finish early.
// Tables below kMinIncrementalCapacity still rehash in place — copying a
// few hundred slots is not a cliff, and the scheduler's many small
// per-window sets keep their seed-identical layouts. set_legacy_rehash()
// restores the stop-the-world path wholesale (the in-binary baseline for
// bench E16 and the rehash differential tests).
//
// Semantics that differ from the std containers — read before use:
//   * References/iterators are invalidated by any insertion that grows the
//     table, and — while an incremental migration is in flight — by ANY
//     insert or erase (each mutating call may relocate a batch of entries
//     from the retiring table). A find()/try_emplace() that hits an
//     existing key never relocates other entries: lookups of present keys
//     are always reference-stable. Do not hold a reference across a
//     mutating call into the same container.
//   * erase() never moves elements when no migration is in flight
//     (deletion is by tombstone) — the seed contract, unchanged in legacy
//     mode.
//   * Keys and values must be default-constructible. A slot object lives
//     exactly while its control byte says so: erased slots are destroyed
//     immediately (owned resources released), and slot arrays are
//     allocated uninitialized — table growth never pays a zeroing or
//     construction pass over the new array. The containers are move-only.
//   * Iteration order is unspecified and changes across rehashes and
//     migrations (exactly like the std containers). Nothing in the
//     scheduler may depend on it: every layout-sensitive *choice* point
//     (acquire_slot's fast path, the balance ledger's donor pick) selects a
//     canonical element instead of "first in iteration order", which is
//     what makes schedules byte-identical across rehash modes
//     (tests/rehash_differential_test.cpp).
//
// The default hasher bit-mixes integral keys (std::hash is the identity for
// them on common standard libraries, which clusters catastrophically under
// power-of-two masking for strided keys such as interval bases) and defers
// to std::hash otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"
#include "util/probe_group.hpp"

namespace reasched {

namespace detail {

/// splitmix64 finalizer: full-avalanche mix so low bits are usable as a
/// power-of-two bucket index.
[[nodiscard]] inline std::uint64_t flat_hash_mix(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

template <class K>
struct FlatHash {
  [[nodiscard]] std::size_t operator()(const K& key) const noexcept {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return static_cast<std::size_t>(
          detail::flat_hash_mix(static_cast<std::uint64_t>(key)));
    } else {
      // Project types (JobId, WindowKey, Window) already provide mixing
      // std::hash specializations.
      return std::hash<K>{}(key);
    }
  }
};

template <class K, class V, class Hash = FlatHash<K>>
class FlatHashMap {
  enum Ctrl : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Slot {
    K key{};
    V value{};
  };

  /// Slots live in *uninitialized* storage: ctrl_ alone distinguishes live
  /// slots, and a slot object exists exactly while its ctrl byte is kFull
  /// (constructed in place on insert, destroyed on erase / table release).
  /// Value-initializing a slot array would be pure waste — and at growth
  /// time it is a cliff all of its own: zeroing (or worse,
  /// default-constructing) the doubled array of a 10⁵-entry table is
  /// multi-millisecond work, while an untouched allocation is O(1) with
  /// the page faults amortized over the inserts that first touch it. For
  /// trivially-copyable, trivially-destructible slots (every hot-path
  /// table: occupancy, job states, intervals, bitmap pages) the
  /// constructor/destructor calls compile away entirely and slots are
  /// plain implicit-lifetime values.
  static constexpr bool kTrivialSlots =
      std::is_trivially_copyable_v<Slot> && std::is_trivially_destructible_v<Slot>;

  struct SlotArray {
    static_assert(alignof(Slot) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "raw slot storage relies on operator new's alignment");
    std::unique_ptr<std::byte[]> bytes;

    void allocate(std::size_t n) {
      bytes = std::make_unique_for_overwrite<std::byte[]>(n * sizeof(Slot));
    }
    void reset() { bytes.reset(); }
    [[nodiscard]] Slot* data() const noexcept {
      return reinterpret_cast<Slot*>(bytes.get());
    }
    [[nodiscard]] Slot& operator[](std::size_t i) noexcept { return data()[i]; }
    [[nodiscard]] const Slot& operator[](std::size_t i) const noexcept {
      return data()[i];
    }
  };

  /// Begins the lifetime of the slot at `idx` with `key` and a
  /// default-constructed value. For trivial slots this is two assignments.
  static void construct_slot(SlotArray& slots, std::size_t idx, const K& key) {
    if constexpr (kTrivialSlots) {
      slots[idx].key = key;
      slots[idx].value = V{};
    } else {
      ::new (static_cast<void*>(&slots[idx])) Slot{key, V{}};
    }
  }

  /// Moves the live slot `from` into the (dead) slot at `idx`, ending
  /// `from`'s lifetime.
  static void relocate_slot(SlotArray& slots, std::size_t idx, Slot& from) {
    if constexpr (kTrivialSlots) {
      slots[idx] = from;
    } else {
      ::new (static_cast<void*>(&slots[idx])) Slot{std::move(from)};
      from.~Slot();
    }
  }

  /// Ends the lifetime of the live slot at `idx` (releasing owned
  /// resources immediately). No-op for trivial slots.
  static void destroy_slot(SlotArray& slots, std::size_t idx) {
    if constexpr (!kTrivialSlots) slots[idx].~Slot();
  }

  /// Destroys every live slot of a table (release / destruction paths).
  static void destroy_live_slots(const std::vector<std::uint8_t>& ctrl,
                                 SlotArray& slots) {
    if constexpr (!kTrivialSlots) {
      for (std::size_t i = 0; i < ctrl.size(); ++i) {
        if (ctrl[i] == kFull) slots[i].~Slot();
      }
    }
  }

 public:
  /// Old buckets examined per mutating call while a migration is in
  /// flight. The doubling invariant needs only 2 (old live <= 3/4·C drains
  /// in C/B mutations, while the 2C table absorbs up to 3/4·C net inserts
  /// before its own threshold). Total relocation work is fixed, so B only
  /// sets the *window length* during which every op pays the two-table
  /// probe: 32 keeps windows short enough that the steady-state mean
  /// reaches parity with the stop-the-world layout (E12 vs_legacy_rehash
  /// gate), while a
  /// 32-slot ctrl scan per mutating call stays a fraction of the 1 ms
  /// growth-cliff ceiling (E16: measured max stays in the tens of µs).
  static constexpr std::size_t kMigrateBatch = 32;
  /// Tables smaller than this rehash in place even in incremental mode:
  /// copying a few hundred contiguous slots costs microseconds (no cliff),
  /// and the scheduler's many small per-window sets keep their
  /// seed-identical layouts.
  static constexpr std::size_t kMinIncrementalCapacity = 1024;

  FlatHashMap() = default;
  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;
  FlatHashMap(FlatHashMap&& other) noexcept : FlatHashMap() { swap(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      // this's tables move into `empty`, whose destructor destroys the
      // live slots and frees the storage (exactly once).
      FlatHashMap empty;
      swap(empty);
      swap(other);
    }
    return *this;
  }
  ~FlatHashMap() {
    destroy_live_slots(old_ctrl_, old_slots_);
    destroy_live_slots(ctrl_, slots_);
  }

  void swap(FlatHashMap& other) noexcept {
    std::swap(ctrl_, other.ctrl_);
    std::swap(slots_, other.slots_);
    std::swap(old_ctrl_, other.old_ctrl_);
    std::swap(old_slots_, other.old_slots_);
    std::swap(migrate_pos_, other.migrate_pos_);
    std::swap(old_live_, other.old_live_);
    std::swap(size_, other.size_);
    std::swap(used_, other.used_);
    std::swap(incremental_, other.incremental_);
    std::swap(migrating_, other.migrating_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ctrl_.size(); }

  /// Selects the stop-the-world growth path (the seed behavior and the
  /// in-binary baseline for bench E16). Turning legacy mode on mid-stream
  /// first completes any in-flight migration.
  void set_legacy_rehash(bool legacy) {
    if (legacy && migrating()) finish_migration();
    incremental_ = !legacy;
  }
  [[nodiscard]] bool legacy_rehash() const noexcept { return !incremental_; }

  /// True while a two-table migration is in flight (a retiring table still
  /// holds entries to move).
  [[nodiscard]] bool rehash_in_flight() const noexcept { return migrating(); }
  /// Live entries still waiting in the retiring table. 0 when none.
  [[nodiscard]] std::size_t migration_pending() const noexcept { return old_live_; }

  /// Migrates up to `budget` retiring buckets now (0 = all) — the optional
  /// idle-drain hook: callers with latency headroom can finish a migration
  /// early instead of riding it out across future mutations. Returns the
  /// number of live entries moved. No-op when no migration is in flight.
  std::size_t drain_rehash(std::size_t budget) {
    if (!migrating()) return 0;
    const std::size_t live_before = old_live_;
    migrate_step(budget == 0 ? old_ctrl_.size() : budget);
    return live_before - old_live_;
  }

  void clear() {
    // Capacity is retained: rebuild-heavy callers (n* resizing) refill to a
    // similar size immediately. A retiring table is dropped wholesale.
    release_old_table();
    if (!ctrl_.empty()) {
      destroy_live_slots(ctrl_, slots_);
      std::fill(ctrl_.begin(), ctrl_.end(), static_cast<std::uint8_t>(kEmpty));
    }
    size_ = 0;
    used_ = 0;
  }

  /// Pre-sizes for `count` entries. Deliberately stop-the-world: reserve is
  /// a bulk-load hint issued when the caller has latency headroom, and a
  /// table sized up front never migrates at all (any in-flight migration is
  /// completed first so the rehash sees one table).
  void reserve(std::size_t count) {
    if (migrating()) finish_migration();
    std::size_t want = 16;
    while (want * 3 < count * 4) want *= 2;
    if (want > capacity()) rehash(want);
  }

  [[nodiscard]] V* find(const K& key) noexcept {
    if (ctrl_.empty()) return nullptr;
    const std::size_t hash = Hash{}(key);
    if (migrating_) [[unlikely]] {
      // Pull the retiring table's ctrl group in while the active table is
      // probed: on an active-table miss the fallback probe finds its line
      // already (or nearly) resident instead of paying a demand miss.
      prefetch_old(hash);
      const std::size_t idx = group_find(ctrl_, slots_, hash, key);
      if (idx != kNpos) return &slots_[idx].value;
      const std::size_t old_idx = group_find(old_ctrl_, old_slots_, hash, key);
      return old_idx != kNpos ? &old_slots_[old_idx].value : nullptr;
    }
    const std::size_t idx = group_find(ctrl_, slots_, hash, key);
    return idx != kNpos ? &slots_[idx].value : nullptr;
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    return const_cast<FlatHashMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find(key) != nullptr;
  }

  [[nodiscard]] V& at(const K& key) {
    V* value = find(key);
    RS_CHECK(value != nullptr, "FlatHashMap::at: key not found");
    return *value;
  }
  [[nodiscard]] const V& at(const K& key) const {
    const V* value = find(key);
    RS_CHECK(value != nullptr, "FlatHashMap::at: key not found");
    return *value;
  }

  /// Returns {value reference, inserted}. The reference is valid until the
  /// next mutating call that relocates entries (growth, or any mutation
  /// while a migration is in flight). A call that finds an existing key
  /// never relocates *other* entries (upholding the present-key
  /// reference-stability contract above): growth and migration stepping
  /// are checked only once the key is known absent. A key found in the
  /// retiring table is moved to the active table before its (fresh,
  /// stable) address is returned.
  std::pair<V*, bool> try_emplace(const K& key) {
    const std::size_t hash = Hash{}(key);
    if (migrating_) [[unlikely]] return try_emplace_migrating(hash, key);
    if (!ctrl_.empty()) {
      const std::size_t existing = group_find(ctrl_, slots_, hash, key);
      if (existing != kNpos) return {&slots_[existing].value, false};
    }
    grow_if_needed();  // may itself retire the table and start a migration
    return insert_absent(hash, key);
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  bool insert_or_assign(const K& key, V value) {
    auto [slot, inserted] = try_emplace(key);
    *slot = std::move(value);
    return inserted;
  }

  /// erase(), but moves the value out first (one probe where a caller's
  /// find-then-erase would pay two). Returns 1 iff the key was present.
  std::size_t take(const K& key, V& out) {
    if (ctrl_.empty()) return 0;
    const std::size_t hash = Hash{}(key);
    if (migrating_) [[unlikely]] return take_migrating(hash, key, out);
    const std::size_t idx = group_find(ctrl_, slots_, hash, key);
    if (idx == kNpos) return 0;
    out = std::move(slots_[idx].value);
    tombstone_active(idx);
    return 1;
  }

  /// take(key, out) fused with the follow-up `at(reindex_key) = <taken
  /// value>` that DenseHashSet's swap-with-last erase needs: one call
  /// shares the hash/migration bookkeeping and a single drain step where
  /// the unfused pair paid two public entries. The reindex is skipped when
  /// reindex_key == key (erasing the last dense element); otherwise
  /// reindex_key must be present whenever the take succeeds. Requires V
  /// copy-assignable.
  std::size_t take_reindex(const K& key, V& out, const K& reindex_key) {
    if (ctrl_.empty()) return 0;
    const std::size_t hash = Hash{}(key);
    if (migrating_) [[unlikely]] {
      prefetch_old(hash);
      std::size_t taken = 0;
      const std::size_t idx = group_find(ctrl_, slots_, hash, key);
      if (idx != kNpos) {
        out = std::move(slots_[idx].value);
        tombstone_active(idx);
        taken = 1;
      } else {
        const std::size_t old_idx = group_find(old_ctrl_, old_slots_, hash, key);
        if (old_idx != kNpos) {
          out = std::move(old_slots_[old_idx].value);
          tombstone_old(old_idx);
          taken = 1;
        }
      }
      if (taken != 0 && !(reindex_key == key)) reindex_value(reindex_key, out);
      // One drain step for the whole fused operation — an erase advances
      // the migration whether or not the key was present, exactly like
      // erase()/take().
      migrate_step(kMigrateBatch);
      return taken;
    }
    const std::size_t idx = group_find(ctrl_, slots_, hash, key);
    if (idx == kNpos) return 0;
    out = std::move(slots_[idx].value);
    tombstone_active(idx);
    if (!(reindex_key == key)) reindex_value(reindex_key, out);
    return 1;
  }

  std::size_t erase(const K& key) {
    if (ctrl_.empty()) return 0;
    const std::size_t hash = Hash{}(key);
    if (migrating_) [[unlikely]] return erase_migrating(hash, key);
    const std::size_t idx = group_find(ctrl_, slots_, hash, key);
    if (idx == kNpos) return 0;
    tombstone_active(idx);
    return 1;
  }

 private:
  // ---- migration-in-flight slow paths. Split out so the common
  // no-migration case is a straight-line probe behind one predicted branch
  // on the cached migrating_ flag: no retired-table emptiness check, no
  // drain-step call, no second-table probe code on the fast path. Each
  // slow path starts by prefetching the retiring table's ctrl group for
  // this hash (see find()).

  std::pair<V*, bool> try_emplace_migrating(std::size_t hash, const K& key) {
    prefetch_old(hash);
    const std::size_t existing = group_find(ctrl_, slots_, hash, key);
    if (existing != kNpos) return {&slots_[existing].value, false};
    const std::size_t old_idx = group_find(old_ctrl_, old_slots_, hash, key);
    if (old_idx != kNpos) return {relocate_from_old(old_idx, hash), false};
    migrate_step(kMigrateBatch);
    grow_if_needed();  // deferred while migrating; may fire if that drained it
    return insert_absent(hash, key);
  }

  std::size_t take_migrating(std::size_t hash, const K& key, V& out) {
    prefetch_old(hash);
    const std::size_t idx = group_find(ctrl_, slots_, hash, key);
    if (idx != kNpos) {
      out = std::move(slots_[idx].value);
      tombstone_active(idx);
      migrate_step(kMigrateBatch);
      return 1;
    }
    const std::size_t old_idx = group_find(old_ctrl_, old_slots_, hash, key);
    std::size_t erased = 0;
    if (old_idx != kNpos) {
      out = std::move(old_slots_[old_idx].value);
      tombstone_old(old_idx);
      erased = 1;
    }
    // A miss still advances the migration, like any other mutating call.
    migrate_step(kMigrateBatch);
    return erased;
  }

  std::size_t erase_migrating(std::size_t hash, const K& key) {
    prefetch_old(hash);
    const std::size_t idx = group_find(ctrl_, slots_, hash, key);
    std::size_t erased = 0;
    if (idx != kNpos) {
      tombstone_active(idx);
      erased = 1;
    } else {
      const std::size_t old_idx = group_find(old_ctrl_, old_slots_, hash, key);
      if (old_idx != kNpos) {
        tombstone_old(old_idx);
        erased = 1;
      }
    }
    migrate_step(kMigrateBatch);
    return erased;
  }

  /// Destroys the live active-table slot at `idx` and tombstones it.
  void tombstone_active(std::size_t idx) {
    destroy_slot(slots_, idx);  // release owned resources immediately
    ctrl_[idx] = kTombstone;
    --size_;
  }

  /// Same for a retiring-table slot. Tombstone, never empty: the retiring
  /// table's probe chains must survive until every live entry behind them
  /// has migrated.
  void tombstone_old(std::size_t old_idx) {
    destroy_slot(old_slots_, old_idx);
    old_ctrl_[old_idx] = kTombstone;
    --old_live_;
    --size_;
  }

  /// Inserts `key`, known absent from both tables, into the active table.
  std::pair<V*, bool> insert_absent(std::size_t hash, const K& key) {
    const std::size_t idx = group_probe_insert(ctrl_, slots_, hash, key);
    const bool was_tombstone = ctrl_[idx] == kTombstone;
    construct_slot(slots_, idx, key);
    ctrl_[idx] = kFull;
    ++size_;
    if (!was_tombstone) ++used_;
    return {&slots_[idx].value, true};
  }

  /// The `at(reindex_key) = value` half of take_reindex (key known present).
  void reindex_value(const K& reindex_key, const V& value) {
    const std::size_t hash = Hash{}(reindex_key);
    std::size_t idx = group_find(ctrl_, slots_, hash, reindex_key);
    if (idx != kNpos) {
      slots_[idx].value = value;
      return;
    }
    RS_ASSERT(migrating_, "FlatHashMap::take_reindex: reindex key not found");
    idx = group_find(old_ctrl_, old_slots_, hash, reindex_key);
    RS_CHECK(idx != kNpos, "FlatHashMap::take_reindex: reindex key not found");
    old_slots_[idx].value = value;
  }

 public:
  /// f(const K&, V&) over every element, unspecified order. f must not
  /// mutate the map itself.
  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < old_ctrl_.size(); ++i) {
      if (old_ctrl_[i] == kFull) {
        f(const_cast<const K&>(old_slots_[i].key), old_slots_[i].value);
      }
    }
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(const_cast<const K&>(slots_[i].key), slots_[i].value);
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < old_ctrl_.size(); ++i) {
      if (old_ctrl_[i] == kFull) f(old_slots_[i].key, old_slots_[i].value);
    }
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(slots_[i].key, slots_[i].value);
    }
  }

  /// Like for_each, but stops early when f returns true. Returns whether f
  /// stopped the scan.
  template <class F>
  bool for_each_until(F&& f) const {
    for (std::size_t i = 0; i < old_ctrl_.size(); ++i) {
      if (old_ctrl_[i] == kFull && f(old_slots_[i].key, old_slots_[i].value)) return true;
    }
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull && f(slots_[i].key, slots_[i].value)) return true;
    }
    return false;
  }

  // ---- serialization (durability tier, DESIGN.md §9) ----
  //
  // The on-disk form is the table's exact layout: each table's capacity and
  // full ctrl array (kEmpty/kFull/kTombstone bytes) plus the live slots in
  // index order — a mid-flight incremental migration round-trips with both
  // its tables, cursor included. Reconstructing ctrl verbatim (tombstones
  // too) makes the deserialized table *bit-identical* in probe behavior and
  // iteration order to the original, so recovered schedulers cannot diverge
  // from their uninterrupted twin even through layout-sensitive code.
  // Key/value encoding stays with the caller: `write(sink, key, value)` /
  // `read(source, key&, value&)`. Sink needs u64(v)/byte_block(p, n);
  // Source needs u64()/byte_block(p, n) (see durability/codec.hpp).

  template <class Sink, class WriteSlot>
  void serialize(Sink& sink, WriteSlot&& write) const {
    serialize_table(sink, ctrl_, slots_, write);
    serialize_table(sink, old_ctrl_, old_slots_, write);
    sink.u64(migrate_pos_);
    sink.u64(incremental_ ? 1 : 0);
  }

  /// Rebuilds the exact serialized state into *this (any prior contents are
  /// discarded). Throws whatever Source throws on truncated/corrupt input;
  /// ctrl bytes are validated so corrupt input cannot fabricate slots.
  template <class Source, class ReadSlot>
  void deserialize(Source& source, ReadSlot&& read) {
    FlatHashMap fresh;
    fresh.size_ = 0;
    fresh.used_ = deserialize_table(source, fresh.ctrl_, fresh.slots_, read,
                                    fresh.size_);
    std::size_t old_used = 0;  // retiring tables track no tombstone budget
    fresh.old_live_ = 0;
    old_used = deserialize_table(source, fresh.old_ctrl_, fresh.old_slots_, read,
                                 fresh.old_live_);
    static_cast<void>(old_used);
    fresh.size_ += fresh.old_live_;
    fresh.migrate_pos_ = static_cast<std::size_t>(source.u64());
    fresh.incremental_ = source.u64() != 0;
    fresh.migrating_ = !fresh.old_ctrl_.empty();
    *this = std::move(fresh);
  }

 private:
  template <class Sink, class WriteSlot>
  static void serialize_table(Sink& sink, const std::vector<std::uint8_t>& ctrl,
                              const SlotArray& slots, WriteSlot& write) {
    sink.u64(ctrl.size());
    if (ctrl.empty()) return;
    sink.byte_block(ctrl.data(), ctrl.size());
    for (std::size_t i = 0; i < ctrl.size(); ++i) {
      if (ctrl[i] == kFull) write(sink, slots[i].key, slots[i].value);
    }
  }

  /// Returns used (kFull + kTombstone); live count accumulates into `live`.
  template <class Source, class ReadSlot>
  static std::size_t deserialize_table(Source& source,
                                       std::vector<std::uint8_t>& ctrl,
                                       SlotArray& slots, ReadSlot& read,
                                       std::size_t& live) {
    const std::uint64_t capacity = source.u64();
    RS_CHECK(capacity == 0 || ((capacity & (capacity - 1)) == 0),
             "FlatHashMap::deserialize: capacity must be a power of two");
    ctrl.assign(static_cast<std::size_t>(capacity), kEmpty);
    if (capacity == 0) return 0;
    source.byte_block(ctrl.data(), ctrl.size());
    slots.allocate(ctrl.size());
    std::size_t used = 0;
    for (std::size_t i = 0; i < ctrl.size(); ++i) {
      RS_CHECK(ctrl[i] <= kTombstone, "FlatHashMap::deserialize: bad ctrl byte");
      if (ctrl[i] != kEmpty) ++used;
      if (ctrl[i] != kFull) continue;
      construct_slot(slots, i, K{});
      read(source, slots[i].key, slots[i].value);
      ++live;
    }
    return used;
  }

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  [[nodiscard]] bool migrating() const noexcept { return migrating_; }

  // ---- group probe kernels (DESIGN.md §13) --------------------------------
  //
  // All three kernels walk the ctrl array in 16-byte groups *aligned to the
  // group width*: the start group is `(hash & mask) & ~15`, with the bytes
  // before the probe start masked off, and subsequent groups advance by 16
  // modulo the (power-of-two, group-multiple) capacity — so no load ever
  // straddles the table end, and the visit order of candidate slots is
  // exactly the sequential scan's order. On wraparound in a minimum-size
  // table the first (partial) group's bytes are re-examined as part of the
  // final full group; that re-examination is benign — any hit or
  // terminating empty among them would have ended the scan a lap earlier.
  // Tables smaller than one group (possible only through deserialization;
  // every grow path starts at 16 slots) take the byte-by-byte path.

  [[nodiscard]] static std::size_t group_find(const std::vector<std::uint8_t>& ctrl,
                                              const SlotArray& slots,
                                              std::size_t hash,
                                              const K& key) noexcept {
    const std::size_t cap = ctrl.size();
    const std::size_t mask = cap - 1;
    if (cap < probe::kGroupWidth) [[unlikely]] {
      if (cap == 0) return kNpos;
      std::size_t idx = hash & mask;
      while (ctrl[idx] != kEmpty) {
        if (ctrl[idx] == kFull && slots[idx].key == key) return idx;
        idx = (idx + 1) & mask;
      }
      return kNpos;
    }
    const std::size_t start = hash & mask;
    std::size_t group = start & ~(probe::kGroupWidth - 1);
    probe::mask_t valid =
        (probe::kAllBytes << (start - group)) & probe::kAllBytes;
    for (std::size_t scanned = 0; scanned <= cap;
         scanned += probe::kGroupWidth) {
      const probe::Group g(ctrl.data() + group);
      const probe::mask_t empty = g.match(kEmpty) & valid;
      probe::mask_t candidates =
          g.match(kFull) & valid & probe::below_first(empty);
      while (candidates != 0) {
        const std::size_t idx = group + probe::lowest_bit(candidates);
        if (slots[idx].key == key) return idx;
        candidates = probe::clear_lowest(candidates);
      }
      if (empty != 0) return kNpos;
      group = (group + probe::kGroupWidth) & mask;
      valid = probe::kAllBytes;
    }
    return kNpos;  // full lap, no empty: key absent
  }

  /// First slot where `key` lives or may be inserted: an existing full slot
  /// with the key, else the first tombstone on the probe path, else the
  /// terminating empty slot.
  [[nodiscard]] static std::size_t group_probe_insert(
      const std::vector<std::uint8_t>& ctrl, const SlotArray& slots,
      std::size_t hash, const K& key) noexcept {
    const std::size_t cap = ctrl.size();
    const std::size_t mask = cap - 1;
    std::size_t first_tombstone = kNpos;
    if (cap < probe::kGroupWidth) [[unlikely]] {
      std::size_t idx = hash & mask;
      while (ctrl[idx] != kEmpty) {
        if (ctrl[idx] == kFull && slots[idx].key == key) return idx;
        if (ctrl[idx] == kTombstone && first_tombstone == kNpos)
          first_tombstone = idx;
        idx = (idx + 1) & mask;
      }
      return first_tombstone != kNpos ? first_tombstone : idx;
    }
    const std::size_t start = hash & mask;
    std::size_t group = start & ~(probe::kGroupWidth - 1);
    probe::mask_t valid =
        (probe::kAllBytes << (start - group)) & probe::kAllBytes;
    for (std::size_t scanned = 0; scanned <= cap;
         scanned += probe::kGroupWidth) {
      const probe::Group g(ctrl.data() + group);
      const probe::mask_t empty = g.match(kEmpty) & valid;
      const probe::mask_t below = probe::below_first(empty);
      probe::mask_t candidates = g.match(kFull) & valid & below;
      while (candidates != 0) {
        const std::size_t idx = group + probe::lowest_bit(candidates);
        if (slots[idx].key == key) return idx;
        candidates = probe::clear_lowest(candidates);
      }
      if (first_tombstone == kNpos) {
        const probe::mask_t tombs = g.match(kTombstone) & valid & below;
        if (tombs != 0) first_tombstone = group + probe::lowest_bit(tombs);
      }
      if (empty != 0) {
        return first_tombstone != kNpos ? first_tombstone
                                        : group + probe::lowest_bit(empty);
      }
      group = (group + probe::kGroupWidth) & mask;
      valid = probe::kAllBytes;
    }
    return first_tombstone;  // unreachable while the load invariant holds
  }

  /// Placement slot for a key known absent from the active table (a
  /// migrating or relocating entry): first tombstone on the probe path,
  /// else the terminating empty slot. No key comparisons.
  [[nodiscard]] std::size_t group_probe_absent(std::size_t hash) const noexcept {
    const std::size_t cap = ctrl_.size();
    const std::size_t mask = cap - 1;
    std::size_t first_tombstone = kNpos;
    if (cap < probe::kGroupWidth) [[unlikely]] {
      std::size_t idx = hash & mask;
      while (ctrl_[idx] != kEmpty) {
        if (ctrl_[idx] == kTombstone && first_tombstone == kNpos)
          first_tombstone = idx;
        idx = (idx + 1) & mask;
      }
      return first_tombstone != kNpos ? first_tombstone : idx;
    }
    const std::size_t start = hash & mask;
    std::size_t group = start & ~(probe::kGroupWidth - 1);
    probe::mask_t valid =
        (probe::kAllBytes << (start - group)) & probe::kAllBytes;
    for (std::size_t scanned = 0; scanned <= cap;
         scanned += probe::kGroupWidth) {
      const probe::Group g(ctrl_.data() + group);
      const probe::mask_t empty = g.match(kEmpty) & valid;
      const probe::mask_t below = probe::below_first(empty);
      if (first_tombstone == kNpos) {
        const probe::mask_t tombs = g.match(kTombstone) & valid & below;
        if (tombs != 0) first_tombstone = group + probe::lowest_bit(tombs);
      }
      if (empty != 0) {
        return first_tombstone != kNpos ? first_tombstone
                                        : group + probe::lowest_bit(empty);
      }
      group = (group + probe::kGroupWidth) & mask;
      valid = probe::kAllBytes;
    }
    return first_tombstone;  // unreachable while the load invariant holds
  }

  /// Prefetches the retiring table's ctrl group for `hash` (read, low
  /// locality). Call only while a migration is in flight.
  void prefetch_old(std::size_t hash) const noexcept {
    const std::size_t idx = hash & (old_ctrl_.size() - 1);
    probe::prefetch(old_ctrl_.data() + (idx & ~(probe::kGroupWidth - 1)));
  }

  /// Moves the live retiring-table entry at `old_idx` into the active
  /// table and returns its new value address. The overload taking `hash`
  /// serves relocate-on-touch callers that already hashed the key.
  V* relocate_from_old(std::size_t old_idx) {
    return relocate_from_old(old_idx, Hash{}(old_slots_[old_idx].key));
  }
  V* relocate_from_old(std::size_t old_idx, std::size_t hash) {
    const std::size_t idx = group_probe_absent(hash);
    if (ctrl_[idx] != kTombstone) ++used_;
    relocate_slot(slots_, idx, old_slots_[old_idx]);
    ctrl_[idx] = kFull;
    old_ctrl_[old_idx] = kTombstone;
    --old_live_;
    if (old_live_ == 0) release_old_table();
    return &slots_[idx].value;
  }

  /// Examines up to `budget` retiring buckets from the scan cursor, moving
  /// every live entry found; frees the retiring table once empty. Bucket
  /// examinations (not moves) are the unit, so the per-call cost is a
  /// bounded scan even over tombstone-riddled regions.
  void migrate_step(std::size_t budget) {
    if (!migrating()) return;
    // Drain steps fire on ~every mutation while a migration is in flight;
    // a TraceSpan keeps the metrics-only mode to the count histogram below
    // (durations + chrome spans cost two ticks() reads and arm with trace).
    RS_TELEM_DURATION(kDrainHist, "hash.drain");
    RS_TELEM_TRACE_SPAN(drain_span, kDrainHist, "hash.drain");
#if RS_TELEM_COMPILED
    const std::size_t budget_in = budget;
#endif
    while (budget > 0 && migrating()) {
      if (old_live_ == 0 || migrate_pos_ >= old_ctrl_.size()) {
        release_old_table();
        break;
      }
      if (old_ctrl_[migrate_pos_] == kFull) {
        relocate_from_old(migrate_pos_);
        if (!migrating()) break;  // that was the last live entry
      }
      ++migrate_pos_;
      --budget;
    }
#if RS_TELEM_COMPILED
    RS_TELEM_HISTOGRAM(kDrainBuckets, "hash.drain_buckets");
    RS_TELEM_RECORD(kDrainBuckets, budget_in - budget);
#endif
  }

  void finish_migration() { migrate_step(old_ctrl_.size()); }

  void release_old_table() {
    // clear() discards retiring tables wholesale, live entries included.
    destroy_live_slots(old_ctrl_, old_slots_);
    old_ctrl_ = std::vector<std::uint8_t>{};
    old_slots_.reset();
    old_live_ = 0;
    migrate_pos_ = 0;
    migrating_ = false;
  }

  void grow_if_needed() {
    // Max load factor 3/4 counting tombstones (they lengthen probe paths
    // just like live entries).
    if ((used_ + 1) * 4 <= capacity() * 3) return;
    // Growth pressure while a migration is in flight is DEFERRED, not
    // served: finishing or restarting a table move here would be exactly
    // the cliff this scheme removes. The overshoot is bounded — a
    // doubling's active table reaches at most ~0.44 load before the old
    // table drains, a same-capacity purge at most ~0.88 (old live
    // <= 3/4·C plus the <= C/kMigrateBatch mutations the drain takes) —
    // and the first mutation after completion grows normally.
    if (migrating_) return;
    const std::size_t base = capacity() == 0 ? 16 : capacity();
    // Double unless tombstones dominate the load (then rehashing at the
    // same capacity purges them). The incoming insert is counted: at a
    // pure-insert threshold size_·4 == base·3 exactly, and the seed's
    // strict > chose a futile same-capacity rehash one insert before
    // doubling anyway.
    const std::size_t target = (size_ + 1) * 4 > base * 3 ? base * 2 : base;
    if (incremental_ && base >= kMinIncrementalCapacity) {
      start_migration(target);
    } else {
      rehash(target);
    }
  }

  /// Retires the active table and installs a fresh one of `new_capacity`;
  /// entries move over incrementally (migrate_step / drain_rehash).
  void start_migration(std::size_t new_capacity) {
    RS_TELEM_COUNTER(kMigrations, "hash.migrations");
    RS_TELEM_ADD(kMigrations, 1);
    RS_TELEM_INSTANT("hash.migrate.begin");
    old_ctrl_ = std::move(ctrl_);
    old_slots_ = std::move(slots_);
    old_live_ = size_;
    migrate_pos_ = 0;
    migrating_ = true;
    ctrl_.assign(new_capacity, static_cast<std::uint8_t>(kEmpty));
    slots_.allocate(new_capacity);
    used_ = 0;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    SlotArray old_slots = std::move(slots_);
    ctrl_.assign(new_capacity, static_cast<std::uint8_t>(kEmpty));
    slots_.allocate(new_capacity);
    size_ = 0;
    used_ = 0;
    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      std::size_t idx = Hash{}(old_slots[i].key) & mask;
      while (ctrl_[idx] == kFull) idx = (idx + 1) & mask;
      relocate_slot(slots_, idx, old_slots[i]);
      ctrl_[idx] = kFull;
      ++size_;
      ++used_;
    }
  }

  std::vector<std::uint8_t> ctrl_;
  SlotArray slots_;
  /// Retiring table of an in-flight incremental migration (empty when
  /// none). Never inserted into; erased entries become tombstones so the
  /// remaining probe chains stay intact.
  std::vector<std::uint8_t> old_ctrl_;
  SlotArray old_slots_;
  std::size_t migrate_pos_ = 0;  // scan cursor into old_ctrl_
  std::size_t old_live_ = 0;     // live entries left in the retiring table
  std::size_t size_ = 0;  // live entries across both tables
  std::size_t used_ = 0;  // active-table live entries + tombstones
  bool incremental_ = true;
  /// Cached !old_ctrl_.empty(): the fast paths branch on one byte instead
  /// of recomputing vector emptiness per call (maintained by
  /// start_migration / release_old_table / swap / deserialize).
  bool migrating_ = false;
};

template <class K, class Hash = FlatHash<K>>
class FlatHashSet {
  struct Empty {};

 public:
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }

  void clear() { map_.clear(); }
  void reserve(std::size_t count) { map_.reserve(count); }

  void set_legacy_rehash(bool legacy) { map_.set_legacy_rehash(legacy); }
  [[nodiscard]] bool legacy_rehash() const noexcept { return map_.legacy_rehash(); }
  [[nodiscard]] bool rehash_in_flight() const noexcept { return map_.rehash_in_flight(); }
  [[nodiscard]] std::size_t migration_pending() const noexcept {
    return map_.migration_pending();
  }
  std::size_t drain_rehash(std::size_t budget) { return map_.drain_rehash(budget); }

  /// Returns true iff the key was newly inserted.
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  std::size_t erase(const K& key) { return map_.erase(key); }
  [[nodiscard]] bool contains(const K& key) const noexcept { return map_.contains(key); }

  /// f(const K&) over every element, unspecified order.
  template <class F>
  void for_each(F&& f) const {
    map_.for_each([&](const K& key, const Empty&) { f(key); });
  }

  /// Like for_each, but stops early when f returns true. Returns whether f
  /// stopped the scan.
  template <class F>
  bool for_each_until(F&& f) const {
    return map_.for_each_until([&](const K& key, const Empty&) { return f(key); });
  }

  /// Exact-layout round-trip, like FlatHashMap::serialize; `write(sink,
  /// key)` / `read(source, key&)` encode the elements.
  template <class Sink, class WriteKey>
  void serialize(Sink& sink, WriteKey&& write) const {
    map_.serialize(sink, [&](Sink& s, const K& key, const Empty&) { write(s, key); });
  }
  template <class Source, class ReadKey>
  void deserialize(Source& source, ReadKey&& read) {
    map_.deserialize(source, [&](Source& s, K& key, Empty&) { read(s, key); });
  }

  /// Some element (unspecified which); the set must be non-empty. The pick
  /// depends on table layout — a caller whose *behavior* feeds off the
  /// choice must use an insertion-ordered DenseHashSet (back(), or a
  /// deterministic scan) instead, as acquire_slot and the balance ledger
  /// do (see the iteration-order note above).
  [[nodiscard]] K any() const {
    RS_CHECK(!map_.empty(), "FlatHashSet::any: empty set");
    K out{};
    map_.for_each_until([&](const K& key, const Empty&) {
      out = key;
      return true;
    });
    return out;
  }

 private:
  FlatHashMap<K, Empty, Hash> map_;
};

/// Hash set with *insertion-ordered, layout-independent* iteration: a dense
/// vector of keys plus a FlatHashMap from key to dense index. erase is
/// swap-with-last (O(1), order changes deterministically). Iteration walks
/// the dense vector, so the order — and therefore any "first element
/// satisfying P" pick — is a pure function of the set's insert/erase
/// sequence, never of hash layout, rehash mode, or migration state. The
/// scheduler's choice points that want a cheap early-exit scan (the
/// acquire_slot fast path, the balance ledger's donor pick) use this
/// container; that is what keeps schedules byte-identical across rehash
/// modes (tests/rehash_differential_test.cpp) without paying a full-scan
/// canonical minimum per pick. Dense iteration is also faster than probing
/// a sparse table: no empty slots to skip.
template <class K, class Hash = FlatHash<K>>
class DenseHashSet {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return dense_.size(); }
  [[nodiscard]] bool empty() const noexcept { return dense_.empty(); }

  void clear() {
    dense_.clear();
    index_.clear();
  }
  void reserve(std::size_t count) {
    dense_.reserve(count);
    index_.reserve(count);
  }

  void set_legacy_rehash(bool legacy) { index_.set_legacy_rehash(legacy); }

  /// Returns true iff the key was newly inserted (appended at the back).
  bool insert(const K& key) {
    const auto [slot, inserted] = index_.try_emplace(key);
    if (!inserted) return false;
    *slot = static_cast<std::uint32_t>(dense_.size());
    dense_.push_back(key);
    return true;
  }

  /// Swap-with-last removal; the displaced last key keeps its identity but
  /// takes the erased key's dense position (a deterministic reordering).
  /// The erased key's index entry is taken and the displaced key's entry
  /// rewritten in ONE fused index call (take_reindex) — the erase path
  /// used to pay two full public-entry passes over the index map.
  std::size_t erase(const K& key) {
    if (dense_.empty()) return 0;
    const K moved = dense_.back();
    std::uint32_t hole = 0;
    if (index_.take_reindex(key, hole, moved) == 0) return 0;
    dense_[hole] = moved;
    dense_.pop_back();
    return 1;
  }

  [[nodiscard]] bool contains(const K& key) const noexcept {
    return index_.contains(key);
  }

  /// Some element in O(1) — the most recently appended. Deterministic
  /// given the set's operation sequence (see the class comment).
  [[nodiscard]] const K& back() const {
    RS_CHECK(!dense_.empty(), "DenseHashSet::back: empty set");
    return dense_.back();
  }

  /// Serializes the dense vector — the container's entire behavior-visible
  /// state. Iteration order (and therefore every back()/first-satisfying-P
  /// pick a recovered scheduler will make) round-trips exactly; the key →
  /// index map is rebuilt by re-insertion on load, since its layout feeds
  /// no decision (class comment). `write(sink, key)` encodes one element.
  template <class Sink, class WriteKey>
  void serialize(Sink& sink, WriteKey&& write) const {
    sink.u64(dense_.size());
    for (const K& key : dense_) write(sink, key);
  }
  template <class Source, class ReadKey>
  void deserialize(Source& source, ReadKey&& read) {
    const bool legacy = index_.legacy_rehash();
    clear();
    index_.set_legacy_rehash(legacy);
    const std::uint64_t count = source.u64();
    dense_.reserve(static_cast<std::size_t>(count));
    index_.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      K key{};
      read(source, key);
      const auto [slot, inserted] = index_.try_emplace(key);
      RS_CHECK(inserted, "DenseHashSet::deserialize: duplicate key");
      *slot = static_cast<std::uint32_t>(dense_.size());
      dense_.push_back(key);
    }
  }

  /// f(const K&) in insertion order (as reshuffled by swap-pop erases).
  template <class F>
  void for_each(F&& f) const {
    for (const K& key : dense_) f(key);
  }

  /// Like for_each, but stops early when f returns true. Returns whether f
  /// stopped the scan.
  template <class F>
  bool for_each_until(F&& f) const {
    for (const K& key : dense_) {
      if (f(key)) return true;
    }
    return false;
  }

 private:
  std::vector<K> dense_;
  FlatHashMap<K, std::uint32_t, Hash> index_;
};

}  // namespace reasched
