// Open-addressing hash containers for the scheduler hot path.
//
// std::unordered_map pays a heap allocation per node and a pointer chase per
// probe; the reservation scheduler's inner loops (interval lookup, window
// ledgers, occupancy) are dominated by exactly those lookups. FlatHashMap /
// FlatHashSet store slots contiguously (linear probing, power-of-two
// capacity, tombstone deletion) so a lookup is one hash, one masked index
// and a short linear scan over adjacent memory.
//
// Semantics that differ from the std containers — read before use:
//   * References/iterators are invalidated by any insertion that rehashes
//     (erase never moves elements: deletion is by tombstone). Do not hold a
//     reference across an insert into the same container.
//   * Keys and values must be default-constructible; erased slots are reset
//     to a default-constructed state to release owned resources.
//   * Iteration order is unspecified and changes across rehashes (exactly
//     like the std containers — nothing in the scheduler may depend on it).
//
// The default hasher bit-mixes integral keys (std::hash is the identity for
// them on common standard libraries, which clusters catastrophically under
// power-of-two masking for strided keys such as interval bases) and defers
// to std::hash otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace reasched {

namespace detail {

/// splitmix64 finalizer: full-avalanche mix so low bits are usable as a
/// power-of-two bucket index.
[[nodiscard]] inline std::uint64_t flat_hash_mix(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

template <class K>
struct FlatHash {
  [[nodiscard]] std::size_t operator()(const K& key) const noexcept {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return static_cast<std::size_t>(
          detail::flat_hash_mix(static_cast<std::uint64_t>(key)));
    } else {
      // Project types (JobId, WindowKey, Window) already provide mixing
      // std::hash specializations.
      return std::hash<K>{}(key);
    }
  }
};

template <class K, class V, class Hash = FlatHash<K>>
class FlatHashMap {
  enum Ctrl : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Slot {
    K key{};
    V value{};
  };

 public:
  FlatHashMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ctrl_.size(); }

  void clear() {
    // Capacity is retained: rebuild-heavy callers (n* resizing) refill to a
    // similar size immediately.
    if (!ctrl_.empty()) {
      std::fill(ctrl_.begin(), ctrl_.end(), static_cast<std::uint8_t>(kEmpty));
      for (Slot& slot : slots_) slot = Slot{};
    }
    size_ = 0;
    used_ = 0;
  }

  void reserve(std::size_t count) {
    std::size_t want = 16;
    while (want * 3 < count * 4) want *= 2;
    if (want > capacity()) rehash(want);
  }

  [[nodiscard]] V* find(const K& key) noexcept {
    const std::size_t idx = find_index(key);
    return idx == kNpos ? nullptr : &slots_[idx].value;
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    const std::size_t idx = find_index(key);
    return idx == kNpos ? nullptr : &slots_[idx].value;
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find_index(key) != kNpos;
  }

  [[nodiscard]] V& at(const K& key) {
    const std::size_t idx = find_index(key);
    RS_CHECK(idx != kNpos, "FlatHashMap::at: key not found");
    return slots_[idx].value;
  }
  [[nodiscard]] const V& at(const K& key) const {
    const std::size_t idx = find_index(key);
    RS_CHECK(idx != kNpos, "FlatHashMap::at: key not found");
    return slots_[idx].value;
  }

  /// Returns {value reference, inserted}. The reference is valid until the
  /// next rehashing insertion. A call that finds an existing key never
  /// rehashes (upholding the reference-invalidated-only-by-insertion
  /// contract above), so growth is checked only once the key is known
  /// absent.
  std::pair<V*, bool> try_emplace(const K& key) {
    if (!ctrl_.empty()) {
      const std::size_t existing = find_index(key);
      if (existing != kNpos) return {&slots_[existing].value, false};
    }
    grow_if_needed();
    const std::size_t idx = probe_for_insert(key);
    const bool was_tombstone = ctrl_[idx] == kTombstone;
    ctrl_[idx] = kFull;
    slots_[idx].key = key;
    slots_[idx].value = V{};
    ++size_;
    if (!was_tombstone) ++used_;
    return {&slots_[idx].value, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  bool insert_or_assign(const K& key, V value) {
    auto [slot, inserted] = try_emplace(key);
    *slot = std::move(value);
    return inserted;
  }

  std::size_t erase(const K& key) {
    const std::size_t idx = find_index(key);
    if (idx == kNpos) return 0;
    ctrl_[idx] = kTombstone;
    slots_[idx] = Slot{};  // release owned resources eagerly
    --size_;
    return 1;
  }

  /// f(const K&, V&) over every element, unspecified order.
  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(const_cast<const K&>(slots_[i].key), slots_[i].value);
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(slots_[i].key, slots_[i].value);
    }
  }

  /// Like for_each, but stops early when f returns true. Returns whether f
  /// stopped the scan.
  template <class F>
  bool for_each_until(F&& f) const {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull && f(slots_[i].key, slots_[i].value)) return true;
    }
    return false;
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t find_index(const K& key) const noexcept {
    if (ctrl_.empty()) return kNpos;
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t idx = Hash{}(key) & mask;
    while (ctrl_[idx] != kEmpty) {
      if (ctrl_[idx] == kFull && slots_[idx].key == key) return idx;
      idx = (idx + 1) & mask;
    }
    return kNpos;
  }

  /// First slot where `key` lives or may be inserted: an existing full slot
  /// with the key, else the first tombstone on the probe path, else the
  /// terminating empty slot.
  [[nodiscard]] std::size_t probe_for_insert(const K& key) const noexcept {
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t idx = Hash{}(key) & mask;
    std::size_t first_tombstone = kNpos;
    while (ctrl_[idx] != kEmpty) {
      if (ctrl_[idx] == kFull && slots_[idx].key == key) return idx;
      if (ctrl_[idx] == kTombstone && first_tombstone == kNpos) first_tombstone = idx;
      idx = (idx + 1) & mask;
    }
    return first_tombstone != kNpos ? first_tombstone : idx;
  }

  void grow_if_needed() {
    // Max load factor 3/4 counting tombstones (they lengthen probe paths
    // just like live entries).
    if ((used_ + 1) * 4 > capacity() * 3) {
      const std::size_t base = capacity() == 0 ? 16 : capacity();
      // If most of the load is tombstones, rehashing in place is enough.
      rehash(size_ * 4 > base * 3 ? base * 2 : base);
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    ctrl_.assign(new_capacity, static_cast<std::uint8_t>(kEmpty));
    slots_.assign(new_capacity, Slot{});
    size_ = 0;
    used_ = 0;
    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      std::size_t idx = Hash{}(old_slots[i].key) & mask;
      while (ctrl_[idx] == kFull) idx = (idx + 1) & mask;
      ctrl_[idx] = kFull;
      slots_[idx] = std::move(old_slots[i]);
      ++size_;
      ++used_;
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live entries + tombstones
};

template <class K, class Hash = FlatHash<K>>
class FlatHashSet {
  struct Empty {};

 public:
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }

  void clear() { map_.clear(); }
  void reserve(std::size_t count) { map_.reserve(count); }

  /// Returns true iff the key was newly inserted.
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  std::size_t erase(const K& key) { return map_.erase(key); }
  [[nodiscard]] bool contains(const K& key) const noexcept { return map_.contains(key); }

  /// f(const K&) over every element, unspecified order.
  template <class F>
  void for_each(F&& f) const {
    map_.for_each([&](const K& key, const Empty&) { f(key); });
  }

  /// Like for_each, but stops early when f returns true. Returns whether f
  /// stopped the scan.
  template <class F>
  bool for_each_until(F&& f) const {
    return map_.for_each_until([&](const K& key, const Empty&) { return f(key); });
  }

  /// Some element (unspecified which); the set must be non-empty.
  [[nodiscard]] K any() const {
    RS_CHECK(!map_.empty(), "FlatHashSet::any: empty set");
    K out{};
    map_.for_each_until([&](const K& key, const Empty&) {
      out = key;
      return true;
    });
    return out;
  }

 private:
  FlatHashMap<K, Empty, Hash> map_;
};

}  // namespace reasched
