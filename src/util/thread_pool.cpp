#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace reasched {

#if RS_TELEM_COMPILED
namespace {

/// Per-worker queue-depth gauge ("svc.queue.depth.<k>"), interned lazily so
/// only pools that actually run pay for slots. Worker indexes beyond the
/// named range share a catch-all — the registry has a fixed gauge budget.
const telemetry::Gauge& queue_depth_gauge(std::size_t index) {
  constexpr std::size_t kNamedQueues = 16;
  static std::mutex mutex;
  static std::vector<telemetry::Gauge> gauges;
  if (index > kNamedQueues) index = kNamedQueues;  // catch-all slot
  std::lock_guard lock(mutex);
  while (gauges.size() <= index) {
    const std::size_t k = gauges.size();
    gauges.emplace_back(k == kNamedQueues
                            ? std::string("svc.queue.depth.other")
                            : "svc.queue.depth." + std::to_string(k));
  }
  return gauges[index];
}

}  // namespace
#endif

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ShardedThreadPool::ShardedThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker& worker = *workers_.back();
    worker.index = i;
    worker.thread = std::thread([this, &worker] { worker_loop(worker); });
  }
}

ShardedThreadPool::~ShardedThreadPool() {
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
      worker->stopping = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) worker->thread.join();
}

std::future<void> ShardedThreadPool::submit_to(std::size_t worker_index,
                                               std::function<void()> fn) {
  RS_REQUIRE(worker_index < workers_.size(),
             "ShardedThreadPool::submit_to: worker index out of range");
  Worker& worker = *workers_[worker_index];
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> result = task.get_future();
  {
    std::lock_guard lock(worker.mutex);
    worker.queue.push(std::move(task));
  }
#if RS_TELEM_COMPILED
  RS_TELEM_GAUGE_ADD(queue_depth_gauge(worker_index), 1);
#endif
  worker.cv.notify_one();
  return result;
}

std::future<void> ShardedThreadPool::submit_stealable(std::size_t home,
                                                      std::function<void()> fn) {
  RS_REQUIRE(home < workers_.size(),
             "ShardedThreadPool::submit_stealable: home worker out of range");
  Worker& worker = *workers_[home];
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> result = task.get_future();
  {
    std::lock_guard lock(worker.mutex);
    worker.stealable.push_back(std::move(task));
    stealable_count_.fetch_add(1, std::memory_order_relaxed);
  }
  worker.cv.notify_one();
  // Wake one potential thief (rotating) so an idle sibling can help a
  // backlogged home without a full notify-all herd.
  if (workers_.size() > 1) {
    const std::size_t buddy =
        steal_cursor_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    if (buddy != home) workers_[buddy]->cv.notify_one();
  }
  return result;
}

bool ShardedThreadPool::steal_and_run(std::size_t exclude) {
  if (stealable_count_.load(std::memory_order_relaxed) == 0) return false;
  const std::size_t n = workers_.size();
  const std::size_t start =
      steal_cursor_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == exclude) continue;
    Worker& worker = *workers_[victim];
    std::packaged_task<void()> task;
    {
      std::lock_guard lock(worker.mutex);
      if (!worker.stealable.empty()) {
        task = std::move(worker.stealable.back());
        worker.stealable.pop_back();
        stealable_count_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (task.valid()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      task();
      return true;
    }
  }
  return false;
}

bool ShardedThreadPool::try_run_stealable() { return steal_and_run(workers_.size()); }

void ShardedThreadPool::worker_loop(Worker& worker) {
  // After a fruitless steal scan the stealable-count hint may still be
  // nonzero (a sibling claimed the task first), so the next wait uses a
  // timeout instead of the hint to avoid a notify-free spin.
  bool scan_failed = false;
  for (;;) {
    std::packaged_task<void()> task;
    bool pinned = false;
    {
      std::unique_lock lock(worker.mutex);
      const auto has_local = [&] {
        return worker.stopping || !worker.queue.empty() ||
               !worker.stealable.empty();
      };
      if (scan_failed) {
        worker.cv.wait_for(lock, std::chrono::milliseconds(1), has_local);
      } else {
        worker.cv.wait(lock, [&] {
          return has_local() ||
                 stealable_count_.load(std::memory_order_relaxed) > 0;
        });
      }
      if (!worker.queue.empty()) {
        task = std::move(worker.queue.front());
        worker.queue.pop();
        pinned = true;
      } else if (!worker.stealable.empty()) {
        task = std::move(worker.stealable.front());
        worker.stealable.pop_front();
        stealable_count_.fetch_sub(1, std::memory_order_relaxed);
      } else if (worker.stopping) {
        return;
      }
    }
    if (task.valid()) {
#if RS_TELEM_COMPILED
      if (pinned) RS_TELEM_GAUGE_ADD(queue_depth_gauge(worker.index), -1);
#else
      (void)pinned;
#endif
      task();
      scan_failed = false;
      continue;
    }
    scan_failed = !steal_and_run(worker.index);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace reasched
