#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace reasched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ShardedThreadPool::ShardedThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker& worker = *workers_.back();
    worker.thread = std::thread([this, &worker] { worker_loop(worker); });
  }
}

ShardedThreadPool::~ShardedThreadPool() {
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
      worker->stopping = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) worker->thread.join();
}

std::future<void> ShardedThreadPool::submit_to(std::size_t worker_index,
                                               std::function<void()> fn) {
  RS_REQUIRE(worker_index < workers_.size(),
             "ShardedThreadPool::submit_to: worker index out of range");
  Worker& worker = *workers_[worker_index];
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> result = task.get_future();
  {
    std::lock_guard lock(worker.mutex);
    worker.queue.push(std::move(task));
  }
  worker.cv.notify_one();
  return result;
}

void ShardedThreadPool::worker_loop(Worker& worker) {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(worker.mutex);
      worker.cv.wait(lock, [&] { return worker.stopping || !worker.queue.empty(); });
      if (worker.queue.empty()) {
        if (worker.stopping) return;
        continue;
      }
      task = std::move(worker.queue.front());
      worker.queue.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace reasched
