// Minimal fixed-size thread pool used to parallelize benchmark sweeps and
// batch validation. The schedulers themselves are single-threaded state
// machines (the model is an online sequential request stream); parallelism
// in this project lives at the harness level, where it is embarrassingly
// parallel.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reasched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace reasched
