// Minimal fixed-size thread pools.
//
// ThreadPool: one shared queue, used to parallelize benchmark sweeps and
// batch validation — embarrassingly parallel harness work where any worker
// may take any task.
//
// ShardedThreadPool: one queue per worker, used by the sharded scheduling
// service (src/service/). Shard k's machine state is only ever touched by
// worker k, so tasks must be *pinned*: per-shard queues give that affinity
// and avoid the shared-queue lock on the batch hot path. Alongside the
// pinned queue each worker carries a *stealable* deque (submit_stealable)
// for work whose home assignment is only a cache preference: idle workers
// — and the batch caller, via try_run_stealable() — take from a
// backlogged sibling's back end, so a hotspot shard under skewed
// machine→shard placement cannot serialize the whole batch (DESIGN.md
// §11).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reasched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Pool with per-worker queues and explicit task placement. `workers` may be
/// zero (a valid pool that accepts no tasks — the single-shard service runs
/// everything inline on the caller).
class ShardedThreadPool {
 public:
  explicit ShardedThreadPool(std::size_t workers);
  ~ShardedThreadPool();

  ShardedThreadPool(const ShardedThreadPool&) = delete;
  ShardedThreadPool& operator=(const ShardedThreadPool&) = delete;

  /// Enqueues a task on worker `worker`'s own queue; tasks submitted to the
  /// same worker run sequentially in submission order. Pinned tasks are
  /// never stolen — use for work that must touch worker-affine state.
  std::future<void> submit_to(std::size_t worker, std::function<void()> fn);

  /// Enqueues a *stealable* task with home worker `home`: the home worker
  /// prefers it (front of its deque, submission order), but any idle
  /// worker — or the caller, via try_run_stealable() — may take it from
  /// the back. Use for work where affinity is a cache preference, not a
  /// correctness requirement; a hotspot shard's backlog then spreads to
  /// idle siblings instead of serializing behind one worker (DESIGN.md
  /// §11, ingestion under skewed machine→shard placement).
  std::future<void> submit_stealable(std::size_t home, std::function<void()> fn);

  /// Runs one stealable task on the calling thread, if any is queued
  /// anywhere. Returns whether a task ran. The batch caller uses this to
  /// lend its own cycles while it waits on the batch's futures.
  bool try_run_stealable();

  /// Stealable tasks executed by a thread other than their home worker
  /// (process-lifetime, monotone).
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::queue<std::packaged_task<void()>> queue;  // pinned: never stolen
    // Owner pops the front (submission order); thieves pop the back.
    std::deque<std::packaged_task<void()>> stealable;
    bool stopping = false;
    std::size_t index = 0;  // position in workers_ (telemetry gauge key)
  };

  void worker_loop(Worker& worker);
  /// Steals and runs one task from any worker except `exclude`
  /// (pass size() to scan all). Returns whether a task ran.
  bool steal_and_run(std::size_t exclude);

  // unique_ptr: Worker holds a mutex/cv and must not move when the vector
  // is built.
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Total queued stealable tasks — a wake hint for idle workers, exact
  /// only under the per-worker locks.
  std::atomic<std::size_t> stealable_count_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> steal_cursor_{0};  // scan start + victim rotation
};

}  // namespace reasched
