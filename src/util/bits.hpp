// Power-of-two arithmetic used throughout the aligned-window machinery.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace reasched {

using u64 = std::uint64_t;
using i64 = std::int64_t;

/// True iff x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(u64 x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x > 0.
[[nodiscard]] constexpr unsigned floor_log2(u64 x) {
  RS_REQUIRE(x > 0, "floor_log2(0)");
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)); requires x > 0.
[[nodiscard]] constexpr unsigned ceil_log2(u64 x) {
  RS_REQUIRE(x > 0, "ceil_log2(0)");
  return is_pow2(x) ? floor_log2(x) : floor_log2(x) + 1;
}

/// 2^e as u64; requires e < 64.
[[nodiscard]] constexpr u64 pow2(unsigned e) {
  RS_REQUIRE(e < 64, "pow2 exponent out of range");
  return u64{1} << e;
}

/// Rounds x down to a multiple of the power-of-two `align`.
[[nodiscard]] constexpr i64 align_down(i64 x, u64 align) {
  RS_REQUIRE(is_pow2(align), "align_down: alignment must be a power of two");
  const i64 a = static_cast<i64>(align);
  // Floor division semantics for possibly-negative x.
  i64 q = x / a;
  if (x % a != 0 && x < 0) --q;
  return q * a;
}

/// Rounds x up to a multiple of the power-of-two `align`.
[[nodiscard]] constexpr i64 align_up(i64 x, u64 align) {
  RS_REQUIRE(is_pow2(align), "align_up: alignment must be a power of two");
  const i64 down = align_down(x, align);
  return down == x ? x : down + static_cast<i64>(align);
}

/// The iterated logarithm log*(x): number of times lg must be applied
/// before the value drops to <= 1.
[[nodiscard]] constexpr unsigned log_star(u64 x) noexcept {
  unsigned it = 0;
  while (x > 1) {
    x = floor_log2(x);
    ++it;
  }
  return it;
}

}  // namespace reasched
