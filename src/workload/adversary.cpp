#include "workload/adversary.hpp"

#include "util/assert.hpp"

namespace reasched {

Lemma11Adversary::Lemma11Adversary(unsigned machines, std::uint64_t rounds)
    : machines_(machines), rounds_(rounds) {
  RS_REQUIRE(machines > 1 && machines % 2 == 0,
             "Lemma11Adversary: machines must be even and > 1");
  RS_REQUIRE(rounds >= 1, "Lemma11Adversary: need at least one round");
}

std::optional<Request> Lemma11Adversary::next(const Schedule& current) {
  for (;;) {
    switch (phase_) {
      case Phase::kInsertSpan2: {
        if (step_ < 2 * machines_) {
          const JobId id{next_id_++};
          alive_.push_back(id);
          ++step_;
          ++emitted_;
          return Request::insert(id, Window{0, 2});
        }
        // All 2m span-2 jobs are placed: two per machine is forced. Mark
        // the jobs sitting on the first m/2 machines for deletion.
        to_delete_.clear();
        for (const JobId id : alive_) {
          const auto placement = current.find(id);
          RS_CHECK(placement.has_value(), "lemma11: job vanished from schedule");
          if (placement->machine < machines_ / 2) to_delete_.push_back(id);
        }
        RS_CHECK(to_delete_.size() == machines_,
                 "lemma11: expected exactly two jobs on each front machine");
        phase_ = Phase::kDeleteFront;
        step_ = 0;
        break;
      }
      case Phase::kDeleteFront: {
        if (step_ < to_delete_.size()) {
          const JobId id = to_delete_[step_++];
          std::erase(alive_, id);
          ++emitted_;
          return Request::erase(id);
        }
        phase_ = Phase::kInsertSpan1;
        step_ = 0;
        break;
      }
      case Phase::kInsertSpan1: {
        if (step_ < machines_) {
          const JobId id{next_id_++};
          alive_.push_back(id);
          ++step_;
          ++emitted_;
          return Request::insert(id, Window{0, 1});
        }
        phase_ = Phase::kDeleteAll;
        step_ = 0;
        break;
      }
      case Phase::kDeleteAll: {
        if (!alive_.empty()) {
          const JobId id = alive_.back();
          alive_.pop_back();
          ++emitted_;
          return Request::erase(id);
        }
        ++round_;
        if (round_ >= rounds_) {
          phase_ = Phase::kDone;
          break;
        }
        phase_ = Phase::kInsertSpan2;
        step_ = 0;
        break;
      }
      case Phase::kDone:
        return std::nullopt;
    }
  }
}

std::vector<Request> make_lemma12_trace(std::uint64_t eta, std::uint64_t toggles) {
  RS_REQUIRE(eta >= 1, "lemma12: eta must be positive");
  std::vector<Request> trace;
  trace.reserve(eta + 4 * toggles);
  std::uint64_t next_id = 1;
  for (std::uint64_t j = 0; j < eta; ++j) {
    trace.push_back(Request::insert(JobId{next_id++},
                                    Window{static_cast<Time>(j), static_cast<Time>(j + 2)}));
  }
  for (std::uint64_t t = 0; t < toggles; ++t) {
    const JobId low{next_id++};
    trace.push_back(Request::insert(low, Window{0, 1}));
    trace.push_back(Request::erase(low));
    const JobId high{next_id++};
    trace.push_back(Request::insert(
        high, Window{static_cast<Time>(eta), static_cast<Time>(eta + 1)}));
    trace.push_back(Request::erase(high));
  }
  return trace;
}

}  // namespace reasched
