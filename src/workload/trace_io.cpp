#include "workload/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace reasched {

void write_trace(std::ostream& os, const std::vector<Request>& trace) {
  for (const auto& request : trace) {
    if (request.kind == RequestKind::kInsert) {
      os << "I " << request.job.value << ' ' << request.window.start << ' '
         << request.window.end << '\n';
    } else {
      os << "D " << request.job.value << '\n';
    }
  }
  os.flush();
}

std::vector<Request> read_trace(std::istream& is) {
  std::vector<Request> trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    char kind = 0;
    tokens >> kind;
    if (kind == 'I') {
      std::uint64_t id = 0;
      Time arrival = 0;
      Time deadline = 0;
      tokens >> id >> arrival >> deadline;
      RS_REQUIRE(static_cast<bool>(tokens) && deadline > arrival,
                 "trace line " + std::to_string(line_number) + ": bad insert");
      trace.push_back(Request::insert(JobId{id}, Window{arrival, deadline}));
    } else if (kind == 'D') {
      std::uint64_t id = 0;
      tokens >> id;
      RS_REQUIRE(static_cast<bool>(tokens),
                 "trace line " + std::to_string(line_number) + ": bad delete");
      trace.push_back(Request::erase(JobId{id}));
    } else {
      RS_REQUIRE(false, "trace line " + std::to_string(line_number) +
                            ": unknown record type");
    }
  }
  return trace;
}

}  // namespace reasched
