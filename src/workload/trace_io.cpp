#include "workload/trace_io.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "durability/wal.hpp"
#include "util/assert.hpp"

namespace reasched {

void write_trace(std::ostream& os, const std::vector<Request>& trace) {
  for (const auto& request : trace) {
    if (request.kind == RequestKind::kInsert) {
      os << "I " << request.job.value << ' ' << request.window.start << ' '
         << request.window.end << '\n';
    } else {
      os << "D " << request.job.value << '\n';
    }
  }
  os.flush();
}

std::vector<Request> read_trace(std::istream& is) {
  std::vector<Request> trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    char kind = 0;
    tokens >> kind;
    if (kind == 'I') {
      std::uint64_t id = 0;
      Time arrival = 0;
      Time deadline = 0;
      tokens >> id >> arrival >> deadline;
      RS_REQUIRE(static_cast<bool>(tokens) && deadline > arrival,
                 "trace line " + std::to_string(line_number) + ": bad insert");
      trace.push_back(Request::insert(JobId{id}, Window{arrival, deadline}));
    } else if (kind == 'D') {
      std::uint64_t id = 0;
      tokens >> id;
      RS_REQUIRE(static_cast<bool>(tokens),
                 "trace line " + std::to_string(line_number) + ": bad delete");
      trace.push_back(Request::erase(JobId{id}));
    } else {
      RS_REQUIRE(false, "trace line " + std::to_string(line_number) +
                            ": unknown record type");
    }
  }
  return trace;
}

void write_trace_wal(const std::string& path, const std::vector<Request>& trace) {
  std::remove(path.c_str());  // the trace replaces the file, never appends
  durability::WalWriter writer;
  writer.open(path, durability::DurabilityPolicy{});
  std::uint64_t csn = 0;
  for (const Request& request : trace) {
    ++csn;
    writer.append(request.kind == RequestKind::kInsert
                      ? durability::WalRecord::insert(csn, request.job, request.window)
                      : durability::WalRecord::erase(csn, request.job));
  }
  writer.sync();
  writer.close();
}

std::vector<Request> read_trace_wal(const std::string& path) {
  durability::WalReadResult wal;
  try {
    wal = durability::read_wal(path);
  } catch (const durability::CorruptInput& bad) {
    RS_REQUIRE(false, std::string("trace: ") + bad.what());
  }
  RS_REQUIRE(!wal.missing, "trace: no such file: " + path);
  std::vector<Request> trace;
  trace.reserve(wal.records.size());
  for (const durability::WalRecord& record : wal.records) {
    trace.push_back(record.to_request());
  }
  return trace;
}

}  // namespace reasched
