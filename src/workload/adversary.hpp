// The paper's §6 lower-bound constructions, as executable adversaries.
//
//  * Lemma 11 (adaptive): on m > 1 machines, rounds of 6m requests force
//    any deterministic scheduler to migrate m/2 jobs per round — Ω(s) total
//    migrations over s requests. Adaptive: the adversary inspects the
//    current schedule to decide which jobs to delete.
//  * Lemma 12 (oblivious): η = s/2 jobs with windows [j, j+2] plus a
//    toggling unit-span job force Ω(η) reallocations per toggle — Ω(s²)
//    total — for ANY scheduler, because each toggle leaves a unique
//    feasible assignment. No underallocation, hence no contradiction with
//    Theorem 1.
//  * Observation 13 is exercised directly by bench E7 via RigidBlockSim.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/window.hpp"
#include "schedule/schedule.hpp"

namespace reasched {

/// Adaptive adversary for Lemma 11. Drive it with run_adaptive() from
/// sim/driver.hpp: call next() with the schedule resulting from the
/// previous request; it returns the next request or nullopt when done.
class Lemma11Adversary {
 public:
  /// `machines` must be even and > 1 (the construction deletes the jobs on
  /// the first m/2 machines); `rounds` = number of 6m-request rounds.
  Lemma11Adversary(unsigned machines, std::uint64_t rounds);

  [[nodiscard]] std::optional<Request> next(const Schedule& current);

  [[nodiscard]] std::uint64_t requests_emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t rounds_total() const noexcept { return rounds_; }

 private:
  enum class Phase : std::uint8_t {
    kInsertSpan2,   // 2m inserts of span-2 jobs, window [0, 2)
    kDeleteFront,   // delete the m jobs on machines 0..m/2-1
    kInsertSpan1,   // m inserts of span-1 jobs, window [0, 1)
    kDeleteAll,     // delete the 2m remaining jobs
    kDone,
  };

  unsigned machines_;
  std::uint64_t rounds_;
  std::uint64_t round_ = 0;
  Phase phase_ = Phase::kInsertSpan2;
  unsigned step_ = 0;
  std::uint64_t next_id_ = 1;
  std::vector<JobId> alive_;
  std::vector<JobId> to_delete_;
  std::uint64_t emitted_ = 0;
};

/// Oblivious Lemma-12 trace: eta staircase jobs [j, j+2), then `toggles`
/// rounds of {insert [0,1) filler, delete it, insert [eta, eta+1) filler,
/// delete it}. Every filler insert forces all eta jobs to shift by one.
[[nodiscard]] std::vector<Request> make_lemma12_trace(std::uint64_t eta,
                                                      std::uint64_t toggles);

}  // namespace reasched
