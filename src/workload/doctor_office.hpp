// The paper's motivating workload (§1): a doctor's office booking system.
//
// Patients call in over a horizon of days; each names an availability
// window (a stretch of consecutive slots, from a couple of hours to a few
// days) and must be given one appointment slot inside it. Some patients
// later cancel. The generator emits the request trace; the scheduler keeps
// everyone booked while rescheduling ("annoying") as few patients as
// possible — the quantity Theorem 1 bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "base/window.hpp"

namespace reasched {

struct DoctorOfficeParams {
  std::uint64_t seed = 7;
  /// Number of clinic days in the booking horizon.
  std::uint64_t days = 64;
  /// Appointment slots per day (power of two keeps day windows aligned).
  std::uint64_t slots_per_day = 32;
  /// Mean bookings made per simulated call-in day (Poisson-ish arrivals).
  double bookings_per_day = 12.0;
  /// Probability that an existing booking cancels per call-in day per job.
  double cancel_rate = 0.02;
  /// Fraction of capacity the clinic is willing to book (slack control;
  /// keep below 1/8 to satisfy the paper's underallocation regime).
  double load_factor = 0.10;
};

/// Generates the booking/cancellation request trace.
[[nodiscard]] std::vector<Request> make_doctor_office_trace(
    const DoctorOfficeParams& params);

}  // namespace reasched
