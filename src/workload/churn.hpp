// Random insert/delete churn with γ-underallocation *by construction*.
//
// Candidate jobs are admitted only if every aligned ancestor window A of the
// job's aligned image keeps at most m·|A|/γ jobs whose (aligned) windows
// nest inside A. For laminar (recursively aligned) families this density
// bound is exactly the packing condition behind Lemma 2/Lemma 3, so admitted
// aligned traces are γ-underallocated at every prefix — the precondition of
// Theorem 1. Generated traces are deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "base/window.hpp"

namespace reasched {

/// How window positions are sampled.
enum class WindowPlacement : std::uint8_t {
  /// Spread uniformly over the horizon: low contention, jobs rarely
  /// interact (a sanity regime — nearly every scheduler is cheap here).
  kUniform,
  /// Windows nest around a few hotspots, filling every enclosing span class
  /// to the γ-density cap: maximal contention among *underallocated*
  /// instances — the regime where pecking-order cascades actually fire and
  /// the paper's hierarchy (log* vs log vs n) becomes visible.
  kNestedHotspots,
};

struct ChurnParams {
  std::uint64_t seed = 1;
  /// Ramp up to roughly this many concurrently active jobs, then churn.
  std::size_t target_active = 1024;
  /// Total number of requests to emit (inserts + deletes).
  std::size_t requests = 10'000;
  /// Window span range; spans are sampled log-uniformly. Must satisfy
  /// min_span >= gamma (no window smaller than γ can hold a job in a
  /// γ-underallocated instance).
  std::uint64_t min_span = 64;
  std::uint64_t max_span = 4096;
  /// Emit aligned windows (power-of-two span, aligned start). When false,
  /// windows are arbitrary and the density bound is enforced on their
  /// aligned images (what the §5 pipeline will schedule).
  bool aligned = true;
  /// Underallocation factor enforced by construction.
  std::uint64_t gamma = 8;
  unsigned machines = 1;
  /// Probability that a post-warmup request is a deletion.
  double delete_fraction = 0.5;
  /// Timeline length (power of two). 0 = auto-sized from the parameters.
  std::uint64_t horizon = 0;
  WindowPlacement placement = WindowPlacement::kUniform;
  /// Number of hotspots for kNestedHotspots (0 = auto from capacity).
  unsigned hotspots = 0;
};

/// Generates the request trace. Throws ContractViolation on inconsistent
/// parameters.
[[nodiscard]] std::vector<Request> make_churn_trace(const ChurnParams& params);

}  // namespace reasched
