#include "workload/funnel.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace reasched {

std::vector<Request> make_funnel_trace(const FunnelParams& params) {
  RS_REQUIRE(params.min_span_log <= params.max_span_log, "funnel: bad span range");
  RS_REQUIRE(params.max_span_log < 62, "funnel: span exponent too large");
  RS_REQUIRE(is_pow2(params.gamma), "funnel: gamma must be a power of two");
  RS_REQUIRE(pow2(params.min_span_log) / 2 >= params.gamma,
             "funnel: smallest class cannot hold a job at this gamma "
             "(need 2^(min_span_log-1) >= gamma)");
  RS_REQUIRE(align_down(params.base, pow2(params.max_span_log)) == params.base,
             "funnel: base must be aligned to the largest span");

  const unsigned classes = params.max_span_log - params.min_span_log + 1;
  Rng rng(params.seed);

  // Per-class job quota: half the Lemma-2 cap, so nesting stays legal.
  std::vector<std::uint64_t> quota(classes);
  std::size_t budget = params.max_jobs == 0 ? ~std::size_t{0} : params.max_jobs;
  for (unsigned c = 0; c < classes; ++c) {
    const unsigned exponent = params.min_span_log + c;
    const std::uint64_t cap = pow2(exponent - 1) / params.gamma;
    quota[c] = std::min<std::uint64_t>(cap, budget);
    budget -= static_cast<std::size_t>(quota[c]);
  }

  std::vector<Request> trace;
  std::vector<std::vector<JobId>> members(classes);
  std::uint64_t next_id = 1;

  auto window_of = [&](unsigned c) {
    const Time span = static_cast<Time>(pow2(params.min_span_log + c));
    return Window{params.base, params.base + span};
  };

  // Warm fill, small classes first (their quotas are the cascade fuel).
  for (unsigned c = 0; c < classes; ++c) {
    for (std::uint64_t i = 0; i < quota[c]; ++i) {
      const JobId id{next_id++};
      trace.push_back(Request::insert(id, window_of(c)));
      members[c].push_back(id);
    }
  }

  // Steady churn: delete a job from class a, insert one into class b. When
  // a's span exceeds b's, the hole left by the delete usually lies outside
  // the inserted window — which is buried in the full prefix — so the
  // insert must cascade up the span classes until it reaches the hole.
  // Populations random-walk within [quota/2, 3*quota/2]; since quota is
  // half the Lemma-2 cap, every prefix stays within the density bound and
  // the whole trace remains γ-underallocated.
  bool any = false;
  for (unsigned c = 0; c < classes; ++c) any = any || !members[c].empty();
  if (!any) return trace;

  unsigned lowest = 0;
  unsigned highest = classes - 1;
  while (quota[lowest] == 0 && lowest < classes - 1) ++lowest;
  while (quota[highest] == 0 && highest > 0) --highest;

  for (std::size_t pair = 0; pair < params.churn_pairs; ++pair) {
    unsigned from = 0;
    unsigned to = 0;
    if (params.adversarial) {
      // Even pairs: a hole opens at the top of the prefix while the insert
      // dives to the bottom — the displacement chain must climb every span
      // class. Odd pairs undo the population shift (their inserts are
      // cheap: the low hole is visible from the huge window).
      from = (pair % 2 == 0) ? highest : lowest;
      to = (pair % 2 == 0) ? lowest : highest;
      if (members[from].empty()) std::swap(from, to);
      if (members[from].empty()) break;
    } else {
      do {
        from = static_cast<unsigned>(rng.uniform(0, classes - 1));
      } while (members[from].empty() ||
               members[from].size() * 2 <= quota[from]);  // keep >= quota/2
      do {
        to = static_cast<unsigned>(rng.uniform(0, classes - 1));
      } while (quota[to] == 0 || members[to].size() * 2 >= quota[to] * 3);  // <= 3q/2
    }
    auto& from_pool = members[from];
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform(0, from_pool.size() - 1));
    trace.push_back(Request::erase(from_pool[pick]));
    from_pool[pick] = from_pool.back();
    from_pool.pop_back();

    const JobId id{next_id++};
    trace.push_back(Request::insert(id, window_of(to)));
    members[to].push_back(id);
  }
  return trace;
}

}  // namespace reasched
