// Request-trace serialization: a minimal line format so traces can be
// saved, diffed, and replayed across runs (and shared as bug reproducers),
// plus a binary format sharing the durability tier's WAL framing.
//
//   I <id> <arrival> <deadline>
//   D <id>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "base/window.hpp"

namespace reasched {

void write_trace(std::ostream& os, const std::vector<Request>& trace);

/// Parses a trace; throws ContractViolation on malformed input.
[[nodiscard]] std::vector<Request> read_trace(std::istream& is);

/// Binary trace: exactly the WAL file format (durability/wal.hpp —
/// checksummed length-prefixed frames of ⟨type, csn, job, window⟩ records,
/// csn = 1-based trace index), so any WAL file doubles as a replayable
/// trace (a crash's surviving request stream IS a bug reproducer) and any
/// recorded trace can seed a durability directory.
void write_trace_wal(const std::string& path, const std::vector<Request>& trace);

/// Reads a binary trace / WAL file. Throws ContractViolation on a garbled
/// file header; a torn tail is tolerated and simply ends the trace early
/// (exactly the recovery semantics).
[[nodiscard]] std::vector<Request> read_trace_wal(const std::string& path);

}  // namespace reasched
