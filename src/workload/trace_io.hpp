// Request-trace serialization: a minimal line format so traces can be
// saved, diffed, and replayed across runs (and shared as bug reproducers).
//
//   I <id> <arrival> <deadline>
//   D <id>
#pragma once

#include <iosfwd>
#include <vector>

#include "base/window.hpp"

namespace reasched {

void write_trace(std::ostream& os, const std::vector<Request>& trace);

/// Parses a trace; throws ContractViolation on malformed input.
[[nodiscard]] std::vector<Request> read_trace(std::istream& is);

}  // namespace reasched
