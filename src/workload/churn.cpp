#include "workload/churn.hpp"

#include <unordered_map>

#include "core/alignment.hpp"
#include "core/window_key.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace reasched {

namespace {

/// Tracks per-aligned-window job counts and admits a window only if all of
/// its aligned ancestors stay below the density bound m·|A|/γ.
class DensityLedger {
 public:
  DensityLedger(u64 horizon, u64 gamma, unsigned machines)
      : horizon_log_(floor_log2(horizon)), gamma_(gamma), machines_(machines) {}

  [[nodiscard]] bool admissible(const Window& aligned) const {
    const WindowKey key(aligned);
    for (unsigned exp = key.span_log; exp <= horizon_log_; ++exp) {
      const u64 span = pow2(exp);
      const Time start = align_down(aligned.start, span);
      const u64 quota = machines_ * span / gamma_;
      const auto it = counts_.find(make_key(start, exp));
      const u64 current = it == counts_.end() ? 0 : it->second;
      if (current + 1 > quota) return false;
    }
    return true;
  }

  void add(const Window& aligned) { bump(aligned, +1); }
  void remove(const Window& aligned) { bump(aligned, -1); }

 private:
  static WindowKey make_key(Time start, unsigned exp) {
    WindowKey key;
    key.start = start;
    key.span_log = static_cast<std::uint8_t>(exp);
    return key;
  }

  void bump(const Window& aligned, int delta) {
    const WindowKey key(aligned);
    for (unsigned exp = key.span_log; exp <= horizon_log_; ++exp) {
      const u64 span = pow2(exp);
      const WindowKey ancestor = make_key(align_down(aligned.start, span), exp);
      auto& count = counts_[ancestor];
      if (delta > 0) {
        ++count;
      } else {
        RS_CHECK(count > 0, "DensityLedger underflow");
        --count;
        if (count == 0) counts_.erase(ancestor);
      }
    }
  }

  unsigned horizon_log_;
  u64 gamma_;
  unsigned machines_;
  std::unordered_map<WindowKey, u64> counts_;
};

}  // namespace

std::vector<Request> make_churn_trace(const ChurnParams& params) {
  RS_REQUIRE(params.requests > 0, "churn: no requests requested");
  RS_REQUIRE(params.target_active > 0, "churn: target_active must be positive");
  RS_REQUIRE(params.min_span >= 1 && params.min_span <= params.max_span,
             "churn: bad span range");
  RS_REQUIRE(is_pow2(params.gamma), "churn: gamma must be a power of two");
  RS_REQUIRE(params.min_span >= params.gamma,
             "churn: min_span must be >= gamma (smaller windows cannot hold "
             "jobs in a gamma-underallocated instance)");
  RS_REQUIRE(params.machines >= 1, "churn: need at least one machine");
  RS_REQUIRE(params.delete_fraction >= 0.0 && params.delete_fraction < 1.0,
             "churn: delete_fraction out of range");

  // Auto horizon: enough aligned capacity that the density bound admits
  // ~target_active jobs with comfortable headroom.
  u64 horizon = params.horizon;
  if (horizon == 0) {
    const u64 need =
        4 * params.gamma * static_cast<u64>(params.target_active) / params.machines +
        4 * params.max_span;
    horizon = pow2(ceil_log2(need));
  }
  RS_REQUIRE(is_pow2(horizon), "churn: horizon must be a power of two");
  RS_REQUIRE(horizon >= params.max_span, "churn: horizon smaller than max_span");

  Rng rng(params.seed);
  DensityLedger ledger(horizon, params.gamma, params.machines);

  // Hotspot positions for nested placement: enough hotspots that the
  // density cap over all enclosing windows can hold ~2x the target
  // population, spread evenly over the horizon.
  std::vector<Time> hotspots;
  if (params.placement == WindowPlacement::kNestedHotspots) {
    unsigned count = params.hotspots;
    if (count == 0) {
      const u64 capacity_per_hotspot =
          2 * params.machines * params.max_span / params.gamma;
      count = static_cast<unsigned>(
          2 * params.target_active / std::max<u64>(1, capacity_per_hotspot) + 1);
    }
    for (unsigned i = 0; i < count; ++i) {
      // Align each hotspot to a max_span block start: the aligned windows of
      // every span containing it then share that start, so the chain is
      // prefix-nested — first-fit schedulers crowd the common prefix and
      // pecking-order cascades actually fire.
      const Time raw = static_cast<Time>(u64{i} * horizon / count);
      hotspots.push_back(align_down(raw, pow2(floor_log2(params.max_span))));
    }
  }

  std::vector<Request> trace;
  trace.reserve(params.requests);
  struct Active {
    JobId id;
    Window aligned_image;
  };
  std::vector<Active> active;
  active.reserve(params.target_active * 2);
  std::uint64_t next_id = 1;

  auto sample_window = [&]() -> std::pair<Window, Window> {
    // Returns (window, aligned image used for the density ledger).
    const u64 span_raw = rng.log_uniform(params.min_span, params.max_span);
    if (params.placement == WindowPlacement::kNestedHotspots) {
      const Time hotspot =
          hotspots[static_cast<std::size_t>(rng.uniform(0, hotspots.size() - 1))];
      const u64 span = pow2(floor_log2(span_raw));
      // The aligned window of this span containing the hotspot: windows of
      // all spans around one hotspot form a nested (laminar) chain.
      const Time start = align_down(hotspot, span);
      const Window w{start, start + static_cast<Time>(span)};
      if (params.aligned) return {w, w};
      // Unaligned variant: jitter the endpoints outward a little; the
      // aligned image stays inside the same chain.
      const Time jitter = static_cast<Time>(rng.uniform(0, span / 4));
      const Window jittered{std::max<Time>(0, w.start - jitter), w.end + jitter};
      return {jittered, aligned_shrink(jittered)};
    }
    if (params.aligned) {
      const unsigned exp = floor_log2(span_raw);
      const u64 span = pow2(exp);
      const u64 positions = horizon / span;
      const Time start = static_cast<Time>(span * rng.uniform(0, positions - 1));
      const Window w{start, start + static_cast<Time>(span)};
      return {w, w};
    }
    const u64 span = span_raw;
    const Time start = static_cast<Time>(rng.uniform(0, horizon - span));
    const Window w{start, start + static_cast<Time>(span)};
    return {w, aligned_shrink(w)};
  };

  std::size_t emitted = 0;
  while (emitted < params.requests) {
    // Warm-up: pure inserts until the target population is reached; after
    // that, delete with probability delete_fraction (0.5 keeps n steady).
    const bool warm = active.size() >= params.target_active;
    const bool do_delete = !active.empty() && warm && rng.chance(params.delete_fraction);
    if (do_delete) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0, active.size() - 1));
      ledger.remove(active[pick].aligned_image);
      trace.push_back(Request::erase(active[pick].id));
      active[pick] = active.back();
      active.pop_back();
      ++emitted;
      continue;
    }
    // Insert: rejection-sample an admissible window.
    bool admitted = false;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto [window, image] = sample_window();
      if (!ledger.admissible(image)) continue;
      ledger.add(image);
      const JobId id{next_id++};
      trace.push_back(Request::insert(id, window));
      active.push_back(Active{id, image});
      admitted = true;
      ++emitted;
      break;
    }
    if (!admitted) {
      // Density saturated: force a deletion to make progress.
      RS_CHECK(!active.empty(), "churn generator deadlocked: nothing to delete");
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0, active.size() - 1));
      ledger.remove(active[pick].aligned_image);
      trace.push_back(Request::erase(active[pick].id));
      active[pick] = active.back();
      active.pop_back();
      ++emitted;
    }
  }
  return trace;
}

}  // namespace reasched
