#include "workload/doctor_office.hpp"

#include <unordered_map>

#include "util/assert.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace reasched {

std::vector<Request> make_doctor_office_trace(const DoctorOfficeParams& params) {
  RS_REQUIRE(params.days >= 1, "doctor office: need at least one day");
  RS_REQUIRE(is_pow2(params.slots_per_day),
             "doctor office: slots_per_day must be a power of two");
  RS_REQUIRE(params.load_factor > 0.0 && params.load_factor <= 0.5,
             "doctor office: load_factor out of range");

  Rng rng(params.seed);
  const Time day_span = static_cast<Time>(params.slots_per_day);
  const Time horizon = static_cast<Time>(params.days) * day_span;

  std::vector<Request> trace;
  std::vector<std::pair<JobId, Window>> booked;
  std::unordered_map<Time, std::uint64_t> day_load;  // bookings touching a day
  std::uint64_t next_id = 1;

  const auto max_per_day = static_cast<std::uint64_t>(
      params.load_factor * static_cast<double>(params.slots_per_day));

  for (std::uint64_t call_day = 0; call_day < params.days; ++call_day) {
    // Cancellations first: every booking flips a (cheap) biased coin.
    for (std::size_t i = 0; i < booked.size();) {
      if (rng.chance(params.cancel_rate)) {
        trace.push_back(Request::erase(booked[i].first));
        for (Time d = booked[i].second.start / day_span;
             d * day_span < booked[i].second.end; ++d) {
          --day_load[d];
        }
        booked[i] = booked.back();
        booked.pop_back();
      } else {
        ++i;
      }
    }

    // New bookings: Poisson-approximate count via Bernoulli thinning.
    const auto attempts = static_cast<std::uint64_t>(params.bookings_per_day * 2.0);
    std::uint64_t made = 0;
    for (std::uint64_t a = 0; a < attempts && made < params.bookings_per_day * 2; ++a) {
      if (!rng.chance(0.5)) continue;  // thinning: E[made] = bookings_per_day
      // Availability: starts within [call_day, days), spans one of
      // {half day, full day, 2 days, 4 days}.
      const std::uint64_t kind = rng.uniform(0, 3);
      const Time span = day_span << (kind == 0 ? 0 : kind - 1);
      const Time span_final = kind == 0 ? day_span / 2 : span;
      if (static_cast<Time>(call_day) * day_span + span_final > horizon) continue;
      const Time latest_start = horizon - span_final;
      const Time earliest_start = static_cast<Time>(call_day) * day_span;
      if (earliest_start > latest_start) continue;
      const Time start = static_cast<Time>(
          rng.uniform(static_cast<std::uint64_t>(earliest_start),
                      static_cast<std::uint64_t>(latest_start)));
      const Window window{start, start + span_final};

      // Capacity admission: every day the window touches stays under quota.
      bool ok = true;
      for (Time d = window.start / day_span; d * day_span < window.end; ++d) {
        if (day_load[d] + 1 > max_per_day) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (Time d = window.start / day_span; d * day_span < window.end; ++d) {
        ++day_load[d];
      }
      const JobId id{next_id++};
      trace.push_back(Request::insert(id, window));
      booked.emplace_back(id, window);
      ++made;
    }
  }
  return trace;
}

}  // namespace reasched
