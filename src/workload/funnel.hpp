// The "funnel": maximum reallocation pressure among γ-underallocated
// instances.
//
// All windows share a common start: a nested chain [0, 2^e) for
// e = min_span_log .. max_span_log. Each span class is filled to half its
// Lemma-2 density cap (so the whole instance stays γ-underallocated:
// Σ_{e'<=e} 2^{e'-1}/γ <= 2^e/γ), which makes first-fit schedulers pack a
// contiguous full prefix. Steady-state churn then deletes a job from one
// random class and inserts one into another: the insert's window is buried
// inside the full prefix, so pecking-order displacement chains actually
// climb the span classes — naive pays Θ(#classes) = Θ(min{log n, log Δ})
// per request, the reservation scheduler O(log*) (Theorem 1 vs Lemma 4).
#pragma once

#include <cstdint>
#include <vector>

#include "base/window.hpp"

namespace reasched {

struct FunnelParams {
  std::uint64_t seed = 1;
  /// Smallest/largest span exponents of the chain. min_span_log must give
  /// each class at least one job: 2^(min_span_log-1) >= gamma.
  unsigned min_span_log = 6;
  unsigned max_span_log = 16;
  std::uint64_t gamma = 8;
  /// Cap on the warm population (0 = fill every class to its half-cap).
  /// When the cap binds, large classes are left sparse and cascades stop at
  /// ~log(8n) — exhibiting the min{log n, log Δ} of Lemma 4.
  std::size_t max_jobs = 0;
  /// Number of churn requests after the warm fill (each churn step is one
  /// delete + one insert).
  std::size_t churn_pairs = 5'000;
  /// Chain start (aligned to 2^max_span_log).
  Time base = 0;
  /// Random churn (false) picks delete/insert classes uniformly; the
  /// adversarial variant (true) alternates delete-largest/insert-smallest
  /// with the reverse, burying every second insert under the full prefix —
  /// the worst case of Lemma 4, still γ-underallocated.
  bool adversarial = false;
};

[[nodiscard]] std::vector<Request> make_funnel_trace(const FunnelParams& params);

}  // namespace reasched
