// Window algebra (paper §2): a window W = [a, d] offers the slots
// a, a+1, ..., d-1 and has span |W| = d - a. A window is *aligned* when its
// span is a power of two and its start is a multiple of that span (§2,
// "Aligned-Windows Assumption"). Aligned windows form a laminar family:
// two aligned windows are disjoint, equal, or nested.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

#include "base/types.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace reasched {

struct Window {
  Time start = 0;  ///< arrival a: earliest usable slot
  Time end = 0;    ///< deadline d: one past the latest usable slot (d-1)

  constexpr Window() = default;
  constexpr Window(Time a, Time d) : start(a), end(d) {}

  /// Number of usable slots, |W| = d - a. Valid windows have span >= 1.
  [[nodiscard]] constexpr Time span() const noexcept { return end - start; }

  [[nodiscard]] constexpr bool valid() const noexcept { return end > start; }

  /// True iff slot t may host a job with this window.
  [[nodiscard]] constexpr bool contains(Time t) const noexcept {
    return start <= t && t < end;
  }

  /// True iff `other` is fully inside this window.
  [[nodiscard]] constexpr bool contains(const Window& other) const noexcept {
    return start <= other.start && other.end <= end;
  }

  [[nodiscard]] constexpr bool overlaps(const Window& other) const noexcept {
    return start < other.end && other.start < end;
  }

  /// Aligned: span is 2^i and start is a multiple of 2^i.
  [[nodiscard]] bool aligned() const {
    if (!valid()) return false;
    const auto s = static_cast<u64>(span());
    return is_pow2(s) && align_down(start, s) == start;
  }

  friend constexpr auto operator<=>(const Window&, const Window&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Window& w) {
    return os << '[' << w.start << ',' << w.end << ')';
  }
};

/// A job specification as carried by insert requests.
struct JobSpec {
  JobId id;
  Window window;
  friend constexpr auto operator<=>(const JobSpec&, const JobSpec&) = default;
};

/// A scheduling request (paper §2): ⟨INSERTJOB, name, arrival, deadline⟩ or
/// ⟨DELETEJOB, name⟩.
struct Request {
  RequestKind kind = RequestKind::kInsert;
  JobId job;
  Window window;  ///< meaningful only for inserts

  static Request insert(JobId id, Window w) {
    RS_REQUIRE(w.valid(), "insert request with empty window");
    return Request{RequestKind::kInsert, id, w};
  }
  static Request insert(JobId id, Time arrival, Time deadline) {
    return insert(id, Window{arrival, deadline});
  }
  static Request erase(JobId id) { return Request{RequestKind::kDelete, id, {}}; }
};

}  // namespace reasched

template <>
struct std::hash<reasched::Window> {
  std::size_t operator()(const reasched::Window& w) const noexcept {
    std::uint64_t z = static_cast<std::uint64_t>(w.start) * 0x9e3779b97f4a7c15ULL;
    z ^= static_cast<std::uint64_t>(w.end) + 0x517cc1b727220a95ULL + (z << 6) + (z >> 2);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(z ^ (z >> 27));
  }
};
