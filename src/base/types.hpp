// Fundamental model types for the reallocation scheduling problem (paper §2).
//
// Time is discrete: the schedule is a grid of unit timeslots per machine.
// A job j = ⟨name, aⱼ, dⱼ⟩ must occupy exactly one slot t with
// aⱼ <= t <= dⱼ - 1 (the window [aⱼ, dⱼ] offers dⱼ - aⱼ slots; its *span*
// is dⱼ - aⱼ). A feasible schedule gives every active job a distinct
// (machine, slot) pair inside its window.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace reasched {

/// Discrete slot index. Signed so interval arithmetic near zero is safe.
using Time = std::int64_t;

/// Machine index in [0, m).
using MachineId = std::uint32_t;

/// Opaque job identifier ("name" in the paper's request model).
struct JobId {
  std::uint64_t value = 0;
  friend auto operator<=>(const JobId&, const JobId&) = default;
};

enum class RequestKind : std::uint8_t { kInsert, kDelete };

/// Per-request cost report, matching the paper's accounting (§2):
///   - reallocations: number of *previously scheduled* jobs whose
///     (machine, slot) assignment changed while serving this request. The
///     inserted job's initial placement and the deleted job's removal are
///     not counted (they are the request itself, not a reallocation).
///   - migrations: number of previously scheduled jobs whose machine
///     changed (a subset of reallocations).
struct RequestStats {
  std::uint64_t reallocations = 0;
  std::uint64_t migrations = 0;
  /// Number of scheduler levels touched by the displacement cascade.
  std::uint64_t levels_touched = 0;
  /// Placements that had to bypass the reservation system ("parked" jobs,
  /// OverflowPolicy::kBestEffort) because the instance lacked the slack the
  /// algorithm's guarantee requires. Zero on γ-underallocated sequences.
  std::uint64_t degraded = 0;
  /// True when the scheduler fell back to a full rebuild (overflow policy
  /// or n* resizing); the rebuild's moves are included in `reallocations`.
  bool rebuilt = false;

  RequestStats& operator+=(const RequestStats& other) noexcept {
    reallocations += other.reallocations;
    migrations += other.migrations;
    levels_touched += other.levels_touched;
    degraded += other.degraded;
    rebuilt = rebuilt || other.rebuilt;
    return *this;
  }
};

}  // namespace reasched

template <>
struct std::hash<reasched::JobId> {
  std::size_t operator()(const reasched::JobId& id) const noexcept {
    // splitmix64-style finalizer for good bucket spread on sequential ids.
    std::uint64_t z = id.value + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
