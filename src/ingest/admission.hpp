// Admission control for the ingestion front end (DESIGN.md §11): decides,
// at push time, whether a request enters the queue at all.
//
// Two independent thresholds, both optional (0 = disabled):
//
//   * queue depth — the exact in-flight count (admitted minus applied,
//     maintained by the ingestion service and mirrored to the
//     "ingest.queue.depth" telemetry gauge, ROADMAP item 6) may not exceed
//     max_queue_depth. Depth shedding is *exact*: the decision is taken
//     against the same counter the gauge publishes, so the accounting in
//     IngestStats reconciles to the request (tests/ingest_admission_test).
//   * p99 latency budget — the consumer records every request's sojourn
//     (push → batch applied) into an epoch histogram; when an epoch
//     completes with p99 over budget, the controller starts *shedding* and
//     producers are rejected until the overload clears. Shedding clears
//     when a later epoch meets the budget again or the queue drains to
//     empty (the backlog that produced the tail is gone, and with all
//     producers shed no new epoch would ever complete — the drain rule is
//     what guarantees recovery).
//
// Threading: admit() is called by many producers concurrently (atomic
// loads only); observe()/evaluate() are called by the single consumer.
// Rejected requests never claim a sequence ticket and are never written
// ahead to any WAL — on recovery replay they are deterministically absent,
// which is exactly "re-rejected" (tests/ingest_admission_test.cpp crash
// cases).
#pragma once

#include <atomic>
#include <cstdint>

#include "telemetry/histogram.hpp"

namespace reasched::ingest {

/// Producer-side admission verdict. kAdmitted is 0 so the enum packs into
/// accounting arrays cheaply.
enum class Admit : std::uint8_t {
  kAdmitted = 0,
  kRejectedDepth = 1,    // queue depth at or over max_queue_depth
  kRejectedLatency = 2,  // p99 sojourn budget exceeded (shedding epoch)
};

class AdmissionController {
 public:
  struct Options {
    /// Reject pushes while in-flight depth >= this (0 = no depth shedding).
    std::size_t max_queue_depth = 0;
    /// Reject pushes while the sojourn p99 exceeds this budget
    /// (0 = no latency shedding).
    std::uint64_t p99_budget_ns = 0;
    /// Sojourn samples per evaluation epoch: the p99 is recomputed every
    /// time this many samples accumulate. Small epochs react faster but
    /// estimate the tail from fewer samples.
    std::size_t epoch_samples = 1024;
  };

  explicit AdmissionController(const Options& options) : options_(options) {}

  /// Producer side: the verdict for a push arriving while `depth` requests
  /// are in flight. Lock-free (two relaxed loads).
  [[nodiscard]] Admit admit(std::size_t depth) const noexcept {
    if (options_.max_queue_depth != 0 && depth >= options_.max_queue_depth) {
      return Admit::kRejectedDepth;
    }
    if (shedding_.load(std::memory_order_relaxed)) {
      return Admit::kRejectedLatency;
    }
    return Admit::kAdmitted;
  }

  /// Consumer side: record one request's push→applied sojourn.
  void observe(std::uint64_t sojourn_ns) noexcept {
    if (options_.p99_budget_ns == 0) return;
    epoch_.record(sojourn_ns);
  }

  /// Consumer side: close the epoch if due and refresh the shedding flag.
  /// `depth` is the current in-flight count: a fully drained queue always
  /// clears shedding (see header comment).
  void evaluate(std::size_t depth) noexcept {
    if (options_.p99_budget_ns == 0) return;
    if (epoch_.total() >= options_.epoch_samples) {
      last_p99_ns_ = epoch_.percentile(0.99);
      shedding_.store(last_p99_ns_ > options_.p99_budget_ns,
                      std::memory_order_relaxed);
      epoch_ = telemetry::LatencyHistogram{};
    } else if (depth == 0 && shedding_.load(std::memory_order_relaxed)) {
      shedding_.store(false, std::memory_order_relaxed);
      epoch_ = telemetry::LatencyHistogram{};
    }
  }

  [[nodiscard]] bool shedding() const noexcept {
    return shedding_.load(std::memory_order_relaxed);
  }
  /// p99 of the last completed epoch (0 before the first one closes).
  [[nodiscard]] std::uint64_t last_p99_ns() const noexcept { return last_p99_ns_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  std::atomic<bool> shedding_{false};
  telemetry::LatencyHistogram epoch_;  // consumer-only
  std::uint64_t last_p99_ns_ = 0;      // consumer-only
};

}  // namespace reasched::ingest
