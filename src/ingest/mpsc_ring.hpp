// Bounded lock-free MPSC ring buffer — the per-lane admission queue of the
// ingestion front end (DESIGN.md §11).
//
// Layout and protocol are the classic bounded sequence-stamped ring
// (Vyukov): each slot carries a *generation stamp* next to its payload, and
// the stamp doubles as the reclamation protocol — a producer may claim slot
// `pos & mask` for generation g = pos only after the stamp reads exactly g
// (the consumer of generation g - capacity has retired the slot), and the
// consumer may read it only after the stamp reads g + 1 (the producer's
// release-store published the payload). No epochs are shared beyond the
// stamps, no memory is reclaimed dynamically (slots are reused in place),
// and no thread ever blocks another through the ring: a full ring fails the
// push instead of waiting (the ingestion tier's backpressure loop decides
// whether to stall or shed; this class never does either).
//
// Concurrency contract:
//   * try_push: any number of producer threads (the multi-producer CAS is
//     on the claim cursor only; payload writes are uncontended after the
//     claim).
//   * try_pop / pop_all: exactly ONE consumer thread at a time. The
//     consumer cursor is written with plain stores by that thread; it is
//     atomic only so approx_size() from producers is well-defined.
//
// Slots are padded to the destructive-interference line so neighboring
// generations never false-share, and both cursors live on their own lines
// (producers hammer the claim cursor, the consumer owns the read cursor).
//
// tests/ingest_torture_test.cpp drives wrap-around, full-ring, and
// stamp-reclamation races at 1/2/4/8 producers under TSan.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace reasched::ingest {

// 64 on every target this repo builds for; a fixed constant instead of
// std::hardware_destructive_interference_size so the slot ABI cannot drift
// with -mtune (and GCC's -Winterference-size stays quiet).
inline constexpr std::size_t kCacheLine = 64;

template <class T>
class MpscRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit MpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].stamp.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Multi-producer enqueue. Returns false when the ring is full (the slot
  /// for the next generation has not been retired by the consumer yet);
  /// never waits.
  bool try_push(T value) noexcept {
    std::uint64_t pos = claim_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t stamp = slot.stamp.load(std::memory_order_acquire);
      const std::int64_t lag =
          static_cast<std::int64_t>(stamp) - static_cast<std::int64_t>(pos);
      if (lag == 0) {
        // Slot is reclaimed for this generation; race siblings for it.
        if (claim_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.stamp.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry against the new claim cursor.
      } else if (lag < 0) {
        // Stamp still belongs to a generation `capacity` behind: the
        // consumer has not retired it — the ring is full *at this instant*.
        return false;
      } else {
        // A sibling claimed this generation between our load and check.
        pos = claim_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue. Returns false when empty (or when the next
  /// generation's producer has claimed but not yet published — the caller
  /// retries, preserving claim order).
  bool try_pop(T& out) noexcept {
    const std::uint64_t pos = read_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t stamp = slot.stamp.load(std::memory_order_acquire);
    if (stamp != pos + 1) return false;  // unpublished (or empty)
    out = std::move(slot.value);
    // Retire the slot for generation pos + capacity: this release-store IS
    // the reclamation handoff the producer's acquire-load pairs with.
    slot.stamp.store(pos + mask_ + 1, std::memory_order_release);
    read_.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-consumer bulk drain: pops until empty or `limit` reached,
  /// invoking sink(T&&) per element. Returns elements popped.
  template <class Sink>
  std::size_t pop_all(Sink&& sink, std::size_t limit = ~std::size_t{0}) {
    std::size_t popped = 0;
    T value;
    while (popped < limit && try_pop(value)) {
      sink(std::move(value));
      ++popped;
    }
    return popped;
  }

  /// Producer-visible occupancy estimate (racy by nature; exact depth
  /// accounting lives in the ingestion tier's admission counters).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::uint64_t claim = claim_.load(std::memory_order_relaxed);
    const std::uint64_t read = read_.load(std::memory_order_relaxed);
    return claim >= read ? static_cast<std::size_t>(claim - read) : 0;
  }

  [[nodiscard]] bool approx_empty() const noexcept { return approx_size() == 0; }

 private:
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> stamp{0};
    T value{};
  };

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(kCacheLine) std::atomic<std::uint64_t> claim_{0};  // producers CAS
  alignas(kCacheLine) std::atomic<std::uint64_t> read_{0};   // consumer owns
};

}  // namespace reasched::ingest
