// Lock-free asynchronous ingestion front end (DESIGN.md §11): many
// concurrent producer threads push single requests; one consumer thread
// re-sequences them, forms batches adaptively, and hands the batches to an
// IReallocScheduler's apply() — in practice the sharded service layer
// (service/sharded_scheduler.hpp), whose single-caller batch entry point
// this tier turns into a server.
//
// Pipeline:
//
//   producers ──try_push──▶  MPSC ring per lane   ──pop──▶  consumer
//        │                  (ingest/mpsc_ring.hpp)             │
//        └── AdmissionController::admit (depth / p99 budget)   │
//                                            reorder by ticket │
//                                      adaptive batcher (B, T) ▼
//                                            scheduler.apply(batch)
//
// Sequencing. Every admitted request carries a dense *ticket*. In internal
// mode push() claims the next ticket with one fetch_add after admission
// passes; in external mode (Options::external_sequencing) producers supply
// tickets 0,1,2,... themselves (e.g. a trace index partitioned round-robin
// across threads). The consumer applies requests in strict ticket order —
// lanes are drained into a reorder stage that releases the contiguous
// ticket prefix — so the schedule, per-request stats, audit state, and WAL
// (CSN order) are EXACTLY those of the same sequence served by a single
// caller: concurrent ingestion provably changes nothing about the
// schedules produced (tests/ingest_differential_test.cpp, byte-identical
// at 1/2/4/8 producers). Admission rejections happen before a ticket is
// claimed, so they never leave a gap and are never logged write-ahead —
// replaying the WAL deterministically re-rejects them by absence, while
// scheduler-level rejections (infeasible inserts) are logged and re-reject
// on replay exactly as in the durability tier (DESIGN.md §9).
//
// Batching. The consumer closes a batch when it holds Options::max_batch
// requests or Options::batch_deadline_us elapsed since the batch opened,
// whichever comes first: under light load the deadline caps sojourn; under
// backlog the batch grows toward max_batch and the service rides the batch
// amortization curve of EXPERIMENTS.md §E13 (this is what lets the open
// -loop tier sustain higher offered load than fixed-size single-caller
// batching at equal p99 — §E19).
//
// Backpressure. A full lane never blocks inside the ring: push loops
// try_push with exponential backoff, so producers *stall* (bounded memory)
// unless admission is configured to shed instead (ingest/admission.hpp).
//
// Threading contract: push()/push_sequenced() from any number of threads;
// stats()/queue_depth() from anywhere; drain()/stop() from one controller
// thread after producers quiesced; applied_stats()/rejected_tickets() only
// after stop() (or while no producer is active and drain() returned).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "ingest/admission.hpp"
#include "ingest/mpsc_ring.hpp"
#include "schedule/scheduler_interface.hpp"
#include "telemetry/options.hpp"
#include "util/flat_hash.hpp"

namespace reasched::ingest {

struct IngestOptions {
  /// MPSC lanes (rings). Producers are assigned a lane round-robin on
  /// first push (thread-affine thereafter), so up to `lanes` producers
  /// push without sharing a claim cursor. 0 = auto (4).
  std::size_t lanes = 0;
  /// Ring slots per lane (rounded up to a power of two).
  std::size_t lane_capacity = 4096;
  /// Close the batch at this many requests...
  std::size_t max_batch = 1024;
  /// ...or this many microseconds after the batch opened, whichever first.
  std::uint64_t batch_deadline_us = 200;
  /// Admission control thresholds (0 = disabled); see ingest/admission.hpp.
  std::size_t max_queue_depth = 0;
  std::uint64_t p99_budget_us = 0;
  std::size_t admission_epoch_samples = 1024;
  /// Tickets are supplied by producers (push_sequenced) instead of claimed
  /// internally. Requires both admission thresholds disabled: an external
  /// ticket is already claimed, so shedding would leave a permanent gap.
  bool external_sequencing = false;
  /// Record per-ticket RequestStats and scheduler-rejected tickets for
  /// differential tests (consumer-side; read after stop()).
  bool record_stats = false;
  /// Invoked by the consumer after every applied batch with the batch's
  /// requests (ticket order), the BatchResult, and the first ticket.
  std::function<void(std::span<const Request>, const BatchResult&, std::uint64_t)>
      on_batch;
  /// Runtime gate for the telemetry tier; construction flips the
  /// process-wide recording switches (turn-on only).
  telemetry::TelemetryOptions telemetry;
};

/// Exact request accounting, reconciling to:
///   pushes = admitted + rejected_depth + rejected_latency
///   admitted = applied (after drain) = served + scheduler_rejected
struct IngestStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_depth = 0;
  std::uint64_t rejected_latency = 0;
  std::uint64_t applied = 0;            ///< handed to the scheduler
  std::uint64_t scheduler_rejected = 0; ///< BatchResult::rejected entries
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;          ///< largest batch applied
  std::uint64_t deadline_closes = 0;    ///< batches closed by the T timer
  std::uint64_t size_closes = 0;        ///< batches closed by reaching B
};

class IngestService {
 public:
  IngestService(IReallocScheduler& scheduler, IngestOptions options);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Internal-sequencing push: admission check, ticket claim, lane
  /// enqueue (stalling with backoff while the lane is full). Returns the
  /// admission verdict; a rejected request touches no queue and no ticket.
  Admit push(const Request& request);

  /// External-sequencing push: the caller owns ticket assignment (dense
  /// from 0, each ticket pushed exactly once). Never rejects; stalls on a
  /// full lane.
  void push_sequenced(std::uint64_t ticket, const Request& request);

  /// Blocks until every admitted request has been applied. Call after
  /// producers have quiesced (no concurrent push).
  void drain();

  /// Drains, then stops the consumer thread. Idempotent; the destructor
  /// calls it.
  void stop();

  [[nodiscard]] IngestStats stats() const noexcept;
  /// Exact in-flight count (admitted - applied) — the value admission
  /// decisions and the "ingest.queue.depth" gauge see.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }

  // ---- results for differential tests (valid after stop()) ----
  [[nodiscard]] const std::vector<RequestStats>& applied_stats() const noexcept {
    return applied_stats_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& rejected_tickets() const noexcept {
    return rejected_tickets_;
  }

  // ---- test hooks ----
  /// Parks the consumer before its next batch apply, so tests can fill
  /// queues to exact depths. Admission and pushes are unaffected.
  void pause_consumer();
  void resume_consumer();

 private:
  struct Item {
    std::uint64_t ticket = 0;
    std::uint64_t push_ns = 0;
    Request request;
  };

  void consumer_loop();
  /// Refreshes the "ingest.p99_compliant" gauge (1 = last closed admission
  /// epoch met the p99 budget, 0 = shedding) from the consumer thread.
  void update_compliance_gauge();
  /// Drains every lane into the reorder stage; returns items moved.
  std::size_t drain_lanes();
  /// Applies the current batch and updates accounting/admission.
  void apply_batch();
  void enqueue(std::uint64_t ticket, const Request& request);
  void wake_consumer();
  [[nodiscard]] std::size_t lane_of_this_thread() noexcept;

  IReallocScheduler& scheduler_;
  IngestOptions options_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<MpscRing<Item>>> lanes_;

  // Producer-shared state.
  std::atomic<std::uint64_t> next_ticket_{0};  // internal mode only
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_depth_{0};
  std::atomic<std::uint64_t> rejected_latency_{0};
  std::atomic<std::size_t> next_lane_{0};

  // Consumer-owned state (written only by the consumer thread; counters
  // atomic so stats() may read concurrently).
  FlatHashMap<std::uint64_t, Item> pending_;  // reorder stage
  std::vector<Request> batch_;
  std::vector<Item> batch_items_;
  std::uint64_t next_apply_ = 0;  // next ticket to release from pending_
  std::uint64_t batch_open_ns_ = 0;
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> scheduler_rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> max_batch_applied_{0};
  std::atomic<std::uint64_t> deadline_closes_{0};
  std::atomic<std::uint64_t> size_closes_{0};
  std::vector<RequestStats> applied_stats_;
  std::vector<std::uint64_t> rejected_tickets_;
  // This service's current contribution to the additive compliance gauge
  // (consumer thread only); unwound when the consumer exits so sequential
  // services do not accumulate.
  std::int64_t compliance_contrib_ = 0;

  // Consumer parking / wake (producers signal after publishing).
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> consumer_parked_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> stopping_{false};

  // drain() rendezvous (consumer notifies after each apply / idle pass).
  // A positive waiter count asks the consumer to flush partial batches
  // immediately instead of waiting out the deadline.
  std::atomic<std::size_t> drain_waiters_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::thread consumer_;
};

}  // namespace reasched::ingest
