#include "ingest/ingest_service.hpp"

#include <chrono>
#include <thread>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace reasched::ingest {

namespace {

// Interned once per process; every record site is a relaxed load + branch
// when telemetry is off (DESIGN.md §10).
#if RS_TELEM_COMPILED
const telemetry::Counter& admitted_counter() {
  RS_TELEM_COUNTER(kAdmitted, "ingest.admitted");
  return kAdmitted;
}
const telemetry::Counter& rejected_counter() {
  RS_TELEM_COUNTER(kRejected, "ingest.rejected");
  return kRejected;
}
const telemetry::Counter& shed_counter() {
  RS_TELEM_COUNTER(kShed, "ingest.shed_total");
  return kShed;
}
const telemetry::Counter& rejected_depth_counter() {
  RS_TELEM_COUNTER(kRejectedDepth, "ingest.rejected_depth_total");
  return kRejectedDepth;
}
const telemetry::Gauge& compliance_gauge() {
  RS_TELEM_GAUGE(kCompliant, "ingest.p99_compliant");
  return kCompliant;
}
const telemetry::Counter& batch_counter() {
  RS_TELEM_COUNTER(kBatches, "ingest.batches");
  return kBatches;
}
const telemetry::Gauge& depth_gauge() {
  RS_TELEM_GAUGE(kDepth, "ingest.queue.depth");
  return kDepth;
}
const telemetry::Histogram& sojourn_histogram() {
  RS_TELEM_HISTOGRAM(kSojourn, "ingest.sojourn_ns");
  return kSojourn;
}
#endif

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

IngestService::IngestService(IReallocScheduler& scheduler, IngestOptions options)
    : scheduler_(scheduler),
      options_(std::move(options)),
      admission_(AdmissionController::Options{
          options_.max_queue_depth,
          options_.p99_budget_us * 1000,
          options_.admission_epoch_samples == 0 ? 1
                                                : options_.admission_epoch_samples}) {
  RS_REQUIRE(!options_.external_sequencing || (options_.max_queue_depth == 0 &&
                                               options_.p99_budget_us == 0),
             "external sequencing pre-claims tickets; shedding would leave a "
             "permanent gap in the apply order (use blocking backpressure)");
  if (options_.lanes == 0) options_.lanes = 4;
  if (options_.max_batch == 0) options_.max_batch = 1;
  telemetry::enable(options_.telemetry);
  lanes_.reserve(options_.lanes);
  for (std::size_t i = 0; i < options_.lanes; ++i) {
    lanes_.push_back(std::make_unique<MpscRing<Item>>(options_.lane_capacity));
  }
  consumer_ = std::thread([this] { consumer_loop(); });
}

IngestService::~IngestService() { stop(); }

std::size_t IngestService::lane_of_this_thread() noexcept {
  // A process-wide cookie (not per-service) keeps the lookup to one
  // thread-local read; lanes are MPSC rings, so two threads sharing a lane
  // is a throughput concern, never a correctness one.
  static std::atomic<std::size_t> next_cookie{0};
  thread_local const std::size_t cookie =
      next_cookie.fetch_add(1, std::memory_order_relaxed);
  return cookie % lanes_.size();
}

Admit IngestService::push(const Request& request) {
  RS_REQUIRE(!options_.external_sequencing,
             "push() claims tickets internally; use push_sequenced()");
  // Reserve a depth slot first, then ask for the verdict against the
  // pre-reservation count: concurrent producers each see the depth their
  // admission would create, so the in-flight count never exceeds
  // max_queue_depth — exact accounting, not sampled (ingest_admission_test).
  const std::size_t before = depth_.fetch_add(1, std::memory_order_relaxed);
  const Admit verdict = admission_.admit(before);
  if (verdict != Admit::kAdmitted) {
    depth_.fetch_sub(1, std::memory_order_relaxed);
    if (verdict == Admit::kRejectedDepth) {
      rejected_depth_.fetch_add(1, std::memory_order_relaxed);
      RS_TELEM_ADD(rejected_depth_counter(), 1);
    } else {
      rejected_latency_.fetch_add(1, std::memory_order_relaxed);
      RS_TELEM_ADD(shed_counter(), 1);
    }
    RS_TELEM_ADD(rejected_counter(), 1);
    return verdict;
  }
  const std::uint64_t ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  RS_TELEM_ADD(admitted_counter(), 1);
  RS_TELEM_GAUGE_ADD(depth_gauge(), 1);
  enqueue(ticket, request);
  return Admit::kAdmitted;
}

void IngestService::push_sequenced(std::uint64_t ticket, const Request& request) {
  RS_REQUIRE(options_.external_sequencing,
             "push_sequenced() requires Options::external_sequencing");
  depth_.fetch_add(1, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  RS_TELEM_ADD(admitted_counter(), 1);
  RS_TELEM_GAUGE_ADD(depth_gauge(), 1);
  enqueue(ticket, request);
}

void IngestService::enqueue(std::uint64_t ticket, const Request& request) {
  Item item;
  item.ticket = ticket;
  item.push_ns = telemetry::now_ns();
  item.request = request;
  MpscRing<Item>& lane = *lanes_[lane_of_this_thread()];
  // Full lane = backpressure: stall (never drop — the ticket is claimed),
  // spinning briefly before yielding so a momentarily-behind consumer costs
  // no syscall.
  for (unsigned spin = 0; !lane.try_push(item); ++spin) {
    wake_consumer();
    if (spin < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  wake_consumer();
}

void IngestService::wake_consumer() {
  // Dekker-style handshake with the consumer's park: our ring publish
  // (release) must be ordered before the parked-flag load, and the
  // consumer's parked-flag store before its emptiness re-check. Both sides
  // fence seq_cst; the consumer's park timeout is the belt-and-braces.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (consumer_parked_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_one();
  }
}

std::size_t IngestService::drain_lanes() {
  std::size_t moved = 0;
  for (auto& lane : lanes_) {
    moved += lane->pop_all([this](Item&& item) {
      const std::uint64_t ticket = item.ticket;
      pending_.insert_or_assign(ticket, std::move(item));
    });
  }
  return moved;
}

void IngestService::consumer_loop() {
  const std::uint64_t deadline_ns = options_.batch_deadline_us * 1000;
  const auto rings_empty = [this] {
    for (const auto& lane : lanes_) {
      if (!lane->approx_empty()) return false;
    }
    return true;
  };
  Item item;
  for (;;) {
    if (paused_.load(std::memory_order_acquire) &&
        !stopping_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this] {
        return !paused_.load(std::memory_order_relaxed) ||
               stopping_.load(std::memory_order_relaxed);
      });
      continue;
    }
    drain_lanes();
    // Release the contiguous ticket prefix into the open batch. A gap at
    // next_apply_ (a producer claimed the ticket but has not published yet)
    // holds the batch: apply order IS ticket order, unconditionally.
    while (batch_.size() < options_.max_batch &&
           pending_.take(next_apply_, item) != 0) {
      if (batch_.empty()) batch_open_ns_ = telemetry::now_ns();
      batch_.push_back(item.request);
      batch_items_.push_back(item);
      ++next_apply_;
    }
    const bool flushing = stopping_.load(std::memory_order_relaxed) ||
                          drain_waiters_.load(std::memory_order_relaxed) > 0;
    if (!batch_.empty()) {
      if (batch_.size() >= options_.max_batch) {
        size_closes_.fetch_add(1, std::memory_order_relaxed);
        apply_batch();
        continue;
      }
      if (flushing) {
        apply_batch();
        continue;
      }
      const std::uint64_t age = telemetry::now_ns() - batch_open_ns_;
      if (age >= deadline_ns) {
        deadline_closes_.fetch_add(1, std::memory_order_relaxed);
        apply_batch();
        continue;
      }
      // Wait out the rest of the deadline unless a producer pushes first.
      std::unique_lock<std::mutex> lock(wake_mutex_);
      consumer_parked_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (rings_empty() && !stopping_.load(std::memory_order_relaxed) &&
          drain_waiters_.load(std::memory_order_relaxed) == 0) {
        wake_cv_.wait_for(lock, std::chrono::nanoseconds(deadline_ns - age));
      }
      consumer_parked_.store(false, std::memory_order_relaxed);
      continue;
    }
    // Batch empty: nothing releasable. Re-evaluate admission with the
    // current depth — this is where the drain-clears-shedding recovery
    // rule fires when every producer is being shed (no batches means no
    // apply-side evaluate; without this the rejection would be permanent).
    admission_.evaluate(depth_.load(std::memory_order_relaxed));
    update_compliance_gauge();
    // Report quiescence, maybe exit.
    if (applied_.load(std::memory_order_relaxed) ==
        admitted_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drain_cv_.notify_all();
    }
    if (stopping_.load(std::memory_order_relaxed) &&
        depth_.load(std::memory_order_relaxed) == 0) {
      break;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    consumer_parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (rings_empty() && !stopping_.load(std::memory_order_relaxed)) {
      wake_cv_.wait_for(lock, std::chrono::microseconds(500));
    }
    consumer_parked_.store(false, std::memory_order_relaxed);
  }
#if RS_TELEM_COMPILED
  // Unwind this service's gauge contribution so sequential services (tests,
  // bench cases) leave the process-wide level at zero.
  if (compliance_contrib_ != 0) {
    RS_TELEM_GAUGE_ADD(compliance_gauge(), -compliance_contrib_);
    compliance_contrib_ = 0;
  }
#endif
  std::lock_guard<std::mutex> lock(drain_mutex_);
  drain_cv_.notify_all();
}

void IngestService::update_compliance_gauge() {
#if RS_TELEM_COMPILED
  if (options_.p99_budget_us == 0) return;
  const std::int64_t desired = admission_.shedding() ? 0 : 1;
  if (desired != compliance_contrib_) {
    RS_TELEM_GAUGE_ADD(compliance_gauge(), desired - compliance_contrib_);
    compliance_contrib_ = desired;
  }
#endif
}

void IngestService::apply_batch() {
  const std::size_t n = batch_.size();
  const std::uint64_t first_ticket = batch_items_.front().ticket;
  // Exemplar context for everything the apply records: spans and tail
  // buckets inside the scheduler resolve back to this batch's first ticket.
  RS_TELEM_SET_CSN(first_ticket);
  BatchResult result = scheduler_.apply(batch_);
  if (options_.record_stats) {
    RS_CHECK(applied_stats_.size() == first_ticket,
             "recorded stats must stay dense in ticket order");
    applied_stats_.insert(applied_stats_.end(), result.stats.begin(),
                          result.stats.end());
    for (const std::uint32_t idx : result.rejected) {
      rejected_tickets_.push_back(first_ticket + idx);
    }
  }
  if (options_.on_batch) {
    options_.on_batch(std::span<const Request>(batch_), result, first_ticket);
  }
  const std::uint64_t now = telemetry::now_ns();
  for (const Item& item : batch_items_) {
    const std::uint64_t sojourn = now - item.push_ns;
    admission_.observe(sojourn);
    // Per-item ticket: a p99.9 sojourn exemplar names the exact request.
    RS_TELEM_SET_CSN(item.ticket);
    RS_TELEM_RECORD(sojourn_histogram(), sojourn);
  }
  scheduler_rejected_.fetch_add(result.rejected.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (n > max_batch_applied_.load(std::memory_order_relaxed)) {
    max_batch_applied_.store(n, std::memory_order_relaxed);
  }
  applied_.fetch_add(n, std::memory_order_relaxed);
  const std::size_t depth_after =
      depth_.fetch_sub(n, std::memory_order_relaxed) - n;
  admission_.evaluate(depth_after);
  update_compliance_gauge();
  RS_TELEM_ADD(batch_counter(), 1);
  RS_TELEM_GAUGE_ADD(depth_gauge(), -static_cast<std::int64_t>(n));
  batch_.clear();
  batch_items_.clear();
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void IngestService::drain() {
  drain_waiters_.fetch_add(1, std::memory_order_relaxed);
  wake_consumer();
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] {
      return applied_.load(std::memory_order_acquire) ==
             admitted_.load(std::memory_order_acquire);
    });
  }
  drain_waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void IngestService::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (stopping_.exchange(true, std::memory_order_acq_rel)) {
      // Already stopped (or stopping); joining below is still safe.
    }
    wake_cv_.notify_all();
  }
  if (consumer_.joinable()) consumer_.join();
}

void IngestService::pause_consumer() {
  paused_.store(true, std::memory_order_release);
}

void IngestService::resume_consumer() {
  std::lock_guard<std::mutex> lock(wake_mutex_);
  paused_.store(false, std::memory_order_release);
  wake_cv_.notify_all();
}

IngestStats IngestService::stats() const noexcept {
  IngestStats out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.rejected_depth = rejected_depth_.load(std::memory_order_relaxed);
  out.rejected_latency = rejected_latency_.load(std::memory_order_relaxed);
  out.applied = applied_.load(std::memory_order_relaxed);
  out.scheduler_rejected = scheduler_rejected_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.max_batch = max_batch_applied_.load(std::memory_order_relaxed);
  out.deadline_closes = deadline_closes_.load(std::memory_order_relaxed);
  out.size_closes = size_closes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace reasched::ingest
