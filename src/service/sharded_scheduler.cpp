#include "service/sharded_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <future>
#include <utility>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace reasched {

namespace {

constexpr std::size_t kAutoStripeFloor = 16;

std::size_t auto_stripes(const ShardedScheduler::Options& options) {
  if (options.stripes != 0) return options.stripes;
  return std::max<std::size_t>(kAutoStripeFloor,
                               std::size_t{4} * std::max(options.shards, 1u));
}

unsigned clamp_shards(unsigned shards, unsigned machines) {
  return std::min(std::max(shards, 1u), std::max(machines, 1u));
}

}  // namespace

ShardedScheduler::ShardedScheduler(unsigned machines, const Factory& factory,
                                   Options options)
    : shards_(clamp_shards(options.shards, machines)),
      work_stealing_(options.work_stealing),
      ledger_(machines, auto_stripes(options)),
      pool_(shards_ - 1) {
  RS_REQUIRE(machines >= 1, "ShardedScheduler: need at least one machine");
#if RS_TELEM_COMPILED
  telemetry::enable(options.telemetry);
#endif
  if (options.legacy_rehash) ledger_.set_legacy_rehash(true);
  machines_.reserve(machines);
  for (unsigned i = 0; i < machines; ++i) {
    auto scheduler = factory();
    RS_REQUIRE(scheduler != nullptr, "ShardedScheduler: factory returned null");
    RS_REQUIRE(scheduler->machines() == 1,
               "ShardedScheduler: inner schedulers must be single-machine");
    machines_.push_back(std::move(scheduler));
  }
  shard_begin_.resize(shards_ + 1);
  for (unsigned k = 0; k <= shards_; ++k) {
    shard_begin_[k] = static_cast<unsigned>(
        static_cast<std::uint64_t>(k) * machines / shards_);
  }
  label_ = "sharded[s=" + std::to_string(shards_) + "," + std::to_string(machines) +
           "x " + machines_.front()->name() + "]";
  if (options.wal) init_wal(*options.wal);
}

// ---------------------------------------------------------- durability tier

void ShardedScheduler::init_wal(const durability::DurabilityPolicy& policy) {
  durability::ensure_dir(policy.dir);
  durability::MergedWal merged = durability::merge_sharded_wal(policy.dir);
  recovery_report_.torn_tail = merged.torn_tail;

  // Records stranded beyond a CSN gap never committed as a batch; they must
  // not stay on disk or their CSNs would collide with the ones about to be
  // reissued. A shard file numbered beyond the current shard count would
  // likewise never be appended again. Either case compacts the surviving
  // prefix into shard 0's log and removes the rest; otherwise only torn
  // tails are truncated in place.
  bool compact = merged.dropped > 0;
  for (const std::uint32_t shard : merged.shards) {
    if (shard >= shards_) compact = true;
  }
  if (compact) {
    for (const std::uint32_t shard : merged.shards) {
      std::remove(durability::wal_path(policy.dir, shard).c_str());
    }
    durability::WalWriter compacted;
    compacted.open(durability::wal_path(policy.dir, 0), policy, 0);
    for (const durability::WalRecord& record : merged.records) {
      compacted.append(record);
    }
    compacted.sync();
    compacted.close();
  } else {
    for (std::size_t i = 0; i < merged.shards.size(); ++i) {
      durability::truncate_wal(durability::wal_path(policy.dir, merged.shards[i]),
                               merged.valid_ends[i]);
    }
  }

  // Replay through the sequential request path (wal_logging_ still false,
  // so the replay does not re-log). Delegation is deterministic, so the
  // recovered service matches a twin that served exactly this prefix.
  durability::replay_records(*this, merged.records, 0, recovery_report_);
  csn_ = recovery_report_.last_csn;

  wal_.resize(shards_);
  for (unsigned shard = 0; shard < shards_; ++shard) {
    wal_[shard].open(durability::wal_path(policy.dir, shard), policy, shard);
  }
  wal_logging_ = true;
}

void ShardedScheduler::log_insert(JobId id, Window window) {
  if (!wal_logging_) return;
  ++csn_;
  RS_TELEM_SET_CSN(csn_);
  wal_[wal_shard_of(window)].append(durability::WalRecord::insert(csn_, id, window));
}

void ShardedScheduler::log_erase(JobId id, Window window) {
  if (!wal_logging_) return;
  ++csn_;
  RS_TELEM_SET_CSN(csn_);
  wal_[wal_shard_of(window)].append(durability::WalRecord::erase(csn_, id));
}

void ShardedScheduler::sync_wal() {
  for (auto& writer : wal_) writer.sync();
}

std::string ShardedScheduler::name() const { return label_; }

std::size_t ShardedScheduler::audit_balance_incremental() {
  // Stripes partition across workers by index; each worker audits its
  // stripes under their own locks, so the per-stripe dirty sets are checked
  // concurrently with no shared mutable state beyond the stripe mutexes.
  std::vector<std::size_t> verified(shards_, 0);
  run_sharded([&](unsigned worker) {
    for (std::size_t stripe = worker; stripe < ledger_.stripes(); stripe += shards_) {
      verified[worker] += ledger_.audit_stripe_incremental(stripe);
    }
  });
  std::size_t total = 0;
  for (const std::size_t count : verified) total += count;
  return total;
}

// ---------------------------------------------------------- sequential path

RequestStats ShardedScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid(), "ShardedScheduler::insert: empty window");
  RS_REQUIRE(!ledger_.find_job(id), "ShardedScheduler::insert: id already active");
  log_insert(id, window);  // write-ahead; a rejection replays as a rejection

  StripedLedger::WindowStripe& stripe = ledger_.window_stripe_for(window);
  MachineId machine;
  {
    std::lock_guard lock(stripe.mutex);
    machine = stripe.ledger.plan_insert(window);
  }
  // Ledger commits only after the machine accepted (MultiMachineScheduler
  // semantics: a rejected insert leaves no trace).
  const RequestStats stats = machines_[machine]->insert(id, window);
  {
    std::lock_guard lock(stripe.mutex);
    stripe.ledger.commit_insert(id, window, machine);
  }
  ledger_.insert_job(id, JobInfo{window, machine});
  return stats;
}

RequestStats ShardedScheduler::erase(JobId id) {
  const auto info = ledger_.find_job(id);
  RS_REQUIRE(info.has_value(), "ShardedScheduler::erase: id not active");
  const Window window = info->window;
  const MachineId machine = info->machine;
  log_erase(id, window);  // write-ahead

  StripedLedger::WindowStripe& stripe = ledger_.window_stripe_for(window);
  BalanceLedger::Migration migration;
  {
    std::lock_guard lock(stripe.mutex);
    migration = stripe.ledger.plan_erase(window, machine);
  }
  RequestStats stats = machines_[machine]->erase(id);
  {
    std::lock_guard lock(stripe.mutex);
    stripe.ledger.commit_erase(id, window, machine);
  }
  ledger_.erase_job(id);

  if (migration.needed) {
    stats += machines_[migration.donor]->erase(migration.moved);
    try {
      stats += machines_[machine]->insert(migration.moved, window);
    } catch (...) {
      machines_[migration.donor]->insert(migration.moved, window);
      throw;
    }
    {
      std::lock_guard lock(stripe.mutex);
      stripe.ledger.commit_migration(window, migration, machine);
    }
    ledger_.set_job_machine(migration.moved, machine);
    ++stats.reallocations;
    ++stats.migrations;
  }
  return stats;
}

Schedule ShardedScheduler::snapshot() const {
  Schedule out(machines());
  for (unsigned machine = 0; machine < machines_.size(); ++machine) {
    const Schedule inner = machines_[machine]->snapshot();
    for (const auto& [job, placement] : inner.assignments()) {
      out.assign(job, Placement{static_cast<MachineId>(machine), placement.slot});
    }
  }
  return out;
}

// --------------------------------------------------------------- batch path

void ShardedScheduler::run_sharded(const std::function<void(unsigned)>& task) {
  std::vector<std::future<void>> futures;
  futures.reserve(shards_ - 1);
  for (unsigned k = 1; k < shards_; ++k) {
    futures.push_back(pool_.submit_to(k - 1, [&task, k] { task(k); }));
  }
  std::exception_ptr first;
  try {
    task(0);
  } catch (...) {
    first = std::current_exception();
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ShardedScheduler::run_stealable(
    std::size_t count, const std::vector<unsigned>& home_shard,
    const std::function<void(std::size_t)>& task) {
  RS_CHECK(shards_ > 1, "run_stealable needs at least one pool worker");
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    // Shard 0's share is the caller's; park it on pool worker 0 (shard 1's
    // worker) — home placement is a cache preference, never a requirement.
    const unsigned home = home_shard[t];
    const std::size_t worker = home == 0 ? 0 : home - 1;
    futures.push_back(pool_.submit_stealable(worker, [&task, t] { task(t); }));
  }
  // The caller lends its cycles instead of idling on the joins.
  std::exception_ptr first;
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool_.try_run_stealable()) {
        future.wait_for(std::chrono::microseconds(50));
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

BatchResult ShardedScheduler::apply(std::span<const Request> batch) {
  BatchResult result;
  result.stats.resize(batch.size());
  if (batch.empty()) return result;

  std::vector<Resolved> resolved(batch.size());
  std::vector<std::uint8_t> status(batch.size(), kServed);
  FlatHashSet<JobId> rejected_ids;

  const std::uint64_t start_csn = csn_;
  std::size_t first = 0;
  while (first < batch.size()) {
    std::size_t end;
    {
      RS_TELEM_DURATION(kScanHist, "svc.scan");
      RS_TELEM_SPAN(scan_span, kScanHist, "svc.scan");
      end = scan_subbatch(batch, first, resolved, status, rejected_ids);
    }
    // Write-ahead on the caller thread, in batch order, before the
    // sub-batch fans out: CSNs are assigned here, so merging the per-shard
    // logs by CSN reconstructs exactly this sequential order.
    for (std::size_t i = first; i < end; ++i) {
      if (status[i] == kRejected) continue;  // moot delete: no CSN, no record
      if (batch[i].kind == RequestKind::kInsert) {
        log_insert(batch[i].job, resolved[i].window);
      } else {
        log_erase(batch[i].job, resolved[i].window);
      }
    }
    apply_subbatch(batch, first, end, resolved, status, result.stats, rejected_ids);
    first = end;
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (status[i] == kRejected) {
      result.rejected.push_back(static_cast<std::uint32_t>(i));
    } else {
      result.total += result.stats[i];
    }
  }
  if (csn_ > start_csn) {
    result.first_csn = start_csn + 1;
    result.last_csn = csn_;
  }
  for (auto& writer : wal_) writer.flush();  // batch boundary = frame boundary
  return result;
}

std::size_t ShardedScheduler::scan_subbatch(std::span<const Request> batch,
                                            std::size_t first,
                                            std::vector<Resolved>& resolved,
                                            std::vector<std::uint8_t>& status,
                                            FlatHashSet<JobId>& rejected_ids) {
  // Batch-local view of every id touched since `first`: the window it is
  // currently associated with and whether it is (optimistically) active.
  struct IdView {
    Window window;
    bool active = false;
  };
  FlatHashMap<JobId, IdView> view;

  std::size_t i = first;
  for (; i < batch.size(); ++i) {
    const Request& request = batch[i];
    if (request.kind == RequestKind::kInsert) {
      RS_REQUIRE(request.window.valid(), "ShardedScheduler::apply: empty window");
      const IdView* entry = view.find(request.job);
      if (entry != nullptr) {
        // Id already touched in this sub-batch. If it still looks active,
        // this insert is either a genuine double insert or a legal retry
        // after an insert that the apply phase will reject — only applying
        // the sub-batch can tell, so cut here and let the next scan judge
        // against the real directory. A window change likewise cuts (the
        // id's requests must stay inside one stripe).
        if (entry->active || entry->window != request.window) break;
      } else {
        RS_REQUIRE(!ledger_.find_job(request.job),
                   "ShardedScheduler::apply: insert of an active id");
      }
      rejected_ids.erase(request.job);  // id may be reused after a rejection
      view.insert_or_assign(request.job, IdView{request.window, true});
      resolved[i] = Resolved{request.window,
                             static_cast<std::uint32_t>(ledger_.stripe_of(request.window))};
    } else {
      const IdView* entry = view.find(request.job);
      Window window;
      if (entry != nullptr) {
        RS_REQUIRE(entry->active, "ShardedScheduler::apply: erase of an inactive id");
        window = entry->window;
      } else if (const auto info = ledger_.find_job(request.job)) {
        window = info->window;
      } else if (rejected_ids.contains(request.job)) {
        // The job never entered the scheduler; its delete is moot.
        rejected_ids.erase(request.job);
        status[i] = kRejected;
        resolved[i] = Resolved{};
        continue;
      } else {
        RS_REQUIRE(false, "ShardedScheduler::apply: erase of an unknown id");
      }
      view.insert_or_assign(request.job, IdView{window, false});
      resolved[i] =
          Resolved{window, static_cast<std::uint32_t>(ledger_.stripe_of(window))};
    }
  }
  RS_CHECK(i > first, "ShardedScheduler::apply: empty sub-batch");
  return i;
}

void ShardedScheduler::apply_subbatch(std::span<const Request> batch,
                                      std::size_t first, std::size_t end,
                                      const std::vector<Resolved>& resolved,
                                      std::vector<std::uint8_t>& status,
                                      std::vector<RequestStats>& stats,
                                      FlatHashSet<JobId>& rejected_ids) {
  // Bucket request indices by plan unit. Each bucket preserves batch
  // order, so every window's requests are planned in order by exactly one
  // task. With work stealing the unit is the *stripe* (any thread may run
  // it — the stripe lock guards the ledger, and finer granules are what
  // idle workers steal); pinned mode keeps the seed's stripe-mod-shards
  // buckets, one per worker.
  const bool steal = work_stealing_ && shards_ > 1;
  std::vector<std::vector<std::uint32_t>> buckets;
  std::vector<unsigned> bucket_home;
  if (steal) {
    std::vector<std::int32_t> slot(ledger_.stripes(), -1);
    for (std::size_t i = first; i < end; ++i) {
      if (status[i] == kRejected) continue;
      const std::uint32_t stripe = resolved[i].stripe;
      if (slot[stripe] < 0) {
        slot[stripe] = static_cast<std::int32_t>(buckets.size());
        buckets.emplace_back();
        bucket_home.push_back(stripe % shards_);
      }
      buckets[static_cast<std::size_t>(slot[stripe])].push_back(
          static_cast<std::uint32_t>(i));
    }
  } else {
    buckets.resize(shards_);
    for (std::size_t i = first; i < end; ++i) {
      if (status[i] == kRejected) continue;
      buckets[resolved[i].stripe % shards_].push_back(static_cast<std::uint32_t>(i));
    }
  }

  // ---- plan: commit delegation decisions, emit machine op lists ----
  std::vector<PlanOutput> plans(buckets.size());
  std::vector<std::uint8_t> migrated(end - first, 0);
  const auto plan_bucket = [&](std::size_t bucket) {
    RS_TELEM_DURATION(kPlanHist, "svc.plan");
    RS_TELEM_SPAN(plan_span, kPlanHist, "svc.plan");
    PlanOutput& out = plans[bucket];
    for (const std::uint32_t index : buckets[bucket]) {
      const Request& request = batch[index];
      const Window window = resolved[index].window;
      StripedLedger::WindowStripe& stripe =
          ledger_.window_stripe(resolved[index].stripe);
      if (request.kind == RequestKind::kInsert) {
        MachineId machine;
        {
          std::lock_guard lock(stripe.mutex);
          machine = stripe.ledger.plan_insert(window);
          stripe.ledger.commit_insert(request.job, window, machine);
        }
        ledger_.insert_job(request.job, JobInfo{window, machine});
        out.ops.push_back(
            Op{RequestKind::kInsert, 0, machine, index, request.job, window, {}});
        out.log.push_back(
            LedgerRecord{LedgerRecord::kInsert, request.job, window, machine, 0});
      } else {
        const auto info = ledger_.find_job(request.job);
        RS_CHECK(info.has_value(), "ShardedScheduler::apply: planned erase lost its job");
        const MachineId machine = info->machine;
        BalanceLedger::Migration migration;
        {
          std::lock_guard lock(stripe.mutex);
          migration = stripe.ledger.plan_erase(window, machine);
          stripe.ledger.commit_erase(request.job, window, machine);
          if (migration.needed) stripe.ledger.commit_migration(window, migration, machine);
        }
        ledger_.erase_job(request.job);
        out.ops.push_back(
            Op{RequestKind::kDelete, 0, machine, index, request.job, window, {}});
        out.log.push_back(
            LedgerRecord{LedgerRecord::kErase, request.job, window, machine, 0});
        if (migration.needed) {
          ledger_.set_job_machine(migration.moved, machine);
          out.ops.push_back(Op{RequestKind::kDelete, 1, migration.donor, index,
                               migration.moved, window, {}});
          out.ops.push_back(Op{RequestKind::kInsert, 2, machine, index,
                               migration.moved, window, {}});
          out.log.push_back(LedgerRecord{LedgerRecord::kMigration, migration.moved,
                                         window, machine, migration.donor});
          migrated[index - first] = 1;
        }
      }
    }
  };
  if (steal) {
    run_stealable(buckets.size(), bucket_home, plan_bucket);
  } else {
    run_sharded([&](unsigned worker) { plan_bucket(worker); });
  }

  // ---- distribute: per-machine op lists in sequential request order ----
  std::vector<std::vector<Op>> machine_ops(machines_.size());
  for (const PlanOutput& plan : plans) {
    for (const Op& op : plan.ops) machine_ops[op.machine].push_back(op);
  }
  for (auto& ops : machine_ops) {
    std::sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) {
      return a.request != b.request ? a.request < b.request : a.role < b.role;
    });
  }

  // ---- apply: execute the per-machine op lists ----
  // Each machine's list runs on exactly one thread either way; with work
  // stealing the unit is the machine (home = owning shard's worker), so a
  // hotspot shard's machines spread to idle siblings instead of
  // serializing behind one worker.
  std::vector<std::size_t> applied(machines_.size(), 0);
  std::atomic<bool> failed{false};
  const auto apply_machine = [&](unsigned machine) {
    std::vector<Op>& ops = machine_ops[machine];
    for (std::size_t k = 0; k < ops.size(); ++k) {
      if (failed.load(std::memory_order_relaxed)) return;
      Op& op = ops[k];
      if (op.kind == RequestKind::kInsert) {
        try {
          op.stats = machines_[machine]->insert(op.job, op.window);
        } catch (const InfeasibleError&) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      } else {
        op.stats = machines_[machine]->erase(op.job);
      }
      applied[machine] = k + 1;
    }
  };
  if (steal) {
    std::vector<unsigned> work_machines;
    std::vector<unsigned> machine_home;
    for (unsigned machine = 0; machine < machines_.size(); ++machine) {
      if (machine_ops[machine].empty()) continue;
      work_machines.push_back(machine);
      const auto it = std::upper_bound(shard_begin_.begin(), shard_begin_.end(),
                                       machine);
      machine_home.push_back(
          static_cast<unsigned>(it - shard_begin_.begin()) - 1);
    }
    run_stealable(work_machines.size(), machine_home, [&](std::size_t t) {
      RS_TELEM_DURATION(kApplyHist, "svc.apply");
      RS_TELEM_SPAN(apply_span, kApplyHist, "svc.apply");
      apply_machine(work_machines[t]);
    });
  } else {
    run_sharded([&](unsigned shard) {
      RS_TELEM_DURATION(kApplyHist, "svc.apply");
      RS_TELEM_SPAN(apply_span, kApplyHist, "svc.apply");
      for (unsigned machine = shard_begin_[shard];
           machine < shard_begin_[shard + 1]; ++machine) {
        apply_machine(machine);
      }
    });
  }

  if (failed.load()) {
    // Rare path: a machine rejected an optimistically planned insert. Undo
    // the whole sub-batch and replay it through the exact sequential
    // per-request path, which reproduces sequential rejection semantics.
    // The sub-batch was already logged before the fan-out, so logging is
    // suspended for the re-run — the log keeps the original records, and
    // recovery's replay re-derives the same rejections deterministically.
    rollback_subbatch(plans, machine_ops, applied);
    const bool was_logging = wal_logging_;
    wal_logging_ = false;
    try {
      replay_subbatch(batch, first, end, resolved, status, stats, rejected_ids);
    } catch (...) {
      wal_logging_ = was_logging;
      throw;
    }
    wal_logging_ = was_logging;
    return;
  }

  // ---- merge: per-request stats from the per-op stats ----
  for (const auto& ops : machine_ops) {
    for (const Op& op : ops) stats[op.request] += op.stats;
  }
  for (std::size_t i = first; i < end; ++i) {
    if (migrated[i - first]) {
      // The §3 rebalance migration itself, exactly as the sequential
      // reduction accounts it.
      ++stats[i].reallocations;
      ++stats[i].migrations;
    }
  }
}

void ShardedScheduler::rollback_subbatch(
    const std::vector<PlanOutput>& plans,
    const std::vector<std::vector<Op>>& machine_ops,
    const std::vector<std::size_t>& applied) {
  // Machine state: invert every applied op in reverse per-machine order.
  // Machines are independent, so per-machine reversal suffices.
  try {
    for (std::size_t machine = 0; machine < machine_ops.size(); ++machine) {
      const std::vector<Op>& ops = machine_ops[machine];
      for (std::size_t k = applied[machine]; k-- > 0;) {
        const Op& op = ops[k];
        if (op.kind == RequestKind::kInsert) {
          machines_[machine]->erase(op.job);
        } else {
          machines_[machine]->insert(op.job, op.window);
        }
      }
    }
  } catch (...) {
    RS_CHECK(false, "ShardedScheduler::apply: batch rollback failed");
  }

  // Ledger state: unwind every commit in reverse per-worker order. Each
  // window's commits live in exactly one worker's log, so per-worker
  // reversal unwinds every window's sequence exactly.
  for (const PlanOutput& plan : plans) {
    for (std::size_t k = plan.log.size(); k-- > 0;) {
      const LedgerRecord& record = plan.log[k];
      StripedLedger::WindowStripe& stripe = ledger_.window_stripe_for(record.window);
      std::lock_guard lock(stripe.mutex);
      switch (record.kind) {
        case LedgerRecord::kInsert:
          stripe.ledger.rollback_insert(record.job, record.window, record.machine);
          ledger_.erase_job(record.job);
          break;
        case LedgerRecord::kErase:
          stripe.ledger.rollback_erase(record.job, record.window, record.machine);
          ledger_.insert_job(record.job, JobInfo{record.window, record.machine});
          break;
        case LedgerRecord::kMigration: {
          BalanceLedger::Migration migration;
          migration.needed = true;
          migration.moved = record.job;
          migration.donor = record.donor;
          stripe.ledger.rollback_migration(record.window, migration, record.machine);
          ledger_.set_job_machine(record.job, record.donor);
          break;
        }
      }
    }
  }
}

void ShardedScheduler::replay_subbatch(std::span<const Request> batch,
                                       std::size_t first, std::size_t end,
                                       const std::vector<Resolved>& resolved,
                                       std::vector<std::uint8_t>& status,
                                       std::vector<RequestStats>& stats,
                                       FlatHashSet<JobId>& rejected_ids) {
  for (std::size_t i = first; i < end; ++i) {
    if (status[i] == kRejected) continue;  // scan-level rejection stands
    const Request& request = batch[i];
    stats[i] = RequestStats{};
    if (request.kind == RequestKind::kInsert) {
      try {
        stats[i] = insert(request.job, resolved[i].window);
      } catch (const InfeasibleError&) {
        status[i] = kRejected;
        rejected_ids.insert(request.job);
      }
    } else {
      if (rejected_ids.contains(request.job)) {
        rejected_ids.erase(request.job);
        status[i] = kRejected;
        continue;
      }
      stats[i] = erase(request.job);
    }
  }
}

}  // namespace reasched
