// Striped balancer ledger for the sharded scheduling service.
//
// The sequential MultiMachineScheduler keeps one window ledger and one job
// directory; planning a batch through a single pair would serialize every
// delegation decision. Here both are striped:
//
//   * window stripes — stripe_of(W) = hash(W) & (stripes-1); each stripe
//     owns a BalanceLedger (core/balance_ledger.hpp) for its windows plus a
//     mutex. All balance state of a window — including the §3 rebalance
//     migrations, which never cross windows — lives in exactly one stripe,
//     so delegation decisions for different windows proceed concurrently.
//   * job stripes — stripe_of(id) = hash(id) & (stripes-1); each stripe
//     owns a JobId → JobInfo directory shard plus a mutex. A job's window
//     and its job-directory entry generally hash to *different* stripes, so
//     the two stripe arrays are independent.
//
// Locking discipline (see DESIGN.md §5): a thread holds at most one window
// stripe lock and at most one job stripe lock at a time, and always
// acquires the window stripe before any job stripe. Stripe mutexes guard
// the *internal* parallelism of ShardedScheduler::apply; the public
// IReallocScheduler entry points themselves follow the repository-wide
// single-caller discipline.
#pragma once

#include <bit>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "audit/invariant_check.hpp"
#include "core/balance_ledger.hpp"
#include "util/flat_hash.hpp"

namespace reasched {

class StripedLedger {
 public:
  struct WindowStripe {
    mutable std::mutex mutex;
    BalanceLedger ledger;
  };
  struct JobStripe {
    mutable std::mutex mutex;
    FlatHashMap<JobId, JobInfo> jobs;
  };

  /// `stripes` is rounded up to a power of two (mask-based selection).
  StripedLedger(unsigned machines, std::size_t stripes)
      : stripe_mask_(std::bit_ceil(stripes < 2 ? std::size_t{2} : stripes) - 1) {
    const std::size_t count = stripe_mask_ + 1;
    window_stripes_ = std::make_unique<WindowStripe[]>(count);
    job_stripes_ = std::make_unique<JobStripe[]>(count);
    for (std::size_t i = 0; i < count; ++i) {
      window_stripes_[i].ledger = BalanceLedger(machines);
    }
  }

  [[nodiscard]] std::size_t stripes() const noexcept { return stripe_mask_ + 1; }

  /// Stop-the-world growth for every stripe's ledger and job directory
  /// (the legacy_rehash escape hatch; see util/flat_hash.hpp). Call before
  /// concurrent use — the setter takes no locks.
  void set_legacy_rehash(bool legacy) {
    for (std::size_t i = 0; i <= stripe_mask_; ++i) {
      window_stripes_[i].ledger.set_legacy_rehash(legacy);
      job_stripes_[i].jobs.set_legacy_rehash(legacy);
    }
  }

  [[nodiscard]] std::size_t stripe_of(const Window& w) const noexcept {
    return std::hash<Window>{}(w)&stripe_mask_;
  }
  [[nodiscard]] std::size_t stripe_of(JobId id) const noexcept {
    return std::hash<JobId>{}(id)&stripe_mask_;
  }

  [[nodiscard]] WindowStripe& window_stripe(std::size_t index) noexcept {
    return window_stripes_[index];
  }
  [[nodiscard]] WindowStripe& window_stripe_for(const Window& w) noexcept {
    return window_stripes_[stripe_of(w)];
  }

  // ---- job directory (each call locks the job's stripe) ----

  [[nodiscard]] std::optional<JobInfo> find_job(JobId id) const {
    const JobStripe& stripe = job_stripes_[stripe_of(id)];
    std::lock_guard lock(stripe.mutex);
    const JobInfo* info = stripe.jobs.find(id);
    return info ? std::optional<JobInfo>(*info) : std::nullopt;
  }

  void insert_job(JobId id, const JobInfo& info) {
    JobStripe& stripe = job_stripes_[stripe_of(id)];
    std::lock_guard lock(stripe.mutex);
    stripe.jobs[id] = info;
  }

  void erase_job(JobId id) {
    JobStripe& stripe = job_stripes_[stripe_of(id)];
    std::lock_guard lock(stripe.mutex);
    stripe.jobs.erase(id);
  }

  void set_job_machine(JobId id, MachineId machine) {
    JobStripe& stripe = job_stripes_[stripe_of(id)];
    std::lock_guard lock(stripe.mutex);
    stripe.jobs.at(id).machine = machine;
  }

  [[nodiscard]] std::size_t active_jobs() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i <= stripe_mask_; ++i) {
      std::lock_guard lock(job_stripes_[i].mutex);
      total += job_stripes_[i].jobs.size();
    }
    return total;
  }

  /// Balance invariant (Lemma 3) across every stripe.
  void audit() const {
    for (std::size_t i = 0; i <= stripe_mask_; ++i) {
      std::lock_guard lock(window_stripes_[i].mutex);
      window_stripes_[i].ledger.audit();
    }
  }

  /// Incremental balance audit of one stripe: re-verifies only the windows
  /// whose ledger state changed since that stripe's last audit (the
  /// stripe's BalanceLedger keeps its own dirty set, so stripes audit
  /// independently — and, from different workers, concurrently; each call
  /// takes only its own stripe's lock). Returns windows verified.
  std::size_t audit_stripe_incremental(std::size_t index) {
    WindowStripe& stripe = window_stripes_[index];
    std::lock_guard lock(stripe.mutex);
    return stripe.ledger.audit_incremental();
  }

  /// Incremental balance audit across every stripe (sequential; the
  /// sharded scheduler fans the stripes out across its workers instead —
  /// ShardedScheduler::audit_balance_incremental). Returns windows verified.
  std::size_t audit_incremental() {
    std::size_t verified = 0;
    for (std::size_t i = 0; i <= stripe_mask_; ++i) {
      verified += audit_stripe_incremental(i);
    }
    return verified;
  }

  /// Registers one Lemma 3 check per stripe ("svc.stripe<i>.L3.balance-shares")
  /// so the striped ledger's invariants are enumerable from one table.
  /// Checks lock their stripe when run.
  void register_invariants(audit::InvariantTable& table) const {
    for (std::size_t i = 0; i <= stripe_mask_; ++i) {
      table.add("svc.stripe" + std::to_string(i) + ".L3.balance-shares",
                "StripedLedger",
                "per-stripe round-robin balance shares (Lemma 3)", [this, i] {
                  std::lock_guard lock(window_stripes_[i].mutex);
                  window_stripes_[i].ledger.audit();
                });
    }
  }

  /// Deliberate corruption for the differential audit tests: desyncs one
  /// stripe's share sets (see BalanceLedger::corrupt_for_test). Returns
  /// false when no stripe holds a movable job.
  bool corrupt_for_test() {
    for (std::size_t i = 0; i <= stripe_mask_; ++i) {
      std::lock_guard lock(window_stripes_[i].mutex);
      if (window_stripes_[i].ledger.corrupt_for_test()) return true;
    }
    return false;
  }

 private:
  std::size_t stripe_mask_;
  std::unique_ptr<WindowStripe[]> window_stripes_;
  std::unique_ptr<JobStripe[]> job_stripes_;
};

}  // namespace reasched
