// Sharded batch-scheduling service (service layer over the §3 reduction).
//
// A ShardedScheduler owns the same per-machine single-machine schedulers as
// MultiMachineScheduler, partitioned into contiguous *shards* of machines,
// each pinned to one worker of a ShardedThreadPool (per-shard queues). The
// balancer ledger is striped (service/striped_ledger.hpp) so delegation
// decisions for different windows proceed concurrently.
//
// apply(batch) serves a whole request batch in three phases:
//
//   1. scan (caller thread): resolve every delete to its window via the job
//      directory, validate preconditions, and cut the batch into maximal
//      sub-batches within which no job id is reused under a different
//      window (so each job's requests stay inside one window stripe).
//   2. plan (parallel over window stripes): commit every delegation
//      decision — round-robin insert targets, erase rebalance migrations —
//      to the striped ledger, emitting per-machine operation lists. The
//      per-machine schedulers are untouched; Lemma 3's independence means
//      the decisions depend only on the ledger.
//   3. apply (parallel over shards): each shard executes its machines'
//      operation lists, sorted into request order. Per-request fixed costs
//      are amortized: one pool handoff per shard per batch, and audit
//      cadence becomes per-batch instead of per-request (EXPERIMENTS.md
//      §E13).
//
// Determinism: for a batch in which no insert is rejected, the resulting
// schedules, per-request stats, and ledger state are identical to feeding
// the same requests one at a time to MultiMachineScheduler, for ANY shard
// and stripe count — delegation is fixed by the round-robin rule and every
// per-machine scheduler sees exactly the sequential order of its own
// operations (tested in tests/sharded_scheduler_test.cpp).
//
// Rejection handling: if a machine rejects an insert mid-batch
// (InfeasibleError), the optimistically applied sub-batch is rolled back
// (machine operations inverted in reverse order, ledger commits unwound)
// and the sub-batch is replayed through the sequential per-request path.
// The rolled-back machine state is *equivalent* (same job set, feasible,
// balance invariant intact) but — because per-machine placement is not
// history independent (see bench_e8) — not necessarily bit-identical to
// the pre-batch state, so after a batch WITH rejections, placements and
// stats may differ from a never-batched run in internal detail; rejected
// requests are reported in BatchResult::rejected, never thrown. Note the
// default pipeline (ReservationScheduler under OverflowPolicy::kBestEffort)
// parks instead of rejecting, so this path never fires there.
//
// Threading: the public entry points follow the repository-wide
// single-caller discipline; all parallelism is internal to apply().
// Each per-machine scheduler — and therefore each per-level interval
// arena it owns (util/arena.hpp) and any in-flight partitioned-rebuild
// generation — is touched only by its owning shard's worker, so that
// state is shard-local by construction and needs no locking
// (DESIGN.md §6); only the striped ledger is shared, behind its stripe
// locks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "durability/recovery.hpp"
#include "durability/wal.hpp"
#include "schedule/scheduler_interface.hpp"
#include "service/striped_ledger.hpp"
#include "telemetry/options.hpp"
#include "util/flat_hash.hpp"
#include "util/thread_pool.hpp"

namespace reasched {

class ShardedScheduler final : public IReallocScheduler {
 public:
  using Factory = std::function<std::unique_ptr<IReallocScheduler>()>;

  struct Options {
    /// Worker shards; clamped to [1, machines]. Shard k owns the contiguous
    /// machine range [k·m/S, (k+1)·m/S).
    unsigned shards = 1;
    /// Ledger stripes (rounded up to a power of two). 0 = auto:
    /// max(16, 4·shards), enough that concurrent planners rarely collide.
    std::size_t stripes = 0;
    /// Stop-the-world growth for the striped ledger's tables (the
    /// legacy_rehash escape hatch; see util/flat_hash.hpp). The machine
    /// schedulers take the flag through their own SchedulerOptions.
    bool legacy_rehash = false;
    /// Fan the plan phase out per *stripe* and the apply phase per
    /// *machine* as stealable tasks (ShardedThreadPool::submit_stealable),
    /// so an idle worker — or the calling thread — helps a backlogged
    /// sibling when hotspot placement skews ops toward one contiguous
    /// machine→shard range. Off restores the pinned per-worker fan-out
    /// (the escape hatch, and the A side of the stealing differential
    /// test). Either setting produces byte-identical schedules: each
    /// stripe's plan and each machine's op list is still executed by
    /// exactly one thread, in the same order (Lemma 3 delegation does not
    /// depend on which thread commits it).
    bool work_stealing = true;
    /// Durability tier (DESIGN.md §9): when set, every request is appended
    /// write-ahead to one of `shards` per-shard log files in wal->dir
    /// (routed by window stripe; CSNs are assigned globally on the caller
    /// thread, so the merged streams order totally) and *construction is
    /// recovery* — the surviving gap-free CSN prefix of the per-shard logs
    /// is compacted and replayed through the sequential request path
    /// before any new request is accepted. BatchResult::first_csn /
    /// last_csn report each batch's CSN range. Snapshots are not taken at
    /// this layer (per-machine generation boundaries are not service-wide
    /// quiescent points); recovery cost grows with the log.
    std::optional<durability::DurabilityPolicy> wal;
    /// Runtime gate for the telemetry tier (src/telemetry/, DESIGN.md §10):
    /// construction flips the process-wide recording switches (turn-on
    /// only). The pipeline spans (svc.scan/svc.plan/svc.apply), per-shard
    /// queue-depth gauges, and every per-machine scheduler's record sites
    /// then feed telemetry::Registry::global().
    telemetry::TelemetryOptions telemetry;
  };

  ShardedScheduler(unsigned machines, const Factory& factory, Options options);
  ShardedScheduler(unsigned machines, const Factory& factory)
      : ShardedScheduler(machines, factory, Options{}) {}

  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;
  BatchResult apply(std::span<const Request> batch) override;

  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override {
    return ledger_.active_jobs();
  }
  [[nodiscard]] unsigned machines() const override {
    return static_cast<unsigned>(machines_.size());
  }
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  /// Stealable tasks executed off their home worker so far (monotone;
  /// 0 when Options::work_stealing is off or shards == 1).
  [[nodiscard]] std::uint64_t steal_count() const noexcept { return pool_.steals(); }
  [[nodiscard]] std::string name() const override;

  /// Balancing invariant check (Lemma 3) over every ledger stripe; throws
  /// InternalError on violation.
  void audit_balance() const { ledger_.audit(); }

  /// Incremental balance audit: every stripe re-verifies only the windows
  /// whose delegation state changed since that stripe's last audit, and the
  /// stripes are fanned out across the shard workers (stripe i is checked
  /// by worker i mod shards), so shards audit concurrently — each stripe
  /// check takes only its own stripe lock. First call per stripe is a full
  /// sweep of that stripe (dirty tracking starts then). Returns the number
  /// of windows verified. Throws InternalError on violation.
  std::size_t audit_balance_incremental();

  /// Registers this service's invariant checks: one Lemma 3 unit per
  /// ledger stripe (see StripedLedger::register_invariants).
  void register_invariants(audit::InvariantTable& table) const {
    ledger_.register_invariants(table);
  }

  /// Deliberate ledger corruption for the differential audit tests
  /// (desyncs one stripe's share sets); both audit_balance and
  /// audit_balance_incremental must flag it. Returns false when the ledger
  /// holds no movable job.
  bool corrupt_balance_for_test() { return ledger_.corrupt_for_test(); }

  // ---- durability tier (Options::wal) ----

  /// What construction-time recovery found; all zeros when Options::wal is
  /// unset or the directory was fresh.
  [[nodiscard]] const durability::RecoveryReport& recovery_report() const noexcept {
    return recovery_report_;
  }
  /// CSN of the last logged request (0 when no WAL is attached).
  [[nodiscard]] std::uint64_t csn() const noexcept { return csn_; }
  /// Flushes and fsyncs every shard log.
  void sync_wal();

 private:
  /// One machine-level operation planned for a batch.
  struct Op {
    RequestKind kind = RequestKind::kInsert;
    std::uint8_t role = 0;  // 0 primary, 1 donor-erase, 2 migration-insert
    MachineId machine = 0;
    std::uint32_t request = 0;  // batch index
    JobId job;
    Window window;
    RequestStats stats;  // filled during the apply phase
  };

  /// One committed ledger mutation, recorded for rollback.
  struct LedgerRecord {
    enum Kind : std::uint8_t { kInsert, kErase, kMigration } kind = kInsert;
    JobId job;  // for kMigration: the moved job
    Window window;
    MachineId machine = 0;  // insert/erase: delegated machine; migration: dest
    MachineId donor = 0;    // migration only
  };

  struct PlanOutput {
    std::vector<Op> ops;
    std::vector<LedgerRecord> log;
  };

  struct Resolved {
    Window window;
    std::uint32_t stripe = 0;
  };

  enum Status : std::uint8_t { kServed = 0, kRejected = 1 };

  /// Runs task(k) for every shard k; shard 0 runs inline on the caller,
  /// the rest on their pinned pool workers. Joins all before returning.
  void run_sharded(const std::function<void(unsigned)>& task);

  /// Runs task(t) for t in [0, count) as stealable pool tasks
  /// (home_shard[t] names each task's preferred shard); the caller lends
  /// its own cycles via try_run_stealable while it waits. Joins all before
  /// returning. Requires shards_ > 1 (the pool must have a worker).
  void run_stealable(std::size_t count, const std::vector<unsigned>& home_shard,
                     const std::function<void(std::size_t)>& task);

  /// Recovers from + resumes the per-shard logs (ctor tail when
  /// Options::wal is set): merge by CSN, compact the gap-free prefix into
  /// shard 0's log, replay it sequentially (logging suspended), open the
  /// writers.
  void init_wal(const durability::DurabilityPolicy& policy);
  /// Appends one record to the shard log owning `window`, write-ahead on
  /// the caller thread. No-op while logging is suspended (recovery replay,
  /// sub-batch sequential re-run).
  void log_insert(JobId id, Window window);
  void log_erase(JobId id, Window window);
  [[nodiscard]] unsigned wal_shard_of(Window window) const {
    return static_cast<unsigned>(ledger_.stripe_of(window)) % shards_;
  }

  std::size_t scan_subbatch(std::span<const Request> batch, std::size_t first,
                            std::vector<Resolved>& resolved,
                            std::vector<std::uint8_t>& status,
                            FlatHashSet<JobId>& rejected_ids);
  void apply_subbatch(std::span<const Request> batch, std::size_t first,
                      std::size_t end, const std::vector<Resolved>& resolved,
                      std::vector<std::uint8_t>& status,
                      std::vector<RequestStats>& stats,
                      FlatHashSet<JobId>& rejected_ids);
  void rollback_subbatch(const std::vector<PlanOutput>& plans,
                         const std::vector<std::vector<Op>>& machine_ops,
                         const std::vector<std::size_t>& applied);
  void replay_subbatch(std::span<const Request> batch, std::size_t first,
                       std::size_t end, const std::vector<Resolved>& resolved,
                       std::vector<std::uint8_t>& status,
                       std::vector<RequestStats>& stats,
                       FlatHashSet<JobId>& rejected_ids);

  std::vector<std::unique_ptr<IReallocScheduler>> machines_;
  unsigned shards_ = 1;
  bool work_stealing_ = true;
  StripedLedger ledger_;
  std::vector<unsigned> shard_begin_;  // size shards_+1: machine range bounds
  ShardedThreadPool pool_;
  std::string label_;

  // Durability tier (empty/zero when Options::wal is unset).
  std::vector<durability::WalWriter> wal_;  // one writer per shard
  durability::RecoveryReport recovery_report_{};
  std::uint64_t csn_ = 0;
  bool wal_logging_ = false;
};

}  // namespace reasched
