#include "sim/open_loop.hpp"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/scraper.hpp"
#include "util/assert.hpp"

namespace reasched::sim {

namespace {

/// Sleep-then-spin until the absolute deadline: coarse sleep while far out
/// (the scheduler tick is ~50µs on this class of host), spin the last
/// stretch so arrival jitter stays well under the sojourn resolution.
void wait_until_ns(std::uint64_t deadline_ns) {
  for (;;) {
    const std::uint64_t now = telemetry::now_ns();
    if (now >= deadline_ns) return;
    const std::uint64_t left = deadline_ns - now;
    if (left > 200'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(left - 100'000));
    } else if (left > 2'000) {
      std::this_thread::yield();
    }
    // else: spin on the clock
  }
}

OpenLoopReport serve_direct(IReallocScheduler& scheduler,
                            std::span<const Request> trace,
                            const OpenLoopOptions& options,
                            const std::vector<std::uint64_t>& arrival_ns) {
  OpenLoopReport report;
  const std::size_t cap = options.direct_batch == 0 ? 1 : options.direct_batch;
  std::vector<Request> batch;
  batch.reserve(cap);
  const std::uint64_t start = telemetry::now_ns();
  std::size_t next = 0;
  std::uint64_t last_apply = start;
  while (next < trace.size()) {
    wait_until_ns(start + arrival_ns[next]);
    // Serve every due arrival, capped at the fixed batch size — the
    // single-caller posture never closes a bigger batch under backlog.
    batch.clear();
    const std::size_t first = next;
    const std::uint64_t now = telemetry::now_ns();
    while (next < trace.size() && batch.size() < cap &&
           start + arrival_ns[next] <= now) {
      batch.push_back(trace[next]);
      ++next;
    }
    const BatchResult result = scheduler.apply(batch);
    last_apply = telemetry::now_ns();
    for (std::size_t i = first; i < next; ++i) {
      report.sojourn.record(last_apply - (start + arrival_ns[i]));
    }
    report.rejected += result.rejected.size();
  }
  report.requests = trace.size();
  report.seconds = static_cast<double>(last_apply - start) * 1e-9;
  report.offered_rps = options.offered_rps;
  report.achieved_rps =
      report.seconds > 0.0 ? static_cast<double>(trace.size()) / report.seconds : 0.0;
  return report;
}

}  // namespace

OpenLoopReport serve_open_loop(IReallocScheduler& scheduler,
                               std::span<const Request> trace,
                               const OpenLoopOptions& options) {
  RS_REQUIRE(options.offered_rps > 0.0, "serve_open_loop: offered_rps must be > 0");
  // Request i is due at i/rate seconds; precomputing keeps the pacing
  // arithmetic off the producer hot path.
  std::vector<std::uint64_t> arrival_ns(trace.size());
  const double ns_per_request = 1e9 / options.offered_rps;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    arrival_ns[i] = static_cast<std::uint64_t>(static_cast<double>(i) * ns_per_request);
  }
  // Serving-grade runs scrape while they serve: the background Scraper
  // snapshots the registry on the configured cadence for the whole run
  // (both modes — in direct mode the ingest tier is absent but the
  // scheduler-layer metrics still flow).
  std::unique_ptr<telemetry::Scraper> scraper;
  if (options.ingest.telemetry.scrape_interval_ms > 0) {
    telemetry::enable(options.ingest.telemetry);
    telemetry::Scraper::Options scrape;
    scrape.interval_ms = options.ingest.telemetry.scrape_interval_ms;
    scraper = std::make_unique<telemetry::Scraper>(std::move(scrape));
  }
  const auto finish = [&scraper](OpenLoopReport report) {
    if (scraper != nullptr) {
      scraper->stop();
      report.scrapes = scraper->scrapes();
    }
    return report;
  };
  if (options.producers == 0) {
    return finish(serve_direct(scheduler, trace, options, arrival_ns));
  }

  OpenLoopReport report;
  ingest::IngestOptions ingest_options = options.ingest;
  ingest_options.external_sequencing = true;
  ingest_options.max_queue_depth = 0;
  ingest_options.p99_budget_us = 0;
  std::uint64_t start = 0;  // set before the producers start, read by on_batch
  std::uint64_t last_apply = 0;
  // on_batch runs on the single consumer thread, after the batch applied:
  // sojourn is charged from each request's *scheduled* arrival, so queueing
  // during overload is fully visible (no coordinated omission).
  ingest_options.on_batch = [&](std::span<const Request> batch,
                                const BatchResult& result,
                                std::uint64_t first_ticket) {
    last_apply = telemetry::now_ns();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      report.sojourn.record(last_apply - (start + arrival_ns[first_ticket + i]));
    }
    report.rejected += result.rejected.size();
  };
  ingest::IngestService service(scheduler, std::move(ingest_options));

  const std::size_t producers = options.producers;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  start = telemetry::now_ns();
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = p; i < trace.size(); i += producers) {
        wait_until_ns(start + arrival_ns[i]);
        service.push_sequenced(i, trace[i]);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  service.drain();
  service.stop();

  report.requests = trace.size();
  report.ingest = service.stats();
  report.seconds = last_apply > start
                       ? static_cast<double>(last_apply - start) * 1e-9
                       : 0.0;
  report.offered_rps = options.offered_rps;
  report.achieved_rps =
      report.seconds > 0.0 ? static_cast<double>(trace.size()) / report.seconds : 0.0;
  return finish(std::move(report));
}

}  // namespace reasched::sim
