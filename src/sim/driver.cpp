#include "sim/driver.hpp"

#include <chrono>
#include <unordered_map>
#include <vector>

#include "schedule/validator.hpp"
#include "telemetry/registry.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"
#include "workload/trace_io.hpp"

namespace reasched {

namespace {

class Runner {
 public:
  Runner(IReallocScheduler& scheduler, const SimOptions& options)
      : scheduler_(scheduler), options_(options) {}

  void serve(const Request& request) {
    ++index_;
    const bool check_costs =
        options_.check_costs_every != 0 && index_ % options_.check_costs_every == 0;
    Schedule before(1);
    if (check_costs) before = scheduler_.snapshot();

    RequestStats stats;
    const std::uint64_t start_ns =
        options_.record_latency ? telemetry::now_ns() : 0;
    if (request.kind == RequestKind::kInsert) {
      try {
        stats = scheduler_.insert(request.job, request.window);
      } catch (const InfeasibleError&) {
        if (!options_.tolerate_infeasible) throw;
        report_.metrics.add_rejected();
        return;
      }
      active_.emplace(request.job, request.window);
    } else {
      if (!active_.contains(request.job)) {
        // The job's insert was rejected earlier (tolerate_infeasible):
        // nothing to delete.
        ++report_.skipped_deletes;
        return;
      }
      stats = scheduler_.erase(request.job);
      active_.erase(request.job);
    }
    if (options_.record_latency) {
      report_.metrics.add_latency_ns(telemetry::now_ns() - start_ns);
    }
    report_.metrics.add(request.kind, stats);
    if (options_.on_request) options_.on_request(index_ - 1, request, stats);

    if (check_costs) {
      const Schedule after = scheduler_.snapshot();
      const DiffCosts diff = diff_costs(before, after, request.job);
      // Self-reported counts are move events; the diff counts jobs with a
      // net placement change, so diff <= reported. Migrations are one-shot
      // per request and must match exactly.
      if (diff.reallocations > stats.reallocations ||
          diff.migrations != stats.migrations) {
        ++report_.cost_mismatches;
        if (report_.first_issue.empty()) {
          report_.first_issue =
              "cost mismatch at request " + std::to_string(index_ - 1) + ": diff=(" +
              std::to_string(diff.reallocations) + "," + std::to_string(diff.migrations) +
              ") reported=(" + std::to_string(stats.reallocations) + "," +
              std::to_string(stats.migrations) + ")";
        }
      }
    }
    if (options_.validate_every != 0 && index_ % options_.validate_every == 0) {
      const auto report = validate_schedule(scheduler_.snapshot(), active_);
      if (!report.ok()) {
        ++report_.validation_failures;
        if (report_.first_issue.empty()) {
          report_.first_issue = "validation failed at request " +
                                std::to_string(index_ - 1) + ": " + report.to_string();
        }
      }
    }
    if (options_.audit_every != 0 && options_.audit_hook &&
        index_ % options_.audit_every == 0) {
      options_.audit_hook();
    }
  }

  [[nodiscard]] SimReport finish() && { return std::move(report_); }
  [[nodiscard]] const std::unordered_map<JobId, Window>& active() const noexcept {
    return active_;
  }

 private:
  IReallocScheduler& scheduler_;
  const SimOptions& options_;
  SimReport report_;
  std::unordered_map<JobId, Window> active_;
  std::uint64_t index_ = 0;
};

/// Batched replay: requests are buffered and served through apply().
/// Deletes of jobs whose insert was rejected in an earlier batch are
/// filtered here (the batch API treats an erase of a never-inserted id as a
/// precondition violation); rejections *within* a batch are reported by
/// BatchResult and accounted from there.
SimReport replay_batched(IReallocScheduler& scheduler, std::span<const Request> trace,
                         const SimOptions& options) {
  SimReport report;
  std::unordered_map<JobId, Window> active;
  std::vector<Request> buffer;
  std::vector<std::size_t> original;  // trace index of each buffered request
  // Expected activity of ids touched by buffered-but-unapplied requests, so
  // the skip filter below sees through the buffer (e.g. a second delete of a
  // job whose first delete is still buffered must be skipped, exactly as the
  // per-request Runner would skip it after applying the first).
  FlatHashMap<JobId, bool> buffered_state;
  std::uint64_t next_validate = options.validate_every;
  std::uint64_t next_audit = options.audit_every;

  const auto flush = [&](std::size_t processed) {
    if (!buffer.empty()) {
      const std::uint64_t start_ns =
          options.record_latency ? telemetry::now_ns() : 0;
      const BatchResult result = scheduler.apply(buffer);
      if (options.record_latency) {
        // One sample per batch: apply() amortizes fixed costs across the
        // batch, so per-request attribution would be fiction.
        report.metrics.add_latency_ns(telemetry::now_ns() - start_ns);
      }
      std::size_t next_rejected = 0;
      for (std::size_t k = 0; k < buffer.size(); ++k) {
        const Request& request = buffer[k];
        if (next_rejected < result.rejected.size() &&
            result.rejected[next_rejected] == k) {
          ++next_rejected;
          if (request.kind == RequestKind::kInsert) {
            report.metrics.add_rejected();
          } else {
            ++report.skipped_deletes;
          }
          continue;
        }
        if (request.kind == RequestKind::kInsert) {
          active.emplace(request.job, request.window);
        } else {
          active.erase(request.job);
        }
        report.metrics.add(request.kind, result.stats[k]);
        if (options.on_request) {
          options.on_request(original[k], request, result.stats[k]);
        }
      }
      buffer.clear();
      original.clear();
      buffered_state.clear();
    }
    if (options.validate_every != 0 && processed >= next_validate) {
      const auto validation = validate_schedule(scheduler.snapshot(), active);
      if (!validation.ok()) {
        ++report.validation_failures;
        if (report.first_issue.empty()) {
          report.first_issue = "validation failed by request " +
                               std::to_string(processed - 1) + ": " +
                               validation.to_string();
        }
      }
      next_validate =
          (processed / options.validate_every + 1) * options.validate_every;
    }
    if (options.audit_every != 0 && options.audit_hook && processed >= next_audit) {
      options.audit_hook();
      next_audit = (processed / options.audit_every + 1) * options.audit_every;
    }
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& request = trace[i];
    if (request.kind == RequestKind::kDelete) {
      const bool* buffered = buffered_state.find(request.job);
      const bool expected_active =
          buffered != nullptr ? *buffered : active.contains(request.job);
      if (!expected_active) {
        // Rejected insert in an earlier batch, or an earlier delete still
        // sitting in the buffer: nothing to delete.
        ++report.skipped_deletes;
        continue;
      }
    }
    buffer.push_back(request);
    original.push_back(i);
    buffered_state.insert_or_assign(request.job,
                                    request.kind == RequestKind::kInsert);
    if (buffer.size() >= options.batch_size) flush(i + 1);
  }
  flush(trace.size());
  return report;
}

}  // namespace

SimReport replay_trace(IReallocScheduler& scheduler, std::span<const Request> trace,
                       const SimOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  telemetry::enable(options.telemetry);
  if (!options.record_trace.empty()) {
    write_trace_wal(options.record_trace, {trace.begin(), trace.end()});
  }
  SimReport report;
  if (options.batch_size > 0) {
    report = replay_batched(scheduler, trace, options);
  } else {
    Runner runner(scheduler, options);
    for (const Request& request : trace) runner.serve(request);
    report = std::move(runner).finish();
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

SimReport run_adaptive(IReallocScheduler& scheduler, const AdversaryFn& next,
                       const SimOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  telemetry::enable(options.telemetry);
  Runner runner(scheduler, options);
  Schedule current = scheduler.snapshot();
  std::vector<Request> emitted;
  while (const auto request = next(current)) {
    runner.serve(*request);
    if (!options.record_trace.empty()) emitted.push_back(*request);
    current = scheduler.snapshot();
  }
  if (!options.record_trace.empty()) write_trace_wal(options.record_trace, emitted);
  SimReport report = std::move(runner).finish();
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

}  // namespace reasched
