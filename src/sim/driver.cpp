#include "sim/driver.hpp"

#include <chrono>
#include <unordered_map>

#include "schedule/validator.hpp"
#include "util/assert.hpp"

namespace reasched {

namespace {

class Runner {
 public:
  Runner(IReallocScheduler& scheduler, const SimOptions& options)
      : scheduler_(scheduler), options_(options) {}

  void serve(const Request& request) {
    ++index_;
    const bool check_costs =
        options_.check_costs_every != 0 && index_ % options_.check_costs_every == 0;
    Schedule before(1);
    if (check_costs) before = scheduler_.snapshot();

    RequestStats stats;
    if (request.kind == RequestKind::kInsert) {
      try {
        stats = scheduler_.insert(request.job, request.window);
      } catch (const InfeasibleError&) {
        if (!options_.tolerate_infeasible) throw;
        report_.metrics.add_rejected();
        return;
      }
      active_.emplace(request.job, request.window);
    } else {
      if (!active_.contains(request.job)) {
        // The job's insert was rejected earlier (tolerate_infeasible):
        // nothing to delete.
        ++report_.skipped_deletes;
        return;
      }
      stats = scheduler_.erase(request.job);
      active_.erase(request.job);
    }
    report_.metrics.add(request.kind, stats);
    if (options_.on_request) options_.on_request(index_ - 1, request, stats);

    if (check_costs) {
      const Schedule after = scheduler_.snapshot();
      const DiffCosts diff = diff_costs(before, after, request.job);
      // Self-reported counts are move events; the diff counts jobs with a
      // net placement change, so diff <= reported. Migrations are one-shot
      // per request and must match exactly.
      if (diff.reallocations > stats.reallocations ||
          diff.migrations != stats.migrations) {
        ++report_.cost_mismatches;
        if (report_.first_issue.empty()) {
          report_.first_issue =
              "cost mismatch at request " + std::to_string(index_ - 1) + ": diff=(" +
              std::to_string(diff.reallocations) + "," + std::to_string(diff.migrations) +
              ") reported=(" + std::to_string(stats.reallocations) + "," +
              std::to_string(stats.migrations) + ")";
        }
      }
    }
    if (options_.validate_every != 0 && index_ % options_.validate_every == 0) {
      const auto report = validate_schedule(scheduler_.snapshot(), active_);
      if (!report.ok()) {
        ++report_.validation_failures;
        if (report_.first_issue.empty()) {
          report_.first_issue = "validation failed at request " +
                                std::to_string(index_ - 1) + ": " + report.to_string();
        }
      }
    }
  }

  [[nodiscard]] SimReport finish() && { return std::move(report_); }
  [[nodiscard]] const std::unordered_map<JobId, Window>& active() const noexcept {
    return active_;
  }

 private:
  IReallocScheduler& scheduler_;
  const SimOptions& options_;
  SimReport report_;
  std::unordered_map<JobId, Window> active_;
  std::uint64_t index_ = 0;
};

}  // namespace

SimReport replay_trace(IReallocScheduler& scheduler, std::span<const Request> trace,
                       const SimOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Runner runner(scheduler, options);
  for (const Request& request : trace) runner.serve(request);
  SimReport report = std::move(runner).finish();
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

SimReport run_adaptive(IReallocScheduler& scheduler, const AdversaryFn& next,
                       const SimOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Runner runner(scheduler, options);
  Schedule current = scheduler.snapshot();
  while (const auto request = next(current)) {
    runner.serve(*request);
    current = scheduler.snapshot();
  }
  SimReport report = std::move(runner).finish();
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

}  // namespace reasched
