// Open-loop load driver (EXPERIMENTS.md §E19): offers a request trace to a
// scheduler at a fixed arrival rate and measures *sojourn* — scheduled
// arrival to batch-applied — instead of closed-loop throughput. Closed-loop
// harnesses (sim/driver.hpp, bench E13) let a slow server throttle its own
// offered load, hiding queueing collapse; the open-loop histogram's tail is
// where overload actually shows (coordinated-omission-free: sojourn is
// charged from each request's *scheduled* arrival instant, so a stalled
// server keeps accruing wait for every request behind it).
//
// Two serving modes, selected by OpenLoopOptions::producers:
//
//   * producers == 0 — "direct" single-caller baseline: one thread pops
//     every arrival that is due and serves them through apply() in batches
//     capped at direct_batch (the pre-ingest posture: a single caller with
//     pre-formed fixed-size batches).
//   * producers >= 1 — ingestion front end (ingest/ingest_service.hpp):
//     arrivals are partitioned round-robin across producer threads, each
//     pushing its requests at their scheduled instants with externally
//     sequenced tickets (= trace index), so the applied order is exactly
//     trace order and the results stay comparable to the direct run
//     request-for-request. The adaptive batcher's B-or-T close is what
//     lets this mode amortize per-batch fixed costs under backlog and
//     sustain offered loads the fixed-batch baseline cannot at equal p99.
#pragma once

#include <cstdint>
#include <span>

#include "base/window.hpp"
#include "ingest/ingest_service.hpp"
#include "schedule/scheduler_interface.hpp"
#include "telemetry/histogram.hpp"

namespace reasched::sim {

struct OpenLoopOptions {
  /// Producer threads (0 = direct single-caller baseline, no ingest tier).
  std::size_t producers = 0;
  /// Offered arrival rate, requests per second. Arrivals are evenly paced:
  /// request i is due at i/offered_rps seconds after start.
  double offered_rps = 100'000.0;
  /// Direct mode: cap on each served batch (the fixed pre-formed batch
  /// size of the single-caller posture).
  std::size_t direct_batch = 64;
  /// Ingest mode: front-end tuning (external_sequencing and record_stats
  /// are forced; admission must stay disabled — tickets are pre-claimed).
  ingest::IngestOptions ingest;
};

struct OpenLoopReport {
  std::uint64_t requests = 0;
  /// Scheduler-level rejections (infeasible inserts), identical across
  /// modes for the same trace.
  std::uint64_t rejected = 0;
  double offered_rps = 0.0;
  /// requests / wall seconds from start to last apply. Equal to
  /// offered_rps when the server keeps up; lower means the run ended with
  /// backlog (the sojourn tail says by how much).
  double achieved_rps = 0.0;
  double seconds = 0.0;
  /// Scheduled-arrival → batch-applied, per request (ns).
  telemetry::LatencyHistogram sojourn;
  /// Ingest-mode accounting (all zeros in direct mode).
  ingest::IngestStats ingest;
  /// Background Scraper scrapes taken during the run (0 when
  /// ingest.telemetry.scrape_interval_ms == 0).
  std::uint64_t scrapes = 0;
};

/// Serves `trace` open-loop. The scheduler must start empty; the trace must
/// be valid for sequential serving (the usual churn-trace contract).
[[nodiscard]] OpenLoopReport serve_open_loop(IReallocScheduler& scheduler,
                                             std::span<const Request> trace,
                                             const OpenLoopOptions& options);

}  // namespace reasched::sim
