#include "sim/sweep.hpp"

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace reasched {

std::vector<SimReport> replay_sweep(const std::vector<SweepJob>& jobs,
                                    unsigned threads) {
  for (const auto& job : jobs) {
    RS_REQUIRE(job.make_scheduler != nullptr && job.trace != nullptr,
               "replay_sweep: incomplete job");
  }
  std::vector<SimReport> reports(jobs.size());
  ThreadPool pool(threads);
  pool.parallel_for(jobs.size(), [&](std::size_t index) {
    const SweepJob& job = jobs[index];
    const auto scheduler = job.make_scheduler();
    reports[index] = replay_trace(*scheduler, *job.trace, job.options);
  });
  return reports;
}

}  // namespace reasched
