// Replay driver: feeds request traces (or adaptive adversaries) to any
// IReallocScheduler, collecting metrics and — optionally — verifying after
// every request that (a) the output schedule is feasible for the *original*
// windows and (b) the scheduler's self-reported costs are consistent with
// an independent snapshot diff. This is the integration-test backbone and
// the measurement harness behind every experiment.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>

#include "base/window.hpp"
#include "metrics/collector.hpp"
#include "schedule/scheduler_interface.hpp"
#include "telemetry/options.hpp"

namespace reasched {

struct SimOptions {
  /// Validate the snapshot every k requests (0 = never, 1 = always). In
  /// batched mode (batch_size > 0) validation runs at the first batch
  /// boundary at or after each due request.
  std::uint64_t validate_every = 0;
  /// Cross-check self-reported costs against snapshot diffs every k requests
  /// (0 = never). Expensive: two snapshots per checked request. Ignored in
  /// batched mode (a per-batch diff cannot attribute moves to requests).
  std::uint64_t check_costs_every = 0;
  /// Count InfeasibleError on insert as a rejection and continue (true), or
  /// rethrow (false). Batched mode always tolerates (the batch API reports
  /// rejections instead of throwing).
  bool tolerate_infeasible = true;
  /// Serve requests through IReallocScheduler::apply in batches of this
  /// size (0 = per-request insert/erase). Metrics are identical either way
  /// for schedulers whose apply matches sequential semantics.
  std::size_t batch_size = 0;
  /// Run the scheduler's audit machinery every k requests (0 = never) by
  /// calling `audit_hook` — wire it to the scheduler under test's full
  /// audit() or incremental_audit() (or audit_balance[_incremental] for
  /// the service layer). The hook throws InternalError on a violation,
  /// which propagates out of the replay. In batched mode the hook runs at
  /// the first batch boundary at or after each due request.
  std::uint64_t audit_every = 0;
  std::function<void()> audit_hook;
  /// Per-request hook (request index, request, stats) for series plots.
  std::function<void(std::size_t, const Request&, const RequestStats&)> on_request;
  /// When non-empty, the served request stream is written to this file in
  /// the binary WAL trace format (workload/trace_io.hpp:
  /// write_trace_wal) — replay_trace records the whole trace up front;
  /// run_adaptive records the adversary's emitted requests at the end.
  std::string record_trace;
  /// Sample wall-clock request latency (per request, or per batch in
  /// batched mode) into SimReport::metrics.latency_hist(). Off by default:
  /// the two clock reads per request are measurable at hot-path speeds.
  bool record_latency = false;
  /// Runtime gate for the process-wide telemetry tier (src/telemetry/):
  /// replay flips the recording switches before serving (turn-on only).
  /// Independent of record_latency, which feeds the per-run
  /// MetricsCollector rather than the global registry.
  telemetry::TelemetryOptions telemetry;
};

struct SimReport {
  MetricsCollector metrics;
  std::uint64_t validation_failures = 0;
  std::uint64_t cost_mismatches = 0;
  /// Deletes of jobs whose insert had been rejected (tolerate_infeasible).
  std::uint64_t skipped_deletes = 0;
  std::string first_issue;
  double seconds = 0.0;

  [[nodiscard]] bool clean() const noexcept {
    return validation_failures == 0 && cost_mismatches == 0;
  }
};

/// Replays a static trace.
[[nodiscard]] SimReport replay_trace(IReallocScheduler& scheduler,
                                     std::span<const Request> trace,
                                     const SimOptions& options = {});

/// Drives an adaptive adversary: `next` receives the schedule produced by
/// the previous request and returns the next request (nullopt = done).
using AdversaryFn = std::function<std::optional<Request>(const Schedule&)>;
[[nodiscard]] SimReport run_adaptive(IReallocScheduler& scheduler, const AdversaryFn& next,
                                     const SimOptions& options = {});

}  // namespace reasched
