// Parallel sweep runner: replays many independent (scheduler, trace) pairs
// across a thread pool, preserving submission order in the results. The
// schedulers themselves are sequential (the model is an online request
// stream); parameter sweeps across schedulers/sizes/seeds are
// embarrassingly parallel, and the experiment binaries use this to fill
// their tables using all cores.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "schedule/scheduler_interface.hpp"
#include "sim/driver.hpp"

namespace reasched {

struct SweepJob {
  /// Builds the scheduler for this cell (executed on the worker thread).
  std::function<std::unique_ptr<IReallocScheduler>()> make_scheduler;
  /// The request trace to replay; must outlive the sweep.
  const std::vector<Request>* trace = nullptr;
  SimOptions options;
};

/// Runs every job (threads = 0 → hardware concurrency) and returns reports
/// in job order.
[[nodiscard]] std::vector<SimReport> replay_sweep(const std::vector<SweepJob>& jobs,
                                                  unsigned threads = 0);

}  // namespace reasched
