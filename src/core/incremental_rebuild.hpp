// De-amortized trimming rebuilds (paper §4, "Trimming Windows to n and
// Deamortization").
//
// The amortized scheduler rebuilds from scratch whenever the n* estimate
// doubles or halves — O(1) amortized but Θ(n) on the rebuild request. The
// paper's fix: interleave two schedules on the even and odd timeslots. The
// old generation lives on one parity, the new generation on the other, and
// every request moves two jobs from old to new, so a rebuild completes
// within n/2 requests while each individual request stays O(log*).
//
// Window transform: an aligned outer window [a, a+2^k) maps on parity p to
// the aligned virtual window [a/2, a/2 + 2^{k-1}) (slot v ↔ outer 2v+p).
// Squeezing into half the slots costs a factor 2 of underallocation — the
// paper requires the instance to be 2γ-underallocated for the deamortized
// variant, which is why this is a separate adapter rather than the default.
//
// The adapter owns the n*/trimming logic; its inner ReservationSchedulers
// run with trimming disabled and in best-effort overflow mode (a mid-flight
// migration must not throw).
//
// Work-list discipline: a trigger snapshots the active ids into a plain
// vector (one memcpy-ish pass — no per-id hash-set inserts) and migration
// walks it with a cursor; `JobInfo::generation` is the source of truth, so
// stale entries (jobs erased or already migrated) are skipped for free.
// The per-request pace self-adjusts: nominally the paper's two jobs per
// request, scaled up just enough that the backlog provably drains before
// the next doubling/halving trigger can fire — the old "finish the whole
// pending set in one burst on re-trigger" path is thereby reduced to a
// truly degenerate safety net (adversarial tiny-n* cases only).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/invariant_check.hpp"
#include "core/reservation_scheduler.hpp"
#include "core/scheduler_options.hpp"
#include "schedule/scheduler_interface.hpp"

namespace reasched {

class IncrementalRebuildScheduler final : public IReallocScheduler {
 public:
  explicit IncrementalRebuildScheduler(SchedulerOptions options = {});

  /// Window must be aligned with span >= 2 (a span-1 window cannot survive
  /// the parity split; γ-underallocated instances never contain one).
  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;

  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override { return jobs_.size(); }
  [[nodiscard]] unsigned machines() const override { return 1; }
  [[nodiscard]] std::string name() const override {
    return "reservation-incremental-rebuild";
  }

  [[nodiscard]] std::uint64_t n_star() const noexcept { return n_star_; }
  /// True while a generation migration is in flight.
  [[nodiscard]] bool migrating() const noexcept { return pending_count_ > 0; }
  /// Jobs still awaiting migration to the current generation.
  [[nodiscard]] std::size_t pending_migrations() const noexcept {
    return pending_count_;
  }

  /// Internal consistency audit (tests): the adapter coherence checks plus
  /// a full audit of both inner generations. Equivalent to running every
  /// check registered by register_invariants.
  void audit() const;

  /// Registers the adapter's named invariant checks
  /// ("irs.adapter-coherence", "irs.generations") bound to this instance.
  void register_invariants(audit::InvariantTable& table) const;

  /// Incremental audit: the adapter's O(1) counter checks plus the inner
  /// generations' dirty-region audits (each inner ReservationScheduler
  /// carries its own engine when SchedulerOptions::audit_policy enables
  /// one). The O(n) merged-snapshot parity check stays full-sweep-only.
  void incremental_audit();

 private:
  struct JobInfo {
    Window window;            // original aligned window
    std::uint8_t generation;  // 0 or 1: which inner scheduler holds it
  };

  [[nodiscard]] Window trim(JobId id, Window w) const;
  [[nodiscard]] static Window to_virtual(const Window& w);
  [[nodiscard]] Time to_outer(Time virtual_slot, std::uint8_t generation) const;

  void begin_migration(std::uint64_t new_n_star, RequestStats& stats);
  /// Moves up to `count` pending jobs into the current generation.
  void migrate_some(std::size_t count, RequestStats& stats);
  void maybe_trigger(RequestStats& stats);
  /// Paper pace (2/request), scaled up only when the backlog would not
  /// drain before the earliest possible next trigger.
  [[nodiscard]] std::size_t migration_pace() const noexcept;
  /// Runs whichever audits the runtime gates request after a request.
  void maybe_audit();
  /// Adapter-level coherence: generation job counts, pending/backlog
  /// agreement, work-cursor bounds, merged-snapshot parity (O(n)).
  void check_adapter_coherence() const;
  /// Adapter-level O(1) subset of the above (no full recount/merge).
  void check_adapter_counters() const;

  SchedulerOptions options_;
  std::unique_ptr<ReservationScheduler> generations_[2];
  std::uint8_t current_ = 0;  // generation receiving new jobs; parity = current_
  std::unordered_map<JobId, JobInfo> jobs_;
  /// Migration work list: ids snapshotted at the trigger, walked by cursor.
  /// Entries may be stale (erased / already current); JobInfo::generation
  /// decides. pending_count_ tracks the exact number of live stale-gen jobs.
  std::vector<JobId> work_list_;
  std::size_t work_cursor_ = 0;
  std::size_t pending_count_ = 0;
  std::uint64_t n_star_ = 8;
  std::uint64_t audit_request_index_ = 0;  // audit cadence counter
};

}  // namespace reasched
