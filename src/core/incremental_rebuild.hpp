// De-amortized trimming rebuilds (paper §4, "Trimming Windows to n and
// Deamortization").
//
// The amortized scheduler rebuilds from scratch whenever the n* estimate
// doubles or halves — O(1) amortized but Θ(n) on the rebuild request. The
// paper's fix: interleave two schedules on the even and odd timeslots. The
// old generation lives on one parity, the new generation on the other, and
// every request moves two jobs from old to new, so a rebuild completes
// within n/2 requests while each individual request stays O(log*).
//
// Window transform: an aligned outer window [a, a+2^k) maps on parity p to
// the aligned virtual window [a/2, a/2 + 2^{k-1}) (slot v ↔ outer 2v+p).
// Squeezing into half the slots costs a factor 2 of underallocation — the
// paper requires the instance to be 2γ-underallocated for the deamortized
// variant, which is why this is a separate adapter rather than the default.
//
// The adapter owns the n*/trimming logic; its inner ReservationSchedulers
// run with trimming disabled and in best-effort overflow mode (a mid-flight
// migration must not throw).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/reservation_scheduler.hpp"
#include "core/scheduler_options.hpp"
#include "schedule/scheduler_interface.hpp"

namespace reasched {

class IncrementalRebuildScheduler final : public IReallocScheduler {
 public:
  explicit IncrementalRebuildScheduler(SchedulerOptions options = {});

  /// Window must be aligned with span >= 2 (a span-1 window cannot survive
  /// the parity split; γ-underallocated instances never contain one).
  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;

  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override { return jobs_.size(); }
  [[nodiscard]] unsigned machines() const override { return 1; }
  [[nodiscard]] std::string name() const override {
    return "reservation-incremental-rebuild";
  }

  [[nodiscard]] std::uint64_t n_star() const noexcept { return n_star_; }
  /// True while a generation migration is in flight.
  [[nodiscard]] bool migrating() const noexcept { return !pending_.empty(); }
  /// Jobs still awaiting migration to the current generation.
  [[nodiscard]] std::size_t pending_migrations() const noexcept {
    return pending_.size();
  }

  /// Internal consistency audit (tests).
  void audit() const;

 private:
  struct JobInfo {
    Window window;            // original aligned window
    std::uint8_t generation;  // 0 or 1: which inner scheduler holds it
  };

  [[nodiscard]] Window trim(JobId id, Window w) const;
  [[nodiscard]] static Window to_virtual(const Window& w);
  [[nodiscard]] Time to_outer(Time virtual_slot, std::uint8_t generation) const;

  void begin_migration(std::uint64_t new_n_star, RequestStats& stats);
  /// Moves up to `count` pending jobs into the current generation.
  void migrate_some(std::size_t count, RequestStats& stats);
  void maybe_trigger(RequestStats& stats);

  SchedulerOptions options_;
  std::unique_ptr<ReservationScheduler> generations_[2];
  std::uint8_t current_ = 0;  // generation receiving new jobs; parity = current_
  std::unordered_map<JobId, JobInfo> jobs_;
  std::unordered_set<JobId> pending_;  // jobs still in the old generation
  std::uint64_t n_star_ = 8;
};

}  // namespace reasched
