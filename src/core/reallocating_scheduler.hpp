// The full Theorem-1 pipeline: align (§5) → delegate round-robin (§3) →
// single-machine pecking-order scheduling with reservations (§4).
//
// For any m-machine γ-underallocated request sequence (γ the paper's
// constant), each request causes O(min{log* n, log* Δ}) reallocations and
// at most one machine migration.
#pragma once

#include <string>

#include "core/multi_machine.hpp"
#include "core/scheduler_options.hpp"
#include "schedule/scheduler_interface.hpp"

namespace reasched {

class ReallocatingScheduler final : public IReallocScheduler {
 public:
  /// Default pipeline: per-machine ReservationScheduler instances.
  explicit ReallocatingScheduler(unsigned machines, SchedulerOptions options = {});

  /// Custom inner scheduler (e.g. NaiveScheduler) behind the same
  /// align-and-delegate front end; used by benchmarks for fair comparison.
  ReallocatingScheduler(unsigned machines, const MultiMachineScheduler::Factory& factory,
                        std::string label);

  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;

  [[nodiscard]] Schedule snapshot() const override { return inner_.snapshot(); }
  [[nodiscard]] std::size_t active_jobs() const override { return inner_.active_jobs(); }
  [[nodiscard]] unsigned machines() const override { return inner_.machines(); }
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] MultiMachineScheduler& balancer() noexcept { return inner_; }

 private:
  MultiMachineScheduler inner_;
  std::string label_;
};

}  // namespace reasched
