#include "core/incremental_rebuild.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace reasched {

namespace {

constexpr std::uint64_t kMinNStar = 8;

std::uint64_t job_hash(JobId id) noexcept {
  std::uint64_t z = id.value + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

IncrementalRebuildScheduler::IncrementalRebuildScheduler(SchedulerOptions options)
    : options_(std::move(options)) {
  RS_REQUIRE(is_pow2(options_.gamma),
             "IncrementalRebuildScheduler: gamma must be a power of two");
  SchedulerOptions inner = options_;
  inner.trimming = false;  // the adapter owns n*/trimming
  inner.overflow = OverflowPolicy::kBestEffort;  // migrations must not throw
  inner.audit = false;
  // The inner generations keep the adapter's engine mode (their mutations
  // must be tracked) but never audit autonomously — the adapter's audit
  // drives them at its own cadence.
  inner.audit_policy.cadence = 0;
  generations_[0] = std::make_unique<ReservationScheduler>(inner);
  generations_[1] = std::make_unique<ReservationScheduler>(inner);
}

Window IncrementalRebuildScheduler::trim(JobId id, Window w) const {
  const u64 limit = 2 * options_.gamma * n_star_;
  if (static_cast<u64>(w.span()) <= limit) return w;
  const u64 blocks = static_cast<u64>(w.span()) / limit;
  const u64 pick = job_hash(id) % blocks;
  const Time start = w.start + static_cast<Time>(pick * limit);
  return Window{start, start + static_cast<Time>(limit)};
}

Window IncrementalRebuildScheduler::to_virtual(const Window& w) {
  // Outer [a, a+2^k), a multiple of 2^k, k >= 1  →  [a/2, a/2 + 2^{k-1}).
  // Works for either parity: the outer slots {2v, 2v+1} both lie in the
  // outer window exactly when v lies in the virtual one.
  const Time half_start = w.start / 2;
  return Window{half_start, half_start + w.span() / 2};
}

Time IncrementalRebuildScheduler::to_outer(Time virtual_slot,
                                           std::uint8_t generation) const {
  return 2 * virtual_slot + generation;
}

void IncrementalRebuildScheduler::begin_migration(std::uint64_t new_n_star,
                                                  RequestStats& stats) {
  // A still-running migration at re-trigger time is the degenerate safety
  // net only: the adaptive pace (migration_pace) drains the backlog before
  // the thresholds can fire again except at adversarial tiny n*. Finish it
  // in one burst — bounded by that same tiny size.
  if (pending_count_ > 0) migrate_some(pending_count_, stats);
  n_star_ = new_n_star;
  current_ = static_cast<std::uint8_t>(1 - current_);
  // Snapshot the work list in one pass; no per-id set bookkeeping. Every
  // active job is now in the stale generation by definition.
  work_list_.clear();
  work_list_.reserve(jobs_.size());
  for (const auto& [id, info] : jobs_) work_list_.push_back(id);
  work_cursor_ = 0;
  pending_count_ = jobs_.size();
  stats.rebuilt = true;
}

void IncrementalRebuildScheduler::migrate_some(std::size_t count, RequestStats& stats) {
  while (count > 0 && pending_count_ > 0) {
    RS_CHECK(work_cursor_ < work_list_.size(),
             "migrate: pending jobs but the work list is exhausted");
    const JobId id = work_list_[work_cursor_++];
    const auto it = jobs_.find(id);
    // Stale entry: erased since the snapshot, or already migrated (an
    // erase-then-reinsert of the same id lands in the current generation).
    if (it == jobs_.end() || it->second.generation == current_) continue;
    JobInfo& info = it->second;
    stats += generations_[info.generation]->erase(id);
    const Window trimmed = trim(id, info.window);
    stats += generations_[current_]->insert(id, to_virtual(trimmed));
    info.generation = current_;
    --pending_count_;
    ++stats.reallocations;  // the migrated job itself moved
    --count;
  }
}

std::size_t IncrementalRebuildScheduler::migration_pace() const noexcept {
  if (pending_count_ == 0) return 0;
  // Requests until the earliest possible next trigger: a doubling needs the
  // active count to climb above n*, a halving to fall below n*/4 — each
  // request changes the count by at most one.
  const std::size_t n = jobs_.size();
  const std::size_t until_double = n > n_star_ ? 1 : static_cast<std::size_t>(n_star_) - n + 1;
  std::size_t runway = until_double;
  if (n_star_ > kMinNStar) {
    const std::size_t quarter = static_cast<std::size_t>(n_star_ / 4);
    const std::size_t until_halve = n < quarter ? 1 : n - quarter + 1;
    runway = std::min(runway, until_halve);
  }
  // Drain pending_count_ within `runway` requests; never below the paper's
  // two-per-request pace.
  const std::size_t needed = (pending_count_ + runway - 1) / runway;
  return needed > 2 ? needed : 2;
}

void IncrementalRebuildScheduler::maybe_trigger(RequestStats& stats) {
  if (jobs_.size() > n_star_) {
    begin_migration(n_star_ * 2, stats);
  } else if (n_star_ > kMinNStar && jobs_.size() < n_star_ / 4) {
    begin_migration(n_star_ / 2, stats);
  }
}

RequestStats IncrementalRebuildScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid() && window.aligned(),
             "IncrementalRebuildScheduler::insert: window must be aligned");
  RS_REQUIRE(window.span() >= 2,
             "IncrementalRebuildScheduler::insert: span-1 windows cannot "
             "survive the even/odd split");
  RS_REQUIRE(!jobs_.contains(id),
             "IncrementalRebuildScheduler::insert: id already active");

  RequestStats stats;
  jobs_.emplace(id, JobInfo{window, current_});
  try {
    stats += generations_[current_]->insert(id, to_virtual(trim(id, window)));
  } catch (...) {
    jobs_.erase(id);
    throw;
  }
  maybe_trigger(stats);
  // The paper's two-jobs-per-request pace, raised adaptively when the
  // backlog would otherwise outlive the runway to the next trigger.
  migrate_some(migration_pace(), stats);
  maybe_audit();
  return stats;
}

RequestStats IncrementalRebuildScheduler::erase(JobId id) {
  const auto it = jobs_.find(id);
  RS_REQUIRE(it != jobs_.end(), "IncrementalRebuildScheduler::erase: id not active");
  RequestStats stats = generations_[it->second.generation]->erase(id);
  if (it->second.generation != current_) {
    RS_CHECK(pending_count_ > 0, "erase: stale-generation job without a backlog");
    --pending_count_;  // erasing a stale-generation job is migration progress
  }
  jobs_.erase(it);
  maybe_trigger(stats);
  migrate_some(migration_pace(), stats);
  maybe_audit();
  return stats;
}

Schedule IncrementalRebuildScheduler::snapshot() const {
  Schedule out(1);
  for (std::uint8_t generation = 0; generation < 2; ++generation) {
    const Schedule inner = generations_[generation]->snapshot();
    for (const auto& [id, placement] : inner.assignments()) {
      out.assign(id, Placement{0, to_outer(placement.slot, generation)});
    }
  }
  return out;
}

void IncrementalRebuildScheduler::check_adapter_counters() const {
  RS_CHECK(generations_[0]->active_jobs() + generations_[1]->active_jobs() ==
               jobs_.size(),
           "incremental audit: job count mismatch");
  RS_CHECK(pending_count_ <= jobs_.size(),
           "incremental audit: pending count exceeds the active set");
  RS_CHECK(work_cursor_ <= work_list_.size(),
           "incremental audit: work cursor overran the list");
}

void IncrementalRebuildScheduler::check_adapter_coherence() const {
  check_adapter_counters();
  std::size_t stale = 0;
  for (const auto& [id, info] : jobs_) {
    if (info.generation != current_) ++stale;
  }
  RS_CHECK(stale == pending_count_, "incremental audit: pending count diverged");
  const Schedule merged = snapshot();
  RS_CHECK(merged.size() == jobs_.size(), "incremental audit: snapshot size");
  for (const auto& [id, placement] : merged.assignments()) {
    const auto it = jobs_.find(id);
    RS_CHECK(it != jobs_.end(), "incremental audit: ghost placement");
    RS_CHECK(it->second.window.contains(placement.slot),
             "incremental audit: placement outside original window");
    RS_CHECK((placement.slot & 1) == it->second.generation,
             "incremental audit: parity mismatch");
  }
}

void IncrementalRebuildScheduler::audit() const {
  check_adapter_coherence();
  generations_[0]->audit();
  generations_[1]->audit();
}

void IncrementalRebuildScheduler::incremental_audit() {
  check_adapter_counters();
  generations_[0]->incremental_audit();
  generations_[1]->incremental_audit();
}

void IncrementalRebuildScheduler::register_invariants(
    audit::InvariantTable& table) const {
  const std::string component = "IncrementalRebuildScheduler";
  table.add("irs.adapter-coherence", component,
            "generation job counts, migration backlog/cursor agreement, "
            "merged-snapshot parity (even/odd interleaving)",
            [this] { check_adapter_coherence(); });
  table.add("irs.generations", component,
            "both inner generations pass their own full audits",
            [this] {
              generations_[0]->audit();
              generations_[1]->audit();
            });
}

void IncrementalRebuildScheduler::maybe_audit() {
  ++audit_request_index_;
  if (options_.audit) audit();  // legacy gate: full sweep every request
  const audit::AuditPolicy& policy = options_.audit_policy;
  if (!policy.due(audit_request_index_)) return;
  if (policy.mode == audit::Mode::kFull) {
    audit();
    return;
  }
  incremental_audit();
}

}  // namespace reasched
