#include "core/naive_scheduler.hpp"

#include "util/assert.hpp"

namespace reasched {

NaiveScheduler::NaiveScheduler(SchedulerOptions options, Victim victim)
    : options_(std::move(options)), victim_policy_(victim) {}

RequestStats NaiveScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid(), "NaiveScheduler::insert: empty window");
  RS_REQUIRE(!jobs_.contains(id), "NaiveScheduler::insert: id already active");
  jobs_.emplace(id, JobState{window, 0});
  RequestStats stats;
  try {
    place_cascading(id, stats, /*is_reallocation=*/false);
  } catch (const InfeasibleError&) {
    jobs_.erase(id);
    throw;
  }
  return stats;
}

RequestStats NaiveScheduler::erase(JobId id) {
  const auto it = jobs_.find(id);
  RS_REQUIRE(it != jobs_.end(), "NaiveScheduler::erase: id not active");
  occupant_.erase(it->second.slot);
  runs_.release(it->second.slot);
  jobs_.erase(it);
  return RequestStats{};  // deletions never reallocate (Lemma 4)
}

void NaiveScheduler::place_cascading(JobId id, RequestStats& stats, bool is_reallocation) {
  // Iterative displacement chain: spans strictly increase along the chain,
  // so it terminates after at most (#distinct spans) steps. A journal of
  // (slot, evicted job) lets a dead-ended chain unwind so a failed insert
  // leaves the schedule exactly as it was (strong exception guarantee).
  struct Step {
    JobId placed;
    Time slot;
    JobId evicted;
  };
  std::vector<Step> journal;
  JobId current = id;
  bool counts = is_reallocation;
  for (;;) {
    JobState& state = jobs_.at(current);
    const Window w = state.window;

    // First fit via the run index: O(log n) instead of walking the packed
    // prefix slot by slot.
    const Time gap = runs_.next_free(w.start);
    if (gap < w.end) {
      state.slot = gap;
      occupant_[gap] = current;
      runs_.occupy(gap);
      if (counts) ++stats.reallocations;
      return;
    }

    // Window fully occupied: find a displacement victim (strictly longer
    // span only — pecking order). kFirst stops at the first candidate.
    JobId victim{};
    Time victim_slot = 0;
    Time victim_span = w.span();
    for (auto it = occupant_.lower_bound(w.start);
         it != occupant_.end() && it->first < w.end; ++it) {
      const Time occupant_span = jobs_.at(it->second).window.span();
      const bool better = victim_policy_ == Victim::kFirst
                              ? (victim_span == w.span() && occupant_span > w.span())
                              : (occupant_span > victim_span);
      if (better) {
        victim_span = occupant_span;
        victim = it->second;
        victim_slot = it->first;
        if (victim_policy_ == Victim::kFirst) break;
      }
    }
    if (victim_span == w.span()) {
      // Dead end: unwind the chain. Each evicted job's original slot is
      // exactly the slot recorded in its step.
      for (auto step = journal.rbegin(); step != journal.rend(); ++step) {
        occupant_[step->slot] = step->evicted;
        jobs_.at(step->evicted).slot = step->slot;
      }
      throw InfeasibleError(
          "naive scheduler: window is full of equal-or-shorter jobs; instance "
          "infeasible for pecking-order insertion");
    }
    // Displace the longest victim and continue the chain with it.
    journal.push_back(Step{current, victim_slot, victim});
    state.slot = victim_slot;
    occupant_[victim_slot] = current;
    if (counts) ++stats.reallocations;
    current = victim;
    counts = true;  // every displaced job is a pre-existing job: it counts
  }
}

Schedule NaiveScheduler::snapshot() const {
  Schedule out(1);
  for (const auto& [id, state] : jobs_) {
    out.assign(id, Placement{0, state.slot});
  }
  return out;
}

}  // namespace reasched
