#include "core/multi_machine.hpp"

#include "util/assert.hpp"

namespace reasched {

MultiMachineScheduler::MultiMachineScheduler(unsigned machines, const Factory& factory) {
  RS_REQUIRE(machines >= 1, "MultiMachineScheduler: need at least one machine");
  machines_.reserve(machines);
  for (unsigned i = 0; i < machines; ++i) {
    auto scheduler = factory();
    RS_REQUIRE(scheduler != nullptr, "MultiMachineScheduler: factory returned null");
    RS_REQUIRE(scheduler->machines() == 1,
               "MultiMachineScheduler: inner schedulers must be single-machine");
    machines_.push_back(std::move(scheduler));
  }
}

std::string MultiMachineScheduler::name() const {
  return "multi[" + std::to_string(machines_.size()) + "x " + machines_.front()->name() +
         "]";
}

RequestStats MultiMachineScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid(), "MultiMachineScheduler::insert: empty window");
  RS_REQUIRE(!jobs_.contains(id), "MultiMachineScheduler::insert: id already active");

  auto& balance = windows_[window];
  if (balance.per_machine.empty()) balance.per_machine.resize(machines_.size());
  const auto machine = static_cast<MachineId>(balance.count % machines_.size());

  RequestStats stats;
  try {
    stats = machines_[machine]->insert(id, window);
  } catch (...) {
    if (balance.count == 0) windows_.erase(window);
    throw;
  }
  ++balance.count;
  balance.per_machine[machine].insert(id);
  jobs_[id] = JobInfo{window, machine};
  return stats;
}

RequestStats MultiMachineScheduler::erase(JobId id) {
  const JobInfo* info = jobs_.find(id);
  RS_REQUIRE(info != nullptr, "MultiMachineScheduler::erase: id not active");
  const Window window = info->window;
  const MachineId machine = info->machine;

  auto& balance = windows_.at(window);
  const std::uint64_t n_before = balance.count;
  RS_CHECK(n_before >= 1, "balance ledger underflow");

  RequestStats stats = machines_[machine]->erase(id);
  balance.per_machine[machine].erase(id);
  --balance.count;
  jobs_.erase(id);

  // Rebalance: the latest-extra machine donates one W-job to the machine
  // that lost one — the single migration Theorem 1 allows per request.
  const auto donor =
      static_cast<MachineId>((n_before - 1) % machines_.size());
  if (donor != machine && balance.count > 0) {
    auto& pool = balance.per_machine[donor];
    RS_CHECK(!pool.empty(), "rebalance: donor machine has no job of this window");
    const JobId moved = pool.any();
    stats += machines_[donor]->erase(moved);
    try {
      stats += machines_[machine]->insert(moved, window);
    } catch (...) {
      // Restore the donor's copy so the schedule stays complete, then
      // propagate the failure.
      machines_[donor]->insert(moved, window);
      throw;
    }
    pool.erase(moved);
    balance.per_machine[machine].insert(moved);
    jobs_.at(moved).machine = machine;
    ++stats.reallocations;
    ++stats.migrations;
  }
  if (balance.count == 0) windows_.erase(window);
  return stats;
}

Schedule MultiMachineScheduler::snapshot() const {
  Schedule out(machines());
  for (unsigned machine = 0; machine < machines_.size(); ++machine) {
    const Schedule inner = machines_[machine]->snapshot();
    for (const auto& [job, placement] : inner.assignments()) {
      out.assign(job, Placement{static_cast<MachineId>(machine), placement.slot});
    }
  }
  return out;
}

void MultiMachineScheduler::audit_balance() const {
  windows_.for_each([&](const Window&, const BalanceState& balance) {
    const std::uint64_t m = machines_.size();
    const std::uint64_t floor_share = balance.count / m;
    const std::uint64_t extras = balance.count % m;
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t share = balance.per_machine[i].size();
      const std::uint64_t expected = floor_share + (i < extras ? 1 : 0);
      RS_CHECK(share == expected,
               "audit_balance: machine share deviates from round-robin invariant");
      total += share;
    }
    RS_CHECK(total == balance.count, "audit_balance: count mismatch");
  });
}

}  // namespace reasched
