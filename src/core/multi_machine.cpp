#include "core/multi_machine.hpp"

#include "util/assert.hpp"

namespace reasched {

MultiMachineScheduler::MultiMachineScheduler(unsigned machines, const Factory& factory)
    : ledger_(machines) {
  RS_REQUIRE(machines >= 1, "MultiMachineScheduler: need at least one machine");
  machines_.reserve(machines);
  for (unsigned i = 0; i < machines; ++i) {
    auto scheduler = factory();
    RS_REQUIRE(scheduler != nullptr, "MultiMachineScheduler: factory returned null");
    RS_REQUIRE(scheduler->machines() == 1,
               "MultiMachineScheduler: inner schedulers must be single-machine");
    machines_.push_back(std::move(scheduler));
  }
}

std::string MultiMachineScheduler::name() const {
  return "multi[" + std::to_string(machines_.size()) + "x " + machines_.front()->name() +
         "]";
}

RequestStats MultiMachineScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid(), "MultiMachineScheduler::insert: empty window");
  RS_REQUIRE(!jobs_.contains(id), "MultiMachineScheduler::insert: id already active");

  const MachineId machine = ledger_.plan_insert(window);
  // The ledger commits only after the machine accepted, so a rejected insert
  // leaves no trace.
  const RequestStats stats = machines_[machine]->insert(id, window);
  ledger_.commit_insert(id, window, machine);
  jobs_[id] = JobInfo{window, machine};
  return stats;
}

RequestStats MultiMachineScheduler::erase(JobId id) {
  const JobInfo* info = jobs_.find(id);
  RS_REQUIRE(info != nullptr, "MultiMachineScheduler::erase: id not active");
  const Window window = info->window;
  const MachineId machine = info->machine;

  // Rebalance: the latest-extra machine donates one W-job to the machine
  // that lost one — the single migration Theorem 1 allows per request.
  const BalanceLedger::Migration migration = ledger_.plan_erase(window, machine);
  RequestStats stats = machines_[machine]->erase(id);
  ledger_.commit_erase(id, window, machine);
  jobs_.erase(id);

  if (migration.needed) {
    stats += machines_[migration.donor]->erase(migration.moved);
    try {
      stats += machines_[machine]->insert(migration.moved, window);
    } catch (...) {
      // Restore the donor's copy so the schedule stays complete, then
      // propagate the failure.
      machines_[migration.donor]->insert(migration.moved, window);
      throw;
    }
    ledger_.commit_migration(window, migration, machine);
    jobs_.at(migration.moved).machine = machine;
    ++stats.reallocations;
    ++stats.migrations;
  }
  return stats;
}

Schedule MultiMachineScheduler::snapshot() const {
  Schedule out(machines());
  for (unsigned machine = 0; machine < machines_.size(); ++machine) {
    const Schedule inner = machines_[machine]->snapshot();
    for (const auto& [job, placement] : inner.assignments()) {
      out.assign(job, Placement{static_cast<MachineId>(machine), placement.slot});
    }
  }
  return out;
}

}  // namespace reasched
