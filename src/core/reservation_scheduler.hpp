// Single-machine pecking-order scheduling with reservations (paper §4,
// Figure 1) — the paper's main algorithmic contribution.
//
// Overview of the implementation strategy (see DESIGN.md §3 for the full
// rationale):
//
//  * Levels. A job with (aligned) window span in (L_ℓ, L_{ℓ+1}] is a
//    level-ℓ job. Level-ℓ windows are partitioned into aligned *intervals*
//    of L_ℓ slots. Level 0 (spans ≤ L₁ = 32) is the recursion base and uses
//    plain pecking order — a constant amount of work.
//
//  * Reservations are counted, not stored. Invariant 5 makes the number of
//    reservations a window W with x jobs holds in each of its 2^k intervals
//    a closed-form function r(W,I) = ⌊2x/2^k⌋ + 1 + [idx(I) < 2x mod 2^k].
//    Which reservations an interval *fulfills* is the shortest-window-first
//    greedy over these counts (Observation 7: history independent), so we
//    recompute fulfillment on demand instead of mutating reservation
//    objects. Windows with zero jobs still contribute their baseline one
//    reservation per interval ("virtual windows") exactly as the paper
//    requires — they consume fulfillment priority but hold no slots.
//
//  * Concrete slot assignment is lazy. A window's *assigned* slots (the
//    slots backing its fulfilled reservations) are materialized on demand,
//    maintaining a(W,I) <= f(W,I). Claims always succeed under that
//    invariant (free allowance >= Σf - Σa). Releases — the "waitlist a
//    fulfilled reservation" arrow in Figure 1 — happen whenever a
//    recomputation finds a(W,I) > f(W,I), and may force a MOVE of a job
//    sitting on a released slot.
//
//  * MOVE is a pure swap. When job j moves from slot s to its window's
//    fulfilled empty slot s', both slots lie in the same ancestor interval
//    at every higher level (aligned nesting), so all higher-level
//    bookkeeping for s and s' is swapped wholesale; a higher-level job on
//    s' is rehoused to s. This is exactly the Figure-1 MOVE including its
//    "schedule h in s instead of s'" comment, and causes no further
//    cascading.
//
//  * PLACE may displace one higher-level job h; the slot is withdrawn from
//    every higher-level allowance (lines 17-21), each of which reconciles
//    (possibly waitlisting the marginal window's reservation → one MOVE per
//    level), and h re-places at its own level. Displacements strictly
//    increase span, so the cascade has O(log* Δ) steps.
//
//  * Trimming (§4 "Trimming Windows to n"): n* doubles/halves with the
//    active-job count; windows wider than 2γn* are trimmed to an aligned
//    sub-window of span 2γn*, and the schedule is rebuilt from scratch on
//    every n* change (amortized O(1) reallocations per request).
//
// Cost accounting: every physical move of a pre-existing job is one
// reallocation (the request's own insert placement / delete removal is
// free, matching §2's cost model).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/scheduler_options.hpp"
#include "core/window_key.hpp"
#include "schedule/scheduler_interface.hpp"
#include "schedule/slot_runs.hpp"

namespace reasched {

class ReservationScheduler final : public IReallocScheduler {
 public:
  explicit ReservationScheduler(SchedulerOptions options = {});

  /// Window must be aligned (§4 operates post-alignment; the multi-machine
  /// pipeline in ReallocatingScheduler aligns unrestricted windows first).
  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;

  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override { return jobs_.size(); }
  [[nodiscard]] unsigned machines() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "reservation-pecking-order"; }

  // ---- introspection (tests, benches, EXPERIMENTS.md) ----

  /// Fulfillment table of one interval: the per-window reservation and
  /// fulfilled counts the greedy derives. Used by the Observation-7
  /// history-independence tests.
  struct FulfillmentEntry {
    WindowKey window;
    bool active = false;
    std::uint32_t reservations = 0;
    std::uint32_t fulfilled = 0;
  };
  [[nodiscard]] std::vector<FulfillmentEntry> fulfillment_of_interval(
      unsigned level, Time interval_base) const;

  [[nodiscard]] std::uint64_t n_star() const noexcept { return n_star_; }
  [[nodiscard]] std::uint64_t parked_jobs() const noexcept { return parked_count_; }
  [[nodiscard]] const SchedulerOptions& options() const noexcept { return options_; }

  /// Full internal-invariant audit; throws InternalError on any violation.
  /// O(total state); runs automatically after each request when
  /// options.audit is set.
  void audit() const;

 private:
  static constexpr Time kNoSlot = std::numeric_limits<Time>::min();

  struct JobState {
    Window original;  // aligned window as submitted
    Window window;    // after trimming (== original unless trimmed)
    unsigned level = 0;
    Time slot = kNoSlot;
    bool parked = false;  // placed outside the reservation system
  };

  struct SlotInfo {
    bool lower_occupied = false;  // occupied by a job "below" this level
    bool assigned = false;        // concrete fulfilled reservation
    WindowKey owner{};            // valid iff assigned
  };

  struct Interval {
    Time base = 0;
    std::vector<SlotInfo> slots;
    std::uint32_t lower_count = 0;
    std::uint32_t assigned_count = 0;
  };

  struct ActiveWindow {
    std::uint64_t jobs = 0;  // x
    /// All concrete fulfilled slots of this window (global coordinates).
    std::unordered_set<Time> assigned_slots;
    /// Subset of assigned_slots with no job of this level on them — the
    /// slots Invariant 6 / Lemma 8 hand out. (They may hold a higher-level
    /// job, which placement will displace.)
    std::unordered_set<Time> free_assigned;
    std::uint64_t claim_cursor = 0;  // round-robin claim-scan position
  };

  struct LevelState {
    u64 interval_size = 0;
    unsigned interval_log = 0;
    u64 max_span = 0;
    unsigned min_span_log = 0;  // smallest span exponent at this level
    unsigned max_span_log = 0;
    std::unordered_map<Time, Interval> intervals;  // key: interval base
    std::unordered_map<WindowKey, ActiveWindow> windows;
  };

  struct FulRow {
    WindowKey key;
    const ActiveWindow* window = nullptr;  // null for virtual windows
    std::uint32_t reservations = 0;
    std::uint32_t fulfilled = 0;
  };

  // -- geometry helpers --
  [[nodiscard]] unsigned top_level() const noexcept {
    return static_cast<unsigned>(levels_.size()) - 1;
  }
  [[nodiscard]] Time interval_base_of(unsigned level, Time slot) const;
  [[nodiscard]] Time nth_interval_base(const WindowKey& w, unsigned level, u64 index) const;
  /// Levels >= `from_level` at which `job` makes its slot unavailable
  /// ("lower occupied"): parked jobs block their own level as well.
  [[nodiscard]] unsigned block_floor(const JobState& job) const noexcept;

  // -- interval state --
  Interval& get_or_create_interval(unsigned level, Time base);
  [[nodiscard]] Interval* find_interval(unsigned level, Time base);
  [[nodiscard]] std::vector<FulRow> compute_fulfillment(unsigned level,
                                                        const Interval& interval) const;

  // -- reservation machinery --
  /// Recomputes fulfillment of the interval and releases over-assigned
  /// slots (the "waitlist a fulfilled reservation" step); jobs sitting on
  /// released slots are MOVEd.
  void reconcile(unsigned level, Time interval_base, std::vector<JobId>& pending);
  void unassign_slot(unsigned level, Interval& interval, Time slot);
  void assign_slot(unsigned level, Interval& interval, Time slot, const WindowKey& w);
  /// Finds (claiming lazily if needed) a fulfilled slot of `w` with no
  /// level-ℓ job on it, excluding `avoid`. Returns kNoSlot on overflow.
  [[nodiscard]] Time acquire_slot(const WindowKey& w, unsigned level, Time avoid);

  // -- job motion --
  /// PLACE via the reservation system. On overflow: throws (request job,
  /// kThrow) or parks. `counts` marks whether landing counts as a
  /// reallocation (true for every job except the one being inserted).
  void place_reserved(JobId id, std::vector<JobId>& pending, bool is_request_job,
                      bool counts);
  /// Base-case / fallback placement: first empty slot in the window, else
  /// displace a strictly-longer occupant (naive pecking order). `park`
  /// marks the job as placed outside the reservation system.
  void place_unreserved(JobId id, bool park, std::vector<JobId>& pending, bool counts);
  /// Figure-1 MOVE: precondition — the job's slot has just lost its
  /// reservation (unassigned). Swap trick, no recursion.
  void move_job(JobId id, std::vector<JobId>& pending);
  /// Physically sets the job on the slot and updates all higher-level
  /// bookkeeping; a displaced longer job (if any) joins `pending`.
  void occupy(JobId id, Time slot, bool parked_placement, std::vector<JobId>& pending,
              bool counts);
  /// Removes the job from its slot, clearing higher-level occupancy flags.
  void vacate(JobId id);
  void swap_ancestor_bookkeeping(Time s1, Time s2, unsigned above_level);

  // -- request plumbing --
  void insert_impl(JobId id, Window original);
  void erase_impl(JobId id);
  void erase_body(JobId id);
  /// Last-resort recovery when a pecking-order displacement chain dead-ends
  /// (possible only without the guaranteed slack): recompute a feasible
  /// schedule for the whole active set with EDF and adopt it as parked
  /// placements. Returns false iff even EDF cannot schedule the set (the
  /// caller then excludes the request job and rejects it). Reservation
  /// ledgers survive (job counts), concrete assignments reset.
  bool emergency_reschedule(const JobId* exclude);
  /// Handles a mid-request dead end for request `id`: settle interrupted
  /// work, recover everything (best effort), or reject the request
  /// (erase + throw InfeasibleError). `pending` is the interrupted cascade.
  void recover_or_reject(JobId id, bool reject_outright, std::vector<JobId>& pending);
  [[nodiscard]] Window trim(JobId id, Window w) const;
  void maybe_rebuild_on_insert();
  void maybe_rebuild_on_erase();
  void rebuild(u64 new_n_star);
  /// Re-places displaced jobs until the cascade settles.
  void drain(std::vector<JobId>& pending);

  void count_move(const JobState& job) noexcept;

  SchedulerOptions options_;
  std::vector<LevelState> levels_;
  std::unordered_map<JobId, JobState> jobs_;
  std::map<Time, JobId> occupant_;  // slot -> job; ordered for range scans
  SlotRuns runs_;                   // O(log n) gap queries for pecking order
  u64 n_star_ = 8;
  u64 parked_count_ = 0;
  bool in_rebuild_ = false;
  RequestStats current_{};
  std::uint32_t touched_levels_mask_ = 0;
};

}  // namespace reasched
