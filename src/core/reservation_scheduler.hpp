// Single-machine pecking-order scheduling with reservations (paper §4,
// Figure 1) — the paper's main algorithmic contribution.
//
// Overview of the implementation strategy (see DESIGN.md §3 for the full
// rationale):
//
//  * Levels. A job with (aligned) window span in (L_ℓ, L_{ℓ+1}] is a
//    level-ℓ job. Level-ℓ windows are partitioned into aligned *intervals*
//    of L_ℓ slots. Level 0 (spans ≤ L₁ = 32) is the recursion base and uses
//    plain pecking order — a constant amount of work.
//
//  * Reservations are counted, not stored. Invariant 5 makes the number of
//    reservations a window W with x jobs holds in each of its 2^k intervals
//    a closed-form function r(W,I) = ⌊2x/2^k⌋ + 1 + [idx(I) < 2x mod 2^k].
//    Which reservations an interval *fulfills* is the shortest-window-first
//    greedy over these counts (Observation 7: history independent), so the
//    fulfillment table is a pure function of the ledgers and never needs to
//    be stored durably. Windows with zero jobs still contribute their
//    baseline one reservation per interval ("virtual windows") exactly as
//    the paper requires — they consume fulfillment priority but hold no
//    slots.
//
//  * Fulfillment is incrementally cached (DESIGN.md §4). Each materialized
//    interval keeps its last-computed table, recomputed in place (no
//    allocation) only when an input changed. Observation 7 guarantees the
//    table is exact until one of its two inputs changes, and both mutate in
//    O(1) known places: the interval's lower-level occupancy (invalidated
//    point-wise when a lower flag flips) and same-level window job counts —
//    which, by Invariant 5's closed form, change r(W,·) in *exactly* the
//    two round-robin intervals p1, p2 that insert/erase already reconcile,
//    so only those two are invalidated. Together with per-class assignment
//    counts this makes reconcile O(span classes) when nothing needs
//    releasing, instead of the seed's cold recompute plus two O(interval)
//    slot scans on every touch. SchedulerOptions::legacy_fulfillment
//    preserves the seed path as an in-binary baseline.
//
//  * Interval state is arena-backed (DESIGN.md §6). All per-interval arrays
//    — the slot table, the cached fulfillment rows, the per-class
//    assignment counters — live in ONE block carved from a per-level
//    BlockArena (util/arena.hpp), so materializing an interval is a single
//    O(1) zeroed carve and tearing a level down is O(1) (arena reset or
//    wholesale release). An Interval itself is a trivially-copyable view:
//    pointers into its level's arena plus scalar counters.
//
//  * Concrete slot assignment is lazy. A window's *assigned* slots (the
//    slots backing its fulfilled reservations) are materialized on demand,
//    maintaining a(W,I) <= f(W,I). Claims always succeed under that
//    invariant (free allowance >= Σf - Σa). Releases — the "waitlist a
//    fulfilled reservation" arrow in Figure 1 — happen whenever a
//    recomputation finds a(W,I) > f(W,I), and may force a MOVE of a job
//    sitting on a released slot. Per-interval assignment counts are kept
//    per span class, so detecting over-assignment needs no slot scan.
//
//  * MOVE is a pure swap. When job j moves from slot s to its window's
//    fulfilled empty slot s', both slots lie in the same ancestor interval
//    at every higher level (aligned nesting), so all higher-level
//    bookkeeping for s and s' is swapped wholesale; a higher-level job on
//    s' is rehoused to s. This is exactly the Figure-1 MOVE including its
//    "schedule h in s instead of s'" comment, and causes no further
//    cascading.
//
//  * PLACE may displace one higher-level job h; the slot is withdrawn from
//    every higher-level allowance (lines 17-21), each of which reconciles
//    (possibly waitlisting the marginal window's reservation → one MOVE per
//    level), and h re-places at its own level. Displacements strictly
//    increase span, so the cascade has O(log* Δ) steps.
//
//  * Trimming (§4 "Trimming Windows to n"): n* doubles/halves with the
//    active-job count; windows wider than 2γn* are trimmed to an aligned
//    sub-window of span 2γn*. On every n* change the schedule is rebuilt —
//    by default with the *partitioned* rebuild (below), or from scratch on
//    the rebuild request itself when SchedulerOptions::legacy_rebuild is
//    set (amortized O(1) reallocations per request either way).
//
//  * Partitioned n*-rebuild (DESIGN.md §6). The stop-the-world rebuild
//    reinserts the whole active set inside one request — a Θ(n) latency
//    cliff (bench E14). Instead, the boundary request only snapshots the
//    active set (sorted by JobId, the legacy reinsertion order) and flips
//    n* ; a *shadow generation* — a second ReservationScheduler — is then
//    built incrementally, `rebuild_batch` reinsertions per request, while
//    the old generation keeps serving. Requests arriving mid-migration are
//    served by the old generation (placements stay valid: trimming only
//    tightens/loosens within the original window) and queued; once the
//    snapshot is reinserted the queue is replayed into the shadow in
//    arrival order. When the shadow has caught up the two generations swap
//    in O(1) (container swap; the request reports the honest moved-job
//    count), and the old generation is *retired*: its interval arenas and
//    ledgers are trimmed one level per subsequent request ("deferred
//    trimming"), so teardown never lands on one request either. The final
//    state is byte-identical to the legacy path's — both execute exactly
//    ⟨reinsert snapshot in JobId order, then replay the interim requests in
//    arrival order⟩ against fresh state — which the differential suite
//    asserts (tests/partitioned_rebuild_test.cpp). Rebuilds of at most
//    rebuild_batch jobs complete synchronously inside the boundary request
//    (exactly the legacy behavior, spike included — it is O(batch)).
//
// Containers: every hot lookup runs on open-addressing flat tables
// (util/flat_hash.hpp) and slot occupancy lives in an OccupancyIndex
// (point lookups O(~1), range scans gap-skipping via SlotRuns) — see
// DESIGN.md §4 for the container-by-container rationale.
//
// Cost accounting: every physical move of a pre-existing job is one
// reallocation (the request's own insert placement / delete removal is
// free, matching §2's cost model).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit_engine.hpp"
#include "audit/invariant_check.hpp"
#include "core/scheduler_options.hpp"
#include "core/window_key.hpp"
#include "schedule/occupancy_index.hpp"
#include "schedule/scheduler_interface.hpp"
#include "util/arena.hpp"
#include "util/flat_hash.hpp"

namespace reasched {

namespace durability {
struct SchedulerPersist;
}  // namespace durability

class ReservationScheduler final : public IReallocScheduler {
 public:
  explicit ReservationScheduler(SchedulerOptions options = {});
  ~ReservationScheduler() override;

  /// Serves ⟨INSERTJOB, id, window⟩ (Figure 1 lines 1–21).
  ///
  /// \param id      Fresh job id (inserting an active id throws).
  /// \param window  Aligned window (power-of-two span, aligned start); §4
  ///                operates post-alignment — the multi-machine pipeline in
  ///                ReallocatingScheduler aligns unrestricted windows first.
  /// \returns Per-request stats: reallocations (physical moves of
  ///          pre-existing jobs), levels touched, whether an n*-rebuild was
  ///          started/completed on this request (`rebuilt`), degradations.
  /// \throws InfeasibleError under OverflowPolicy::kThrow when the request
  ///         cannot be scheduled; state is rolled back to "request never
  ///         happened" (minus possible recovery re-placements).
  RequestStats insert(JobId id, Window window) override;

  /// Serves ⟨DELETEJOB, id⟩. `id` must be active.
  RequestStats erase(JobId id) override;

  /// Materializes the current feasible assignment. Always complete and
  /// collision-free — including mid-migration, when it reflects the (still
  /// fully valid) old generation.
  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override { return jobs_.size(); }
  /// O(1): whether `id` is currently active (insert accepted, not erased).
  [[nodiscard]] bool contains(JobId id) const noexcept { return jobs_.contains(id); }
  [[nodiscard]] unsigned machines() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "reservation-pecking-order"; }

  // ---- introspection (tests, benches, EXPERIMENTS.md) ----

  /// Fulfillment table of one interval: the per-window reservation and
  /// fulfilled counts the greedy derives. Used by the Observation-7
  /// history-independence tests.
  struct FulfillmentEntry {
    WindowKey window;
    bool active = false;
    std::uint32_t reservations = 0;
    std::uint32_t fulfilled = 0;
  };
  [[nodiscard]] std::vector<FulfillmentEntry> fulfillment_of_interval(
      unsigned level, Time interval_base) const;

  /// Current n* estimate (§4 "Trimming Windows to n"). During a partitioned
  /// migration this is already the *target* value the generation flip is
  /// building toward — trimming of new inserts and the doubling/halving
  /// triggers both use it, exactly as the legacy path would.
  [[nodiscard]] std::uint64_t n_star() const noexcept { return n_star_; }
  /// Jobs currently placed outside the reservation system (degraded mode).
  [[nodiscard]] std::uint64_t parked_jobs() const noexcept { return parked_count_; }
  [[nodiscard]] const SchedulerOptions& options() const noexcept { return options_; }

  /// True while a partitioned n*-rebuild migration is in flight (the old
  /// generation is serving; the shadow is catching up).
  [[nodiscard]] bool rebuild_in_flight() const noexcept { return migration_ != nullptr; }
  /// Work left in the in-flight migration: snapshot jobs not yet reinserted
  /// plus queued interim requests not yet replayed. 0 when none in flight.
  [[nodiscard]] std::size_t rebuild_pending() const noexcept;
  /// True while a retired (pre-swap) generation still awaits its deferred
  /// level-by-level trimming.
  [[nodiscard]] bool retired_pending() const noexcept { return !retiring_.empty(); }

  /// Per-level interval-arena counters (tests; ARCHITECTURE.md's memory
  /// layout section quotes these).
  struct ArenaStats {
    std::size_t block_bytes = 0;
    std::size_t blocks_carved = 0;
    std::size_t blocks_reused = 0;
    std::size_t chunks = 0;
    std::size_t bytes_reserved = 0;
  };
  [[nodiscard]] ArenaStats arena_stats(unsigned level) const;

  /// Toggles the per-request audit at runtime. Benches replay a warmup
  /// prefix audit-free, then audit only the measured segment.
  void set_audit(bool enabled) noexcept { options_.audit = enabled; }

  /// Full internal-invariant audit; throws InternalError on any violation.
  /// O(total state); runs automatically after each request when
  /// options.audit is set. Mid-migration it audits both generations plus
  /// the migration bookkeeping itself. Equivalent to running every check
  /// registered by register_invariants — the five named units below ARE
  /// this sweep, decomposed.
  void audit() const;

  /// Registers the five named full-sweep invariant checks (ARCHITECTURE.md
  /// glossary I1–I5: "rs.I1.jobs-and-occupancy",
  /// "rs.I2.window-ledgers", "rs.I3.interval-assignment-bound",
  /// "rs.I4.fulfillment-cache", "rs.I5.migration-coherence") bound to this
  /// instance, so each is individually invokable by name.
  void register_invariants(audit::InvariantTable& table) const;

  /// Re-applies an audit policy at runtime (benches enable the engine after
  /// an audit-free warmup). Attaching an engine escalates: its first audit
  /// is one full sweep that seeds the dirty-tracking shadows.
  void set_audit_policy(const audit::AuditPolicy& policy);

  /// Incremental audit: verifies the dirty regions the engine accumulated
  /// (capped by AuditPolicy::budget) plus the O(1) global counters; throws
  /// InternalError on any violation. Falls back to the full sweep when no
  /// engine is attached or after a wholesale state change (emergency
  /// rebuild, fresh attach). Runs automatically per request at the policy
  /// cadence; callable directly (tests, benches, SimOptions::audit_hook).
  void incremental_audit();

  /// Observable audit work since construction (full sweeps + engine
  /// counters, including an in-flight migration shadow's). The benches'
  /// audit-off smoke asserts every field stays zero when both runtime audit
  /// gates are off.
  struct AuditWork {
    std::uint64_t full_sweeps = 0;
    std::uint64_t incremental_audits = 0;
    std::uint64_t regions_checked = 0;
    std::uint64_t events = 0;

    [[nodiscard]] bool zero() const noexcept {
      return full_sweeps == 0 && incremental_audits == 0 && regions_checked == 0 &&
             events == 0;
    }
  };
  [[nodiscard]] AuditWork audit_work() const;

  /// Dirty regions the engine has accumulated but not yet verified
  /// (budgeted-slice backlog; includes an in-flight migration shadow's).
  /// 0 when no engine is attached.
  [[nodiscard]] std::size_t audit_backlog() const;

  /// Deliberate state corruptions for the corrupted-state-detection tests
  /// (tests/failure_injection_test.cpp, bench_e15 differential mode). Each
  /// mutates internal state the way a buggy mutation path would — including
  /// emitting the dirty event for the touched region — so both the full
  /// sweep and the incremental engine must flag it. Returns false when the
  /// current state offers no suitable target (e.g. no materialized
  /// interval yet). Test hook; never called by the scheduler itself.
  enum class Corruption : std::uint8_t {
    kFlipLowerOccupied,  ///< flip a lower_occupied bit in a slot table
    kDesyncLowerCount,   ///< bump an interval's lower_count
    kOrphanLedgerSlot,   ///< window ledger slot with no interval backing
    kDesyncWindowJobs,   ///< bump an ActiveWindow::jobs count
    kDesyncParkedCount,  ///< bump parked_count_
  };
  bool corrupt_for_test(Corruption kind);

  /// Cache-consistency check: recomputes every *currently valid* cached
  /// fulfillment table cold and verifies it matches the cache entry-by-entry
  /// (throws InternalError on any mismatch). Returns the number of cached
  /// tables verified, across both generations when a migration is in
  /// flight. Test hook for the stale-cache regression suite; also part of
  /// audit().
  std::size_t verify_fulfillment_cache() const;

 private:
  /// Deep logical-state serialization for snapshots (DESIGN.md §9):
  /// durability/scheduler_persist.cpp reads and rebuilds the private state
  /// below through this friend, keeping the scheduler itself free of
  /// serialization code. Precondition for saving: no migration in flight
  /// (the snapshot trigger waits for the generation flip).
  friend struct durability::SchedulerPersist;

  static constexpr Time kNoSlot = std::numeric_limits<Time>::min();

  struct JobState {
    Window original;  // aligned window as submitted
    Window window;    // after trimming (== original unless trimmed)
    unsigned level = 0;
    Time slot = kNoSlot;
    bool parked = false;  // placed outside the reservation system
  };

  struct SlotInfo {
    bool lower_occupied = false;  // occupied by a job "below" this level
    bool assigned = false;        // concrete fulfilled reservation
    WindowKey owner{};            // valid iff assigned
  };

  /// One row of an interval's fulfillment table. Exactly one aligned window
  /// of each span class contains the interval, so tables are indexed by
  /// span class (span_log - min_span_log). Deliberately carries no
  /// activity flag or window pointer: rows must stay a pure function of
  /// the inputs the cache invalidation tracks (job counts via p1/p2,
  /// lower occupancy), and activation elsewhere changes neither value.
  struct FulRow {
    WindowKey key;
    std::uint32_t reservations = 0;
    std::uint32_t fulfilled = 0;
    friend bool operator==(const FulRow&, const FulRow&) = default;
  };

  /// Freshness of an interval's cached fulfillment table.
  ///   kInvalid        — full recomputation off the ledgers required.
  ///   kFulfilledStale — reservations are exact (maintained in place by ±1
  ///                     deltas at the round-robin positions), fulfilled
  ///                     must be re-derived — a pure arithmetic cascade
  ///                     over the cached reservations, no hash lookups.
  ///   kValid          — both reservations and fulfilled columns are exact.
  enum class FulState : std::uint8_t { kInvalid, kFulfilledStale, kValid };

  /// Per-interval state: a trivially-copyable *view* into one arena block
  /// of the owning level (util/arena.hpp). Layout of the block, in order:
  ///
  ///   [ SlotInfo × interval_size | FulRow × class_count | u32 × class_count ]
  ///     ^slots                     ^ful_cache             ^assigned_by_class
  ///
  /// The arrays never move (arena chunks are stable), so Interval values
  /// may be copied/moved freely by the enclosing flat map; the memory is
  /// reclaimed only wholesale — arena reset (legacy rebuild, emergency) or
  /// retire-and-trim (partitioned rebuild).
  struct Interval {
    Time base = 0;
    /// interval_size cells; zeroed at carve.
    SlotInfo* slots = nullptr;
    /// class_count rows; the cache proper. Exactness contract: the
    /// reservations column is exact for every row whenever ful_state !=
    /// kInvalid; the fulfilled column is exact only for rows below
    /// ful_bound when ful_state == kValid. Hot-path readers only consult
    /// rows of active/assigned classes, which always lie below the level's
    /// active bound (Observation 7 makes all of it a pure function of the
    /// tracked inputs). Written through a const Interval (cache refresh),
    /// which is well-formed for a pointee.
    FulRow* ful_cache = nullptr;
    /// Concrete assignments per span class — the a(W,I) side of the lazy
    /// invariant, maintained incrementally so reconcile needs no slot scan
    /// to detect over-assignment. class_count counters.
    std::uint32_t* assigned_by_class = nullptr;
    std::uint32_t lower_count = 0;
    std::uint32_t assigned_count = 0;
    /// Bit c set iff assigned_by_class[c] > 0 — lets reconcile visit only
    /// the classes that can possibly be over-assigned (class_count is
    /// checked <= 64 at construction).
    u64 assigned_class_mask = 0;
    mutable FulState ful_state = FulState::kInvalid;
    mutable unsigned ful_bound = 0;
  };

  struct ActiveWindow {
    std::uint64_t jobs = 0;  // x
    /// All concrete fulfilled slots of this window (global coordinates).
    /// Dense sets: iteration is insertion-ordered and layout-independent,
    /// so the acquire_slot fast-path pick stays deterministic across
    /// rehash modes (util/flat_hash.hpp, DenseHashSet).
    DenseHashSet<Time> assigned_slots;
    /// Subset of assigned_slots with no job of this level on them — the
    /// slots Invariant 6 / Lemma 8 hand out. (They may hold a higher-level
    /// job, which placement will displace.)
    DenseHashSet<Time> free_assigned;
    std::uint64_t claim_cursor = 0;  // round-robin claim-scan position
  };

  struct LevelState {
    u64 interval_size = 0;
    unsigned interval_log = 0;
    u64 max_span = 0;
    unsigned min_span_log = 0;  // smallest span exponent at this level
    unsigned max_span_log = 0;
    FlatHashMap<Time, Interval> intervals;  // key: interval base
    FlatHashMap<WindowKey, ActiveWindow> windows;
    /// Backing store for every Interval of this level (one block each).
    /// Owned by this level of this scheduler instance — in the sharded
    /// service layer that makes arenas shard-local by construction.
    BlockArena arena;
    /// Active-window count per span class; supports the two hot-path
    /// shortcuts below.
    std::vector<std::uint32_t> active_per_class;
    /// One past the highest class with an active window. Fulfillment
    /// cascades stop here: every class the hot path consults is active (or
    /// holds assignments, a subset), and the level table's nominal class
    /// range is enormous (the top threshold is ~2^62) while the populated
    /// prefix is tiny.
    unsigned active_bound = 0;

    [[nodiscard]] unsigned class_count() const noexcept {
      return max_span_log - min_span_log + 1;
    }
    [[nodiscard]] unsigned class_of(const WindowKey& w) const noexcept {
      return w.span_log - min_span_log;
    }
  };

  /// A request that arrived while a migration was in flight: served by the
  /// old generation immediately, replayed into the shadow later.
  struct QueuedRequest {
    bool is_insert = false;
    JobId id{};
    Window window{};  // inserts only
  };

  /// In-flight partitioned n*-rebuild (DESIGN.md §6).
  struct Migration {
    std::vector<std::pair<JobId, Window>> reinsert;  // boundary snapshot, id-ascending
    std::size_t reinsert_next = 0;
    std::vector<QueuedRequest> replay;  // arrival order
    std::size_t replay_next = 0;
    std::unique_ptr<ReservationScheduler> shadow;  // the new generation
  };

  // -- geometry helpers --
  [[nodiscard]] unsigned top_level() const noexcept {
    return static_cast<unsigned>(levels_.size()) - 1;
  }
  [[nodiscard]] Time interval_base_of(unsigned level, Time slot) const;
  [[nodiscard]] Time nth_interval_base(const WindowKey& w, unsigned level, u64 index) const;
  /// Levels >= `from_level` at which `job` makes its slot unavailable
  /// ("lower occupied"): parked jobs block their own level as well.
  [[nodiscard]] unsigned block_floor(const JobState& job) const noexcept;

  // -- interval state --
  /// Carves one zeroed arena block and wires the interval's three array
  /// pointers into it (the block layout documented on Interval). Shared by
  /// get_or_create_interval and the snapshot loader, so the layout
  /// knowledge lives in exactly one place.
  static void carve_interval_block(LevelState& ls, Interval& interval);
  Interval& get_or_create_interval(unsigned level, Time base);
  [[nodiscard]] Interval* find_interval(unsigned level, Time base);
  /// Recomputation straight off the ledgers into `out`, reusing its
  /// capacity (seed behavior when cold; also the reference the cache is
  /// validated against).
  void compute_fulfillment_into(unsigned level, const Interval& interval,
                                std::vector<FulRow>& out) const;
  [[nodiscard]] std::vector<FulRow> compute_fulfillment(unsigned level,
                                                        const Interval& interval) const;
  /// Cache-aware access: returns the interval's cached table (class_count
  /// rows), refreshing in place (no allocation, and no hash lookups unless
  /// kInvalid) when stale.
  const FulRow* fulfillment(unsigned level, const Interval& interval) const;
  /// Lower-occupancy changed: reservations stay exact, fulfilled must be
  /// re-cascaded. Called on every lower-flag flip of the interval.
  static void soften_fulfillment(const Interval& interval) noexcept {
    if (interval.ful_state == FulState::kValid) {
      interval.ful_state = FulState::kFulfilledStale;
    }
  }
  /// Applies the ±1 reservation delta of a job-count change on `w` to the
  /// cached table of the round-robin interval at `base` (Invariant 5:
  /// r(W,·) changes in exactly the two positions insert/erase touch, so
  /// these point updates keep every other cache exact). No-op if the
  /// interval is not materialized or its cache is invalid anyway.
  void adjust_cached_reservation(unsigned level, const WindowKey& w, Time base,
                                 std::int32_t delta);
  /// Active-window census maintenance (activation/deactivation only).
  void note_window_activated(unsigned level, unsigned cls);
  void note_window_deactivated(unsigned level, unsigned cls);

  // -- reservation machinery --
  /// Refreshes the interval's fulfillment table (cache-aware) and releases
  /// over-assigned slots (the "waitlist a fulfilled reservation" step); jobs
  /// sitting on released slots are MOVEd. O(span classes) when nothing needs
  /// releasing.
  void reconcile(unsigned level, Time interval_base, std::vector<JobId>& pending);
  void reconcile_interval(unsigned level, Interval& interval, std::vector<JobId>& pending);
  /// Releases `to_release` of `w`'s concrete slots in the interval (silent
  /// slots first); jobs on released slots join `to_move`.
  void release_over_assignment(unsigned level, Interval& interval, const WindowKey& w,
                               std::uint32_t to_release, std::vector<JobId>& to_move);
  void unassign_slot(unsigned level, Interval& interval, Time slot);
  void assign_slot(unsigned level, Interval& interval, Time slot, const WindowKey& w);
  /// Finds (claiming lazily if needed) a fulfilled slot of `w` with no
  /// level-ℓ job on it, excluding `avoid`. Returns kNoSlot on overflow.
  [[nodiscard]] Time acquire_slot(const WindowKey& w, unsigned level, Time avoid);

  // -- job motion --
  /// PLACE via the reservation system. On overflow: throws (request job,
  /// kThrow) or parks. `counts` marks whether landing counts as a
  /// reallocation (true for every job except the one being inserted).
  void place_reserved(JobId id, std::vector<JobId>& pending, bool is_request_job,
                      bool counts);
  /// Base-case / fallback placement: first empty slot in the window, else
  /// displace a strictly-longer occupant (naive pecking order). `park`
  /// marks the job as placed outside the reservation system.
  void place_unreserved(JobId id, bool park, std::vector<JobId>& pending, bool counts);
  /// Figure-1 MOVE: precondition — the job's slot has just lost its
  /// reservation (unassigned). Swap trick, no recursion.
  void move_job(JobId id, std::vector<JobId>& pending);
  /// Physically sets the job on the slot and updates all higher-level
  /// bookkeeping; a displaced longer job (if any) joins `pending`.
  void occupy(JobId id, Time slot, bool parked_placement, std::vector<JobId>& pending,
              bool counts);
  /// Removes the job from its slot, clearing higher-level occupancy flags.
  void vacate(JobId id);
  void swap_ancestor_bookkeeping(Time s1, Time s2, unsigned above_level);

  // -- request plumbing --
  void insert_impl(JobId id, Window original);
  void erase_impl(JobId id);
  void erase_body(JobId id);
  /// Last-resort recovery when a pecking-order displacement chain dead-ends
  /// (possible only without the guaranteed slack): recompute a feasible
  /// schedule for the whole active set with EDF and adopt it as parked
  /// placements. Returns false iff even EDF cannot schedule the set (the
  /// caller then excludes the request job and rejects it). Reservation
  /// ledgers survive (job counts), concrete assignments reset.
  bool emergency_reschedule(const JobId* exclude);
  /// Handles a mid-request dead end for request `id`: settle interrupted
  /// work, recover everything (best effort), or reject the request
  /// (erase + throw InfeasibleError). `pending` is the interrupted cascade.
  void recover_or_reject(JobId id, bool reject_outright, std::vector<JobId>& pending);
  [[nodiscard]] Window trim(JobId id, Window w) const;
  void maybe_rebuild_on_insert();
  void maybe_rebuild_on_erase();
  /// n* changed: dispatches to the stop-the-world rebuild (legacy_rebuild,
  /// or small active sets where one request's worth of migration budget
  /// covers the whole set) or starts a partitioned migration.
  void rebuild(u64 new_n_star);
  /// The active set as (id, original window), ascending JobId — the
  /// reinsertion order of BOTH rebuild paths. Byte-identity of the
  /// partitioned path rests on the two paths sharing this exact order.
  [[nodiscard]] std::vector<std::pair<JobId, Window>> sorted_active_set() const;
  void rebuild_stop_the_world(u64 new_n_star);
  void begin_partitioned_rebuild(u64 new_n_star);
  /// Advances an in-flight migration by up to `budget` work units (one
  /// unit = one snapshot reinsertion or one queued-request replay); swaps
  /// generations when the shadow has fully caught up.
  void step_migration(std::size_t budget);
  /// The O(1) generation flip + honest moved-job accounting; retires the
  /// old generation for deferred trimming.
  void complete_migration();
  /// Runs the in-flight migration to completion (small-n re-trigger path).
  void flush_migration();
  /// Frees one level of the retired generation (arena chunks + ledgers) —
  /// the "deferred trimming" step, one level per request.
  void trim_retired_step();
  /// Re-places displaced jobs until the cascade settles.
  void drain(std::vector<JobId>& pending);

  void count_move(const JobState& job) noexcept;

  // -- incremental audit (src/audit/; DESIGN.md §7) --
  /// Runs whichever audits the two runtime gates request after a request.
  void maybe_audit();
  /// Creates/destroys the engine to match options_.audit_policy.
  void sync_audit_engine();
  /// Rebuilds the engine's shadow counters from the (just fully audited)
  /// ledgers; clears dirtiness and the full-sweep escalation.
  void reseed_audit_engine();
  // Scoped verification units the engine drain calls (each is the
  // corresponding full-sweep section restricted to one region):
  void audit_job_scoped(JobId id) const;
  void audit_window_scoped(unsigned level, const WindowKey& w) const;
  void audit_interval_scoped(unsigned level, Time base) const;
  void audit_globals_scoped() const;
  /// Per-interval body of full-sweep §3: ground-truth slot scan, counter
  /// agreement, a ≤ f against a cold recomputation.
  void audit_interval_body(unsigned level, Time base, const Interval& interval) const;
  /// Per-interval body of full-sweep §4: the cached fulfillment table vs a
  /// cold recomputation. Returns 1 when a (non-invalid) cache was verified.
  std::size_t verify_interval_cache(unsigned level, Time base,
                                    const Interval& interval) const;
  /// Per-job body of full-sweep §1 (placement, occupancy and run-index
  /// agreement, own-level ledger membership). Returns true iff parked.
  bool audit_job_body(const JobId& id, const JobState& job) const;
  /// Per-window local body shared by full-sweep §2 and the scoped check:
  /// slot containment, interval backing (anti-orphan), free-set sanity.
  void audit_window_body(unsigned level, const WindowKey& key,
                         const ActiveWindow& window) const;
  // Full-sweep sections as named invariant-check units (I1–I5):
  void check_jobs_and_occupancy() const;
  void check_window_ledgers() const;
  void check_interval_assignment_bound() const;
  void check_migration_coherence() const;
  // Event emission helpers: exactly one branch when no engine is attached.
  // Const (the engine sits behind a pointer): the lazy fulfillment-cache
  // refresh — a cache write on the const read path — must emit too.
  void mark_interval_dirty(unsigned level, Time base) const {
    if (audit_engine_) audit_engine_->on_interval(level, base);
  }
  void mark_window_dirty(unsigned level, const WindowKey& w) const {
    if (audit_engine_) audit_engine_->on_window(level, w);
  }
  void mark_job_dirty(JobId id) const {
    if (audit_engine_) audit_engine_->on_job(id);
  }
  void note_parked_delta(std::int64_t delta) const {
    if (audit_engine_) audit_engine_->on_parked(delta);
  }

  SchedulerOptions options_;
  std::vector<LevelState> levels_;
  FlatHashMap<JobId, JobState> jobs_;
  OccupancyIndex occ_;  // slot -> job, layered on SlotRuns for range scans
  u64 n_star_ = 8;
  u64 parked_count_ = 0;
  bool in_rebuild_ = false;
  RequestStats current_{};
  std::uint32_t touched_levels_mask_ = 0;
  std::unique_ptr<Migration> migration_;  // in-flight partitioned rebuild
  /// Dirty-tracking engine; attached iff audit_policy.mode == kIncremental.
  std::unique_ptr<audit::AuditEngine> audit_engine_;
  std::uint64_t audit_request_index_ = 0;  // cadence counter
  mutable std::uint64_t full_sweeps_ = 0;  // audit() invocations (audit_work)
  /// Old generations after a swap, awaiting deferred level-by-level trim,
  /// drained FIFO one step per request. A list, not a single slot: when
  /// migrations complete within a few requests of each other (tiny n*,
  /// custom towers), the older generation must keep draining rather than
  /// be freed wholesale inside one request. Length stays O(1): a new entry
  /// arrives at most once per completed migration, and each migration
  /// spans at least (active set / rebuild_batch) requests of draining.
  std::vector<std::unique_ptr<ReservationScheduler>> retiring_;
};

}  // namespace reasched
