// Window alignment (paper §5).
//
// ALIGNED(W) is a largest aligned window contained in W; the paper shows
// |ALIGNED(W)| >= |W|/4 (and Lemma 10: shrinking every window of a
// 4γ-underallocated instance this way leaves it γ-underallocated). This
// module implements the shrink deterministically (leftmost largest aligned
// sub-window) so traces replay identically.
#pragma once

#include <span>

#include "base/window.hpp"

namespace reasched {

/// Largest aligned sub-window of `w` (leftmost when several are largest).
/// Guarantees: result.aligned(), w.contains(result), and
/// result.span() > w.span()/4.
[[nodiscard]] Window aligned_shrink(const Window& w);

/// True iff every window in `jobs` is aligned (hence the set is recursively
/// aligned / laminar, §2).
[[nodiscard]] bool all_aligned(std::span<const JobSpec> jobs);

}  // namespace reasched
