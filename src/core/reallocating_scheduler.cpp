#include "core/reallocating_scheduler.hpp"

#include "core/alignment.hpp"
#include "core/reservation_scheduler.hpp"
#include "util/assert.hpp"

namespace reasched {

ReallocatingScheduler::ReallocatingScheduler(unsigned machines, SchedulerOptions options)
    : inner_(machines,
             [options] { return std::make_unique<ReservationScheduler>(options); }),
      label_("reallocating-scheduler[m=" + std::to_string(machines) + "]") {
  // The per-machine schedulers read the flag from their options; the
  // reduction's own ledger/directory tables follow the same mode.
  inner_.set_legacy_rehash(options.legacy_rehash);
}

ReallocatingScheduler::ReallocatingScheduler(unsigned machines,
                                             const MultiMachineScheduler::Factory& factory,
                                             std::string label)
    : inner_(machines, factory), label_(std::move(label)) {}

RequestStats ReallocatingScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid(), "ReallocatingScheduler::insert: empty window");
  // §5: replace the window by its largest aligned sub-window. Lemma 10:
  // a 4γ-underallocated instance stays γ-underallocated under this shrink.
  return inner_.insert(id, aligned_shrink(window));
}

RequestStats ReallocatingScheduler::erase(JobId id) { return inner_.erase(id); }

}  // namespace reasched
