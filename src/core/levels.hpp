// Interval decomposition thresholds (paper §4).
//
// The scheduler works at levels of geometrically towering granularity:
//   L₁ = 2⁵,   L_{ℓ+1} = 2^{L_ℓ/4}   (so L₂ = 2⁸, L₃ = 2⁶⁴ — unreachable),
// equivalently L_ℓ = 4·lg(L_{ℓ+1}). A job/window with span in
// (L_ℓ, L_{ℓ+1}] belongs to level ℓ; level-ℓ windows are partitioned into
// aligned *intervals* of L_ℓ slots. Level 0 (spans 1..L₁) is the recursion
// base and is scheduled by bounded naive pecking order — with at most
// lg L₁ + 1 distinct spans the displacement cascade is O(1).
//
// The number of levels needed for span Δ is Θ(log* Δ): that is the paper's
// entire point, and why the table below has at most a handful of rows.
//
// Custom towers are supported for testing (they make deep levels reachable
// at laptop scale); validation enforces the arithmetic Lemma 8 relies on:
// lg(L_{ℓ+1}) <= L_ℓ/4, i.e. Equation (1).
#pragma once

#include <vector>

#include "util/bits.hpp"

namespace reasched {

class LevelTable {
 public:
  /// Paper constants: thresholds {2⁵, 2⁸, 2⁶²-cap}. Levels 0..2 reachable.
  [[nodiscard]] static LevelTable paper();

  /// Custom tower; `thresholds[ℓ]` is the max span of level ℓ (aka L_{ℓ+1}).
  /// Validated: strictly increasing powers of two, first >= 32, and
  /// lg(thresholds[ℓ]) <= thresholds[ℓ-1]/4 for ℓ >= 1.
  [[nodiscard]] static LevelTable custom(std::vector<u64> thresholds);

  /// Level of a window with the given span (power of two not required);
  /// level 0 holds spans in [1, L₁].
  [[nodiscard]] unsigned level_of(u64 span) const;

  /// Largest span handled by `level` (L_{ℓ+1}).
  [[nodiscard]] u64 max_span(unsigned level) const;

  /// Interval size L_ℓ of `level`; defined for level >= 1.
  [[nodiscard]] u64 interval_size(unsigned level) const;
  [[nodiscard]] unsigned interval_size_log(unsigned level) const;

  /// Total number of levels in the table.
  [[nodiscard]] unsigned level_count() const noexcept {
    return static_cast<unsigned>(thresholds_.size());
  }

  /// Largest representable span (top threshold).
  [[nodiscard]] u64 span_limit() const noexcept { return thresholds_.back(); }

 private:
  explicit LevelTable(std::vector<u64> thresholds);

  std::vector<u64> thresholds_;  // thresholds_[ℓ] = L_{ℓ+1}
};

}  // namespace reasched
