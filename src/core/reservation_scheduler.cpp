#include "core/reservation_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <type_traits>
#include <unordered_map>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

#include "feasibility/edf.hpp"

namespace reasched {

namespace {

constexpr u64 kMinNStar = 8;

/// Internal: the request job failed its reservation placement under the
/// strict overflow policy — distinguish from generic dead ends so the
/// recovery path rejects outright instead of adopting an EDF fallback.
class RequestRejectedError : public InfeasibleError {
 public:
  using InfeasibleError::InfeasibleError;
};

u64 job_hash(JobId id) noexcept {
  std::uint64_t z = id.value + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ReservationScheduler::ReservationScheduler(SchedulerOptions options)
    : options_(std::move(options)), n_star_(kMinNStar) {
  static_assert(std::is_trivially_copyable_v<SlotInfo> &&
                    std::is_trivially_destructible_v<SlotInfo>,
                "SlotInfo must be an implicit-lifetime type (arena-backed)");
  static_assert(std::is_trivially_copyable_v<FulRow> &&
                    std::is_trivially_destructible_v<FulRow>,
                "FulRow must be an implicit-lifetime type (arena-backed)");
  static_assert(alignof(SlotInfo) <= BlockArena::kAlign &&
                    alignof(FulRow) <= BlockArena::kAlign,
                "arena blocks must satisfy the row alignments");
  static_assert(sizeof(SlotInfo) % alignof(FulRow) == 0,
                "fulfillment rows must start aligned inside the block");
  RS_REQUIRE(is_pow2(options_.gamma),
             "SchedulerOptions::gamma must be a power of two (keeps trimmed "
             "windows aligned)");
  RS_REQUIRE(options_.rebuild_batch > 0,
             "SchedulerOptions::rebuild_batch must be positive");
#if RS_TELEM_COMPILED
  telemetry::enable(options_.telemetry);
#endif
  const unsigned count = options_.levels.level_count();
  if (options_.legacy_rehash) {
    // Escape hatch: every hot-path table grows stop-the-world (the seed
    // behavior; bench E16's in-binary baseline). Per-window slot sets are
    // switched at window creation (insert_impl).
    jobs_.set_legacy_rehash(true);
    occ_.set_legacy_rehash(true);
  }
  levels_.resize(count);
  for (unsigned level = 0; level < count; ++level) {
    auto& ls = levels_[level];
    if (options_.legacy_rehash) {
      ls.intervals.set_legacy_rehash(true);
      ls.windows.set_legacy_rehash(true);
    }
    ls.max_span = options_.levels.max_span(level);
    ls.max_span_log = floor_log2(ls.max_span);
    if (level >= 1) {
      ls.interval_size = options_.levels.interval_size(level);
      ls.interval_log = options_.levels.interval_size_log(level);
      ls.min_span_log = ls.interval_log + 1;
      RS_CHECK(ls.class_count() <= 64,
               "level table has more span classes than the class bitmask holds");
      ls.active_per_class.assign(ls.class_count(), 0);
      // One block carries all three per-interval arrays (Interval doc
      // comment); sizeof(FulRow) is a multiple of 4, so the trailing u32
      // counters are aligned too.
      ls.arena.configure(ls.interval_size * sizeof(SlotInfo) +
                         ls.class_count() * sizeof(FulRow) +
                         ls.class_count() * sizeof(std::uint32_t));
    }
  }
  sync_audit_engine();
}

ReservationScheduler::~ReservationScheduler() = default;

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

Time ReservationScheduler::interval_base_of(unsigned level, Time slot) const {
  return align_down(slot, levels_[level].interval_size);
}

Time ReservationScheduler::nth_interval_base(const WindowKey& w, unsigned level,
                                             u64 index) const {
  return w.start + static_cast<Time>(index * levels_[level].interval_size);
}

unsigned ReservationScheduler::block_floor(const JobState& job) const noexcept {
  // A reserved level-ℓ job makes its slot unavailable to levels > ℓ (it sits
  // on its own level's fulfilled reservation). A parked job additionally
  // blocks its own level: it occupies a slot outside the reservation system,
  // so that slot must not be handed out as anyone's fulfilled reservation.
  return job.parked ? job.level : job.level + 1;
}

// ---------------------------------------------------------------------------
// Interval state
// ---------------------------------------------------------------------------

void ReservationScheduler::carve_interval_block(LevelState& ls, Interval& interval) {
  // One zeroed carve materializes all three per-interval arrays; the
  // zero state is exactly "no assignments, no lower occupancy, cache
  // invalid" (ful_state lives in the Interval view itself).
  std::byte* block = ls.arena.carve();
  interval.slots = reinterpret_cast<SlotInfo*>(block);
  interval.ful_cache =
      reinterpret_cast<FulRow*>(block + ls.interval_size * sizeof(SlotInfo));
  interval.assigned_by_class = reinterpret_cast<std::uint32_t*>(
      block + ls.interval_size * sizeof(SlotInfo) +
      ls.class_count() * sizeof(FulRow));
}

ReservationScheduler::Interval& ReservationScheduler::get_or_create_interval(
    unsigned level, Time base) {
  auto& ls = levels_[level];
  RS_CHECK(ls.interval_size > 0, "intervals exist only for levels >= 1");
  const auto [interval, inserted] = ls.intervals.try_emplace(base);
  if (inserted) {
    interval->base = base;
    mark_interval_dirty(level, base);
    carve_interval_block(ls, *interval);
    // Initialize occupancy flags from the live schedule; the occupancy
    // bitmap skips free stretches page-at-a-time and probes only populated
    // pages, so materialization costs O(populated pages + occupants).
    const Time end = base + static_cast<Time>(ls.interval_size);
    occ_.for_each_in(base, end, [&](Time slot, JobId id) {
      if (block_floor(jobs_.at(id)) <= level) {
        interval->slots[static_cast<std::size_t>(slot - base)].lower_occupied = true;
        ++interval->lower_count;
      }
    });
  }
  return *interval;
}

ReservationScheduler::Interval* ReservationScheduler::find_interval(unsigned level,
                                                                    Time base) {
  return levels_[level].intervals.find(base);
}

void ReservationScheduler::compute_fulfillment_into(unsigned level,
                                                    const Interval& interval,
                                                    std::vector<FulRow>& rows) const {
  const auto& ls = levels_[level];
  rows.clear();
  rows.reserve(ls.class_count());
  RS_CHECK(interval.lower_count <= ls.interval_size, "lower_count overflow");
  u64 remaining = ls.interval_size - interval.lower_count;
  // Shortest-window-first greedy over the canonical reservation counts
  // (Invariant 5). Exactly one aligned window of each span contains this
  // interval; windows with zero jobs ("virtual") still hold one baseline
  // reservation per interval and consume priority.
  for (unsigned span_log = ls.min_span_log; span_log <= ls.max_span_log; ++span_log) {
    const u64 span = pow2(span_log);
    WindowKey key;
    key.start = align_down(interval.base, span);
    key.span_log = static_cast<std::uint8_t>(span_log);
    const ActiveWindow* window = ls.windows.find(key);
    const u64 x = window ? window->jobs : 0;
    const unsigned k_log = span_log - ls.interval_log;
    const u64 num_intervals = pow2(k_log);
    const u64 idx = static_cast<u64>(interval.base - key.start) >> ls.interval_log;
    const u64 quotient = (2 * x) >> k_log;
    const u64 remainder = (2 * x) & (num_intervals - 1);
    const u64 reservations = quotient + 1 + (idx < remainder ? 1 : 0);
    const u64 fulfilled = std::min(reservations, remaining);
    remaining -= fulfilled;
    rows.push_back(FulRow{key, static_cast<std::uint32_t>(reservations),
                          static_cast<std::uint32_t>(fulfilled)});
  }
}

std::vector<ReservationScheduler::FulRow> ReservationScheduler::compute_fulfillment(
    unsigned level, const Interval& interval) const {
  std::vector<FulRow> rows;
  compute_fulfillment_into(level, interval, rows);
  return rows;
}

const ReservationScheduler::FulRow* ReservationScheduler::fulfillment(
    unsigned level, const Interval& interval) const {
  const auto& ls = levels_[level];
  if (interval.ful_state == FulState::kValid && interval.ful_bound >= ls.active_bound) {
    return interval.ful_cache;
  }

  if (interval.ful_state == FulState::kInvalid) {
    // Rebuild the reservation column off the ledgers straight into the
    // arena rows — and look a window up only for the (few) classes that
    // hold any active window at all; every other row is a virtual baseline
    // of exactly one reservation.
    for (unsigned cls = 0; cls < ls.class_count(); ++cls) {
      const unsigned span_log = ls.min_span_log + cls;
      WindowKey key;
      key.start = align_down(interval.base, pow2(span_log));
      key.span_log = static_cast<std::uint8_t>(span_log);
      u64 x = 0;
      if (ls.active_per_class[cls] > 0) {
        if (const ActiveWindow* window = ls.windows.find(key)) x = window->jobs;
      }
      const unsigned k_log = span_log - ls.interval_log;
      const u64 num_intervals = pow2(k_log);
      const u64 idx = static_cast<u64>(interval.base - key.start) >> ls.interval_log;
      const u64 quotient = (2 * x) >> k_log;
      const u64 remainder = (2 * x) & (num_intervals - 1);
      const u64 reservations = quotient + 1 + (idx < remainder ? 1 : 0);
      interval.ful_cache[cls] =
          FulRow{key, static_cast<std::uint32_t>(reservations), 0};
    }
  }

  // Re-derive fulfilled with the greedy cascade over the (exact) cached
  // reservations — pure arithmetic, no hashing, no allocation — stopping at
  // the active bound past which no hot-path reader looks.
  RS_CHECK(interval.lower_count <= ls.interval_size, "lower_count overflow");
  u64 remaining = ls.interval_size - interval.lower_count;
  for (unsigned cls = 0; cls < ls.active_bound; ++cls) {
    FulRow& row = interval.ful_cache[cls];
    const u64 fulfilled = std::min<u64>(row.reservations, remaining);
    remaining -= fulfilled;
    row.fulfilled = static_cast<std::uint32_t>(fulfilled);
  }
  interval.ful_bound = ls.active_bound;
  interval.ful_state = FulState::kValid;
  // This refresh rewrote cache rows on the read path — a mutation like any
  // other as far as the audit engine is concerned. Without this event an
  // interval that is probed (acquire_slot candidates) but never otherwise
  // mutated would be an I4 blind spot for the incremental auditor.
  mark_interval_dirty(level, interval.base);
  return interval.ful_cache;
}

void ReservationScheduler::note_window_activated(unsigned level, unsigned cls) {
  auto& ls = levels_[level];
  ++ls.active_per_class[cls];
  if (cls + 1 > ls.active_bound) ls.active_bound = cls + 1;
  if (audit_engine_) audit_engine_->on_window_activated(level, cls);
}

void ReservationScheduler::note_window_deactivated(unsigned level, unsigned cls) {
  auto& ls = levels_[level];
  RS_CHECK(ls.active_per_class[cls] > 0, "window census underflow");
  --ls.active_per_class[cls];
  while (ls.active_bound > 0 && ls.active_per_class[ls.active_bound - 1] == 0) {
    --ls.active_bound;
  }
  if (audit_engine_) audit_engine_->on_window_deactivated(level, cls);
}

void ReservationScheduler::adjust_cached_reservation(unsigned level, const WindowKey& w,
                                                     Time base, std::int32_t delta) {
  Interval* interval = find_interval(level, base);
  if (interval == nullptr || interval->ful_state == FulState::kInvalid) return;
  FulRow& row = interval->ful_cache[levels_[level].class_of(w)];
  RS_ASSERT(row.key == w, "adjust_cached_reservation: class row mismatch");
  row.reservations = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(row.reservations) + delta);
  interval->ful_state = FulState::kFulfilledStale;
}

// ---------------------------------------------------------------------------
// Reservation machinery
// ---------------------------------------------------------------------------

void ReservationScheduler::assign_slot(unsigned level, Interval& interval, Time slot,
                                       const WindowKey& w) {
  mark_interval_dirty(level, interval.base);
  mark_window_dirty(level, w);
  SlotInfo& info = interval.slots[static_cast<std::size_t>(slot - interval.base)];
  RS_CHECK(!info.assigned && !info.lower_occupied, "assign_slot: slot unavailable");
  info.assigned = true;
  info.owner = w;
  ++interval.assigned_count;
  const unsigned cls = levels_[level].class_of(w);
  ++interval.assigned_by_class[cls];
  interval.assigned_class_mask |= u64{1} << cls;
  auto& window = levels_[level].windows.at(w);
  window.assigned_slots.insert(slot);
  // A freshly claimed slot never carries a job of this level (such slots are
  // either lower-flagged or already assigned), so it is free by definition.
  window.free_assigned.insert(slot);
}

void ReservationScheduler::unassign_slot(unsigned level, Interval& interval, Time slot) {
  SlotInfo& info = interval.slots[static_cast<std::size_t>(slot - interval.base)];
  RS_CHECK(info.assigned, "unassign_slot: slot not assigned");
  mark_interval_dirty(level, interval.base);
  mark_window_dirty(level, info.owner);
  auto& window = levels_[level].windows.at(info.owner);
  RS_CHECK(window.assigned_slots.erase(slot) == 1, "unassign_slot: ledger mismatch");
  window.free_assigned.erase(slot);
  const unsigned cls = levels_[level].class_of(info.owner);
  if (--interval.assigned_by_class[cls] == 0) {
    interval.assigned_class_mask &= ~(u64{1} << cls);
  }
  info.assigned = false;
  info.owner = WindowKey{};
  --interval.assigned_count;
}

void ReservationScheduler::reconcile(unsigned level, Time interval_base,
                                     std::vector<JobId>& pending) {
  reconcile_interval(level, get_or_create_interval(level, interval_base), pending);
}

void ReservationScheduler::reconcile_interval(unsigned level, Interval& interval,
                                              std::vector<JobId>& pending) {
  const auto& ls = levels_[level];
  std::vector<JobId> to_move;
  if (options_.legacy_fulfillment) {
    // Seed-equivalent path: cold table, then a full per-slot scan to count
    // concrete assignments, then another scan per over-assigned window.
    const auto rows = compute_fulfillment(level, interval);
    std::unordered_map<WindowKey, std::uint32_t> assigned;
    for (std::size_t off = 0; off < ls.interval_size; ++off) {
      const SlotInfo& info = interval.slots[off];
      if (info.assigned) ++assigned[info.owner];
    }
    for (const auto& row : rows) {
      // Virtual (inactive) windows hold no concrete slots, so a == 0 skips
      // them implicitly.
      const auto ait = assigned.find(row.key);
      const std::uint32_t a = ait == assigned.end() ? 0 : ait->second;
      if (a <= row.fulfilled) continue;  // lazy under-assignment is fine
      release_over_assignment(level, interval, row.key, a - row.fulfilled, to_move);
    }
  } else {
    // Cached table (refreshed only if an input changed) + incrementally
    // tracked assignment counts: detecting over-assignment visits only the
    // classes that hold assignments at all — no per-slot scan. Note the
    // a <= f comparison must run even on a cache hit: acquire_slot may have
    // refreshed the cache after the mutation that scheduled this reconcile,
    // observing (but not releasing) an over-assignment.
    const FulRow* rows = fulfillment(level, interval);
    for (u64 mask = interval.assigned_class_mask; mask != 0; mask &= mask - 1) {
      const unsigned cls = static_cast<unsigned>(std::countr_zero(mask));
      const std::uint32_t a = interval.assigned_by_class[cls];
      if (a <= rows[cls].fulfilled) continue;
      release_over_assignment(level, interval, rows[cls].key, a - rows[cls].fulfilled,
                              to_move);
    }
  }
  for (const JobId job : to_move) move_job(job, pending);
}

void ReservationScheduler::release_over_assignment(unsigned level, Interval& interval,
                                                   const WindowKey& w,
                                                   std::uint32_t to_release,
                                                   std::vector<JobId>& to_move) {
  // Prefer releasing slots that carry no job of this level (silent); only
  // move jobs when every over-assigned slot is occupied by one.
  std::vector<Time> silent;
  std::vector<Time> occupied;
  for (std::size_t off = 0; off < levels_[level].interval_size; ++off) {
    const SlotInfo& info = interval.slots[off];
    if (!info.assigned || info.owner != w) continue;
    const Time slot = interval.base + static_cast<Time>(off);
    const JobId* occupant = occ_.find(slot);
    if (occupant == nullptr || jobs_.at(*occupant).level != level) {
      silent.push_back(slot);
    } else {
      occupied.push_back(slot);
    }
  }
  for (const Time slot : silent) {
    if (to_release == 0) break;
    unassign_slot(level, interval, slot);
    --to_release;
  }
  for (const Time slot : occupied) {
    if (to_release == 0) break;
    const JobId job = occ_.at(slot);
    unassign_slot(level, interval, slot);
    to_move.push_back(job);
    --to_release;
  }
  RS_CHECK(to_release == 0, "reconcile: could not release enough slots");
}

Time ReservationScheduler::acquire_slot(const WindowKey& w, unsigned level, Time avoid) {
  auto& ls = levels_[level];
  auto& window = ls.windows.at(w);

  // Fast path: an already-materialized free fulfilled slot. Prefer a truly
  // empty one among the first few probes (fewer displacements); any free
  // fulfilled slot is valid per Figure 1 line 15. The early-exit scan is
  // cheap AND deterministic across rehash modes: free_assigned is a
  // DenseHashSet, so iteration order is a pure function of the set's own
  // insert/erase sequence — hash layout never leaks into the pick
  // (tests/rehash_differential_test.cpp pins the byte-identity).
  Time empty_hit = kNoSlot;
  Time fallback = kNoSlot;
  int probes = 0;
  window.free_assigned.for_each_until([&](Time slot) {
    if (slot == avoid) return false;
    if (!occ_.occupied(slot)) {
      empty_hit = slot;
      return true;
    }
    if (fallback == kNoSlot) fallback = slot;
    return ++probes >= 4;
  });
  if (empty_hit != kNoSlot) return empty_hit;
  if (fallback != kNoSlot) return fallback;

  // Slow path: claim a spare fulfilled reservation from some interval of W.
  // Lemma 8 guarantees that (under 8-underallocation) strictly more than
  // half of W's intervals fulfil all of W's reservations, so a round-robin
  // scan terminates quickly in the intended regime.
  const unsigned k_log = w.span_log - ls.interval_log;
  const u64 num_intervals = pow2(k_log);
  const unsigned cls = ls.class_of(w);
  for (u64 step = 0; step < num_intervals; ++step) {
    const u64 idx = (window.claim_cursor + step) % num_intervals;
    const Time base = nth_interval_base(w, level, idx);
    Interval& interval = get_or_create_interval(level, base);

    std::uint32_t fulfilled = 0;
    std::uint32_t assigned_here = 0;
    Time free_any = kNoSlot;
    Time free_empty = kNoSlot;
    if (options_.legacy_fulfillment) {
      // Seed-equivalent: cold table plus a full slot scan that both counts
      // assignments and hunts for free slots.
      const auto rows = compute_fulfillment(level, interval);
      fulfilled = rows[cls].fulfilled;
      for (std::size_t off = 0; off < ls.interval_size; ++off) {
        const SlotInfo& info = interval.slots[off];
        const Time slot = interval.base + static_cast<Time>(off);
        if (info.assigned && info.owner == w) ++assigned_here;
        if (!info.assigned && !info.lower_occupied && slot != avoid) {
          if (free_any == kNoSlot) free_any = slot;
          if (free_empty == kNoSlot && !occ_.occupied(slot)) free_empty = slot;
        }
      }
    } else {
      // Cached table + incrementally tracked assignment count: the spare
      // check costs O(1); slots are scanned only when a claim will succeed.
      const FulRow* rows = fulfillment(level, interval);
      RS_ASSERT(rows[cls].key == w, "acquire_slot: class row mismatch");
      fulfilled = rows[cls].fulfilled;
      assigned_here = interval.assigned_by_class[cls];
      if (fulfilled > assigned_here) {
        for (std::size_t off = 0; off < ls.interval_size; ++off) {
          const SlotInfo& info = interval.slots[off];
          const Time slot = interval.base + static_cast<Time>(off);
          if (info.assigned || info.lower_occupied || slot == avoid) continue;
          if (free_any == kNoSlot) free_any = slot;
          if (!occ_.occupied(slot)) {
            free_empty = slot;
            break;  // first free slot already recorded; nothing better exists
          }
        }
      }
    }

    if (fulfilled > assigned_here) {
      const Time slot = free_empty != kNoSlot ? free_empty : free_any;
      if (slot == kNoSlot) continue;  // only free slot was `avoid`; try elsewhere
      assign_slot(level, interval, slot, w);
      window.claim_cursor = (idx + 1) % num_intervals;
      return slot;
    }
  }
  return kNoSlot;
}

// ---------------------------------------------------------------------------
// Job motion
// ---------------------------------------------------------------------------

void ReservationScheduler::count_move(const JobState& job) noexcept {
  ++current_.reallocations;
  touched_levels_mask_ |= (1u << job.level);
}

void ReservationScheduler::occupy(JobId id, Time slot, bool parked_placement,
                                  std::vector<JobId>& pending, bool counts) {
  JobState& job = jobs_.at(id);
  RS_CHECK(job.slot == kNoSlot, "occupy: job already placed");
  RS_CHECK(job.window.contains(slot), "occupy: slot outside window");

  // Displace the current occupant, if any. Pecking order guarantees it has
  // a strictly longer span.
  JobId displaced{};
  bool has_displaced = false;
  unsigned old_floor = top_level() + 1;  // level from which the slot was already blocked
  if (const JobId* occupant = occ_.find(slot); occupant != nullptr) {
    displaced = *occupant;
    has_displaced = true;
    JobState& victim = jobs_.at(displaced);
    RS_CHECK(victim.window.span() > job.window.span(),
             "occupy: pecking order violated (displacing a non-longer job)");
    old_floor = block_floor(victim);
    if (victim.parked) {
      victim.parked = false;
      --parked_count_;
      note_parked_delta(-1);
    }
    victim.slot = kNoSlot;
    mark_job_dirty(displaced);
  }

  mark_job_dirty(id);
  job.parked = parked_placement;
  if (parked_placement) {
    ++parked_count_;
    note_parked_delta(+1);
  }
  if (has_displaced) {
    occ_.displace(slot, id);  // slot stays occupied; run index untouched
  } else {
    occ_.place(slot, id);
  }
  job.slot = slot;

  // Own-level ledger: a reserved placement lands on a slot assigned to its
  // own window; that slot stops being "free".
  if (!parked_placement && job.level >= 1) {
    const WindowKey w(job.window);
    auto& window = levels_[job.level].windows.at(w);
    RS_CHECK(window.assigned_slots.contains(slot),
             "occupy: reserved placement on a slot not assigned to the window");
    window.free_assigned.erase(slot);
    mark_window_dirty(job.level, w);
  }

  // The slot becomes blocked ("occupied by a lower-level job") for levels in
  // [new_floor, old_floor); it was already blocked above old_floor. Each
  // affected interval loses the slot from its allowance (Figure 1 lines
  // 17-21): void any assignment on it, then reconcile, which may waitlist
  // the marginal window's reservation and MOVE a job.
  const unsigned new_floor = block_floor(job);
  for (unsigned level = std::max(new_floor, 1u);
       level < old_floor && level <= top_level(); ++level) {
    Interval* interval = find_interval(level, interval_base_of(level, slot));
    if (interval == nullptr) continue;  // never materialized: flags set lazily
    SlotInfo& info = interval->slots[static_cast<std::size_t>(slot - interval->base)];
    RS_CHECK(!info.lower_occupied, "occupy: stale lower_occupied flag");
    if (info.assigned) unassign_slot(level, *interval, slot);
    info.lower_occupied = true;
    ++interval->lower_count;
    mark_interval_dirty(level, interval->base);
    soften_fulfillment(*interval);  // lower occupancy is a fulfillment input
    reconcile_interval(level, *interval, pending);
  }

  if (counts) count_move(job);
  if (has_displaced) pending.push_back(displaced);
}

void ReservationScheduler::vacate(JobId id) {
  JobState& job = jobs_.at(id);
  RS_CHECK(job.slot != kNoSlot, "vacate: job not placed");
  const Time slot = job.slot;
  occ_.remove(slot);
  job.slot = kNoSlot;
  mark_job_dirty(id);

  const unsigned floor = block_floor(job);
  for (unsigned level = std::max(floor, 1u); level <= top_level(); ++level) {
    Interval* interval = find_interval(level, interval_base_of(level, slot));
    if (interval == nullptr) continue;
    SlotInfo& info = interval->slots[static_cast<std::size_t>(slot - interval->base)];
    RS_CHECK(info.lower_occupied, "vacate: missing lower_occupied flag");
    info.lower_occupied = false;
    --interval->lower_count;
    mark_interval_dirty(level, interval->base);
    soften_fulfillment(*interval);  // allowance grew; fulfilled re-cascades
    // Waitlisted reservations may be promoted, which needs no job movement
    // and is realized lazily on the next claim.
  }

  if (job.parked) {
    job.parked = false;
    --parked_count_;
    note_parked_delta(-1);
  } else if (job.level >= 1) {
    // The slot keeps its reservation; it is once again a free fulfilled
    // slot of the window (if still assigned — a release may have detached
    // it just before a MOVE).
    auto& ls = levels_[job.level];
    const WindowKey w(job.window);
    if (ActiveWindow* window = ls.windows.find(w); window != nullptr) {
      if (window->assigned_slots.contains(slot)) {
        window->free_assigned.insert(slot);
        mark_window_dirty(job.level, w);
      }
    }
  }
}

void ReservationScheduler::swap_ancestor_bookkeeping(Time s1, Time s2,
                                                     unsigned above_level) {
  for (unsigned level = above_level + 1; level <= top_level(); ++level) {
    Interval* interval = find_interval(level, interval_base_of(level, s1));
    if (interval == nullptr) continue;
    RS_CHECK(interval_base_of(level, s2) == interval->base,
             "swap: slots not in the same ancestor interval");
    SlotInfo& a = interval->slots[static_cast<std::size_t>(s1 - interval->base)];
    SlotInfo& b = interval->slots[static_cast<std::size_t>(s2 - interval->base)];
    mark_interval_dirty(level, interval->base);
    if (a.assigned) mark_window_dirty(level, a.owner);
    if (b.assigned) mark_window_dirty(level, b.owner);
    if (a.assigned && b.assigned && a.owner == b.owner) {
      // Same owner on both slots: set membership is unchanged; only the
      // free/occupied status may differ and follows the physical swap.
      auto& window = levels_[level].windows.at(a.owner);
      const bool free1 = window.free_assigned.contains(s1);
      const bool free2 = window.free_assigned.contains(s2);
      if (free1 != free2) {
        if (free1) {
          window.free_assigned.erase(s1);
          window.free_assigned.insert(s2);
        } else {
          window.free_assigned.erase(s2);
          window.free_assigned.insert(s1);
        }
      }
    } else {
      const auto transfer = [&](SlotInfo& info, Time from, Time to) {
        if (!info.assigned) return;
        auto& window = levels_[level].windows.at(info.owner);
        RS_CHECK(window.assigned_slots.erase(from) == 1, "swap: ledger mismatch");
        window.assigned_slots.insert(to);
        if (window.free_assigned.erase(from) > 0) window.free_assigned.insert(to);
      };
      transfer(a, s1, s2);
      transfer(b, s2, s1);
    }
    // Both slots live in this interval, so lower_count, assigned_count and
    // the per-class assignment counts are all preserved by the swap — the
    // fulfillment cache stays valid.
    std::swap(a, b);
  }
}

void ReservationScheduler::move_job(JobId id, std::vector<JobId>& pending) {
  JobState& job = jobs_.at(id);
  RS_CHECK(!job.parked && job.level >= 1, "move_job: only reserved jobs use MOVE");
  const Time from = job.slot;
  RS_CHECK(from != kNoSlot, "move_job: job not placed");
  const WindowKey w(job.window);

  const Time to = acquire_slot(w, job.level, /*avoid=*/from);
  if (to == kNoSlot) {
    // Lemma 8's guarantee failed: the instance is not sufficiently
    // underallocated. Degrade gracefully — the job leaves the reservation
    // system and is re-placed best-effort. (Throwing here would leave the
    // schedule with an unplaced pre-existing job, so even under kThrow we
    // park and record the degradation.)
    ++current_.degraded;
    vacate(id);
    place_unreserved(id, /*park=*/true, pending, /*counts=*/true);
    return;
  }

  // Figure-1 MOVE via the swap trick: `from` and `to` lie inside W, hence in
  // the same ancestor interval at every level above; swapping the two slots'
  // bookkeeping wholesale keeps every higher-level allowance unchanged. A
  // higher-level job h on `to` is rehoused onto the vacated `from` (its
  // reservation follows the swap) with no further cascading.
  JobId higher{};
  bool has_higher = false;
  if (const JobId* occupant = occ_.find(to); occupant != nullptr) {
    higher = *occupant;
    has_higher = true;
  }

  swap_ancestor_bookkeeping(from, to, job.level);
  if (has_higher) {
    // Occupancy swaps wholesale: both slots stay occupied.
    JobState& hjob = jobs_.at(higher);
    RS_CHECK(hjob.level > job.level, "move_job: target slot held a non-higher job");
    occ_.displace(from, higher);
    hjob.slot = from;
    count_move(hjob);
    mark_job_dirty(higher);
    occ_.displace(to, id);
  } else {
    occ_.remove(from);
    occ_.place(to, id);
  }
  mark_job_dirty(id);

  auto& window = levels_[job.level].windows.at(w);
  RS_CHECK(window.assigned_slots.contains(to), "move_job: target lost its reservation");
  window.free_assigned.erase(to);
  mark_window_dirty(job.level, w);
  job.slot = to;
  count_move(job);
}

void ReservationScheduler::place_reserved(JobId id, std::vector<JobId>& pending,
                                          bool is_request_job, bool counts) {
  JobState& job = jobs_.at(id);
  const WindowKey w(job.window);
  const Time slot = acquire_slot(w, job.level, kNoSlot);
  if (slot == kNoSlot) {
    if (is_request_job && options_.overflow == OverflowPolicy::kThrow && !in_rebuild_) {
      // Strict mode: a reservation failure on the request job rejects it.
      throw RequestRejectedError(
          "reservation scheduler: no fulfilled slot available for the inserted "
          "job; the instance is not sufficiently underallocated");
    }
    ++current_.degraded;
    place_unreserved(id, /*park=*/true, pending, counts);
    return;
  }
  occupy(id, slot, /*parked_placement=*/false, pending, counts);
}

void ReservationScheduler::place_unreserved(JobId id, bool park,
                                            std::vector<JobId>& pending, bool counts) {
  JobState& job = jobs_.at(id);
  const Window w = job.window;

  // First-fit gap collection via the run index, then (only if the window is
  // fully occupied) a victim walk — pecking order displaces strictly longer
  // jobs only.
  std::vector<Time> gaps;
  const std::size_t max_gaps =
      options_.placement == PlacementPolicy::kAvoidReserved ? 16 : 1;
  for (Time t = occ_.next_free(w.start); t < w.end && gaps.size() < max_gaps;
       t = occ_.next_free(t + 1)) {
    gaps.push_back(t);
  }
  JobId victim{};
  Time victim_slot = 0;
  Time victim_span = w.span();
  bool has_victim = false;
  if (gaps.empty()) {
    occ_.for_each_in(w.start, w.end, [&](Time slot, JobId occupant) {
      const JobState& other = jobs_.at(occupant);
      if (other.window.span() > victim_span) {
        victim_span = other.window.span();
        victim = occupant;
        victim_slot = slot;
        has_victim = true;
      }
    });
  }

  if (!gaps.empty()) {
    Time chosen = gaps.front();
    if (options_.placement == PlacementPolicy::kAvoidReserved) {
      // Prefer a gap that no materialized higher-level interval has handed
      // out as a fulfilled reservation (ablation; reduces waitlist churn).
      for (const Time gap : gaps) {
        bool reserved = false;
        for (unsigned level = 1; level <= top_level(); ++level) {
          const auto& ls = levels_[level];
          const Interval* interval =
              ls.intervals.find(align_down(gap, ls.interval_size));
          if (interval == nullptr) continue;
          if (interval->slots[static_cast<std::size_t>(gap - interval->base)].assigned) {
            reserved = true;
            break;
          }
        }
        if (!reserved) {
          chosen = gap;
          break;
        }
      }
    }
    occupy(id, chosen, park, pending, counts);
    return;
  }
  if (!has_victim) {
    throw InfeasibleError(
        "pecking-order placement: window saturated with equal-or-shorter jobs; "
        "instance infeasible");
  }
  occupy(id, victim_slot, park, pending, counts);
}

void ReservationScheduler::drain(std::vector<JobId>& pending) {
  while (!pending.empty()) {
    const JobId id = pending.back();
    pending.pop_back();
    JobState& job = jobs_.at(id);
    RS_CHECK(job.slot == kNoSlot, "drain: pending job already placed");
    if (job.level == 0) {
      place_unreserved(id, /*park=*/false, pending, /*counts=*/true);
    } else {
      place_reserved(id, pending, /*is_request_job=*/false, /*counts=*/true);
    }
  }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

Window ReservationScheduler::trim(JobId id, Window w) const {
  // §4 "Trimming Windows to n": windows wider than 2γn* are trimmed to an
  // aligned sub-window of span exactly 2γn* (both powers of two, so the
  // block decomposition is exact). The block is picked by job-id hash to
  // spread trimmed jobs across the original window deterministically.
  const u64 limit = 2 * options_.gamma * n_star_;
  if (static_cast<u64>(w.span()) <= limit) return w;
  const u64 blocks = static_cast<u64>(w.span()) / limit;
  const u64 pick = job_hash(id) % blocks;
  const Time start = w.start + static_cast<Time>(pick * limit);
  return Window{start, start + static_cast<Time>(limit)};
}

void ReservationScheduler::insert_impl(JobId id, Window original) {
  const Window trimmed = options_.trimming ? trim(id, original) : original;
  const unsigned level = options_.levels.level_of(static_cast<u64>(trimmed.span()));
  jobs_[id] = JobState{original, trimmed, level, kNoSlot, false};

  std::vector<JobId> pending;
  try {
    if (level == 0) {
      place_unreserved(id, /*park=*/false, pending, /*counts=*/false);
    } else {
      auto& ls = levels_[level];
      const WindowKey w(trimmed);
      const auto [window_slot, activated] = ls.windows.try_emplace(w);
      ActiveWindow& window = *window_slot;
      if (activated) {
        note_window_activated(level, ls.class_of(w));
        if (options_.legacy_rehash) {
          window.assigned_slots.set_legacy_rehash(true);
          window.free_assigned.set_legacy_rehash(true);
        }
      }
      const u64 x_old = window.jobs;
      window.jobs = x_old + 1;
      if (audit_engine_) audit_engine_->on_window_jobs(level, w, +1);

      // Invariant 5: the two new reservations go to the round-robin
      // positions following the 2x_old + 2^k existing ones — and the
      // closed-form r(W,·) changes in exactly those two intervals, so they
      // are the only fulfillment caches the count change can stale.
      const unsigned k_log = w.span_log - ls.interval_log;
      const u64 num_intervals = pow2(k_log);
      const u64 p1 = (2 * x_old) % num_intervals;
      const u64 p2 = (2 * x_old + 1) % num_intervals;
      const Time b1 = nth_interval_base(w, level, p1);
      const Time b2 = nth_interval_base(w, level, p2);
      mark_interval_dirty(level, b1);
      mark_interval_dirty(level, b2);
      adjust_cached_reservation(level, w, b1, +1);
      adjust_cached_reservation(level, w, b2, +1);
      reconcile(level, b1, pending);
      reconcile(level, b2, pending);

      place_reserved(id, pending, /*is_request_job=*/true, /*counts=*/false);
    }
    drain(pending);
  } catch (const RequestRejectedError&) {
    // Strict mode: reservation failure on the request job.
    recover_or_reject(id, /*reject_outright=*/true, pending);
  } catch (const InfeasibleError&) {
    // A pecking-order displacement chain dead-ended (insufficient slack).
    const bool strict = options_.overflow == OverflowPolicy::kThrow && !in_rebuild_;
    recover_or_reject(id, /*reject_outright=*/strict, pending);
  }
}

void ReservationScheduler::erase_impl(JobId id) {
  try {
    erase_body(id);
  } catch (const InfeasibleError&) {
    // A MOVE triggered by the reservation removal dead-ended. The remaining
    // set was feasibly scheduled a moment ago, so the EDF fallback always
    // succeeds here.
    RS_CHECK(emergency_reschedule(nullptr),
             "erase recovery: EDF infeasible on a previously feasible set");
  }
}

void ReservationScheduler::erase_body(JobId id) {
  JobState* jit = jobs_.find(id);
  RS_CHECK(jit != nullptr, "erase_impl: unknown job");
  const JobState state = *jit;  // copy before mutation
  std::vector<JobId> pending;

  if (state.slot != kNoSlot) vacate(id);
  jobs_.erase(id);
  if (audit_engine_) audit_engine_->on_job_erased(id);

  if (state.level >= 1) {
    auto& ls = levels_[state.level];
    const WindowKey w(state.window);
    ActiveWindow* window = ls.windows.find(w);
    RS_CHECK(window != nullptr, "erase_impl: window ledger missing");
    const u64 x_old = window->jobs;
    RS_CHECK(x_old >= 1, "erase_impl: window job count underflow");
    window->jobs = x_old - 1;
    if (audit_engine_) audit_engine_->on_window_jobs(state.level, w, -1);
    // The two removed reservations sat at the round-robin positions below;
    // r(W,·) — and therefore fulfillment — changes in exactly those two
    // intervals, in the deactivation case as well (x: 1 -> 0 reduces the
    // window to its virtual baseline at positions {0, 1} = {p1, p2}).
    const unsigned k_log = w.span_log - ls.interval_log;
    const u64 num_intervals = pow2(k_log);
    const u64 p1 = (2 * x_old - 1) % num_intervals;
    const u64 p2 = (2 * x_old - 2) % num_intervals;
    const Time b1 = nth_interval_base(w, state.level, p1);
    const Time b2 = nth_interval_base(w, state.level, p2);
    mark_interval_dirty(state.level, b1);
    mark_interval_dirty(state.level, b2);
    adjust_cached_reservation(state.level, w, b1, -1);
    adjust_cached_reservation(state.level, w, b2, -1);

    if (window->jobs == 0) {
      // Deactivate: all concrete slots return to the free pool; promotions
      // of longer windows' waitlisted reservations need no job movement.
      std::vector<Time> slots;
      slots.reserve(window->assigned_slots.size());
      window->assigned_slots.for_each([&](Time slot) { slots.push_back(slot); });
      for (const Time slot : slots) {
        Interval* interval = find_interval(state.level, interval_base_of(state.level, slot));
        RS_CHECK(interval != nullptr, "erase_impl: assigned slot in missing interval");
        unassign_slot(state.level, *interval, slot);
      }
      ls.windows.erase(w);
      note_window_deactivated(state.level, ls.class_of(w));
    } else {
      // Remove the two most recently added reservations (the "two rightmost
      // intervals with the most reservations").
      reconcile(state.level, b1, pending);
      reconcile(state.level, b2, pending);
    }
  }
  drain(pending);
}

bool ReservationScheduler::emergency_reschedule(const JobId* exclude) {
  std::vector<JobSpec> specs;
  specs.reserve(jobs_.size());
  jobs_.for_each([&](const JobId& jid, const JobState& job) {
    if (exclude != nullptr && jid == *exclude) return;
    specs.push_back(JobSpec{jid, job.window});
  });
  const auto schedule = edf_schedule(specs, 1);
  if (!schedule.has_value()) return false;

  // Adopt the EDF schedule: every job becomes a parked placement. The
  // window ledgers' job counts survive (they describe the active set, which
  // is unchanged); concrete reservation assignments reset and will be
  // re-claimed lazily by future requests.
  FlatHashMap<JobId, Time> old_slots;
  old_slots.reserve(jobs_.size());
  jobs_.for_each([&](const JobId& jid, const JobState& job) { old_slots[jid] = job.slot; });

  // Wholesale reset: dirty tracking cannot survive it — escalate the next
  // audit to a full sweep (which reseeds the engine's shadows).
  if (audit_engine_) audit_engine_->mark_all();
  occ_.clear();
  parked_count_ = 0;
  for (auto& ls : levels_) {
    ls.intervals.clear();
    ls.arena.reset();  // O(1); interval blocks are reclaimed wholesale
    ls.windows.for_each([](const WindowKey&, ActiveWindow& window) {
      window.assigned_slots.clear();
      window.free_assigned.clear();
      window.claim_cursor = 0;
    });
  }
  jobs_.for_each([](const JobId&, JobState& job) {
    job.slot = kNoSlot;
    job.parked = false;
  });
  u64 moved = 0;
  for (const auto& [jid, placement] : *schedule) {
    JobState& job = jobs_.at(jid);
    job.slot = placement.slot;
    job.parked = job.level >= 1;
    if (job.parked) ++parked_count_;
    occ_.place(placement.slot, jid);
    if (old_slots.at(jid) != placement.slot) ++moved;
  }
  current_.reallocations += moved;
  current_.degraded += schedule->size();
  current_.rebuilt = true;
  return true;
}

void ReservationScheduler::recover_or_reject(JobId id, bool reject_outright,
                                             std::vector<JobId>& pending) {
  // Try to settle any interrupted cascade cheaply; a nested dead end while
  // draining falls through to the EDF recovery below.
  try {
    drain(pending);
  } catch (const InfeasibleError&) {
    pending.clear();
  }
  std::size_t stranded = 0;
  jobs_.for_each([&](const JobId& jid, const JobState& job) {
    if (jid != id && job.slot == kNoSlot) ++stranded;
  });

  if (stranded == 0) {
    if (!reject_outright) {
      // Best effort: the pecking order could not place the request, but EDF
      // (which is complete for unit jobs) might — keep the request if so.
      if (emergency_reschedule(nullptr)) return;
    }
    // Clean rejection: every pre-existing job is placed; just drop the
    // request's ledger entries. Minimal disturbance.
    erase_impl(id);
  } else {
    // Cascaded jobs were stranded mid-flight: rebuild a feasible schedule
    // for the whole set, keeping the request if possible and allowed.
    if (!reject_outright && emergency_reschedule(nullptr)) return;
    RS_CHECK(emergency_reschedule(&id),
             "insert recovery: EDF infeasible on the pre-request active set");
    erase_impl(id);  // removes the unplaced request's ledger entries
  }
  throw InfeasibleError(
      "reservation scheduler: request cannot be scheduled (instance "
      "infeasible, or reservations exhausted under OverflowPolicy::kThrow)");
}

// ---------------------------------------------------------------------------
// n*-rebuilds: stop-the-world (legacy) and partitioned (default)
// ---------------------------------------------------------------------------

void ReservationScheduler::maybe_rebuild_on_insert() {
  if (!options_.trimming) return;
  if (jobs_.size() + 1 > n_star_) rebuild(n_star_ * 2);
}

void ReservationScheduler::maybe_rebuild_on_erase() {
  if (!options_.trimming) return;
  if (n_star_ > kMinNStar && jobs_.size() < n_star_ / 4) rebuild(n_star_ / 2);
}

void ReservationScheduler::rebuild(u64 new_n_star) {
  // A re-trigger while a migration is still in flight is possible only when
  // the doubling/halving runway is shorter than the migration (tiny active
  // sets, custom towers): finish the old generation first, synchronously —
  // the burst is bounded by that same tiny size.
  if (migration_ != nullptr) flush_migration();
  if (options_.legacy_rebuild || jobs_.size() <= options_.rebuild_batch) {
    // Small sets: one request's migration budget covers the whole set, so
    // the stop-the-world path IS the partitioned path (and keeps the seed's
    // exact per-request behavior, which the small-n unit tests pin down).
    rebuild_stop_the_world(new_n_star);
  } else {
    begin_partitioned_rebuild(new_n_star);
  }
}

std::vector<std::pair<JobId, Window>> ReservationScheduler::sorted_active_set() const {
  std::vector<std::pair<JobId, Window>> all;
  all.reserve(jobs_.size());
  jobs_.for_each([&](const JobId& id, const JobState& job) {
    all.emplace_back(id, job.original);
  });
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first.value < b.first.value; });
  return all;
}

void ReservationScheduler::rebuild_stop_the_world(u64 new_n_star) {
  n_star_ = new_n_star;
  in_rebuild_ = true;
  if (audit_engine_) audit_engine_->mark_all();

  const std::vector<std::pair<JobId, Window>> all = sorted_active_set();
  FlatHashMap<JobId, Time> old_slots;
  old_slots.reserve(all.size());
  for (const auto& [id, window] : all) old_slots[id] = jobs_.at(id).slot;

  occ_.clear();
  for (auto& ls : levels_) {
    ls.intervals.clear();
    ls.arena.reset();  // reclaim every interval block in O(1), keep chunks
    ls.windows.clear();
    ls.active_per_class.assign(ls.active_per_class.size(), 0);
    ls.active_bound = 0;
  }
  jobs_.clear();
  parked_count_ = 0;

  // Reinsert; intermediate shuffles do not count — the honest reallocation
  // cost of a rebuild is the number of jobs whose placement changed.
  const RequestStats saved = current_;
  for (const auto& [id, window] : all) insert_impl(id, window);
  current_ = saved;
  u64 moved = 0;
  jobs_.for_each([&](const JobId& id, const JobState& job) {
    if (old_slots.at(id) != job.slot) ++moved;
  });
  current_.reallocations += moved;
  current_.rebuilt = true;
  in_rebuild_ = false;
}

void ReservationScheduler::begin_partitioned_rebuild(u64 new_n_star) {
  // The boundary request only snapshots the reinsertion work list (sorted
  // by JobId — the exact legacy reinsertion order) and flips n*; all actual
  // reinsertion happens in per-request batches (step_migration). n_star_
  // becomes the target immediately so trimming of interim inserts and the
  // next trigger evaluation behave exactly as on the legacy path.
  n_star_ = new_n_star;
  RS_TELEM_COUNTER(kBegins, "rebuild.begins");
  RS_TELEM_ADD(kBegins, 1);
  RS_TELEM_INSTANT("rebuild.begin");
  auto migration = std::make_unique<Migration>();
  migration->reinsert = sorted_active_set();

  SchedulerOptions shadow_options = options_;
  shadow_options.audit = false;      // audited via the parent's audit()
  // The shadow keeps the parent's engine mode (its mutations must be
  // tracked so the dirty sets can follow the data across the swap) but
  // never audits autonomously — the parent's audit drives it (cadence 0).
  shadow_options.audit_policy.cadence = 0;
  shadow_options.legacy_rebuild = true;  // a nested trigger during replay is
                                         // served synchronously, exactly as
                                         // the legacy path would at that
                                         // request
  // Replay must not throw mid-migration (the original caller is long gone);
  // best-effort parks instead. Divergence from a kThrow legacy run is only
  // possible outside the underallocated regime — see DESIGN.md §6.
  shadow_options.overflow = OverflowPolicy::kBestEffort;
  migration->shadow = std::make_unique<ReservationScheduler>(std::move(shadow_options));
  migration->shadow->n_star_ = new_n_star;
  migration_ = std::move(migration);
  current_.rebuilt = true;
}

void ReservationScheduler::step_migration(std::size_t budget) {
  Migration& m = *migration_;
  ReservationScheduler& shadow = *m.shadow;
  RS_TELEM_DURATION(kStepHist, "rebuild.step");
  RS_TELEM_SPAN(step_span, kStepHist, "rebuild.step");
#if RS_TELEM_COMPILED
  const std::size_t work_before = m.reinsert_next + m.replay_next;
#endif

  // Phase 1: reinsert the boundary snapshot in JobId order — the same
  // insert_impl-with-in_rebuild_ loop the legacy rebuild runs, just sliced.
  while (budget > 0 && m.reinsert_next < m.reinsert.size()) {
    const auto& [id, original] = m.reinsert[m.reinsert_next++];
    shadow.in_rebuild_ = true;
    shadow.insert_impl(id, original);
    shadow.in_rebuild_ = false;
    --budget;
  }

  // Phase 2: replay the interim requests in arrival order through the
  // shadow's full request path (trigger checks included), exactly as the
  // legacy scheduler would have served them post-rebuild.
  while (budget > 0 && m.replay_next < m.replay.size()) {
    const QueuedRequest q = m.replay[m.replay_next++];
    try {
      if (q.is_insert) {
        shadow.insert(q.id, q.window);
      } else {
        shadow.erase(q.id);
      }
    } catch (const InfeasibleError&) {
      // The live generation accepted this request over the same active set,
      // so a feasible schedule exists and best-effort recovery (EDF is
      // complete for unit jobs) cannot fail. Reaching this line means the
      // generations' job sets would diverge — a bug, not an input property.
      RS_CHECK(false, "partitioned rebuild: shadow rejected a replayed request "
                      "the live generation had accepted");
    }
    --budget;
  }

#if RS_TELEM_COMPILED
  RS_TELEM_HISTOGRAM(kStepWork, "rebuild.step_work");
  RS_TELEM_RECORD(kStepWork, m.reinsert_next + m.replay_next - work_before);
#endif

  if (m.reinsert_next == m.reinsert.size() && m.replay_next == m.replay.size()) {
    complete_migration();
  }
}

void ReservationScheduler::complete_migration() {
  ReservationScheduler& shadow = *migration_->shadow;
  RS_CHECK(shadow.jobs_.size() == jobs_.size(),
           "partitioned rebuild: generation job sets diverged");
  RS_CHECK(shadow.n_star_ == n_star_, "partitioned rebuild: n* diverged");

  // Honest reallocation accounting, same rule as the legacy rebuild: one
  // reallocation per job whose placement differs across the flip.
  u64 moved = 0;
  shadow.jobs_.for_each([&](const JobId& id, const JobState& shadow_job) {
    const JobState* live_job = jobs_.find(id);
    RS_CHECK(live_job != nullptr, "partitioned rebuild: job missing from live generation");
    if (live_job->slot != shadow_job.slot) ++moved;
  });

  // The O(1) generation flip. The audit engines' tracking state (dirty
  // sets, shadow counters) swaps along with the data it describes; each
  // engine keeps its own policy and work counters.
  std::swap(levels_, shadow.levels_);
  std::swap(jobs_, shadow.jobs_);
  std::swap(occ_, shadow.occ_);
  std::swap(parked_count_, shadow.parked_count_);
  if (audit_engine_ != nullptr) {
    if (shadow.audit_engine_ != nullptr) {
      audit_engine_->swap_state_with(*shadow.audit_engine_);
      // The retiring shadow's work history folds into the survivor so
      // audit_work() totals never move backwards across the flip.
      audit_engine_->absorb_stats(*shadow.audit_engine_);
      // The swapped-in backlog is a whole migration window's dirt; pace it
      // out at AuditPolicy::post_swap_budget regions per audit instead of
      // verifying it all inside one post-swap call (the E15/E16 latency
      // fix — the audit mirrors how the rebuild spread its reinsertions).
      audit_engine_->begin_paced_drain();
    } else {
      // Engine attached mid-migration: the shadow generation was never
      // tracked, so the swapped-in state is unverified - escalate.
      audit_engine_->mark_all();
    }
  }

  current_.reallocations += moved;
  current_.rebuilt = true;

  // The shadow object now holds the OLD generation; park it for deferred
  // trimming (one level per request, trim_retired_step). Append, never
  // overwrite: an earlier retired generation that has not finished
  // draining keeps its place in the queue instead of being freed wholesale
  // inside this request.
  retiring_.push_back(std::move(migration_->shadow));
  migration_.reset();
  RS_TELEM_COUNTER(kFlips, "rebuild.flips");
  RS_TELEM_ADD(kFlips, 1);
  RS_TELEM_INSTANT("rebuild.flip");
}

void ReservationScheduler::flush_migration() {
  while (migration_ != nullptr) {
    step_migration(std::numeric_limits<std::size_t>::max());
  }
}

void ReservationScheduler::trim_retired_step() {
  if (retiring_.empty()) return;
  ReservationScheduler& oldest = *retiring_.front();
  if (!oldest.levels_.empty()) {
    // Destroying one LevelState frees that level's interval map, window
    // ledgers and — through BlockArena — every interval block of the old
    // generation at this level, all without touching the new generation.
    oldest.levels_.pop_back();
    return;
  }
  // Last step for this generation: the old occupancy index and job table.
  retiring_.erase(retiring_.begin());
}

std::size_t ReservationScheduler::rebuild_pending() const noexcept {
  if (migration_ == nullptr) return 0;
  return (migration_->reinsert.size() - migration_->reinsert_next) +
         (migration_->replay.size() - migration_->replay_next);
}

ReservationScheduler::ArenaStats ReservationScheduler::arena_stats(
    unsigned level) const {
  RS_REQUIRE(level >= 1 && level <= top_level(), "arena_stats: level out of range");
  const BlockArena& arena = levels_[level].arena;
  return ArenaStats{arena.block_bytes(), arena.blocks_carved(), arena.blocks_reused(),
                    arena.chunk_count(), arena.bytes_reserved()};
}

RequestStats ReservationScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid(), "ReservationScheduler::insert: empty window");
  RS_REQUIRE(window.aligned(),
             "ReservationScheduler::insert: window must be aligned (use "
             "ReallocatingScheduler for arbitrary windows)");
  RS_REQUIRE(static_cast<u64>(window.span()) <= options_.levels.span_limit(),
             "ReservationScheduler::insert: span exceeds the level table limit");
  RS_REQUIRE(!jobs_.contains(id), "ReservationScheduler::insert: id already active");

  // Request-rate sites sample their duration 1-in-8 (exact when tracing);
  // rs.requests carries the exact hit count the sampled histogram lacks,
  // and the cascade histogram records only requests that touched a level
  // (the common zero would be a fetch_add per request for no information —
  // the zero count is rs.requests minus the histogram's count).
  RS_TELEM_COUNTER(kRequests, "rs.requests");
  RS_TELEM_ADD(kRequests, 1);
  RS_TELEM_DURATION(kRequestHist, "rs.request");
  RS_TELEM_SAMPLED_SPAN(request_span, kRequestHist, "rs.insert", 7);
  current_ = RequestStats{};
  touched_levels_mask_ = 0;
  trim_retired_step();
  if (migration_ != nullptr) step_migration(options_.rebuild_batch);
  maybe_rebuild_on_insert();
  insert_impl(id, window);
  if (migration_ != nullptr) {
    migration_->replay.push_back(QueuedRequest{true, id, window});
  }
  current_.levels_touched = static_cast<u64>(std::popcount(touched_levels_mask_));
  if (current_.levels_touched > 0) {
    RS_TELEM_HISTOGRAM(kCascadeHist, "rs.cascade_levels");
    RS_TELEM_RECORD(kCascadeHist, current_.levels_touched);
  }
  maybe_audit();
  return current_;
}

RequestStats ReservationScheduler::erase(JobId id) {
  RS_REQUIRE(jobs_.contains(id), "ReservationScheduler::erase: id not active");
  RS_TELEM_COUNTER(kRequests, "rs.requests");
  RS_TELEM_ADD(kRequests, 1);
  RS_TELEM_DURATION(kRequestHist, "rs.request");
  RS_TELEM_SAMPLED_SPAN(request_span, kRequestHist, "rs.erase", 7);
  current_ = RequestStats{};
  touched_levels_mask_ = 0;
  trim_retired_step();
  if (migration_ != nullptr) step_migration(options_.rebuild_batch);
  erase_impl(id);
  if (migration_ != nullptr) {
    migration_->replay.push_back(QueuedRequest{false, id, Window{}});
  }
  maybe_rebuild_on_erase();
  current_.levels_touched = static_cast<u64>(std::popcount(touched_levels_mask_));
  if (current_.levels_touched > 0) {
    RS_TELEM_HISTOGRAM(kCascadeHist, "rs.cascade_levels");
    RS_TELEM_RECORD(kCascadeHist, current_.levels_touched);
  }
  maybe_audit();
  return current_;
}

Schedule ReservationScheduler::snapshot() const {
  Schedule out(1);
  jobs_.for_each([&](const JobId& id, const JobState& job) {
    RS_CHECK(job.slot != kNoSlot, "snapshot: job without a slot");
    out.assign(id, Placement{0, job.slot});
  });
  return out;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<ReservationScheduler::FulfillmentEntry>
ReservationScheduler::fulfillment_of_interval(unsigned level, Time interval_base) const {
  RS_REQUIRE(level >= 1 && level <= top_level(),
             "fulfillment_of_interval: level out of range");
  const auto& ls = levels_[level];
  RS_REQUIRE(align_down(interval_base, ls.interval_size) == interval_base,
             "fulfillment_of_interval: base not interval-aligned");

  // Use the materialized interval if present; otherwise synthesize the two
  // inputs the cold recomputation needs — base and lower-occupancy count —
  // from the live schedule (fulfillment is a pure function of job counts
  // and lower-level occupancy — Observation 7). No arena block is needed:
  // compute_fulfillment never dereferences the slot table.
  const Interval* interval = ls.intervals.find(interval_base);
  Interval scratch;
  if (interval == nullptr) {
    scratch.base = interval_base;
    const Time end = interval_base + static_cast<Time>(ls.interval_size);
    occ_.for_each_in(interval_base, end, [&](Time, JobId id) {
      if (block_floor(jobs_.at(id)) <= level) ++scratch.lower_count;
    });
    interval = &scratch;
  }

  std::vector<FulfillmentEntry> out;
  // Always recompute cold: the cached table only maintains the fulfilled
  // column up to the level's active bound, while introspection promises the
  // full exact table (and must not observe—or be observed to depend
  // on—cache state).
  const std::vector<FulRow> rows = compute_fulfillment(level, *interval);
  for (const auto& row : rows) {
    out.push_back(FulfillmentEntry{row.key, ls.windows.find(row.key) != nullptr,
                                   row.reservations, row.fulfilled});
  }
  return out;
}
std::size_t ReservationScheduler::verify_interval_cache(unsigned level, Time base,
                                                        const Interval& interval) const {
  if (interval.ful_state == FulState::kInvalid) return 0;  // recomputed before use
  const auto& ls = levels_[level];
  const std::vector<FulRow> cold = compute_fulfillment(level, interval);
  RS_CHECK(cold.size() == ls.class_count(),
           "fulfillment cache: row count diverged from cold recomputation");
  for (std::size_t i = 0; i < cold.size(); ++i) {
    // The reservation column is promised exact in every non-invalid
    // state; the fulfilled column only below ful_bound once re-cascaded
    // (kValid).
    RS_CHECK(cold[i].key == interval.ful_cache[i].key &&
                 cold[i].reservations == interval.ful_cache[i].reservations,
             "fulfillment cache: cached reservations diverged from cold "
             "recomputation");
    if (interval.ful_state == FulState::kValid && i < interval.ful_bound) {
      RS_CHECK(cold[i].fulfilled == interval.ful_cache[i].fulfilled,
               "fulfillment cache: cached fulfilled diverged from cold "
               "recomputation");
    }
  }
  RS_CHECK(interval.base == base, "fulfillment cache: interval base mismatch");
  return 1;
}

std::size_t ReservationScheduler::verify_fulfillment_cache() const {
  std::size_t verified = 0;
  for (unsigned level = 1; level <= top_level(); ++level) {
    levels_[level].intervals.for_each([&](Time base, const Interval& interval) {
      verified += verify_interval_cache(level, base, interval);
    });
  }
  // The shadow generation's caches obey the same contract mid-migration.
  if (migration_ != nullptr) verified += migration_->shadow->verify_fulfillment_cache();
  return verified;
}

// ---------------------------------------------------------------------------
// Audit: the full sweep, decomposed into the I1-I5 check units, and the
// dirty-region incremental path driven by the audit engine (DESIGN.md §7)
// ---------------------------------------------------------------------------

bool ReservationScheduler::audit_job_body(const JobId& id, const JobState& job) const {
  RS_CHECK(job.slot != kNoSlot, "audit: job without slot");
  RS_CHECK(job.window.contains(job.slot), "audit: job outside trimmed window");
  RS_CHECK(job.original.contains(job.window), "audit: trim not nested in original");
  const JobId* occupant = occ_.find(job.slot);
  RS_CHECK(occupant != nullptr && *occupant == id, "audit: occupant mismatch");
  RS_CHECK(occ_.runs().occupied(job.slot),
           "audit: run index missing an occupied slot");
  RS_CHECK(options_.levels.level_of(static_cast<u64>(job.window.span())) == job.level,
           "audit: level mismatch");
  if (!job.parked && job.level >= 1) {
    const auto& ls = levels_[job.level];
    const ActiveWindow* window = ls.windows.find(WindowKey(job.window));
    RS_CHECK(window != nullptr, "audit: reserved job without active window");
    RS_CHECK(window->assigned_slots.contains(job.slot),
             "audit: reserved job on unassigned slot");
    RS_CHECK(!window->free_assigned.contains(job.slot),
             "audit: occupied slot marked free");
  }
  return job.parked;
}

void ReservationScheduler::check_jobs_and_occupancy() const {
  // I1 - feasibility and occupancy agreement (audit §1).
  u64 parked_seen = 0;
  jobs_.for_each([&](const JobId& id, const JobState& job) {
    if (audit_job_body(id, job)) ++parked_seen;
  });
  RS_CHECK(parked_seen == parked_count_, "audit: parked count mismatch");
  RS_CHECK(occ_.size() == jobs_.size(), "audit: orphan occupancy entries");
  occ_.for_each([&](Time slot, JobId) {
    RS_CHECK(occ_.runs().occupied(slot), "audit: run index missing an occupied slot");
  });
}

void ReservationScheduler::audit_window_body(unsigned level, const WindowKey& key,
                                             const ActiveWindow& window) const {
  const auto& ls = levels_[level];
  window.assigned_slots.for_each([&](Time slot) {
    RS_CHECK(key.window().contains(slot), "audit: assigned slot outside window");
    // Anti-orphan: every ledger slot must be backed by a matching interval
    // assignment (the reverse direction - every interval assignment present
    // in the ledger - is the interval check's job).
    const Interval* interval = ls.intervals.find(align_down(slot, ls.interval_size));
    RS_CHECK(interval != nullptr, "audit: ledger slot in an unmaterialized interval");
    const SlotInfo& info =
        interval->slots[static_cast<std::size_t>(slot - interval->base)];
    RS_CHECK(info.assigned && info.owner == key,
             "audit: ledger slot not backed by an interval assignment");
  });
  window.free_assigned.for_each([&](Time slot) {
    RS_CHECK(window.assigned_slots.contains(slot), "audit: free slot not assigned");
    const JobId* occupant = occ_.find(slot);
    RS_CHECK(occupant == nullptr || jobs_.at(*occupant).level != level,
             "audit: free_assigned slot holds a same-level job");
  });
}

void ReservationScheduler::check_window_ledgers() const {
  // I2 - window-ledger exactness and census (audit §2).
  for (unsigned level = 1; level <= top_level(); ++level) {
    const auto& ls = levels_[level];
    std::unordered_map<WindowKey, u64> job_counts;
    jobs_.for_each([&](const JobId&, const JobState& job) {
      // Parked jobs keep their reservations, so they count toward x too.
      if (job.level == level) ++job_counts[WindowKey(job.window)];
    });
    std::vector<std::uint32_t> expected_census(ls.class_count(), 0);
    ls.windows.for_each([&](const WindowKey& key, const ActiveWindow& window) {
      ++expected_census[ls.class_of(key)];
      const auto cit = job_counts.find(key);
      const u64 actual = cit == job_counts.end() ? 0 : cit->second;
      RS_CHECK(window.jobs == actual, "audit: window job count mismatch");
      RS_CHECK(window.jobs > 0, "audit: inactive window retained");
      audit_window_body(level, key, window);
    });
    for (unsigned cls = 0; cls < ls.class_count(); ++cls) {
      RS_CHECK(ls.active_per_class[cls] == expected_census[cls],
               "audit: active-window census mismatch");
      RS_CHECK(expected_census[cls] == 0 || cls < ls.active_bound,
               "audit: active bound below an active class");
    }
    RS_CHECK(ls.active_bound == 0 || ls.active_per_class[ls.active_bound - 1] > 0,
             "audit: active bound not tight");
  }
}

void ReservationScheduler::audit_interval_body(unsigned level, Time base,
                                               const Interval& interval) const {
  const auto& ls = levels_[level];
  RS_CHECK(interval.base == base, "audit: interval base mismatch");
  RS_CHECK(interval.slots != nullptr && interval.ful_cache != nullptr &&
               interval.assigned_by_class != nullptr,
           "audit: interval not backed by an arena block");
  std::uint32_t lower = 0;
  std::uint32_t assigned = 0;
  std::vector<std::uint32_t> per_class(ls.class_count(), 0);
  for (std::size_t off = 0; off < ls.interval_size; ++off) {
    const SlotInfo& info = interval.slots[off];
    const Time slot = base + static_cast<Time>(off);
    const JobId* occupant = occ_.find(slot);
    const bool expect_lower =
        occupant != nullptr && block_floor(jobs_.at(*occupant)) <= level;
    RS_CHECK(info.lower_occupied == expect_lower, "audit: lower flag mismatch");
    if (info.lower_occupied) ++lower;
    if (info.assigned) {
      RS_CHECK(!info.lower_occupied, "audit: assigned slot is lower-occupied");
      const ActiveWindow* window = ls.windows.find(info.owner);
      RS_CHECK(window != nullptr, "audit: slot owned by inactive window");
      RS_CHECK(window->assigned_slots.contains(slot),
               "audit: owner ledger missing slot");
      ++assigned;
      ++per_class[ls.class_of(info.owner)];
    }
  }
  RS_CHECK(lower == interval.lower_count, "audit: lower_count mismatch");
  RS_CHECK(assigned == interval.assigned_count, "audit: assigned_count mismatch");
  for (unsigned cls = 0; cls < ls.class_count(); ++cls) {
    RS_CHECK(per_class[cls] == interval.assigned_by_class[cls],
             "audit: per-class assignment count mismatch");
    RS_CHECK(((interval.assigned_class_mask >> cls) & 1) == (per_class[cls] > 0),
             "audit: assigned class mask mismatch");
  }
  // Lazy invariant: concrete assignments never exceed fulfillment.
  // Checked against a cold recomputation so a stale cache cannot mask a
  // violation.
  const auto rows = compute_fulfillment(level, interval);
  for (unsigned cls = 0; cls < ls.class_count(); ++cls) {
    RS_CHECK(per_class[cls] <= rows[cls].fulfilled,
             "audit: assignment exceeds fulfillment");
  }
}

void ReservationScheduler::check_interval_assignment_bound() const {
  // I3 - interval slot tables and the a <= f bound (audit §3).
  for (unsigned level = 1; level <= top_level(); ++level) {
    levels_[level].intervals.for_each([&](Time base, const Interval& interval) {
      audit_interval_body(level, base, interval);
    });
  }
}

void ReservationScheduler::check_migration_coherence() const {
  // I5 - generation coherence (audit §5): the shadow is a consistent
  // scheduler of the reinserted prefix plus the replayed prefix, and its
  // audit must pass on its own terms; the work-list cursors never run past
  // their lists.
  if (migration_ == nullptr) return;
  const Migration& m = *migration_;
  RS_CHECK(m.shadow != nullptr, "audit: migration without a shadow generation");
  RS_CHECK(m.reinsert_next <= m.reinsert.size() && m.replay_next <= m.replay.size(),
           "audit: migration cursor overran its work list");
  RS_CHECK(m.shadow->n_star_ == n_star_, "audit: shadow n* diverged");
  m.shadow->audit();
}

void ReservationScheduler::audit() const {
  ++full_sweeps_;
  check_jobs_and_occupancy();          // §1 / I1
  check_window_ledgers();              // §2 / I2
  check_interval_assignment_bound();   // §3 / I3
  verify_fulfillment_cache();          // §4 / I4 (both generations)
  check_migration_coherence();         // §5 / I5
}

void ReservationScheduler::register_invariants(audit::InvariantTable& table) const {
  const std::string component = "ReservationScheduler";
  table.add("rs.I1.jobs-and-occupancy", component,
            "every active job on one in-window slot; occupancy map, run index "
            "and parked census agree",
            [this] { check_jobs_and_occupancy(); });
  table.add("rs.I2.window-ledgers", component,
            "window job counts match the active set; ledger slots backed by "
            "interval assignments; census/active-bound exact",
            [this] { check_window_ledgers(); });
  table.add("rs.I3.interval-assignment-bound", component,
            "interval slot tables match ground truth; counters exact; "
            "a(W,I) <= f(W,I) against a cold recomputation",
            [this] { check_interval_assignment_bound(); });
  table.add("rs.I4.fulfillment-cache", component,
            "every cached fulfillment table matches a cold recomputation "
            "(Observation 7 purity)",
            [this] { verify_fulfillment_cache(); });
  table.add("rs.I5.migration-coherence", component,
            "in-flight partitioned rebuild: cursors bounded, shadow n* agrees, "
            "shadow generation self-consistent",
            [this] { check_migration_coherence(); });
}

// ---- incremental path ------------------------------------------------------

void ReservationScheduler::sync_audit_engine() {
  if (options_.audit_policy.mode != audit::Mode::kIncremental) {
    audit_engine_.reset();
    return;
  }
  if (audit_engine_ == nullptr) {
    audit_engine_ = std::make_unique<audit::AuditEngine>(options_.audit_policy);
    for (unsigned level = 1; level <= top_level(); ++level) {
      audit_engine_->configure_level(level, levels_[level].interval_log,
                                     levels_[level].class_count());
    }
    // A fresh engine on an *empty* scheduler can start tracking right away:
    // the all-zero shadows are exactly correct. Attaching mid-stream leaves
    // the escalation in place - the first audit is a full sweep that seeds
    // the shadows from the verified state.
    if (jobs_.empty() && occ_.size() == 0 && migration_ == nullptr) {
      audit_engine_->begin_reseed();
    }
  } else {
    audit_engine_->set_policy(options_.audit_policy);
  }
}

void ReservationScheduler::set_audit_policy(const audit::AuditPolicy& policy) {
  options_.audit_policy = policy;
  sync_audit_engine();
}

void ReservationScheduler::reseed_audit_engine() {
  audit::AuditEngine& engine = *audit_engine_;
  engine.begin_reseed();
  for (unsigned level = 1; level <= top_level(); ++level) {
    const auto& ls = levels_[level];
    ls.windows.for_each([&](const WindowKey& key, const ActiveWindow& window) {
      engine.seed_window(level, key, static_cast<std::int64_t>(window.jobs));
    });
    for (unsigned cls = 0; cls < ls.class_count(); ++cls) {
      engine.seed_census(level, cls, ls.active_per_class[cls]);
    }
  }
  engine.seed_parked(static_cast<std::int64_t>(parked_count_));
}

void ReservationScheduler::audit_job_scoped(JobId id) const {
  const JobState* job = jobs_.find(id);
  if (job == nullptr) return;  // erased after marking (retraction raced)
  audit_job_body(id, *job);
}

void ReservationScheduler::audit_window_scoped(unsigned level,
                                               const WindowKey& w) const {
  const auto& ls = levels_[level];
  const ActiveWindow* window = ls.windows.find(w);
  const std::int64_t expected = audit_engine_->shadow_window_jobs(level, w);
  if (window == nullptr) {
    // Deactivated (or never activated): the shadow must agree there are no
    // jobs left on this window.
    RS_CHECK(expected == 0, "audit: window ledger missing an active window");
    return;
  }
  RS_CHECK(static_cast<std::int64_t>(window->jobs) == expected,
           "audit: window job count diverged from the audit shadow");
  RS_CHECK(window->jobs > 0, "audit: inactive window retained");
  audit_window_body(level, w, *window);
}

void ReservationScheduler::audit_interval_scoped(unsigned level, Time base) const {
  const Interval* interval = levels_[level].intervals.find(base);
  if (interval == nullptr) return;  // torn down wholesale since marked
  audit_interval_body(level, base, *interval);
  verify_interval_cache(level, base, *interval);
}

void ReservationScheduler::audit_globals_scoped() const {
  const audit::AuditEngine& engine = *audit_engine_;
  RS_CHECK(occ_.size() == jobs_.size(), "audit: orphan occupancy entries");
  RS_CHECK(engine.shadow_parked() == static_cast<std::int64_t>(parked_count_),
           "audit: parked count diverged from the audit shadow");
  for (unsigned level = 1; level <= top_level(); ++level) {
    const auto& ls = levels_[level];
    for (unsigned cls = 0; cls < ls.class_count(); ++cls) {
      RS_CHECK(ls.active_per_class[cls] == engine.shadow_census(level, cls),
               "audit: active-window census diverged from the audit shadow");
      RS_CHECK(ls.active_per_class[cls] == 0 || cls < ls.active_bound,
               "audit: active bound below an active class");
    }
    RS_CHECK(ls.active_bound == 0 || ls.active_per_class[ls.active_bound - 1] > 0,
             "audit: active bound not tight");
  }
  // I5 cursors/n* are O(1) too; the shadow generation itself is audited
  // incrementally by the caller.
  if (migration_ != nullptr) {
    const Migration& m = *migration_;
    RS_CHECK(m.shadow != nullptr, "audit: migration without a shadow generation");
    RS_CHECK(m.reinsert_next <= m.reinsert.size() && m.replay_next <= m.replay.size(),
             "audit: migration cursor overran its work list");
    RS_CHECK(m.shadow->n_star_ == n_star_, "audit: shadow n* diverged");
  }
}

void ReservationScheduler::incremental_audit() {
  if (audit_engine_ == nullptr) {
    // No engine attached: honor the call with the only auditor available.
    audit();
    return;
  }
  audit::AuditEngine& engine = *audit_engine_;
  ++engine.stats().incremental_audits;
  if (engine.needs_full()) {
    // Wholesale state change (or mid-stream attach): one full sweep, then
    // reseed the shadows from the state it just verified.
    audit();
    reseed_audit_engine();
    return;
  }
  audit_globals_scoped();
  // While swap carry-over dirt is being paced out, cap the drain at the
  // post-swap budget; an explicit (smaller) steady-state budget still wins.
  std::size_t budget = engine.policy().budget;
  const std::size_t swap_budget = engine.policy().post_swap_budget;
  if (engine.paced_drain() && swap_budget != 0) {
    budget = budget == 0 ? swap_budget : std::min(budget, swap_budget);
  }
  {
    RS_TELEM_DURATION(kDrainHist, "audit.drain");
    RS_TELEM_SPAN(drain_span, kDrainHist, "audit.drain");
    engine.drain(
        budget, [this](JobId id) { audit_job_scoped(id); },
        [this](unsigned level, const WindowKey& w) { audit_window_scoped(level, w); },
        [this](unsigned level, Time base) { audit_interval_scoped(level, base); });
  }
  RS_TELEM_HISTOGRAM(kBacklogHist, "audit.backlog");
  RS_TELEM_RECORD(kBacklogHist, audit_backlog());
  if (migration_ != nullptr) {
    // The shadow accumulates a whole cadence window's reinsertion dirt
    // between parent audits (rebuild_batch × cadence job placements) —
    // draining that in one call was the dominant E15 incremental-latency
    // spike, bigger than the post-swap carry-over itself. Arm the same
    // pacing before every mid-migration shadow audit.
    if (migration_->shadow->audit_engine_ != nullptr) {
      migration_->shadow->audit_engine_->begin_paced_drain();
    }
    migration_->shadow->incremental_audit();
  }
  // A budgeted drain may legitimately leave dirt behind ("detection
  // delayed, never lost" — audit_policy.hpp); only a fully drained pass
  // can promise agreement with the sweep, so the differential cross-check
  // waits for the backlog to clear rather than misreporting per-spec
  // delay as engine divergence.
  if (engine.policy().differential && audit_backlog() == 0) {
    // The incremental pass accepted; the full sweep must agree (the
    // reverse direction - incremental rejecting what the sweep accepts -
    // surfaces as the incremental throw itself, which tests cross-check).
    try {
      audit();
    } catch (const InternalError& error) {
      throw InternalError(
          std::string("differential audit: incremental auditor accepted a "
                      "state the full sweep rejects - ") +
          error.what());
    }
  }
}

void ReservationScheduler::maybe_audit() {
  ++audit_request_index_;
  if (options_.audit) audit();  // legacy gate: full sweep every request
  const audit::AuditPolicy& policy = options_.audit_policy;
  if (!policy.due(audit_request_index_)) return;
  if (policy.mode == audit::Mode::kFull) {
    audit();
    return;
  }
  incremental_audit();
}

ReservationScheduler::AuditWork ReservationScheduler::audit_work() const {
  AuditWork work;
  work.full_sweeps = full_sweeps_;
  if (audit_engine_ != nullptr) {
    const audit::EngineStats& stats = audit_engine_->stats();
    work.incremental_audits = stats.incremental_audits;
    work.regions_checked = stats.regions_checked();
    work.events = stats.events;
  }
  if (migration_ != nullptr) {
    const AuditWork shadow = migration_->shadow->audit_work();
    work.full_sweeps += shadow.full_sweeps;
    work.incremental_audits += shadow.incremental_audits;
    work.regions_checked += shadow.regions_checked;
    work.events += shadow.events;
  }
  return work;
}

std::size_t ReservationScheduler::audit_backlog() const {
  std::size_t backlog = 0;
  if (audit_engine_ != nullptr) backlog += audit_engine_->dirty_regions();
  if (migration_ != nullptr) backlog += migration_->shadow->audit_backlog();
  return backlog;
}

// ---- deliberate corruption (test hook; see Corruption in the header) -------

bool ReservationScheduler::corrupt_for_test(Corruption kind) {
  switch (kind) {
    case Corruption::kDesyncParkedCount:
      // The engine-side witness is note_parked_delta-free on purpose: a
      // buggy mutation path would bump the counter without a real parked
      // placement, which is exactly this.
      ++parked_count_;
      return true;
    case Corruption::kDesyncWindowJobs:
      for (unsigned level = 1; level <= top_level(); ++level) {
        bool done = false;
        levels_[level].windows.for_each([&](const WindowKey& key, ActiveWindow& window) {
          if (done) return;
          ++window.jobs;
          mark_window_dirty(level, key);
          done = true;
        });
        if (done) return true;
      }
      return false;
    case Corruption::kOrphanLedgerSlot:
      for (unsigned level = 1; level <= top_level(); ++level) {
        const auto& ls = levels_[level];
        bool done = false;
        levels_[level].windows.for_each([&](const WindowKey& key, ActiveWindow& window) {
          if (done) return;
          // A slot inside the window that no interval assignment backs: the
          // window's first slot is as good as any - if it happens to be
          // genuinely assigned, the duplicate insert is a no-op and we keep
          // probing forward.
          for (Time slot = key.start;
               slot < key.start + static_cast<Time>(ls.interval_size); ++slot) {
            if (window.assigned_slots.insert(slot)) {
              mark_window_dirty(level, key);
              done = true;
              return;
            }
          }
        });
        if (done) return true;
      }
      return false;
    case Corruption::kFlipLowerOccupied:
    case Corruption::kDesyncLowerCount:
      for (unsigned level = 1; level <= top_level(); ++level) {
        bool done = false;
        levels_[level].intervals.for_each([&](Time base, Interval& interval) {
          if (done) return;
          if (kind == Corruption::kFlipLowerOccupied) {
            interval.slots[0].lower_occupied = !interval.slots[0].lower_occupied;
          } else {
            ++interval.lower_count;
          }
          mark_interval_dirty(level, base);
          done = true;
        });
        if (done) return true;
      }
      return false;
  }
  return false;
}

}  // namespace reasched
