#include "core/alignment.hpp"

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace reasched {

Window aligned_shrink(const Window& w) {
  RS_REQUIRE(w.valid(), "aligned_shrink: empty window");
  const auto span = static_cast<u64>(w.span());
  // Try the largest power of two <= span, then one smaller. One of the two
  // always fits: with span 2^e available, the 2^(e-1)-grid has a point in
  // [start, start + 2^(e-1)], leaving 2^(e-1) slots before `end`.
  for (unsigned exp = floor_log2(span);; --exp) {
    const u64 block = pow2(exp);
    const Time a = align_up(w.start, block);
    if (a + static_cast<Time>(block) <= w.end) {
      Window result{a, a + static_cast<Time>(block)};
      RS_CHECK(result.aligned() && w.contains(result),
               "aligned_shrink produced a bad window");
      RS_CHECK(result.span() * 4 > w.span(), "aligned_shrink lost too much span");
      return result;
    }
    RS_CHECK(exp > 0, "aligned_shrink: no aligned sub-window found");
  }
}

bool all_aligned(std::span<const JobSpec> jobs) {
  for (const auto& job : jobs) {
    if (!job.window.aligned()) return false;
  }
  return true;
}

}  // namespace reasched
