// Multi-machine → single-machine reduction (paper §3).
//
// For every window W the balancer tracks n_W, the number of active jobs
// with exactly window W, and keeps every machine's share of them within
// {⌊n_W/m⌋, ⌈n_W/m⌉}, extras on the earliest machines:
//   * insert: delegate to machine (n_W mod m) — round robin;
//   * delete from machine d: the latest-extra machine (n_W - 1 mod m)
//     donates one W-job to d, a single migration (none if d is the donor).
// All actual scheduling is performed by per-machine single-machine
// schedulers (Lemma 3 shows the per-machine instances stay underallocated).
//
// The adapter is generic over the single-machine scheduler so the paper's
// scheduler and the baselines can be compared under the same reduction.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "schedule/scheduler_interface.hpp"
#include "util/flat_hash.hpp"

namespace reasched {

class MultiMachineScheduler final : public IReallocScheduler {
 public:
  using Factory = std::function<std::unique_ptr<IReallocScheduler>()>;

  /// Creates `machines` single-machine schedulers via `factory`.
  MultiMachineScheduler(unsigned machines, const Factory& factory);

  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;

  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override { return jobs_.size(); }
  [[nodiscard]] unsigned machines() const override {
    return static_cast<unsigned>(machines_.size());
  }
  [[nodiscard]] std::string name() const override;

  /// Balancing invariant check (Lemma 3): every machine holds between
  /// ⌊n_W/m⌋ and ⌈n_W/m⌉ jobs of each window W, extras on the earliest
  /// machines. Throws InternalError on violation.
  void audit_balance() const;

 private:
  struct BalanceState {
    std::uint64_t count = 0;                    // n_W
    std::vector<FlatHashSet<JobId>> per_machine;  // W-jobs per machine
  };
  struct JobInfo {
    Window window;
    MachineId machine = 0;
  };

  std::vector<std::unique_ptr<IReallocScheduler>> machines_;
  FlatHashMap<Window, BalanceState> windows_;
  FlatHashMap<JobId, JobInfo> jobs_;
};

}  // namespace reasched
