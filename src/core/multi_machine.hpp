// Multi-machine → single-machine reduction (paper §3), sequential front end.
//
// Delegation decisions live in core/balance_ledger.hpp (shared with the
// sharded service layer in src/service/); this adapter owns the per-machine
// single-machine schedulers and orders their insert/erase calls around the
// ledger's plan/commit steps exactly as the paper's sequential reduction
// prescribes. All actual scheduling is performed by the per-machine
// schedulers (Lemma 3 shows the per-machine instances stay underallocated).
//
// The adapter is generic over the single-machine scheduler so the paper's
// scheduler and the baselines can be compared under the same reduction.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/balance_ledger.hpp"
#include "schedule/scheduler_interface.hpp"
#include "util/flat_hash.hpp"

namespace reasched {

class MultiMachineScheduler final : public IReallocScheduler {
 public:
  using Factory = std::function<std::unique_ptr<IReallocScheduler>()>;

  /// Creates `machines` single-machine schedulers via `factory`.
  MultiMachineScheduler(unsigned machines, const Factory& factory);

  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;

  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override { return jobs_.size(); }
  [[nodiscard]] unsigned machines() const override {
    return static_cast<unsigned>(machines_.size());
  }
  [[nodiscard]] std::string name() const override;

  /// Stop-the-world growth for the reduction's own tables — the balance
  /// ledger and the job directory (the legacy_rehash escape hatch; see
  /// util/flat_hash.hpp). The per-machine schedulers take the flag through
  /// their own SchedulerOptions.
  void set_legacy_rehash(bool legacy) {
    ledger_.set_legacy_rehash(legacy);
    jobs_.set_legacy_rehash(legacy);
  }

  /// Balancing invariant check (Lemma 3); throws InternalError on violation.
  void audit_balance() const { ledger_.audit(); }

  /// Incremental balance audit: re-verifies only windows whose delegation
  /// state changed since the last call (see BalanceLedger::audit_incremental).
  std::size_t audit_balance_incremental() { return ledger_.audit_incremental(); }

  /// Registers the reduction's Lemma 3 check ("mm.L3.balance-shares").
  void register_invariants(audit::InvariantTable& table) const {
    ledger_.register_invariants(table, "mm", "MultiMachineScheduler");
  }

 private:
  std::vector<std::unique_ptr<IReallocScheduler>> machines_;
  BalanceLedger ledger_;
  FlatHashMap<JobId, JobInfo> jobs_;
};

}  // namespace reasched
