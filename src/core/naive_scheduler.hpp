// Naive pecking-order scheduling (paper §4, Lemma 4).
//
// A job schedules itself with complete deference to shorter-span jobs and
// no regard for longer ones: insert looks for any empty slot in the window;
// failing that it displaces a strictly-longer-span occupant and recursively
// reinserts it. On recursively aligned instances each displacement strictly
// increases the span, so an insert causes O(min{log n, log Δ}) reallocations.
// Deletions never move jobs.
//
// This is the paper's stepping-stone algorithm and serves as the
// logarithmic baseline in the E1/E2 benchmarks.
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "core/scheduler_options.hpp"
#include "schedule/scheduler_interface.hpp"
#include "schedule/slot_runs.hpp"

namespace reasched {

class NaiveScheduler final : public IReallocScheduler {
 public:
  /// Which strictly-longer occupant to displace when the window is full.
  /// Lemma 4 says "select any job ... with span >= 2^{i+1}"; the bound is
  /// the same for every choice, but the constant differs:
  enum class Victim : std::uint8_t {
    kFirst,    ///< first strictly-longer in slot order (the artless choice)
    kLongest,  ///< most-flexible victim: shortens cascades in practice
  };

  explicit NaiveScheduler(SchedulerOptions options = {}, Victim victim = Victim::kFirst);

  /// Window must be valid; alignment is recommended (the Lemma 4 bound
  /// assumes it) but not required for correctness.
  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;

  [[nodiscard]] Schedule snapshot() const override;
  [[nodiscard]] std::size_t active_jobs() const override { return jobs_.size(); }
  [[nodiscard]] unsigned machines() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "naive-pecking-order"; }

 private:
  struct JobState {
    Window window;
    Time slot = 0;
  };

  /// Places `id` (already registered in jobs_) somewhere in its window,
  /// displacing strictly-longer jobs as needed. Accumulates costs into
  /// `stats`; `is_reallocation` marks whether placing `id` itself counts.
  void place_cascading(JobId id, RequestStats& stats, bool is_reallocation);

  SchedulerOptions options_;
  Victim victim_policy_;
  std::map<Time, JobId> occupant_;  // ordered: victim scans over window ranges
  SlotRuns runs_;                   // O(log n) first-gap queries
  std::unordered_map<JobId, JobState> jobs_;
};

}  // namespace reasched
