// Identity of an *aligned* window, used as the key for reservation ledgers
// (§4) and for the multi-machine balancing invariant (§3). Aligned windows
// are uniquely determined by (start, span); span is a power of two so we
// store its exponent.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "base/window.hpp"
#include "util/bits.hpp"

namespace reasched {

struct WindowKey {
  Time start = 0;
  std::uint8_t span_log = 0;  // span = 2^span_log

  WindowKey() = default;
  explicit WindowKey(const Window& w)
      : start(w.start), span_log(static_cast<std::uint8_t>(floor_log2(static_cast<u64>(w.span())))) {
    RS_REQUIRE(w.aligned(), "WindowKey: window must be aligned");
  }

  [[nodiscard]] u64 span() const noexcept { return u64{1} << span_log; }
  [[nodiscard]] Window window() const noexcept {
    return Window{start, start + static_cast<Time>(span())};
  }

  friend constexpr auto operator<=>(const WindowKey&, const WindowKey&) = default;
};

}  // namespace reasched

template <>
struct std::hash<reasched::WindowKey> {
  std::size_t operator()(const reasched::WindowKey& key) const noexcept {
    std::uint64_t z = static_cast<std::uint64_t>(key.start) * 0x9e3779b97f4a7c15ULL;
    z ^= key.span_log + 0x9e3779b9ULL + (z << 6) + (z >> 2);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(z ^ (z >> 27));
  }
};
