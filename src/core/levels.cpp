#include "core/levels.hpp"

#include "util/assert.hpp"

namespace reasched {

LevelTable::LevelTable(std::vector<u64> thresholds) : thresholds_(std::move(thresholds)) {
  RS_REQUIRE(!thresholds_.empty(), "LevelTable: no thresholds");
  u64 previous = 0;
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    const u64 t = thresholds_[i];
    RS_REQUIRE(is_pow2(t), "LevelTable: thresholds must be powers of two");
    RS_REQUIRE(t > previous, "LevelTable: thresholds must strictly increase");
    if (i == 0) {
      RS_REQUIRE(t >= 32, "LevelTable: L1 must be at least 2^5 (Lemma 8 arithmetic)");
    } else {
      // Equation (1): #distinct level-ℓ spans <= lg(L_{ℓ+1}) <= L_ℓ/4.
      RS_REQUIRE(static_cast<u64>(floor_log2(t)) <= previous / 4,
                 "LevelTable: lg(L_{l+1}) must be <= L_l/4");
    }
    previous = t;
  }
}

LevelTable LevelTable::paper() {
  // L₁ = 2⁵, L₂ = 2^{32/4} = 2⁸, L₃ = 2^{256/4} = 2⁶⁴ — capped at 2⁶² to
  // stay in signed-Time range. Any span up to 2⁶² lands in level <= 2.
  return LevelTable({pow2(5), pow2(8), pow2(62)});
}

LevelTable LevelTable::custom(std::vector<u64> thresholds) {
  return LevelTable(std::move(thresholds));
}

unsigned LevelTable::level_of(u64 span) const {
  RS_REQUIRE(span >= 1, "level_of: span must be positive");
  RS_REQUIRE(span <= thresholds_.back(), "level_of: span exceeds table limit");
  for (unsigned level = 0; level < thresholds_.size(); ++level) {
    if (span <= thresholds_[level]) return level;
  }
  RS_CHECK(false, "level_of: unreachable");
  return 0;
}

u64 LevelTable::max_span(unsigned level) const {
  RS_REQUIRE(level < thresholds_.size(), "max_span: level out of range");
  return thresholds_[level];
}

u64 LevelTable::interval_size(unsigned level) const {
  RS_REQUIRE(level >= 1 && level < thresholds_.size(),
             "interval_size: defined for levels >= 1");
  return thresholds_[level - 1];
}

unsigned LevelTable::interval_size_log(unsigned level) const {
  return floor_log2(interval_size(level));
}

}  // namespace reasched
