// Round-robin balance ledger for the multi-machine → single-machine
// reduction (paper §3), shared by the sequential MultiMachineScheduler and
// the sharded service layer (src/service/).
//
// For every window W the ledger tracks n_W, the number of active jobs with
// exactly window W, and which machines hold them, keeping every machine's
// share within {⌊n_W/m⌋, ⌈n_W/m⌉} with extras on the earliest machines:
//   * insert: delegate to machine (n_W mod m) — round robin;
//   * delete from machine d: the latest-extra machine ((n_W - 1) mod m)
//     donates one W-job to d, a single migration (none if d is the donor).
//
// The API is split into *plan* (const decision) and *commit* (ledger
// mutation) so callers can order machine-level operations around the ledger
// exactly as the paper's sequential reduction does, and so the batched
// service layer can commit a whole batch of decisions up front and apply
// the machine operations in parallel afterwards. Every commit has a
// matching rollback, used by the service layer to unwind an optimistically
// committed batch when a machine rejects one of its inserts.
//
// Determinism: all decisions are pure functions of the per-window
// operation history. The donor pick is the pool's most recently added job
// (DenseHashSet::back(), O(1)) — the pools are insertion-ordered dense
// sets, so the pick depends only on the per-window set's own insert/erase
// sequence and NEVER on hash layout or rehash mode. Two ledgers fed the
// same per-window sequences make identical choices — the property both
// the sharded scheduler's byte-identical guarantee and the
// legacy-vs-incremental rehash differential tests rest on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/dirty_set.hpp"
#include "audit/invariant_check.hpp"
#include "base/types.hpp"
#include "base/window.hpp"
#include "util/flat_hash.hpp"

namespace reasched {

/// Directory entry for one active job: its window and the machine the §3
/// reduction delegated it to.
struct JobInfo {
  Window window;
  MachineId machine = 0;
};

class BalanceLedger {
 public:
  /// `machines` is the total machine count m of the reduction (global even
  /// when the ledger instance holds only a stripe of the window space).
  explicit BalanceLedger(unsigned machines = 1) : machines_(machines) {}

  /// Stop-the-world growth for the window map and every per-machine pool
  /// (the legacy_rehash escape hatch; see util/flat_hash.hpp). Pools
  /// created later inherit the mode.
  void set_legacy_rehash(bool legacy) {
    legacy_rehash_ = legacy;
    windows_.set_legacy_rehash(legacy);
    windows_.for_each([&](const Window&, BalanceState& balance) {
      for (auto& pool : balance.per_machine) pool.set_legacy_rehash(legacy);
    });
  }

  /// The §3 rebalance migration triggered by an erase, if any.
  struct Migration {
    bool needed = false;
    JobId moved{};       ///< the donor's W-job that must move
    MachineId donor = 0; ///< latest-extra machine, (n_W - 1) mod m
  };

  /// Round-robin delegation target for inserting a W-job: (n_W mod m).
  [[nodiscard]] MachineId plan_insert(const Window& w) const {
    const BalanceState* balance = windows_.find(w);
    const std::uint64_t count = balance ? balance->count : 0;
    return static_cast<MachineId>(count % machines_);
  }

  /// Records a delegated insert after the machine accepted it.
  void commit_insert(JobId id, const Window& w, MachineId machine) {
    mark_dirty(w);
    BalanceState& balance = windows_[w];
    ensure_pools(balance);
    ++balance.count;
    balance.per_machine[machine].insert(id);
  }

  /// Unwinds a commit_insert (service-layer batch rollback).
  void rollback_insert(JobId id, const Window& w, MachineId machine) {
    mark_dirty(w);
    BalanceState& balance = windows_.at(w);
    RS_CHECK(balance.per_machine[machine].erase(id) == 1,
             "BalanceLedger::rollback_insert: job not on recorded machine");
    --balance.count;
    if (balance.count == 0) windows_.erase(w);
  }

  /// Erase decision for a W-job held by `machine`: whether the §3 rebalance
  /// migration fires and which job moves. Pure; call before commit_erase.
  [[nodiscard]] Migration plan_erase(const Window& w, MachineId machine) const {
    const BalanceState& balance = windows_.at(w);
    RS_CHECK(balance.count >= 1, "balance ledger underflow");
    Migration migration;
    migration.donor = static_cast<MachineId>((balance.count - 1) % machines_);
    if (migration.donor != machine && balance.count > 1) {
      const auto& pool = balance.per_machine[migration.donor];
      RS_CHECK(!pool.empty(), "rebalance: donor machine has no job of this window");
      migration.needed = true;
      // Deterministic O(1) pick (see the determinism note above): the
      // pool's most recently added job. A layout-dependent "first in
      // iteration order" pick would leak the hash layout into the
      // schedule.
      migration.moved = pool.back();
    }
    return migration;
  }

  /// Records the erase itself (not the migration — see commit_migration).
  void commit_erase(JobId id, const Window& w, MachineId machine) {
    mark_dirty(w);
    BalanceState& balance = windows_.at(w);
    RS_CHECK(balance.per_machine[machine].erase(id) == 1,
             "BalanceLedger::commit_erase: job not on recorded machine");
    --balance.count;
    if (balance.count == 0) windows_.erase(w);
  }

  /// Unwinds a commit_erase (service-layer batch rollback).
  void rollback_erase(JobId id, const Window& w, MachineId machine) {
    mark_dirty(w);
    BalanceState& balance = windows_[w];
    ensure_pools(balance);
    ++balance.count;
    balance.per_machine[machine].insert(id);
  }

  /// Records a completed rebalance migration: `moved` left the donor for
  /// `dest` (the machine the erased job vacated).
  void commit_migration(const Window& w, const Migration& migration, MachineId dest) {
    mark_dirty(w);
    BalanceState& balance = windows_.at(w);
    RS_CHECK(balance.per_machine[migration.donor].erase(migration.moved) == 1,
             "BalanceLedger::commit_migration: moved job not on donor");
    balance.per_machine[dest].insert(migration.moved);
  }

  /// Unwinds a commit_migration (service-layer batch rollback).
  void rollback_migration(const Window& w, const Migration& migration, MachineId dest) {
    mark_dirty(w);
    BalanceState& balance = windows_.at(w);
    RS_CHECK(balance.per_machine[dest].erase(migration.moved) == 1,
             "BalanceLedger::rollback_migration: moved job not on dest");
    balance.per_machine[migration.donor].insert(migration.moved);
  }

  [[nodiscard]] unsigned machines() const noexcept { return machines_; }
  [[nodiscard]] std::size_t tracked_windows() const noexcept { return windows_.size(); }

  /// Balancing invariant check (Lemma 3): every machine holds between
  /// ⌊n_W/m⌋ and ⌈n_W/m⌉ jobs of each window W, extras on the earliest
  /// machines. Throws InternalError on violation. Full sweep over every
  /// tracked window — this is the "svc.L3.balance-shares" /
  /// "mm.L3.balance-shares" invariant-check unit.
  void audit() const {
    windows_.for_each(
        [&](const Window& w, const BalanceState&) { audit_window(w); });
    // The sweep just verified every window, dirty ones included; a
    // following audit_incremental need not re-verify them.
    dirty_.clear();
  }

  /// The per-window body of audit(): checks W's shares only. A window
  /// absent from the ledger (deactivated since it was marked dirty) is
  /// vacuously balanced.
  void audit_window(const Window& w) const {
    const BalanceState* balance = windows_.find(w);
    if (balance == nullptr) return;
    const std::uint64_t m = machines_;
    const std::uint64_t floor_share = balance->count / m;
    const std::uint64_t extras = balance->count % m;
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t share = balance->per_machine[i].size();
      const std::uint64_t expected = floor_share + (i < extras ? 1 : 0);
      RS_CHECK(share == expected,
               "audit_balance: machine share deviates from round-robin invariant");
      total += share;
    }
    RS_CHECK(total == balance->count, "audit_balance: count mismatch");
  }

  /// Incremental audit: re-verifies only the windows whose balance state
  /// changed since the last call (commits/rollbacks mark them dirty).
  /// The first call is a full sweep — dirt accumulated only from then on —
  /// after which the cost is O(windows touched since last audit). Returns
  /// the number of windows verified. Caller synchronizes (the striped
  /// ledger calls this under the stripe lock).
  std::size_t audit_incremental() {
    if (!track_dirty_) {
      track_dirty_ = true;
      audit();
      return tracked_windows();
    }
    return dirty_.drain(0, [&](const Window& w) { audit_window(w); });
  }

  [[nodiscard]] bool dirty_tracking() const noexcept { return track_dirty_; }
  [[nodiscard]] std::size_t dirty_windows() const noexcept { return dirty_.size(); }

  /// Registers the Lemma 3 check under `prefix` (e.g. "mm", "svc.stripe3")
  /// so every balance ledger in the system is enumerable from one table.
  void register_invariants(audit::InvariantTable& table, const std::string& prefix,
                           const std::string& component) const {
    table.add(prefix + ".L3.balance-shares", component,
              "every machine holds floor/ceil(n_W/m) jobs of each window, "
              "extras on the earliest machines (Lemma 3)",
              [this] { audit(); });
  }

  /// Deliberate corruption for the differential audit tests: moves one job
  /// between two machines' share sets without touching the counts (marks
  /// the window dirty, as the buggy mutation path would have). Returns
  /// false when no window has a movable job (needs m >= 2 and n_W >= 1).
  bool corrupt_for_test() {
    if (machines_ < 2) return false;
    bool done = false;
    windows_.for_each([&](const Window& w, BalanceState& balance) {
      if (done || balance.count == 0) return;
      for (unsigned from = 0; from < machines_; ++from) {
        if (balance.per_machine[from].empty()) continue;
        const JobId moved = balance.per_machine[from].back();
        balance.per_machine[from].erase(moved);
        balance.per_machine[(from + 1) % machines_].insert(moved);
        mark_dirty(w);
        done = true;
        return;
      }
    });
    return done;
  }

 private:
  struct BalanceState {
    std::uint64_t count = 0;                       // n_W
    std::vector<DenseHashSet<JobId>> per_machine;  // W-jobs per machine
  };

  void mark_dirty(const Window& w) {
    if (track_dirty_) dirty_.mark(w);
  }

  /// Materializes a fresh window's per-machine pools in the ledger's
  /// configured rehash mode.
  void ensure_pools(BalanceState& balance) {
    if (!balance.per_machine.empty()) return;
    balance.per_machine.resize(machines_);
    if (legacy_rehash_) {
      for (auto& pool : balance.per_machine) pool.set_legacy_rehash(true);
    }
  }

  unsigned machines_ = 1;
  bool legacy_rehash_ = false;
  FlatHashMap<Window, BalanceState> windows_;
  /// Dirty-window queue for audit_incremental; off until the first
  /// incremental call so the sequential front end pays nothing by default.
  /// Mutable: a successful const full sweep discharges the queue.
  bool track_dirty_ = false;
  mutable audit::DirtyQueue<Window> dirty_;
};

}  // namespace reasched
