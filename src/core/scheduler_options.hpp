// Configuration for the paper's schedulers. Defaults follow the paper;
// the knobs exist for the ablation experiments (bench E11) and for tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "audit/audit_policy.hpp"
#include "core/levels.hpp"
#include "telemetry/options.hpp"

namespace reasched {

/// What to do when the reservation machinery cannot find an entitled slot —
/// i.e. when the instance is not sufficiently underallocated for Lemma 8's
/// guarantee to hold.
enum class OverflowPolicy : std::uint8_t {
  /// Throw InfeasibleError; the request is rejected, state unchanged
  /// observable behavior-wise (strong guarantee used in tests).
  kThrow,
  /// Degrade gracefully: "park" the job on any empty slot of its window
  /// (falling back to naive pecking order if the window is full of
  /// longer-span jobs). Parked placements keep the schedule feasible but
  /// void the O(log*) guarantee until slack returns.
  kBestEffort,
};

/// How lower-level schedulers pick among several usable empty slots.
enum class PlacementPolicy : std::uint8_t {
  /// Paper-faithful: lower levels ignore higher-level reservations entirely
  /// ("the recursive scheduler makes decisions without paying attention to
  /// the higher-level jobs"); first fit.
  kOblivious,
  /// Ablation: prefer slots that are not reserved by any materialized
  /// higher-level window, reducing waitlist churn (bench E11 measures the
  /// effect).
  kAvoidReserved,
};

struct SchedulerOptions {
  /// Underallocation factor assumed by the trimming rule (§4: windows are
  /// trimmed to span 2γn*). Only used when trimming is enabled.
  std::uint64_t gamma = 8;

  /// §4 "Trimming Windows to n": maintain the n* estimate and trim windows,
  /// making the cost bound O(log* n) rather than O(log* Δ).
  bool trimming = true;

  OverflowPolicy overflow = OverflowPolicy::kThrow;
  PlacementPolicy placement = PlacementPolicy::kOblivious;

  /// Interval-decomposition tower; tests substitute custom towers to make
  /// deeper levels reachable at small spans.
  LevelTable levels = LevelTable::paper();

  /// When true, run a full internal-invariant audit after every request
  /// (O(state) per request; tests only). Legacy gate, equivalent to
  /// audit_policy {kFull, cadence 1} — see the gating matrix in
  /// util/assert.hpp. Both gates may be on; each runs independently.
  bool audit = false;

  /// Incremental audit engine policy (src/audit/). Mode kIncremental
  /// attaches an AuditEngine that tracks dirty intervals/windows/jobs from
  /// mutation events and re-verifies only those regions (plus O(1) global
  /// counters) at the configured cadence/budget; kOff means no engine and
  /// verifiably zero audit work (bench_e15 smoke).
  audit::AuditPolicy audit_policy{};

  /// Seed-equivalent fulfillment path: recompute every fulfillment table
  /// cold (fresh allocation, full per-slot reconcile scans) instead of
  /// consuming the incremental per-interval cache. The schedules produced
  /// are identical — Observation 7 makes fulfillment a pure function of the
  /// ledgers — so this exists purely as the in-binary baseline for the
  /// hot-path benchmarks (EXPERIMENTS.md §E12) and for differential tests.
  bool legacy_fulfillment = false;

  /// Stop-the-world n*-rebuild path: reinsert the whole active set inside
  /// the rebuild-triggering request (the seed behavior, a Θ(n) latency
  /// cliff) instead of the partitioned shadow-generation migration. The
  /// quiescent schedules produced are byte-identical on both paths — the
  /// migration executes the exact same reinsertion+replay sequence, just
  /// sliced across requests — so this exists as the in-binary baseline for
  /// the rebuild-latency benchmark (EXPERIMENTS.md §E14, --legacy-rebuild)
  /// and for the partitioned-rebuild differential tests.
  bool legacy_rebuild = false;

  /// Stop-the-world flat-hash growth: the scheduler's hot-path tables
  /// (job table, occupancy index, slot-run pages, interval and window
  /// ledgers) rehash in place when they double (the seed behavior, a
  /// Θ(table) latency cliff) instead of migrating through the two-table
  /// incremental scheme (util/flat_hash.hpp, DESIGN.md §8). Schedules are
  /// byte-identical on both paths — every layout-sensitive choice point
  /// picks a canonical element — so this exists as the in-binary baseline
  /// for the rehash-latency benchmark (EXPERIMENTS.md §E16, --legacy) and
  /// for the rehash differential tests.
  bool legacy_rehash = false;

  /// Runtime gate for the telemetry tier (src/telemetry/, DESIGN.md §10).
  /// Constructing a scheduler with `telemetry.enabled` flips the
  /// process-wide recording switches (turn-on only); the RS_TELEM_* record
  /// sites must also be compiled in (REASCHED_TELEMETRY) to observe
  /// anything.
  telemetry::TelemetryOptions telemetry{};

  /// Partitioned-rebuild migration pace: work units (snapshot reinsertions
  /// or queued-request replays) performed per request while a rebuild
  /// migration is in flight. Also the synchronous-rebuild cutoff — active
  /// sets no larger than this rebuild stop-the-world inside the boundary
  /// request, which is exactly one request's worth of migration budget.
  std::size_t rebuild_batch = 64;
};

}  // namespace reasched
