#include "durability/recovery.hpp"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/reservation_scheduler.hpp"
#include "durability/snapshot.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace reasched::durability {

void replay_records(IReallocScheduler& target, std::span<const WalRecord> records,
                    std::uint64_t after_csn, RecoveryReport& report) {
  // Ids whose replayed insert was rejected: their erases must be skipped,
  // exactly like the batch API's "delete of a rejected insert is moot".
  FlatHashSet<JobId> rejected_ids;
  for (const WalRecord& record : records) {
    if (record.csn <= after_csn) continue;
    RS_CHECK(record.csn > report.last_csn, "recovery: replay stream not ascending");
    report.last_csn = record.csn;
    ++report.replayed;
    if (record.type == WalRecordType::kInsert) {
      try {
        target.insert(record.job, record.window);
      } catch (const InfeasibleError&) {
        // Deterministic re-run of a rejection the live process already
        // reported to its caller; the state is untouched, continue.
        rejected_ids.insert(record.job);
        ++report.rejected_replays;
        continue;
      }
      rejected_ids.erase(record.job);  // id may be reused after a rejection
    } else {
      if (rejected_ids.contains(record.job)) {
        rejected_ids.erase(record.job);
        ++report.rejected_replays;
        continue;
      }
      target.erase(record.job);
    }
  }
}

Recovery::Recovered Recovery::load(const DurabilityPolicy& policy,
                                   const SchedulerOptions& options) {
  Recovered out;
  out.report = RecoveryReport{};

  // Newest loadable snapshot wins; corrupt ones are skipped. Each attempt
  // needs a fresh target (load refuses a non-empty scheduler).
  for (const std::uint64_t csn : list_snapshots(policy.dir)) {
    auto candidate = std::make_unique<ReservationScheduler>(options);
    if (load_snapshot(snapshot_path(policy.dir, csn), *candidate)) {
      out.scheduler = std::move(candidate);
      out.report.snapshot_csn = csn;
      out.report.last_csn = csn;
      break;
    }
    ++out.report.snapshots_skipped;
  }
  if (!out.scheduler) out.scheduler = std::make_unique<ReservationScheduler>(options);

  const std::string log = wal_path(policy.dir, 0);
  WalReadResult wal = read_wal(log);
  if (wal.torn_tail) {
    out.report.torn_tail = true;
    truncate_wal(log, wal.valid_end);
  }
  // The snapshot may be *ahead* of the log's surviving prefix (snapshots
  // are fsynced; with sync_every == 0 the log tail can be lost to a power
  // cut). Replay then has nothing to do and the snapshot state stands.
  replay_records(*out.scheduler, wal.records, out.report.snapshot_csn, out.report);
  return out;
}

MergedWal merge_sharded_wal(const std::string& dir) {
  MergedWal merged;
  // Collect wal-*.log shard numbers.
  std::vector<std::uint32_t> shards;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      unsigned shard = 0;
      int consumed = 0;
      if (std::sscanf(entry->d_name, "wal-%u.log%n", &shard, &consumed) == 1 &&
          entry->d_name[consumed] == '\0') {
        shards.push_back(shard);
      }
    }
    ::closedir(d);
  } else if (errno != ENOENT) {
    RS_REQUIRE(false, "wal: cannot list " + dir + ": " + std::strerror(errno));
  }
  std::sort(shards.begin(), shards.end());

  std::vector<WalRecord> all;
  for (const std::uint32_t shard : shards) {
    WalReadResult one = read_wal(wal_path(dir, shard));
    if (one.missing) continue;
    merged.shards.push_back(shard);
    merged.valid_ends.push_back(one.valid_end);
    merged.torn_tail = merged.torn_tail || one.torn_tail;
    all.insert(all.end(), one.records.begin(), one.records.end());
  }
  std::sort(all.begin(), all.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.csn < b.csn; });

  // Longest gap-free prefix starting at CSN 1: a record stranded beyond a
  // gap belongs to a batch whose earlier requests never became durable on
  // their shard, so the batch as a whole did not commit.
  std::uint64_t expect = 1;
  for (const WalRecord& record : all) {
    if (record.csn != expect) break;
    merged.records.push_back(record);
    merged.last_csn = record.csn;
    ++expect;
  }
  merged.dropped = all.size() - merged.records.size();
  return merged;
}

}  // namespace reasched::durability
