#include "durability/crashpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace reasched::durability {

namespace {

// The armed site name is written under the mutex and read lock-free on the
// hot path via the atomic countdown: countdown <= 0 (the common, unarmed
// state) short-circuits before the name is ever inspected. Sites can fire
// from shard workers concurrently; fetch_sub makes exactly one of them the
// killer.
std::mutex g_mutex;
char g_name[128] = {0};
std::atomic<std::int64_t> g_countdown{0};
std::atomic<bool> g_env_checked{false};

}  // namespace

void CrashPoint::arm(const std::string& name, std::uint64_t countdown) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::strncpy(g_name, name.c_str(), sizeof(g_name) - 1);
  g_name[sizeof(g_name) - 1] = '\0';
  g_countdown.store(countdown == 0 ? 1 : static_cast<std::int64_t>(countdown),
                    std::memory_order_release);
  g_env_checked.store(true, std::memory_order_release);  // explicit arm wins
}

void CrashPoint::disarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_countdown.store(0, std::memory_order_release);
  g_name[0] = '\0';
  g_env_checked.store(true, std::memory_order_release);
}

void CrashPoint::arm_from_env() {
  const char* spec = std::getenv("REASCHED_CRASHPOINT");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string name(spec);
  std::uint64_t countdown = 1;
  if (const auto colon = name.rfind(':'); colon != std::string::npos) {
    const char* digits = name.c_str() + colon + 1;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(digits, &end, 10);
    if (end != digits && *end == '\0' && parsed > 0) {
      countdown = parsed;
      name.resize(colon);
    }
  }
  arm(name, countdown);
}

bool CrashPoint::due(const char* name) {
  if (!g_env_checked.exchange(true, std::memory_order_acq_rel)) arm_from_env();
  if (g_countdown.load(std::memory_order_acquire) <= 0) return false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (std::strcmp(g_name, name) != 0) return false;
  }
  return g_countdown.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

void CrashPoint::die() { ::_exit(kExitStatus); }

}  // namespace reasched::durability
