#include "durability/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "durability/crashpoint.hpp"
#include "telemetry/registry.hpp"
#include "util/assert.hpp"
#include "util/crc32c.hpp"

namespace reasched::durability {

namespace {

constexpr char kMagic[8] = {'R', 'S', 'W', 'A', 'L', '0', '0', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kFrameHeaderBytes = kWalFrameHeaderBytes;
/// Upper bound accepted for one frame's payload — garbage lengths in a
/// torn frame header must not trigger a giant allocation.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

[[noreturn]] void throw_errno(const char* what, const std::string& path) {
  RS_REQUIRE(false, std::string(what) + " " + path + ": " + std::strerror(errno));
  __builtin_unreachable();
}

}  // namespace

void put_record(ByteSink& sink, const WalRecord& record) {
  // Encoded into a stack scratch and appended with one copy: this runs
  // once per request on the durable hot path (E17 gates its overhead).
  std::byte scratch[1 + 8 + 8 + 16];
  scratch[0] = static_cast<std::byte>(record.type);
  const auto put_u64 = [&scratch](std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      scratch[at + static_cast<std::size_t>(i)] = static_cast<std::byte>(v >> (8 * i));
    }
  };
  put_u64(1, record.csn);
  put_u64(9, record.job.value);
  std::size_t len = 17;
  if (record.type == WalRecordType::kInsert) {
    put_u64(17, static_cast<std::uint64_t>(record.window.start));
    put_u64(25, static_cast<std::uint64_t>(record.window.end));
    len = 33;
  }
  sink.byte_block(scratch, len);
}

WalRecord get_record(ByteSource& source) {
  WalRecord record;
  const std::uint8_t type = source.u8();
  if (type != static_cast<std::uint8_t>(WalRecordType::kInsert) &&
      type != static_cast<std::uint8_t>(WalRecordType::kErase)) {
    throw CorruptInput("wal: unknown record type");
  }
  record.type = static_cast<WalRecordType>(type);
  record.csn = source.u64();
  record.job.value = source.u64();
  if (record.type == WalRecordType::kInsert) {
    record.window = get_window(source);
    if (!record.window.valid()) throw CorruptInput("wal: insert with empty window");
  }
  return record;
}

std::string wal_path(const std::string& dir, std::uint32_t shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%03u.log", shard);
  return dir + "/" + name;
}

void ensure_dir(const std::string& dir) {
  RS_REQUIRE(!dir.empty(), "durability: policy.dir must be set");
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t next = dir.find('/', pos);
    const std::string prefix =
        dir.substr(0, next == std::string::npos ? dir.size() : next);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw_errno("durability: cannot create dir", prefix);
    }
    if (next == std::string::npos) break;
    pos = next + 1;
  }
}

// ---------------------------------------------------------------- writer --

WalWriter::~WalWriter() { close(); }

void WalWriter::reset_frame() {
  buffer_.clear();
  buffer_.u32(0);  // frame header slot: payload length, patched at flush
  buffer_.u32(0);  // frame header slot: payload CRC32C, patched at flush
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    policy_ = std::move(other.policy_);
    buffer_ = std::move(other.buffer_);
    buffered_records_ = std::exchange(other.buffered_records_, 0);
    frames_since_sync_ = std::exchange(other.frames_since_sync_, 0);
    stats_ = std::exchange(other.stats_, Stats{});
  }
  return *this;
}

void WalWriter::open(const std::string& path, const DurabilityPolicy& policy,
                     std::uint32_t shard) {
  close();
  policy_ = policy;
  reset_frame();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("wal: cannot open", path);
  struct stat st {};
  if (::fstat(fd_, &st) != 0) throw_errno("wal: cannot stat", path);
  if (st.st_size == 0) {
    ByteSink header;
    header.byte_block(kMagic, sizeof(kMagic));
    header.u32(kVersion);
    header.u32(shard);
    write_all(header.bytes().data(), header.size());
    if (::fsync(fd_) != 0) throw_errno("wal: cannot sync", path);
  } else {
    // Appending to an existing log: validate the header so a stray file
    // is never silently extended with frames it cannot parse.
    const int read_fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (read_fd < 0) throw_errno("wal: cannot reopen", path);
    char magic[sizeof(kMagic)] = {0};
    const ssize_t got = ::read(read_fd, magic, sizeof(magic));
    ::close(read_fd);
    if (got != static_cast<ssize_t>(sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw CorruptInput("wal: bad file header: " + path);
    }
  }
}

void WalWriter::append(const WalRecord& record) {
  RS_REQUIRE(is_open(), "wal: append on closed writer");
  RS_TELEM_DURATION(kAppendHist, "wal.append");
  RS_TELEM_SPAN(append_span, kAppendHist, "wal.append");
  put_record(buffer_, record);
  appended();
  RS_TELEM_COUNTER(kRecords, "wal.records");
  RS_TELEM_ADD(kRecords, 1);
}

void WalWriter::flush() {
  if (buffered_records_ == 0) return;
  RS_TELEM_DURATION(kFlushHist, "wal.flush");
  RS_TELEM_SPAN(flush_span, kFlushHist, "wal.flush");
  // The frame is assembled in place: buffer_ starts with an 8-byte header
  // slot (reset_frame) that the length and checksum are patched into, so a
  // flush is one write of bytes already laid out — no second buffer, no
  // payload copy.
  const std::size_t payload = buffer_.size() - kFrameHeaderBytes;
  buffer_.patch_u32(0, static_cast<std::uint32_t>(payload));
  buffer_.patch_u32(
      4, crc32c(buffer_.bytes().data() + kFrameHeaderBytes, payload));
  if (CrashPoint::due("wal.frame")) {
    // Fault injection: persist a torn prefix of this frame — header plus
    // roughly half the payload — exactly what a power cut mid-write
    // leaves, then die. Recovery must truncate here.
    const std::size_t torn = kFrameHeaderBytes + payload / 2;
    write_all(buffer_.bytes().data(), torn);
    ::fsync(fd_);
    CrashPoint::die();
  }
  write_all(buffer_.bytes().data(), buffer_.size());
  ++stats_.frames;
  stats_.bytes += buffer_.size();
  RS_TELEM_COUNTER(kBytes, "wal.bytes");
  RS_TELEM_ADD(kBytes, buffer_.size());
  reset_frame();
  buffered_records_ = 0;
  if (policy_.sync_every > 0 && ++frames_since_sync_ >= policy_.sync_every) {
    RS_TELEM_DURATION(kFsyncHist, "wal.fsync");
    RS_TELEM_SPAN(fsync_span, kFsyncHist, "wal.fsync");
    if (::fsync(fd_) != 0) throw_errno("wal: cannot sync", "(fd)");
    frames_since_sync_ = 0;
    ++stats_.syncs;
  }
}

void WalWriter::sync() {
  RS_REQUIRE(is_open(), "wal: sync on closed writer");
  flush();
  RS_TELEM_DURATION(kFsyncHist, "wal.fsync");
  RS_TELEM_SPAN(fsync_span, kFsyncHist, "wal.fsync");
  if (::fsync(fd_) != 0) throw_errno("wal: cannot sync", "(fd)");
  frames_since_sync_ = 0;
  ++stats_.syncs;
}

void WalWriter::close() {
  if (fd_ < 0) return;
  flush();
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::write_all(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  while (len > 0) {
    const ssize_t wrote = ::write(fd_, p, len);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("wal: write failed", "(fd)");
    }
    p += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
}

// ---------------------------------------------------------------- reader --

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      result.missing = true;
      return result;
    }
    throw_errno("wal: cannot open", path);
  }
  std::vector<std::byte> file;
  {
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw_errno("wal: cannot stat", path);
    }
    file.resize(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < file.size()) {
      const ssize_t got = ::read(fd, file.data() + off, file.size() - off);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      off += static_cast<std::size_t>(got);
    }
    file.resize(off);
  }
  ::close(fd);

  if (file.size() < kHeaderBytes ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CorruptInput("wal: bad file header: " + path);
  }

  std::size_t pos = kHeaderBytes;
  result.valid_end = pos;
  while (pos < file.size()) {
    if (file.size() - pos < kFrameHeaderBytes) {
      result.torn_tail = true;  // half-written frame header
      break;
    }
    ByteSource header(file.data() + pos, kFrameHeaderBytes);
    const std::uint32_t payload_len = header.u32();
    const std::uint32_t expect_crc = header.u32();
    if (payload_len > kMaxFramePayload ||
        file.size() - pos - kFrameHeaderBytes < payload_len) {
      result.torn_tail = true;  // short payload (or garbage length)
      break;
    }
    const std::byte* payload = file.data() + pos + kFrameHeaderBytes;
    if (crc32c(payload, payload_len) != expect_crc) {
      result.torn_tail = true;  // bit rot or torn payload overwritten later
      break;
    }
    // Decode outside the torn-tail tolerance: the checksum vouched for
    // these bytes, so a malformed record here is real corruption worth
    // keeping — but still bounded to this file, so degrade like a tear
    // rather than aborting recovery.
    try {
      ByteSource body(payload, payload_len);
      std::vector<WalRecord> frame_records;
      while (!body.exhausted()) frame_records.push_back(get_record(body));
      result.records.insert(result.records.end(), frame_records.begin(),
                            frame_records.end());
    } catch (const CorruptInput&) {
      result.torn_tail = true;
      break;
    }
    pos += kFrameHeaderBytes + payload_len;
    result.valid_end = pos;
  }
  return result;
}

void truncate_wal(const std::string& path, std::uint64_t valid_end) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return;
    throw_errno("wal: cannot stat", path);
  }
  if (static_cast<std::uint64_t>(st.st_size) == valid_end) return;
  if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
    throw_errno("wal: cannot truncate", path);
  }
}

}  // namespace reasched::durability
