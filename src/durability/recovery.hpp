// Crash recovery: newest valid snapshot + WAL-suffix replay (DESIGN.md §9).
//
// Recovery never trusts any single artifact. Snapshots are tried newest
// first and any corrupt one is skipped (falling back to an older snapshot,
// or to an empty scheduler with full-log replay). The WAL's torn tail is
// truncated at the last valid checksum. Replay pushes the surviving record
// suffix through the scheduler's *normal* request path — the same
// determinism the partitioned-rebuild differentials rest on makes the
// recovered instance byte-identical to an uninterrupted twin that served
// exactly the surviving prefix (tests/crash_recovery_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scheduler_options.hpp"
#include "durability/wal.hpp"
#include "schedule/scheduler_interface.hpp"

namespace reasched {

class ReservationScheduler;

namespace durability {

/// What Recovery::load found and did. Every count is observable by tests
/// (e.g. "the corrupt snapshot was skipped": snapshots_skipped == 1).
struct RecoveryReport {
  /// CSN of the snapshot the state was seeded from; 0 = started empty.
  std::uint64_t snapshot_csn = 0;
  /// Highest CSN folded into the recovered state (snapshot or replay).
  std::uint64_t last_csn = 0;
  /// WAL records replayed through the request path.
  std::uint64_t replayed = 0;
  /// Replayed inserts rejected (InfeasibleError) — deterministic re-runs
  /// of rejections the live process already reported — plus erases of
  /// those same jobs, skipped.
  std::uint64_t rejected_replays = 0;
  /// Committed snapshots that failed to load and were skipped.
  std::uint64_t snapshots_skipped = 0;
  /// The WAL ended in a torn/corrupt frame (it has been truncated).
  bool torn_tail = false;
  /// No durable state existed at all (fresh directory).
  [[nodiscard]] bool cold_start() const noexcept {
    return snapshot_csn == 0 && replayed == 0;
  }
};

struct Recovery {
  struct Recovered {
    std::unique_ptr<ReservationScheduler> scheduler;
    RecoveryReport report;
  };

  /// Recovers a single-machine ReservationScheduler from `policy.dir`:
  /// newest loadable snapshot (corrupt ones skipped) + replay of every WAL
  /// record with csn > snapshot_csn; the torn tail, if any, is truncated
  /// so a writer can append. A missing directory or empty log recovers an
  /// empty scheduler. `options` must match the options the durable state
  /// was written under (fingerprint-checked per snapshot).
  [[nodiscard]] static Recovered load(const DurabilityPolicy& policy,
                                      const SchedulerOptions& options);
};

/// Replays the records with csn > after_csn through `target`'s normal
/// request path, updating `report` (replayed / rejected_replays /
/// last_csn). Inserts that throw InfeasibleError are counted as rejected;
/// erases of jobs whose insert was rejected are skipped — mirroring the
/// batch API's rejection semantics, which is what the live process
/// reported to its caller. Used by Recovery::load and by the WAL-only
/// (sharded / multi-machine) recovery paths.
void replay_records(IReallocScheduler& target, std::span<const WalRecord> records,
                    std::uint64_t after_csn, RecoveryReport& report);

/// The per-shard logs of a sharded service, merged back into one request
/// stream ordered by CSN.
struct MergedWal {
  /// The longest gap-free CSN prefix across all shard logs, ascending.
  std::vector<WalRecord> records;
  /// Highest CSN in `records` (0 when empty).
  std::uint64_t last_csn = 0;
  /// Records beyond the first CSN gap, dropped (a lost shard frame strands
  /// later requests on other shards — they never committed as a batch).
  std::uint64_t dropped = 0;
  /// Any shard log ended in a torn frame.
  bool torn_tail = false;
  /// Per shard file present on disk: shard number and the offset its log
  /// must be truncated to before appending resumes (parallel vectors).
  std::vector<std::uint32_t> shards;
  std::vector<std::uint64_t> valid_ends;
};

/// Scans `dir` for wal-*.log files and merges them by CSN. Throws
/// CorruptInput only for a garbled file header; torn tails degrade per
/// shard. Does not truncate anything itself.
[[nodiscard]] MergedWal merge_sharded_wal(const std::string& dir);

}  // namespace durability
}  // namespace reasched
