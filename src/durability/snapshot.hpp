// Snapshot files: SchedulerPersist payloads with crash-safe framing.
//
// A snapshot is written to `snap-<csn>.snap` where <csn> is the commit
// sequence number of the last request folded into the state. The file is
//
//   payload (SchedulerPersist::save bytes) | payload_len u64 | crc32c u32
//
// written to a `.tmp` sibling first, fsynced, then renamed into place —
// the snapshot either exists completely or not at all; a crash mid-write
// leaves only a tmp file that recovery ignores. The trailer (rather than
// a header) lets the writer stream the payload without a second pass.
//
// Corruption of any committed snapshot is survivable: load_snapshot
// returns false instead of throwing for anything wrong with the *file*
// (short, bad CRC, garbled payload, options mismatch), and Recovery falls
// back to the next-older snapshot, or to an empty scheduler plus full WAL
// replay. Only programming errors (I/O syscall failures) abort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "durability/wal.hpp"

namespace reasched {

class ReservationScheduler;

namespace durability {

/// `dir`/snap-<csn>.snap
[[nodiscard]] std::string snapshot_path(const std::string& dir, std::uint64_t csn);

/// CSNs of every committed (renamed) snapshot in `dir`, newest first.
/// Tmp leftovers and foreign files are ignored. Missing dir → empty.
[[nodiscard]] std::vector<std::uint64_t> list_snapshots(const std::string& dir);

/// Serializes `s` (which must be quiescent — no rebuild migration in
/// flight) as the state after CSN `csn`, atomically, then prunes committed
/// snapshots beyond policy.keep_snapshots (newest kept). Crashpoints:
/// "snapshot.mid" dies with a half-written tmp file, "snapshot.rename"
/// dies after the tmp is durable but before the rename.
void write_snapshot(const std::string& dir, std::uint64_t csn,
                    const ReservationScheduler& s, const DurabilityPolicy& policy);

/// Loads `path` into the freshly constructed scheduler `s`. Returns false
/// (leaving `s` unspecified — discard it) on any corruption or mismatch;
/// true on success.
[[nodiscard]] bool load_snapshot(const std::string& path, ReservationScheduler& s);

}  // namespace durability
}  // namespace reasched
