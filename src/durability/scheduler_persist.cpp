#include "durability/scheduler_persist.hpp"

#include "core/reservation_scheduler.hpp"
#include "util/assert.hpp"

namespace reasched::durability {

namespace {

constexpr std::uint64_t kStateMagic = 0x5253534E41503031ULL;  // "RSSNAP01"
constexpr std::uint32_t kStateVersion = 1;

void put_window_key(ByteSink& sink, const WindowKey& w) {
  sink.i64(w.start);
  sink.u8(w.span_log);
}

WindowKey get_window_key(ByteSource& source) {
  WindowKey w;
  w.start = source.i64();
  w.span_log = source.u8();
  return w;
}

void put_time_key(ByteSink& sink, const Time& t) {
  sink.i64(t);
}

}  // namespace

std::uint64_t SchedulerPersist::options_fingerprint(const SchedulerOptions& o) {
  // FNV-1a over the fields that shape placements and replay determinism.
  // The legacy_* toggles and audit policy are deliberately absent: both
  // rehash modes and both fulfillment paths produce byte-identical
  // schedules (the differential suites' contract), so a snapshot written
  // under one loads correctly under the other.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(o.gamma);
  mix(o.trimming ? 1 : 0);
  mix(static_cast<std::uint64_t>(o.overflow));
  mix(static_cast<std::uint64_t>(o.placement));
  mix(o.rebuild_batch);
  const unsigned count = o.levels.level_count();
  mix(count);
  for (unsigned level = 0; level < count; ++level) {
    mix(o.levels.max_span(level));
    if (level >= 1) mix(o.levels.interval_size(level));
  }
  return h;
}

void SchedulerPersist::save(const ReservationScheduler& s, ByteSink& sink) {
  RS_REQUIRE(s.migration_ == nullptr,
             "SchedulerPersist::save: rebuild migration in flight (snapshot "
             "only at quiescent points)");
  sink.u64(kStateMagic);
  sink.u32(kStateVersion);
  sink.u64(options_fingerprint(s.options_));
  sink.u64(s.n_star_);
  sink.u64(s.parked_count_);
  sink.u64(s.audit_request_index_);

  s.jobs_.serialize(sink, [](ByteSink& out, const JobId& id,
                             const ReservationScheduler::JobState& job) {
    out.u64(id.value);
    put_window(out, job.original);
    put_window(out, job.window);
    out.u32(job.level);
    out.i64(job.slot);
    out.u8(job.parked ? 1 : 0);
  });

  s.occ_.serialize(sink);

  sink.u64(s.levels_.size());
  for (const auto& ls : s.levels_) {
    const unsigned class_count = ls.interval_size > 0 ? ls.class_count() : 0;
    sink.u64(ls.intervals.size());
    ls.intervals.for_each([&](const Time& base,
                              const ReservationScheduler::Interval& interval) {
      static_cast<void>(base);
      sink.i64(interval.base);
      sink.u32(interval.lower_count);
      sink.u32(interval.assigned_count);
      sink.u64(interval.assigned_class_mask);
      for (unsigned c = 0; c < class_count; ++c) sink.u32(interval.assigned_by_class[c]);
      // Sparse slot table: only slots carrying state. The fulfillment
      // cache is skipped — kInvalid on load, recomputed on first touch.
      std::uint32_t interesting = 0;
      for (u64 i = 0; i < ls.interval_size; ++i) {
        const auto& slot = interval.slots[i];
        if (slot.lower_occupied || slot.assigned) ++interesting;
      }
      sink.u32(interesting);
      for (u64 i = 0; i < ls.interval_size; ++i) {
        const auto& slot = interval.slots[i];
        if (!slot.lower_occupied && !slot.assigned) continue;
        sink.u32(static_cast<std::uint32_t>(i));
        sink.u8(static_cast<std::uint8_t>((slot.lower_occupied ? 1 : 0) |
                                          (slot.assigned ? 2 : 0)));
        if (slot.assigned) put_window_key(sink, slot.owner);
      }
    });
    // Interval-map layout: serialize the FlatHashMap shell separately so
    // ctrl/probe state round-trips exactly. The values were written above
    // in for_each (index) order; writing them inline through the map's own
    // serialize would work too, but the split keeps the value codec free
    // of Sink-template plumbing for the arena re-carve on load.
    ls.intervals.serialize(sink, [](ByteSink& out, const Time& base,
                                    const ReservationScheduler::Interval&) {
      put_time_key(out, base);
    });

    ls.windows.serialize(sink, [](ByteSink& out, const WindowKey& key,
                                  const ReservationScheduler::ActiveWindow& window) {
      put_window_key(out, key);
      out.u64(window.jobs);
      out.u64(window.claim_cursor);
      window.assigned_slots.serialize(out,
                                      [](ByteSink& o, const Time& t) { o.i64(t); });
      window.free_assigned.serialize(out,
                                     [](ByteSink& o, const Time& t) { o.i64(t); });
    });

    sink.u64(ls.active_per_class.size());
    for (const std::uint32_t census : ls.active_per_class) sink.u32(census);
    sink.u32(ls.active_bound);
  }
}

void SchedulerPersist::load(ReservationScheduler& s, ByteSource& source) {
  RS_REQUIRE(s.jobs_.empty() && s.migration_ == nullptr && s.retiring_.empty(),
             "SchedulerPersist::load: target must be freshly constructed");
  if (source.u64() != kStateMagic) throw CorruptInput("snapshot: bad state magic");
  if (source.u32() != kStateVersion) {
    throw CorruptInput("snapshot: unsupported state version");
  }
  if (source.u64() != options_fingerprint(s.options_)) {
    throw CorruptInput(
        "snapshot: scheduler options mismatch (saved under a different "
        "configuration)");
  }
  s.n_star_ = source.u64();
  s.parked_count_ = source.u64();
  s.audit_request_index_ = source.u64();

  s.jobs_.deserialize(source, [](ByteSource& in, JobId& id,
                                 ReservationScheduler::JobState& job) {
    id.value = in.u64();
    job.original = get_window(in);
    job.window = get_window(in);
    job.level = in.u32();
    job.slot = in.i64();
    job.parked = in.u8() != 0;
  });

  s.occ_.deserialize(source);

  const std::uint64_t level_count = source.u64();
  if (level_count != s.levels_.size()) {
    throw CorruptInput("snapshot: level-count mismatch");
  }
  for (auto& ls : s.levels_) {
    const unsigned class_count = ls.interval_size > 0 ? ls.class_count() : 0;
    // Interval payloads arrive before the map shell (the write order
    // above); stage them by base, then wire each into a fresh arena block
    // as the shell deserializes.
    const std::uint64_t interval_count = source.u64();
    FlatHashMap<Time, ReservationScheduler::Interval> staged;
    staged.reserve(static_cast<std::size_t>(interval_count));
    for (std::uint64_t n = 0; n < interval_count; ++n) {
      ReservationScheduler::Interval interval;
      interval.base = source.i64();
      interval.lower_count = source.u32();
      interval.assigned_count = source.u32();
      interval.assigned_class_mask = source.u64();
      if (ls.interval_size == 0) {
        throw CorruptInput("snapshot: interval on a level without intervals");
      }
      ReservationScheduler::carve_interval_block(ls, interval);
      for (unsigned c = 0; c < class_count; ++c) {
        interval.assigned_by_class[c] = source.u32();
      }
      const std::uint32_t interesting = source.u32();
      for (std::uint32_t e = 0; e < interesting; ++e) {
        const std::uint32_t offset = source.u32();
        if (offset >= ls.interval_size) {
          throw CorruptInput("snapshot: slot offset out of range");
        }
        const std::uint8_t flags = source.u8();
        auto& slot = interval.slots[offset];
        slot.lower_occupied = (flags & 1) != 0;
        slot.assigned = (flags & 2) != 0;
        if (slot.assigned) slot.owner = get_window_key(source);
      }
      const bool fresh = staged.insert_or_assign(interval.base, interval);
      if (!fresh) throw CorruptInput("snapshot: duplicate interval base");
    }
    ls.intervals.deserialize(
        source, [&staged](ByteSource& in, Time& base,
                          ReservationScheduler::Interval& interval) {
          base = in.i64();
          ReservationScheduler::Interval* found = staged.find(base);
          if (found == nullptr) {
            throw CorruptInput("snapshot: interval shell without payload");
          }
          interval = *found;
        });
    if (ls.intervals.size() != static_cast<std::size_t>(interval_count)) {
      throw CorruptInput("snapshot: interval shell/payload count mismatch");
    }

    const bool legacy = s.options_.legacy_rehash;
    ls.windows.deserialize(
        source, [legacy](ByteSource& in, WindowKey& key,
                         ReservationScheduler::ActiveWindow& window) {
          key = get_window_key(in);
          window.jobs = in.u64();
          window.claim_cursor = in.u64();
          if (legacy) {
            window.assigned_slots.set_legacy_rehash(true);
            window.free_assigned.set_legacy_rehash(true);
          }
          window.assigned_slots.deserialize(
              in, [](ByteSource& i, Time& t) { t = i.i64(); });
          window.free_assigned.deserialize(
              in, [](ByteSource& i, Time& t) { t = i.i64(); });
        });

    const std::uint64_t census_size = source.u64();
    if (census_size != ls.active_per_class.size()) {
      throw CorruptInput("snapshot: census size mismatch");
    }
    for (auto& census : ls.active_per_class) census = source.u32();
    ls.active_bound = source.u32();
    if (ls.active_bound > census_size) {
      throw CorruptInput("snapshot: active bound out of range");
    }
  }
  if (!source.exhausted()) throw CorruptInput("snapshot: trailing bytes");

  // Tables deserialize with the rehash mode they were *saved* under (part
  // of the exact-layout round-trip); the target's configured mode governs
  // future growth. Schedules are identical either way — the rehash
  // differential contract — so a snapshot written under one mode loads
  // correctly under the other; in legacy mode this completes any in-flight
  // table migrations the snapshot carried.
  if (s.options_.legacy_rehash) {
    s.jobs_.set_legacy_rehash(true);
    s.occ_.set_legacy_rehash(true);
    for (auto& ls : s.levels_) {
      ls.intervals.set_legacy_rehash(true);
      ls.windows.set_legacy_rehash(true);
    }
  }

  // Wholesale state change under an attached engine: escalate so the next
  // incremental audit runs one full sweep and reseeds the dirty-tracking
  // shadows from the recovered ledgers (the same path a fresh attach or an
  // emergency rebuild takes).
  if (s.audit_engine_) s.audit_engine_->mark_all();
}

}  // namespace reasched::durability
