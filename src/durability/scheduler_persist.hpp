// Deep logical-state serialization of a ReservationScheduler — the payload
// of every snapshot file (DESIGN.md §9).
//
// What is saved is the scheduler's *behavior-relevant* state, exactly:
// the job table, the occupancy map, every level's interval slot tables and
// window ledgers (insertion order of the per-window dense sets included —
// that order feeds acquire_slot's pick), the active-window census, and the
// scalar counters (n*, parked count, audit cadence position). Flat-hash
// tables round-trip with their exact ctrl layout (util/flat_hash.hpp), so
// a recovered scheduler is bit-compatible in probe behavior too.
//
// What is deliberately NOT saved, because it is recomputable or inert:
//   * fulfillment caches — a pure function of the ledgers (Observation 7);
//     every interval reloads as kInvalid and recomputes on first touch;
//   * the occupancy run index — rebuilt from the occupant map;
//   * retired generations awaiting deferred trimming — memory bookkeeping
//     with no schedule effect;
//   * the audit engine's shadows — the loader escalates via mark_all(), so
//     the first post-recovery audit is a full sweep that reseeds them
//     (the same escalation path a fresh engine attach uses).
//
// Saving requires a quiescent scheduler: no partitioned-rebuild migration
// in flight. The snapshot trigger guarantees that by firing at the
// generation flip (src/durability/durable_scheduler.*).
#pragma once

#include <cstdint>

#include "durability/codec.hpp"

namespace reasched {

class ReservationScheduler;
struct SchedulerOptions;

namespace durability {

struct SchedulerPersist {
  /// Serializes `s` into `sink`. Precondition: !s.rebuild_in_flight().
  static void save(const ReservationScheduler& s, ByteSink& sink);

  /// Rebuilds the serialized state into `s`, which must be freshly
  /// constructed with the same SchedulerOptions the saved instance ran
  /// under (verified via fingerprint; mismatch throws CorruptInput, as
  /// does any malformed input). On success the attached audit engine (if
  /// any) is escalated with mark_all().
  static void load(ReservationScheduler& s, ByteSource& source);

  /// Fingerprint of the options fields that shape serialized state and
  /// replay determinism. Stored in every snapshot and checked on load.
  [[nodiscard]] static std::uint64_t options_fingerprint(const SchedulerOptions& o);
};

}  // namespace durability
}  // namespace reasched
