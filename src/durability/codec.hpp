// Byte-buffer codec for the durability tier (DESIGN.md §9): the Sink /
// Source pair every serialize/deserialize hook in the repository writes
// through (flat-hash tables, the occupancy index, scheduler snapshots, WAL
// record payloads).
//
// Fixed-width little-endian integers, no varints: the frames are CRC32C-
// checksummed and compressed-size is not a design goal, while a fixed
// layout keeps torn-input handling trivial (every underrun is detected as
// exactly one named error). Signed values round-trip through two's
// complement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "base/window.hpp"

namespace reasched::durability {

/// Thrown (as InternalError's sibling) on any malformed durable input:
/// truncated buffer, bad magic, checksum mismatch, impossible field. The
/// recovery path catches it per-artifact and degrades (skip the snapshot,
/// truncate the log) — it must never escape Recovery::load.
struct CorruptInput final : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink.
class ByteSink {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  // One range-insert per integer, not one bounds-checked push_back per
  // byte: WAL append is on the request hot path (E17 gates its overhead).
  void u32(std::uint32_t v) {
    std::byte le[4];
    for (int i = 0; i < 4; ++i) le[i] = static_cast<std::byte>(v >> (8 * i));
    byte_block(le, sizeof(le));
  }
  void u64(std::uint64_t v) {
    std::byte le[8];
    for (int i = 0; i < 8; ++i) le[i] = static_cast<std::byte>(v >> (8 * i));
    byte_block(le, sizeof(le));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void byte_block(const void* data, std::size_t len) {
    // resize+memcpy rather than insert(end, p, p+len): the range insert's
    // generic iterator machinery costs real time at WAL-record sizes, and
    // this method runs once per request on the durable hot path.
    const std::size_t at = buf_.size();
    buf_.resize(at + len);
    std::memcpy(buf_.data() + at, data, len);
  }
  /// Grows the buffer by `len` bytes and returns a pointer to the new
  /// region, for callers that encode a fixed-layout record directly in
  /// place (the WAL append fast path) instead of going through the
  /// per-field methods.
  [[nodiscard]] std::byte* grow(std::size_t len) {
    const std::size_t at = buf_.size();
    buf_.resize(at + len);
    return buf_.data() + at;
  }
  /// Overwrites 4 already-written bytes at `pos` (little-endian) — lets a
  /// writer reserve a header slot and patch length/checksum in afterwards
  /// instead of assembling the finished message in a second buffer.
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[pos + static_cast<std::size_t>(i)] = static_cast<std::byte>(v >> (8 * i));
    }
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  void clear() noexcept { buf_.clear(); }
  /// Shrinks back to `size` (which must not exceed the current size) —
  /// drops bytes appended since a caller-taken mark.
  void truncate(std::size_t size) { buf_.resize(size); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a byte range (does not own the bytes).
class ByteSource {
 public:
  ByteSource(const std::byte* data, std::size_t len) noexcept
      : data_(data), len_(len) {}
  explicit ByteSource(const std::vector<std::byte>& buf) noexcept
      : ByteSource(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  void byte_block(void* out, std::size_t len) {
    need(len);
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return len_ - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == len_; }

 private:
  void need(std::size_t n) const {
    if (len_ - pos_ < n) throw CorruptInput("durability: truncated input");
  }

  const std::byte* data_ = nullptr;
  std::size_t len_ = 0;
  std::size_t pos_ = 0;
};

// Request-field helpers shared by the WAL record codec and the scheduler
// snapshot (both persist JobId/Window values constantly).
inline void put_window(ByteSink& sink, const Window& w) {
  sink.i64(w.start);
  sink.i64(w.end);
}
[[nodiscard]] inline Window get_window(ByteSource& source) {
  Window w;
  w.start = source.i64();
  w.end = source.i64();
  return w;
}

}  // namespace reasched::durability
