// Crashpoint hooks: deterministic kill-at-named-point fault injection for
// the crash-recovery harness (tests/crash_recovery_test.cpp, DESIGN.md §9).
//
// A crashpoint is armed with a name and a countdown; the Nth time the
// running process reaches the matching `due(name)` site, the site performs
// its last half-done durable effect (e.g. a torn half-frame write) and the
// process dies via _exit — no destructors, no buffer flushing, exactly
// like a SIGKILL landing mid-syscall. Sites are compiled in
// unconditionally: an unarmed check is one relaxed atomic load, invisible
// next to the I/O it guards.
//
// Arming is programmatic (the fork-based kill-matrix tests) or via the
// environment: REASCHED_CRASHPOINT="<name>:<countdown>" arms any binary in
// the repository from the outside — `tools/crashpoint` wraps exactly that
// for command-line use against the examples and benches.
#pragma once

#include <cstdint>
#include <string>

namespace reasched::durability {

class CrashPoint {
 public:
  /// Exit status a crashpoint kill dies with (distinguishes an injected
  /// crash from an ordinary failure in the harness's waitpid).
  static constexpr int kExitStatus = 137;

  /// Arms `name` to fire on its `countdown`-th hit (countdown >= 1).
  /// Re-arming replaces any previous arming.
  static void arm(const std::string& name, std::uint64_t countdown);
  static void disarm();

  /// Parses REASCHED_CRASHPOINT ("name" or "name:countdown"); no-op when
  /// unset or malformed. Called lazily by the first due() check, so any
  /// binary honors the variable without wiring.
  static void arm_from_env();

  /// True exactly once: when this site's hit count reaches the armed
  /// countdown. The caller then performs its torn half-effect and calls
  /// die(). Never true for unarmed or differently-named sites.
  [[nodiscard]] static bool due(const char* name);

  [[noreturn]] static void die();
};

}  // namespace reasched::durability
