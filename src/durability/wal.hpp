// Write-ahead log for the scheduler's request-event stream (DESIGN.md §9).
//
// The WAL is event-sourced at the *request* level: every client-visible
// insert/erase is one record ⟨type, csn, job, window⟩, where the commit
// sequence number (CSN) is a dense 1-based counter over the request
// stream. Nothing internal is ever logged — shadow-generation
// reinsertions, migration replays and rehash traffic are deterministic
// functions of the request stream, so replaying the requests through the
// normal apply path reproduces the exact scheduler state (the same
// determinism argument the partitioned-rebuild differential tests rest
// on). Under the sharded service each shard appends to its own log file
// and recovery merges the per-shard streams by CSN, taking the longest
// gap-free prefix — the cross-shard ordering BatchResult::first_csn /
// last_csn expose to callers.
//
// On-disk format. A log file is a 16-byte header
//
//   "RSWAL001" (8)  |  version u32  |  shard u32
//
// followed by frames, each
//
//   payload_len u32  |  crc32c(payload) u32  |  payload
//
// where the payload is a batch of consecutive records (fixed-width codec,
// durability/codec.hpp). Records are buffered and cut into a frame when
// the buffer reaches DurabilityPolicy::frame_bytes (or on flush/sync);
// fsync runs every `sync_every` frames (0 = leave syncing to the OS). A
// torn tail — half-written header, short payload, checksum mismatch — is
// detected by the reader, which reports every record before the tear and
// the byte offset the file must be truncated to before appending resumes
// (the recovery path does exactly that; "truncate at bad checksum, never
// crash").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/window.hpp"
#include "durability/codec.hpp"

namespace reasched::durability {

/// Knobs of the durability tier. `dir` hosts the log + snapshot files.
struct DurabilityPolicy {
  std::string dir;
  /// fsync the log every N flushed frames (1 = every frame, 0 = never
  /// explicitly — buffered durability, the OS decides).
  std::uint64_t sync_every = 0;
  /// Cut a frame once the buffered payload reaches this size.
  std::size_t frame_bytes = 16 * 1024;
  /// Also snapshot every N logged records (0 = only at generation flips).
  std::uint64_t snapshot_every = 0;
  /// Snapshot when a partitioned n*-rebuild completes its generation flip
  /// (the state is quiescent and the request already carries rebuild-scale
  /// work, so the serialization pass hides in the boundary the legacy
  /// rebuild paid Θ(n) on anyway).
  bool snapshot_on_flip = true;
  /// Snapshots retained per directory; older ones are pruned after each
  /// successful write (>= 1; the previous snapshot is the fallback when a
  /// crash lands mid-snapshot-write).
  std::size_t keep_snapshots = 2;
};

enum class WalRecordType : std::uint8_t { kInsert = 1, kErase = 2 };

/// Bytes of the per-frame header (payload_len u32 + crc32c u32) — shared
/// by the writer's inline frame-cut check and the reader.
inline constexpr std::size_t kWalFrameHeaderBytes = 8;

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::uint64_t csn = 0;
  JobId job{};
  Window window{};  ///< inserts only

  [[nodiscard]] static WalRecord insert(std::uint64_t csn, JobId id, Window w) {
    return WalRecord{WalRecordType::kInsert, csn, id, w};
  }
  [[nodiscard]] static WalRecord erase(std::uint64_t csn, JobId id) {
    return WalRecord{WalRecordType::kErase, csn, id, {}};
  }
  [[nodiscard]] Request to_request() const {
    return type == WalRecordType::kInsert ? Request::insert(job, window)
                                          : Request::erase(job);
  }

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

void put_record(ByteSink& sink, const WalRecord& record);
[[nodiscard]] WalRecord get_record(ByteSource& source);

/// Append-side of one log file. Not thread-safe (per-shard discipline:
/// exactly one writer per file).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }
  WalWriter& operator=(WalWriter&& other) noexcept;

  /// Creates the file (with header) or appends to an existing one after
  /// validating its header. Throws CorruptInput on a foreign/garbled
  /// header and ContractViolation on I/O errors.
  void open(const std::string& path, const DurabilityPolicy& policy,
            std::uint32_t shard = 0);
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

  /// Buffers one record; cuts a frame at the policy's frame_bytes.
  void append(const WalRecord& record);
  /// Fast-path appends — identical bytes to append(WalRecord::insert(...))
  /// / append(WalRecord::erase(...)), encoded straight into the frame
  /// buffer with no intermediate record. These are the per-request calls
  /// on the durable hot path (E17 gates their overhead); keep them inline.
  ///
  /// Unlike append(), the record is only *buffered*: nothing can reach
  /// disk until the matching commit_record(), so a caller that interleaves
  /// the append with a fallible operation (DurableScheduler's write-ahead
  /// ordering around the inner scheduler) can still rollback_to(mark) — a
  /// precondition-violating request then never touches the log.
  [[nodiscard]] std::size_t mark() const noexcept { return buffer_.size(); }
  void append_insert(std::uint64_t csn, JobId id, Window window) {
    std::byte* out = buffer_.grow(33);
    out[0] = static_cast<std::byte>(WalRecordType::kInsert);
    store_u64(out + 1, csn);
    store_u64(out + 9, id.value);
    store_u64(out + 17, static_cast<std::uint64_t>(window.start));
    store_u64(out + 25, static_cast<std::uint64_t>(window.end));
  }
  void append_erase(std::uint64_t csn, JobId id) {
    std::byte* out = buffer_.grow(17);
    out[0] = static_cast<std::byte>(WalRecordType::kErase);
    store_u64(out + 1, csn);
    store_u64(out + 9, id.value);
  }
  /// Counts the buffered record and cuts a frame at frame_bytes.
  void commit_record() { appended(); }
  /// Drops everything buffered since `mark` (still in this frame — commit
  /// has not run, so none of it has been written).
  void rollback_to(std::size_t mark) { buffer_.truncate(mark); }
  /// Writes any buffered records out as a frame (no fsync of its own).
  void flush();
  /// flush() + fsync, unconditionally.
  void sync();
  void close();

  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t frames = 0;
    std::uint64_t syncs = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  static void store_u64(std::byte* out, std::uint64_t v) noexcept {
    // Byte-shift store (not memcpy) so the encoding is little-endian on
    // any host; compilers merge it into one 8-byte store where possible.
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::byte>(v >> (8 * i));
    }
  }
  /// Shared tail of every append: counters + the frame-cut check.
  void appended() {
    ++buffered_records_;
    ++stats_.records;
    if (buffer_.size() - kWalFrameHeaderBytes >= policy_.frame_bytes) flush();
  }

  void write_all(const void* data, std::size_t len);
  void reset_frame();

  int fd_ = -1;
  DurabilityPolicy policy_{};
  ByteSink buffer_;
  std::uint64_t buffered_records_ = 0;
  std::uint64_t frames_since_sync_ = 0;
  Stats stats_{};
};

/// Result of scanning one log file.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte offset of the end of the last valid frame — where appending must
  /// resume (the torn tail, if any, lies beyond it).
  std::uint64_t valid_end = 0;
  /// True when the file ended in a torn/corrupt frame that was ignored.
  bool torn_tail = false;
  /// True when the file was missing entirely (records empty, valid_end 0).
  bool missing = false;
};

/// Reads every intact frame of a log file, stopping at the first torn or
/// corrupt one. Throws CorruptInput only for a garbled file *header* (a
/// foreign file — silently truncating it would destroy data); everything
/// after a valid header degrades to a shorter record stream.
[[nodiscard]] WalReadResult read_wal(const std::string& path);

/// Truncates the log to `valid_end` (drops a torn tail) so a writer can
/// append cleanly. No-op when the file is already that size.
void truncate_wal(const std::string& path, std::uint64_t valid_end);

/// Path of shard `shard`'s log file inside `dir` ("wal-000.log", ...).
[[nodiscard]] std::string wal_path(const std::string& dir, std::uint32_t shard);

/// mkdir -p: creates every missing component of `dir`.
void ensure_dir(const std::string& dir);

}  // namespace reasched::durability
