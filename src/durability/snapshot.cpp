#include "durability/snapshot.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/reservation_scheduler.hpp"
#include "durability/crashpoint.hpp"
#include "durability/scheduler_persist.hpp"
#include "util/assert.hpp"
#include "util/crc32c.hpp"

namespace reasched::durability {

namespace {

constexpr std::size_t kTrailerBytes = 12;  // payload_len u64 + crc32c u32

[[noreturn]] void throw_errno(const char* what, const std::string& path) {
  RS_REQUIRE(false, std::string(what) + " " + path + ": " + std::strerror(errno));
  __builtin_unreachable();
}

void write_all(int fd, const void* data, std::size_t len, const std::string& path) {
  const auto* p = static_cast<const std::byte*>(data);
  while (len > 0) {
    const ssize_t wrote = ::write(fd, p, len);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("snapshot: write failed", path);
    }
    p += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
}

/// Parses "snap-<csn>.snap"; returns false for anything else.
bool parse_snapshot_name(const char* name, std::uint64_t& csn) {
  std::uint64_t value = 0;
  int consumed = 0;
  if (std::sscanf(name, "snap-%" SCNu64 ".snap%n", &value, &consumed) != 1) {
    return false;
  }
  if (name[consumed] != '\0') return false;
  csn = value;
  return true;
}

}  // namespace

std::string snapshot_path(const std::string& dir, std::uint64_t csn) {
  char name[48];
  std::snprintf(name, sizeof(name), "snap-%" PRIu64 ".snap", csn);
  return dir + "/" + name;
}

std::vector<std::uint64_t> list_snapshots(const std::string& dir) {
  std::vector<std::uint64_t> csns;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return csns;
    throw_errno("snapshot: cannot list", dir);
  }
  while (const dirent* entry = ::readdir(d)) {
    std::uint64_t csn = 0;
    if (parse_snapshot_name(entry->d_name, csn)) csns.push_back(csn);
  }
  ::closedir(d);
  std::sort(csns.begin(), csns.end(), std::greater<>{});
  return csns;
}

void write_snapshot(const std::string& dir, std::uint64_t csn,
                    const ReservationScheduler& s, const DurabilityPolicy& policy) {
  ByteSink payload;
  SchedulerPersist::save(s, payload);
  ByteSink trailer;
  trailer.u64(payload.size());
  trailer.u32(crc32c(payload.bytes().data(), payload.size()));

  const std::string final_path = snapshot_path(dir, csn);
  const std::string tmp_path = final_path + ".tmp";
  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("snapshot: cannot create", tmp_path);
  if (CrashPoint::due("snapshot.mid")) {
    // Fault injection: die with a half-written tmp file on disk. Recovery
    // must never even look at it (it has no committed name).
    write_all(fd, payload.bytes().data(), payload.size() / 2, tmp_path);
    ::fsync(fd);
    CrashPoint::die();
  }
  write_all(fd, payload.bytes().data(), payload.size(), tmp_path);
  write_all(fd, trailer.bytes().data(), trailer.size(), tmp_path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("snapshot: cannot sync", tmp_path);
  }
  ::close(fd);
  if (CrashPoint::due("snapshot.rename")) {
    // Fault injection: tmp fully durable, rename never issued — recovery
    // must fall back to the previous snapshot (or the WAL from scratch).
    CrashPoint::die();
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw_errno("snapshot: cannot commit", final_path);
  }
  // Make the rename itself durable before pruning what it supersedes.
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }

  const std::size_t keep = policy.keep_snapshots > 0 ? policy.keep_snapshots : 1;
  const std::vector<std::uint64_t> all = list_snapshots(dir);
  for (std::size_t i = keep; i < all.size(); ++i) {
    ::unlink(snapshot_path(dir, all[i]).c_str());
  }
}

bool load_snapshot(const std::string& path, ReservationScheduler& s) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  std::vector<std::byte> file;
  {
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return false;
    }
    file.resize(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < file.size()) {
      const ssize_t got = ::read(fd, file.data() + off, file.size() - off);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      off += static_cast<std::size_t>(got);
    }
    ::close(fd);
    if (off != file.size()) return false;
  }
  if (file.size() < kTrailerBytes) return false;
  ByteSource trailer(file.data() + file.size() - kTrailerBytes, kTrailerBytes);
  const std::uint64_t payload_len = trailer.u64();
  const std::uint32_t expect_crc = trailer.u32();
  if (payload_len != file.size() - kTrailerBytes) return false;
  if (crc32c(file.data(), payload_len) != expect_crc) return false;
  try {
    ByteSource source(file.data(), payload_len);
    SchedulerPersist::load(s, source);
  } catch (const CorruptInput&) {
    return false;
  }
  return true;
}

}  // namespace reasched::durability
