#include "durability/durable_scheduler.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "core/reservation_scheduler.hpp"
#include "durability/crashpoint.hpp"
#include "durability/snapshot.hpp"
#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace reasched::durability {

DurableScheduler::DurableScheduler(DurabilityPolicy policy, SchedulerOptions options)
    : policy_(std::move(policy)) {
  ensure_dir(policy_.dir);
  Recovery::Recovered recovered = Recovery::load(policy_, options);
  report_ = recovered.report;
  reservation_ = recovered.scheduler.get();
  inner_ = std::move(recovered.scheduler);
  csn_ = report_.last_csn;
  seed_live_set();
  wal_.open(wal_path(policy_.dir, 0), policy_);
}

DurableScheduler::DurableScheduler(DurabilityPolicy policy, const Factory& factory)
    : policy_(std::move(policy)) {
  ensure_dir(policy_.dir);
  // Snapshot-capable factories get the snapshot fast path; a failed load
  // leaves the target half-written, so each attempt rebuilds from scratch.
  for (const std::uint64_t csn : list_snapshots(policy_.dir)) {
    std::unique_ptr<IReallocScheduler> candidate = factory();
    auto* reservation = dynamic_cast<ReservationScheduler*>(candidate.get());
    if (reservation == nullptr) break;  // WAL-only tier; snapshots ignored
    if (load_snapshot(snapshot_path(policy_.dir, csn), *reservation)) {
      inner_ = std::move(candidate);
      reservation_ = reservation;
      report_.snapshot_csn = csn;
      report_.last_csn = csn;
      break;
    }
    ++report_.snapshots_skipped;
  }
  if (!inner_) {
    inner_ = factory();
    reservation_ = dynamic_cast<ReservationScheduler*>(inner_.get());
  }
  const std::string log = wal_path(policy_.dir, 0);
  WalReadResult wal = read_wal(log);
  if (wal.torn_tail) {
    report_.torn_tail = true;
    truncate_wal(log, wal.valid_end);
  }
  replay_records(*inner_, wal.records, report_.snapshot_csn, report_);
  csn_ = report_.last_csn;
  seed_live_set();
  wal_.open(log, policy_);
}

void DurableScheduler::seed_live_set() {
  // Reservation mode asks the inner scheduler directly (contains() is an
  // O(1) table lookup), so there is no mirror to seed — only the generic
  // tier keeps its own live set.
  if (reservation_ != nullptr) return;
  // Materialize the Schedule: snapshot() returns by value, and iterating
  // `snapshot().assignments()` directly would walk a map inside an
  // already-destroyed temporary (the C++20 range-for dangling-range trap).
  const Schedule schedule = inner_->snapshot();
  for (const auto& [job, placement] : schedule.assignments()) {
    static_cast<void>(placement);
    live_.insert(job);
  }
}

DurableScheduler::~DurableScheduler() = default;  // WalWriter flushes on close

std::string DurableScheduler::name() const { return "durable(" + inner_->name() + ")"; }

RequestStats DurableScheduler::insert(JobId id, Window window) {
  RS_REQUIRE(window.valid(), "DurableScheduler::insert: empty window");
  // Precondition gate in front of the log. Reservation mode relies on the
  // inner scheduler's own fresh-id check instead of a lookup here: the
  // record is only buffered until commit_record(), so a ContractViolation
  // from the inner insert rolls it back — nothing precondition-violating
  // ever reaches disk, with zero extra hash probes on the hot path.
  if (reservation_ == nullptr) {
    RS_REQUIRE(!live_.contains(id), "DurableScheduler::insert: job already active");
  }
  ++csn_;
  RS_TELEM_SET_CSN(csn_);
  const std::size_t mark = wal_.mark();
  wal_.append_insert(csn_, id, window);
  RequestStats stats;
  try {
    stats = inner_->insert(id, window);
  } catch (const InfeasibleError&) {
    // Rejected inserts stay logged and consume their CSN: replay re-runs
    // them and deterministically re-rejects, so recovered state is
    // unaffected.
    wal_.commit_record();
    throw;
  } catch (...) {
    wal_.rollback_to(mark);
    --csn_;
    throw;
  }
  wal_.commit_record();
  if (reservation_ == nullptr) live_.insert(id);
  maybe_snapshot(stats);
  return stats;
}

RequestStats DurableScheduler::erase(JobId id) {
  if (reservation_ == nullptr) {
    RS_REQUIRE(live_.contains(id), "DurableScheduler::erase: job not active");
  }
  ++csn_;
  RS_TELEM_SET_CSN(csn_);
  const std::size_t mark = wal_.mark();
  wal_.append_erase(csn_, id);
  RequestStats stats;
  try {
    stats = inner_->erase(id);
  } catch (...) {
    // Erase of a non-live job: the inner scheduler's precondition check
    // throws before mutating anything, and the buffered record is rolled
    // back — it never reaches the log.
    wal_.rollback_to(mark);
    --csn_;
    throw;
  }
  wal_.commit_record();
  if (reservation_ == nullptr) live_.erase(id);
  maybe_snapshot(stats);
  return stats;
}

BatchResult DurableScheduler::apply(std::span<const Request> batch) {
  BatchResult result;
  result.stats.resize(batch.size());
  const std::uint64_t start_csn = csn_;
  FlatHashSet<JobId> rejected_ids;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i];
    if (request.kind == RequestKind::kInsert) {
      try {
        result.stats[i] = insert(request.job, request.window);
      } catch (const InfeasibleError&) {
        result.rejected.push_back(static_cast<std::uint32_t>(i));
        rejected_ids.insert(request.job);
        continue;
      }
      rejected_ids.erase(request.job);
    } else {
      if (rejected_ids.contains(request.job)) {
        // Moot delete of a rejected insert: never served, never logged —
        // it consumes no CSN (mirrors the sequential batch semantics).
        result.rejected.push_back(static_cast<std::uint32_t>(i));
        rejected_ids.erase(request.job);
        continue;
      }
      result.stats[i] = erase(request.job);
    }
    result.total += result.stats[i];
  }
  if (csn_ > start_csn) {
    result.first_csn = start_csn + 1;
    result.last_csn = csn_;
  }
  wal_.flush();  // batch boundary = frame boundary (prompt durability)
  return result;
}

void DurableScheduler::maybe_snapshot(const RequestStats& stats) {
  if (reservation_ == nullptr) return;
  if (policy_.snapshot_every > 0 && csn_ % policy_.snapshot_every == 0) {
    snapshot_pending_ = true;  // deferred while a migration is in flight
  }
  const bool quiescent = !reservation_->rebuild_in_flight();
  const bool flip = policy_.snapshot_on_flip && stats.rebuilt && quiescent;
  if (!flip && !(snapshot_pending_ && quiescent)) return;
  write_snapshot_now();
  snapshot_pending_ = false;
}

void DurableScheduler::write_snapshot_now() {
  RS_TELEM_DURATION(kSnapshotHist, "wal.snapshot");
  RS_TELEM_SPAN(snapshot_span, kSnapshotHist, "wal.snapshot");
  // The log must be durable through csn_ before a snapshot claims that
  // CSN — otherwise a crash right after the snapshot could recover state
  // the (shorter) log can no longer extend consistently.
  wal_.sync();
  if (CrashPoint::due("flip")) {
    // Fault injection: die at the generation flip, after the request and
    // its log record but before the flip snapshot — recovery must come up
    // from the previous snapshot plus the full surviving suffix.
    CrashPoint::die();
  }
  write_snapshot(policy_.dir, csn_, *reservation_, policy_);
  ++snapshots_written_;
}

bool DurableScheduler::checkpoint() {
  wal_.sync();
  if (reservation_ == nullptr || reservation_->rebuild_in_flight()) return false;
  write_snapshot_now();
  snapshot_pending_ = false;
  return true;
}

}  // namespace reasched::durability
