// DurableScheduler: the durability tier's front door (DESIGN.md §9).
//
// Wraps any IReallocScheduler with write-ahead logging and — when the
// inner scheduler is a ReservationScheduler — generation snapshots:
//
//   * every insert/erase is assigned the next CSN and appended to the WAL
//     *before* the inner scheduler sees it (write-ahead); frames are cut
//     at DurabilityPolicy::frame_bytes and after every apply() batch, and
//     fsynced per policy.sync_every;
//   * a snapshot is written when a partitioned n*-rebuild completes its
//     generation flip (the scheduler is quiescent there, and the flip
//     boundary already absorbs rebuild-scale work — O(1) extra pauses
//     elsewhere) and/or every policy.snapshot_every records, deferred to
//     the next quiescent request while a migration is in flight;
//   * construction *is* recovery: newest valid snapshot + WAL-suffix
//     replay (durability/recovery.hpp), after which the writer appends
//     where the surviving log left off.
//
// Rejected inserts (InfeasibleError) are logged — write-ahead order —
// and consume a CSN; replay re-runs them and deterministically re-rejects,
// so recovered state never contains them. Precondition-violating requests
// (duplicate id on insert, non-live id on erase) never reach the log: the
// record is buffered but not committed until the inner scheduler accepts
// the request, and the inner scheduler's own precondition check throwing
// rolls it back out of the frame buffer (generic mode additionally gates
// on a mirrored live set, since an arbitrary inner scheduler's exception
// guarantees are unknown).
//
// Threading: single-caller discipline, like every scheduler here. For the
// sharded service's per-shard logs see ShardedScheduler::Options::wal.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/scheduler_options.hpp"
#include "durability/recovery.hpp"
#include "durability/wal.hpp"
#include "util/flat_hash.hpp"

namespace reasched {

class ReservationScheduler;

namespace durability {

class DurableScheduler final : public IReallocScheduler {
 public:
  using Factory = std::function<std::unique_ptr<IReallocScheduler>()>;

  /// Single-machine mode: recovers (or cold-starts) a ReservationScheduler
  /// from `policy.dir` — snapshots + WAL suffix — and resumes logging.
  /// The directory is created if missing.
  explicit DurableScheduler(DurabilityPolicy policy, SchedulerOptions options = {});

  /// Generic mode: the factory builds the inner scheduler (fresh), and
  /// recovery replays the whole surviving WAL through it. If the factory
  /// happens to produce a ReservationScheduler, snapshots work exactly as
  /// in single-machine mode (detected at runtime); for anything else —
  /// e.g. a MultiMachineScheduler pipeline via ReallocatingScheduler —
  /// the tier is WAL-only and recovery cost grows with the log.
  DurableScheduler(DurabilityPolicy policy, const Factory& factory);

  ~DurableScheduler() override;

  RequestStats insert(JobId id, Window window) override;
  RequestStats erase(JobId id) override;
  BatchResult apply(std::span<const Request> batch) override;

  [[nodiscard]] Schedule snapshot() const override { return inner_->snapshot(); }
  [[nodiscard]] std::size_t active_jobs() const override {
    return inner_->active_jobs();
  }
  [[nodiscard]] unsigned machines() const override { return inner_->machines(); }
  [[nodiscard]] std::string name() const override;

  /// What construction-time recovery found (cold start: all zeros).
  [[nodiscard]] const RecoveryReport& recovery_report() const noexcept {
    return report_;
  }
  /// CSN of the last logged request (0 before any).
  [[nodiscard]] std::uint64_t csn() const noexcept { return csn_; }
  [[nodiscard]] const WalWriter::Stats& wal_stats() const noexcept {
    return wal_.stats();
  }
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept {
    return snapshots_written_;
  }
  [[nodiscard]] const DurabilityPolicy& policy() const noexcept { return policy_; }

  [[nodiscard]] IReallocScheduler& inner() noexcept { return *inner_; }
  /// The inner ReservationScheduler, or nullptr in WAL-only generic mode.
  [[nodiscard]] ReservationScheduler* reservation() noexcept { return reservation_; }

  /// Flushes and fsyncs the log (everything logged so far is durable).
  void sync() { wal_.sync(); }
  /// sync() + an immediate snapshot when snapshot-capable and quiescent.
  /// Returns true when a snapshot was written.
  bool checkpoint();

 private:
  void seed_live_set();
  void maybe_snapshot(const RequestStats& stats);
  void write_snapshot_now();

  DurabilityPolicy policy_;
  RecoveryReport report_;
  std::unique_ptr<IReallocScheduler> inner_;
  ReservationScheduler* reservation_ = nullptr;
  WalWriter wal_;
  /// Live job ids — precondition gate in front of the log (see header
  /// comment). Generic mode only: in reservation mode the inner
  /// scheduler's own O(1) contains() answers, with no mirror to maintain
  /// on the hot path. Seeded from the recovered schedule.
  FlatHashSet<JobId> live_;
  std::uint64_t csn_ = 0;
  std::uint64_t snapshots_written_ = 0;
  bool snapshot_pending_ = false;
};

}  // namespace durability
}  // namespace reasched
