// Umbrella header for the reasched library — the public API of the
// reference implementation of "Reallocation Problems in Scheduling"
// (Bender, Farach-Colton, Fekete, Fineman, Gilbert; SPAA 2013).
//
// Quickstart:
//   reasched::ReallocatingScheduler scheduler(/*machines=*/4);
//   scheduler.insert(reasched::JobId{1}, reasched::Window{/*a=*/0, /*d=*/64});
//   auto stats = scheduler.erase(reasched::JobId{1});
//   // stats.reallocations, stats.migrations — per-request costs (§2).
#pragma once

#include "base/types.hpp"
#include "base/window.hpp"

#include "core/alignment.hpp"
#include "core/balance_ledger.hpp"
#include "core/incremental_rebuild.hpp"
#include "core/levels.hpp"
#include "core/multi_machine.hpp"
#include "core/naive_scheduler.hpp"
#include "core/reallocating_scheduler.hpp"
#include "core/reservation_scheduler.hpp"
#include "core/scheduler_options.hpp"
#include "core/window_key.hpp"

#include "baseline/greedy_repair_scheduler.hpp"
#include "baseline/opt_rebuild_scheduler.hpp"
#include "baseline/rigid_block_sim.hpp"

#include "durability/crashpoint.hpp"
#include "durability/durable_scheduler.hpp"
#include "durability/recovery.hpp"
#include "durability/snapshot.hpp"
#include "durability/wal.hpp"

#include "ingest/admission.hpp"
#include "ingest/ingest_service.hpp"
#include "ingest/mpsc_ring.hpp"

#include "feasibility/edf.hpp"
#include "feasibility/hall.hpp"
#include "feasibility/matching.hpp"
#include "feasibility/underallocation.hpp"

#include "schedule/occupancy_index.hpp"
#include "schedule/render.hpp"
#include "schedule/schedule.hpp"
#include "schedule/scheduler_interface.hpp"
#include "schedule/slot_runs.hpp"
#include "schedule/validator.hpp"

#include "service/sharded_scheduler.hpp"
#include "service/striped_ledger.hpp"

#include "workload/adversary.hpp"
#include "workload/churn.hpp"
#include "workload/doctor_office.hpp"
#include "workload/funnel.hpp"
#include "workload/trace_io.hpp"

#include "metrics/collector.hpp"
#include "sim/driver.hpp"
#include "sim/open_loop.hpp"
#include "sim/sweep.hpp"

#include "telemetry/histogram.hpp"
#include "telemetry/options.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scraper.hpp"
#include "telemetry/trace_ring.hpp"

#include "util/flat_hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
