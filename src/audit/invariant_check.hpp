// Named, individually-invokable invariant checks.
//
// Every auditable component in the repository registers its checks into an
// InvariantTable (a `register_invariants` method binding lambdas to the
// instance), so the whole system's invariants are enumerable from one
// place and docs/ARCHITECTURE.md's invariant glossary maps 1:1 to code:
// the glossary cites check names ("rs.I3.interval-assignment-bound"), and
// `InvariantTable::run("rs.I3....")` executes exactly that check. The
// component `audit()` entry points are thin wrappers over their registered
// checks — the table IS the audit, not a parallel copy of it.
//
// A check's `run` callback verifies the full component state for that one
// invariant and throws reasched::InternalError on violation (the same
// contract the monolithic audits always had). Incremental, dirty-region
// verification is a separate engine concern (audit_engine.hpp); the table
// is the *full-sweep* decomposition the engine falls back to and the
// differential mode compares against.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace reasched::audit {

struct InvariantCheck {
  /// Stable identifier cited by docs and tests, e.g.
  /// "rs.I1.jobs-and-occupancy" (component prefix, glossary number, slug).
  std::string name;
  /// Owning component, e.g. "ReservationScheduler".
  std::string component;
  /// One-line human description of the condition enforced.
  std::string summary;
  /// Full-state verification; throws reasched::InternalError on violation.
  std::function<void()> run;
};

class InvariantTable {
 public:
  void add(InvariantCheck check) {
    RS_REQUIRE(!check.name.empty() && check.run != nullptr,
               "InvariantTable::add: check needs a name and a callback");
    RS_REQUIRE(find(check.name) == nullptr,
               "InvariantTable::add: duplicate check name");
    checks_.push_back(std::move(check));
  }

  void add(std::string name, std::string component, std::string summary,
           std::function<void()> run) {
    add(InvariantCheck{std::move(name), std::move(component), std::move(summary),
                       std::move(run)});
  }

  [[nodiscard]] const std::vector<InvariantCheck>& checks() const noexcept {
    return checks_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return checks_.size(); }

  [[nodiscard]] const InvariantCheck* find(std::string_view name) const noexcept {
    for (const InvariantCheck& check : checks_) {
      if (check.name == name) return &check;
    }
    return nullptr;
  }

  /// Runs one check by name; unknown names are a caller contract violation.
  void run(std::string_view name) const {
    const InvariantCheck* check = find(name);
    RS_REQUIRE(check != nullptr, "InvariantTable::run: unknown check name");
    check->run();
  }

  /// Runs every registered check in registration order; throws on the
  /// first violation (InternalError, from the failing check itself).
  void run_all() const {
    for (const InvariantCheck& check : checks_) check.run();
  }

 private:
  std::vector<InvariantCheck> checks_;
};

}  // namespace reasched::audit
