// Dirty-region bookkeeping for the incremental audit engine.
//
// Two containers, both built on util/flat_hash.hpp and both supporting
// *budgeted* draining (verify at most k regions now, keep the rest dirty —
// the AuditPolicy::budget slice):
//
//   * PagedDirtySet — a paged bitmap over a sparse signed integer key space
//     (interval indices), the same 64-keys-per-word page scheme SlotRuns
//     uses for slot occupancy. Marking is one hash probe and an OR; memory
//     is one u64 per 64 adjacent dirty keys, which matches how interval
//     dirtiness clusters (neighboring intervals of a hot window).
//
//   * DirtyQueue<K> — an insertion-ordered dedup queue for hashable keys
//     (WindowKey, JobId): a FIFO vector paired with a membership set, so
//     budgeted drains re-verify the *oldest* dirt first and nothing is ever
//     enqueued twice. unmark() supports retraction (a job erased after
//     being marked has nothing left to verify).
//
// Neither container is thread-safe; per-stripe/per-shard instances give the
// service layer lock-free concurrency by construction (one dirty set per
// stripe, guarded by the stripe's existing mutex).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hpp"
#include "util/bits.hpp"
#include "util/flat_hash.hpp"

namespace reasched::audit {

class PagedDirtySet {
 public:
  /// Marks `key` dirty. Returns true iff it was newly marked.
  bool mark(Time key) {
    const Time page = page_of(key);
    const auto [bits, inserted] = pages_.try_emplace(page);
    const u64 bit = bit_of(key);
    if (*bits & bit) return false;
    // Newly populated page (fresh entry, or an entry fully drained earlier
    // and not yet erased): (re-)enqueue it for the drain cursor.
    if (*bits == 0) queue_.push_back(page);
    *bits |= bit;
    ++count_;
    return true;
  }

  [[nodiscard]] bool contains(Time key) const {
    const u64* bits = pages_.find(page_of(key));
    return bits != nullptr && (*bits & bit_of(key));
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  void clear() {
    pages_.clear();
    queue_.clear();
    head_ = 0;
    count_ = 0;
  }

  /// Removes up to `budget` dirty keys (0 = all), calling f(key) for each
  /// after it has been unmarked. f must not mark keys on this set's owner
  /// thread-unsafely; re-marking the drained key from within f is allowed
  /// and simply re-dirties it. If f throws, the key it was inspecting and
  /// every not-yet-visited key of the batch are re-marked before the
  /// exception propagates — a failed check must never consume the dirt
  /// that triggered it ("detection delayed, never lost"). Returns the
  /// number of keys drained.
  template <class F>
  std::size_t drain(std::size_t budget, F&& f) {
    std::size_t done = 0;
    std::vector<Time> batch;
    while (head_ < queue_.size() && (budget == 0 || done < budget)) {
      const Time page = queue_[head_];
      u64* bits = pages_.find(page);
      if (bits == nullptr || *bits == 0) {
        ++head_;  // stale queue entry (drained earlier or duplicate)
        continue;
      }
      // Detach the keys we will visit *before* calling f: f may legally
      // mark other keys, which can rehash pages_ and invalidate `bits`.
      u64 take = *bits;
      if (budget != 0) {
        const std::size_t room = budget - done;
        while (static_cast<std::size_t>(std::popcount(take)) > room) {
          // Drop the highest bit until the batch fits the budget slice.
          take &= ~(u64{1} << (63 - std::countl_zero(take)));
        }
      }
      *bits &= ~take;
      const bool page_done = (*bits == 0);
      count_ -= static_cast<std::size_t>(std::popcount(take));
      batch.clear();
      while (take != 0) {
        const unsigned off = static_cast<unsigned>(std::countr_zero(take));
        take &= take - 1;
        batch.push_back(page * 64 + static_cast<Time>(off));
      }
      if (page_done) ++head_;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        try {
          f(batch[i]);
        } catch (...) {
          for (std::size_t j = i; j < batch.size(); ++j) mark(batch[j]);
          throw;
        }
        ++done;
      }
    }
    if (head_ >= queue_.size()) {
      queue_.clear();
      head_ = 0;
    }
    return done;
  }

 private:
  [[nodiscard]] static Time page_of(Time key) noexcept { return key >> 6; }
  [[nodiscard]] static u64 bit_of(Time key) noexcept {
    return u64{1} << static_cast<unsigned>(key & 63);
  }

  FlatHashMap<Time, u64> pages_;  // page index -> dirty bits
  std::vector<Time> queue_;       // pages in first-dirtied order
  std::size_t head_ = 0;          // drain cursor into queue_
  std::size_t count_ = 0;
};

template <class K, class Hash = FlatHash<K>>
class DirtyQueue {
 public:
  /// Marks `key` dirty. Returns true iff it was newly marked.
  bool mark(const K& key) {
    if (!members_.insert(key)) return false;
    queue_.push_back(key);
    return true;
  }

  /// Retracts a mark (e.g. the marked job was erased). The queue entry is
  /// skipped lazily at drain time.
  void unmark(const K& key) { members_.erase(key); }

  [[nodiscard]] bool contains(const K& key) const { return members_.contains(key); }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  void clear() {
    queue_.clear();
    head_ = 0;
    members_.clear();
  }

  /// Removes up to `budget` dirty keys in FIFO order (0 = all), calling
  /// f(key) for each after it has been unmarked. If f throws, the key is
  /// re-marked before the exception propagates — a failed check must never
  /// consume the dirt that triggered it. Returns the drain count.
  template <class F>
  std::size_t drain(std::size_t budget, F&& f) {
    std::size_t done = 0;
    while (head_ < queue_.size() && (budget == 0 || done < budget)) {
      const K key = queue_[head_++];
      if (members_.erase(key) == 0) continue;  // retracted or duplicate
      try {
        f(key);
      } catch (...) {
        --head_;  // the key is still at queue_[head_]; restore membership
        members_.insert(key);
        throw;
      }
      ++done;
    }
    if (head_ >= queue_.size()) {
      queue_.clear();
      head_ = 0;
    }
    return done;
  }

 private:
  std::vector<K> queue_;
  std::size_t head_ = 0;
  FlatHashSet<K, Hash> members_;
};

}  // namespace reasched::audit
