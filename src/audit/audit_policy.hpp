// Runtime policy for the incremental audit engine (src/audit/).
//
// The audit machinery has two runtime gates (see util/assert.hpp for the
// full compile-time/runtime gating matrix): the legacy boolean
// SchedulerOptions::audit (full O(state) sweep after every request — the
// seed behavior, kept for the existing test suites) and this policy, which
// drives the dirty-set engine. The policy mirrors the partitioned-rebuild
// pacing knobs: how *often* audit work happens (cadence) and how *much* of
// the backlog one request may pay for (budget).
#pragma once

#include <cstddef>
#include <cstdint>

namespace reasched::audit {

enum class Mode : std::uint8_t {
  /// No engine, no events, no audit work at all (verifiably zero — the
  /// bench smoke asserts it via ReservationScheduler::audit_work()).
  kOff,
  /// Full O(state) sweep at the cadence below. Equivalent to the legacy
  /// SchedulerOptions::audit when cadence == 1, but countable/paceable.
  kFull,
  /// Dirty-set driven: mutation events mark intervals / windows / jobs
  /// dirty, and an audit call re-verifies only the dirty regions plus the
  /// O(1) global counters. Escalates to one full sweep after wholesale
  /// state changes (generation swap seeding, emergency rebuild, engine
  /// enable) and reseeds its shadow counters from the verified state.
  kIncremental,
};

struct AuditPolicy {
  Mode mode = Mode::kOff;

  /// Audit after every cadence-th request. 0 = never automatically — the
  /// engine still ingests events and an external driver (the parent
  /// scheduler of a migration shadow, a test, the sim driver's audit_hook)
  /// invokes the audit explicitly.
  std::uint64_t cadence = 1;

  /// Budgeted slice: at most this many dirty regions (jobs + windows +
  /// intervals) verified per audit call; the remainder stays dirty and is
  /// drained by later calls, exactly like the partitioned rebuild spreads
  /// reinsertions. 0 = unbounded (drain everything every audit).
  std::size_t budget = 0;

  /// Pace for draining migration-sized dirt bursts: a rebuild shadow
  /// accumulates a whole cadence window's reinsertion dirt between parent
  /// audits, and the generation swap hands the surviving engine the
  /// remaining backlog wholesale (AuditEngine::swap_state_with). With
  /// budget == 0 the next audit verified all of it in one call — the E15
  /// incremental max-latency spike. Instead the owner arms pacing for
  /// mid-migration shadow audits and for the post-swap carry-over: each
  /// audit verifies at most this many regions until the backlog fits one
  /// budget again, exactly like the rebuild itself spreads reinsertions
  /// ("detection delayed, never lost"). 0 disables pacing (drain-all, the
  /// pre-E16 behavior); an explicit `budget` below this value wins.
  std::size_t post_swap_budget = 256;

  /// Differential mode (tests, bench_e15): after an incremental audit
  /// accepts, run the full sweep too and fail loudly if it disagrees — the
  /// incremental auditor must accept/reject exactly when the sweep does.
  bool differential = false;

  [[nodiscard]] bool enabled() const noexcept { return mode != Mode::kOff; }

  /// Cadence gate shared by every scheduler front end: true when the
  /// owner's request counter says an audit is due under this policy.
  [[nodiscard]] bool due(std::uint64_t request_index) const noexcept {
    return enabled() && cadence != 0 && request_index % cadence == 0;
  }
};

}  // namespace reasched::audit
