// Incremental audit engine: dirty-interval invariant checking.
//
// The seed's only correctness net was a stop-the-world O(state) sweep
// (ReservationScheduler::audit) — fine for unit tests, ruinous for
// audit-on serving (bench E13/E15). The paper's invariants, however, are
// *locally checkable*: Invariant 5 and Observation 7 make every interval's
// reservation/fulfillment state a pure function of inputs that change in
// O(1) known places per request, and the ledger invariants decompose per
// window / per job. So correctness checking can be incremental exactly the
// way the PR 1 fulfillment cache made recomputation incremental:
//
//   * The owning scheduler emits *mutation events* at its choke points
//     (slot assign/free, lower-occupancy flips, window job-count changes,
//     window activation, job placement churn, generation swap). Each event
//     is one branch + one hash insert when the engine is attached, and
//     exactly zero work when it is not (null pointer check).
//   * The engine maintains per-level dirty-interval sets (paged bitmaps,
//     dirty_set.hpp), per-level dirty-window queues, a dirty-job queue,
//     and a handful of *shadow counters* (parked jobs, per-window job
//     counts, per-class window census) that are redundantly derived from
//     the event stream — an independent witness the O(1) global checks
//     compare against.
//   * An audit call re-verifies only the dirty regions (optionally capped
//     by AuditPolicy::budget — the budgeted-slice mode that mirrors the
//     partitioned-rebuild pacing) plus the O(1) global counters.
//   * Wholesale state changes (emergency EDF rebuild, stop-the-world
//     rebuild, engine attach) escalate: the next audit is one full sweep,
//     after which the owner reseeds the shadow counters from the freshly
//     verified ledgers (begin_reseed/seed_*). A partitioned-rebuild
//     generation swap instead *swaps the tracking state* with the shadow
//     generation's engine (swap_state_with) — the dirty sets follow the
//     data, no escalation needed.
//
// The engine is bookkeeping only: it never reads scheduler state. The
// owner drives verification through drain(), passing scoped check
// callbacks (ReservationScheduler::incremental_audit). This keeps the
// engine reusable across components — the striped balancer ledger uses the
// same DirtyQueue primitive per stripe (core/balance_ledger.hpp).
//
// Thread-safety: none; one engine per scheduler instance, touched only by
// that instance's owning thread (shard-local by construction, like the
// interval arenas — DESIGN.md §6/§7).
#pragma once

#include <cstdint>
#include <vector>

#include "audit/audit_policy.hpp"
#include "audit/dirty_set.hpp"
#include "base/types.hpp"
#include "core/window_key.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace reasched::audit {

/// Observable audit work, for the benches' zero-overhead smoke and the E15
/// speedup accounting.
struct EngineStats {
  std::uint64_t events = 0;              ///< mutation events ingested
  std::uint64_t incremental_audits = 0;  ///< incremental audit calls served
  std::uint64_t escalations = 0;         ///< mark_all() calls (full-sweep next)
  std::uint64_t jobs_checked = 0;
  std::uint64_t windows_checked = 0;
  std::uint64_t intervals_checked = 0;

  [[nodiscard]] std::uint64_t regions_checked() const noexcept {
    return jobs_checked + windows_checked + intervals_checked;
  }
};

class AuditEngine {
 public:
  explicit AuditEngine(AuditPolicy policy) : policy_(policy) {}

  [[nodiscard]] const AuditPolicy& policy() const noexcept { return policy_; }
  void set_policy(const AuditPolicy& policy) noexcept { policy_ = policy; }

  /// Declares the owner's level geometry (index 0 unused, like the
  /// scheduler's own level table). Must be called before any event.
  void configure_level(unsigned level, unsigned interval_log, unsigned class_count) {
    if (levels_.size() <= level) levels_.resize(level + 1);
    levels_[level].interval_log = interval_log;
    levels_[level].census.assign(class_count, 0);
  }

  // ---- mutation events (one call per choke-point mutation) -----------------

  void on_interval(unsigned level, Time base) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    levels_[level].dirty_intervals.mark(base >> levels_[level].interval_log);
  }

  /// Ledger slot-set change on an active window (assign/unassign/free flip).
  void on_window(unsigned level, const WindowKey& w) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    levels_[level].dirty_windows.mark(w);
  }

  /// Window job-count change: updates the shadow count AND dirties the
  /// window. `delta` is ±1 (the request's own job entering/leaving W).
  void on_window_jobs(unsigned level, const WindowKey& w, std::int64_t delta) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    LevelTracking& tracking = levels_[level];
    tracking.dirty_windows.mark(w);
    const auto [count, inserted] = tracking.window_jobs.try_emplace(w);
    *count += delta;
    RS_CHECK(*count >= 0, "AuditEngine: shadow window job count underflow");
    if (*count == 0) tracking.window_jobs.erase(w);
  }

  void on_window_activated(unsigned level, unsigned cls) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    ++levels_[level].census[cls];
  }
  void on_window_deactivated(unsigned level, unsigned cls) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    RS_CHECK(levels_[level].census[cls] > 0,
             "AuditEngine: shadow census underflow");
    --levels_[level].census[cls];
  }

  void on_job(JobId id) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    dirty_jobs_.mark(id);
  }
  /// The job left the active set: nothing remains to verify on it (its
  /// side effects were dirtied through interval/window events).
  void on_job_erased(JobId id) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    dirty_jobs_.unmark(id);
  }

  void on_parked(std::int64_t delta) {
    if (needs_full_) return;  // tracking is moot until the sweep reseeds
    ++stats_.events;
    parked_ += delta;
    RS_CHECK(parked_ >= 0, "AuditEngine: shadow parked count underflow");
  }

  /// Wholesale state change: shadows and dirty sets are unsalvageable;
  /// escalate the next audit to a full sweep (the owner reseeds after it).
  void mark_all() {
    ++stats_.escalations;
    needs_full_ = true;
  }
  [[nodiscard]] bool needs_full() const noexcept { return needs_full_; }

  // ---- shadow state for the O(1) global checks -----------------------------

  [[nodiscard]] std::int64_t shadow_parked() const noexcept { return parked_; }
  [[nodiscard]] std::uint32_t shadow_census(unsigned level, unsigned cls) const {
    return levels_[level].census[cls];
  }
  [[nodiscard]] std::int64_t shadow_window_jobs(unsigned level,
                                                const WindowKey& w) const {
    const std::int64_t* count = levels_[level].window_jobs.find(w);
    return count == nullptr ? 0 : *count;
  }

  // ---- reseed after a verified full sweep ----------------------------------

  /// Clears every shadow and dirty set; the owner follows with seed_* calls
  /// describing the freshly verified state, then the engine is incremental
  /// again.
  void begin_reseed() {
    for (LevelTracking& tracking : levels_) {
      tracking.dirty_intervals.clear();
      tracking.dirty_windows.clear();
      tracking.window_jobs.clear();
      for (auto& count : tracking.census) count = 0;
    }
    dirty_jobs_.clear();
    parked_ = 0;
    needs_full_ = false;
    paced_ = false;
  }
  void seed_window(unsigned level, const WindowKey& w, std::int64_t jobs) {
    levels_[level].window_jobs[w] = jobs;
  }
  void seed_census(unsigned level, unsigned cls, std::uint32_t count) {
    levels_[level].census[cls] = count;
  }
  void seed_parked(std::int64_t parked) { parked_ = parked; }

  // ---- verification drive --------------------------------------------------

  [[nodiscard]] std::size_t dirty_regions() const noexcept {
    std::size_t total = dirty_jobs_.size();
    for (const LevelTracking& tracking : levels_) {
      total += tracking.dirty_windows.size() + tracking.dirty_intervals.size();
    }
    return total;
  }

  /// Drains up to `budget` dirty regions (0 = all); oldest dirt first
  /// within each set. The drain order over the categories (jobs, then per
  /// level windows and intervals) ROTATES across budgeted calls: under
  /// sustained load the job queue alone can refill faster than a small
  /// budget drains it, and a fixed priority would starve the interval /
  /// window checks indefinitely — rotation bounds every region's delay by
  /// (categories × refill) audits instead. job_fn(JobId),
  /// window_fn(level, WindowKey), interval_fn(level, base). Returns the
  /// number of regions verified.
  template <class FJ, class FW, class FI>
  std::size_t drain(std::size_t budget, FJ&& job_fn, FW&& window_fn,
                    FI&& interval_fn) {
    // Category ids: 0 = jobs; per level L >= 1: 2L-1 = windows(L),
    // 2L = intervals(L). Level 0 has no interval/window tracking.
    const std::size_t categories =
        1 + 2 * (levels_.empty() ? 0 : levels_.size() - 1);
    std::size_t done = 0;
    for (std::size_t step = 0; step < categories; ++step) {
      if (budget != 0 && done >= budget) break;
      const std::size_t category = (drain_rotation_ + step) % categories;
      const std::size_t room = budget == 0 ? 0 : budget - done;
      std::size_t drained = 0;
      if (category == 0) {
        drained = dirty_jobs_.drain(room, [&](JobId id) { job_fn(id); });
        stats_.jobs_checked += drained;
      } else {
        const unsigned level = static_cast<unsigned>((category + 1) / 2);
        LevelTracking& tracking = levels_[level];
        if (category % 2 == 1) {
          drained = tracking.dirty_windows.drain(
              room, [&](const WindowKey& w) { window_fn(level, w); });
          stats_.windows_checked += drained;
        } else {
          drained = tracking.dirty_intervals.drain(room, [&](Time key) {
            interval_fn(level, key << tracking.interval_log);
          });
          stats_.intervals_checked += drained;
        }
      }
      done += drained;
    }
    if (budget != 0 && categories > 0) {
      drain_rotation_ = (drain_rotation_ + 1) % categories;
    }
    // Pacing releases once the backlog fits a single audit's budget — the
    // carry-over (or the migration window's reinsertion burst) has been
    // worked off and steady-state draining resumes unbounded.
    if (paced_ && dirty_regions() <= budget) paced_ = false;
    return done;
  }

  /// Generation flip (partitioned rebuild): the dirty sets and shadows
  /// follow the data into the other generation's engine; policies and
  /// accumulated stats stay with their owners.
  void swap_state_with(AuditEngine& other) {
    std::swap(levels_, other.levels_);
    std::swap(dirty_jobs_, other.dirty_jobs_);
    std::swap(parked_, other.parked_);
    std::swap(needs_full_, other.needs_full_);
    std::swap(drain_rotation_, other.drain_rotation_);
    std::swap(paced_, other.paced_);
  }

  /// Marks the current backlog as swap carry-over: until it drains to
  /// zero, the owner caps each audit at AuditPolicy::post_swap_budget
  /// regions instead of draining everything in one call. Called by the
  /// owner right after swap_state_with at a generation flip. No-op when
  /// there is nothing to pace.
  void begin_paced_drain() { paced_ = dirty_regions() > 0; }
  /// True while swap carry-over dirt is still being paced out.
  [[nodiscard]] bool paced_drain() const noexcept { return paced_; }

  /// Folds another engine's accumulated work counters into this one and
  /// zeroes the source — called when a retiring migration shadow hands its
  /// history to the surviving parent, so audit_work() totals never move
  /// backwards across a generation flip.
  void absorb_stats(AuditEngine& other) {
    stats_.events += other.stats_.events;
    stats_.incremental_audits += other.stats_.incremental_audits;
    stats_.escalations += other.stats_.escalations;
    stats_.jobs_checked += other.stats_.jobs_checked;
    stats_.windows_checked += other.stats_.windows_checked;
    stats_.intervals_checked += other.stats_.intervals_checked;
    other.stats_ = EngineStats{};
  }

  [[nodiscard]] EngineStats& stats() noexcept { return stats_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  struct LevelTracking {
    unsigned interval_log = 0;
    PagedDirtySet dirty_intervals;               // key: base >> interval_log
    DirtyQueue<WindowKey> dirty_windows;
    FlatHashMap<WindowKey, std::int64_t> window_jobs;  // shadow job counts
    std::vector<std::uint32_t> census;                 // shadow active census
  };

  AuditPolicy policy_;
  std::vector<LevelTracking> levels_;
  DirtyQueue<JobId> dirty_jobs_;
  std::size_t drain_rotation_ = 0;  // budgeted-drain fairness cursor
  bool paced_ = false;              // swap carry-over dirt being paced out
  std::int64_t parked_ = 0;
  /// Attach-time state is unverified: the first audit is always a full
  /// sweep, whose success seeds the shadows (see mark_all / begin_reseed).
  bool needs_full_ = true;
  EngineStats stats_;
};

}  // namespace reasched::audit
