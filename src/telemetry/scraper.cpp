#include "telemetry/scraper.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/prometheus.hpp"

namespace reasched::telemetry {

namespace {

double unix_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// One scrape as one JSON line (the rotating metrics file's record).
std::string delta_json_line(const DeltaSnapshot& delta) {
  std::ostringstream os;
  os << "{\"seq\":" << delta.sequence << ",\"wall_s\":" << delta.wall_s
     << ",\"interval_s\":" << delta.interval_s << ",\"counters\":{";
  for (std::size_t i = 0; i < delta.counters.size(); ++i) {
    const auto& c = delta.counters[i];
    if (i != 0) os << ",";
    write_json_string(os, c.name);
    os << ":{\"total\":" << c.total << ",\"delta\":" << c.delta
       << ",\"per_s\":" << c.per_s << "}";
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < delta.gauges.size(); ++i) {
    if (i != 0) os << ",";
    write_json_string(os, delta.gauges[i].name);
    os << ":" << delta.gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < delta.histograms.size(); ++i) {
    const auto& h = delta.histograms[i];
    if (i != 0) os << ",";
    write_json_string(os, h.name);
    os << ":{\"count\":" << h.total_count
       << ",\"delta_count\":" << h.interval.total()
       << ",\"p50\":" << h.interval.percentile(0.50)
       << ",\"p99\":" << h.interval.percentile(0.99)
       << ",\"p999\":" << h.interval.percentile(0.999)
       << ",\"max\":" << h.interval.max() << "}";
  }
  os << "}}\n";
  return os.str();
}

}  // namespace

DeltaSnapshot delta_since(const Registry::Snapshot& prev,
                          const Registry::Snapshot& cur, double interval_s) {
  DeltaSnapshot out;
  out.interval_s = interval_s;
  // Interning only appends, so a snapshot taken earlier in the same
  // process is an index-wise prefix of a later one; the name check guards
  // a reset-plus-new-interning edge.
  for (std::size_t i = 0; i < cur.counters.size(); ++i) {
    DeltaSnapshot::CounterDelta c;
    c.name = cur.counters[i].first;
    c.total = cur.counters[i].second;
    const std::uint64_t before =
        i < prev.counters.size() && prev.counters[i].first == c.name
            ? prev.counters[i].second
            : 0;
    c.delta = c.total >= before ? c.total - before : 0;
    c.per_s = interval_s > 0.0 ? static_cast<double>(c.delta) / interval_s : 0.0;
    out.counters.push_back(std::move(c));
  }
  for (const auto& [name, value] : cur.gauges) {
    out.gauges.push_back({name, value});
  }
  for (std::size_t i = 0; i < cur.histograms.size(); ++i) {
    const auto& ch = cur.histograms[i];
    DeltaSnapshot::HistogramDelta h;
    h.name = ch.name;
    h.unit = ch.unit;
    h.total_count = ch.hist.total();
    const LatencyHistogram* before = nullptr;
    if (i < prev.histograms.size() && prev.histograms[i].name == ch.name) {
      before = &prev.histograms[i].hist;
    }
    for (std::uint32_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t now = ch.hist.buckets()[b];
      const std::uint64_t was = before != nullptr ? before->buckets()[b] : 0;
      // kCount buckets are monotone so the clamp never fires; kTicks
      // buckets can shift a sample across a boundary when the tick→ns
      // calibration drifts between scrapes.
      if (now > was) h.interval.add_bucket(b, now - was);
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

Scraper::Scraper(Options options) : options_(std::move(options)) {
  if (options_.interval_ms == 0) options_.interval_ms = 1;
  paused_.store(options_.start_paused, std::memory_order_relaxed);
  if (options_.port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ >= 0) {
      const int one = 1;
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) == 0 &&
          ::listen(listen_fd_, 16) == 0) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0) {
          port_ = ntohs(bound.sin_port);
        }
        listener_ = std::thread([this] { serve(); });
      } else {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
    }
  }
  thread_ = std::thread([this] { run(); });
}

Scraper::~Scraper() { stop(); }

void Scraper::stop() {
  const bool already = stopping_.exchange(true, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    // Unblocks the listener's accept() (returns with an error on Linux
    // once the listening socket is shut down / closed).
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (listener_.joinable()) listener_.join();
  // Final scrape: the sum of emitted deltas equals the cumulative totals.
  if (!already) scrape();
}

void Scraper::set_paused(bool paused) {
  paused_.store(paused, std::memory_order_relaxed);
}

void Scraper::scrape_now() { scrape(); }

std::string Scraper::exposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return exposition_;
}

DeltaSnapshot Scraper::last_delta() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_delta_;
}

void Scraper::run() {
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait_for(lock, interval, [this] {
        return stopping_.load(std::memory_order_relaxed);
      });
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (!paused_.load(std::memory_order_relaxed)) scrape();
  }
}

void Scraper::scrape() {
  DeltaSnapshot delta;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t now = now_ns();
    Registry::Snapshot cur = Registry::global().snapshot();
    const double interval_s =
        have_prev_ ? static_cast<double>(now - prev_ns_) * 1e-9 : 0.0;
    delta = delta_since(have_prev_ ? prev_ : Registry::Snapshot{}, cur,
                        interval_s);
    delta.sequence = scrapes_.fetch_add(1, std::memory_order_relaxed) + 1;
    delta.wall_s = unix_seconds();
    exposition_ = prometheus_text(cur);
    prev_ = std::move(cur);
    have_prev_ = true;
    prev_ns_ = now;
    if (!options_.out_path.empty()) {
      const std::string line = delta_json_line(delta);
      rotate_if_needed();
      std::ofstream out(options_.out_path, out_bytes_ == 0
                                               ? std::ios::trunc
                                               : std::ios::app);
      if (out) {
        out << line;
        out_bytes_ += line.size();
      }
    }
    last_delta_ = delta;
  }
  // Outside the lock: the callback may call exposition()/last_delta().
  if (options_.on_scrape) options_.on_scrape(delta);
}

void Scraper::rotate_if_needed() {
  if (out_bytes_ == 0 || out_bytes_ < options_.rotate_bytes) return;
  const auto rotated = [this](std::uint32_t n) {
    return options_.out_path + "." + std::to_string(n);
  };
  if (options_.keep_files == 0) {
    std::remove(options_.out_path.c_str());
  } else {
    std::remove(rotated(options_.keep_files).c_str());
    for (std::uint32_t n = options_.keep_files; n > 1; --n) {
      std::rename(rotated(n - 1).c_str(), rotated(n).c_str());
    }
    std::rename(options_.out_path.c_str(), rotated(1).c_str());
  }
  out_bytes_ = 0;
}

void Scraper::serve() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_relaxed) || errno != EINTR) return;
      continue;
    }
    // Best-effort read of the request line; the response is the same for
    // every path, so a slow or silent client only costs the timeout.
    timeval timeout{};
    timeout.tv_usec = 100 * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    char buf[1024];
    (void)::recv(client, buf, sizeof(buf), 0);
    std::string body = exposition();
    if (body.empty()) {
      // No scrape yet: serve a fresh exposition rather than nothing.
      body = prometheus_text(Registry::global().snapshot());
    }
    std::string reply =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t sent = 0;
    while (sent < reply.size()) {
      const auto n = ::send(client, reply.data() + sent, reply.size() - sent,
                            MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
  }
}

}  // namespace reasched::telemetry
