// Background telemetry scraper (DESIGN.md §12): a thread that snapshots
// the registry on a fixed cadence (TelemetryOptions::scrape_interval_ms)
// and computes *delta-since-last-scrape* — counter deltas and rates, the
// gauge values, and per-interval histograms — against the retained
// previous snapshot. The cumulative registry answers "how much ever"; the
// scraper answers the operator's question, "how much per second, now".
//
// Record-path discipline: the scraper only ever calls Registry::snapshot()
// (merge under the registry mutex, which record sites never take) from its
// own thread. Record sites cannot observe whether a scraper exists —
// bench_e18's "scrape" mode prices this claim at a 100 ms cadence against
// the 1.05x CI ceiling, and the telemetry-OFF flavor runs its compiled-out
// zero-overhead assert with a scraper active.
//
// Each scrape also refreshes a cached Prometheus exposition
// (telemetry/prometheus.hpp) and, when configured:
//
//   * appends the delta as one JSON line to a rotating metrics file
//     (`out_path`, renamed to `out_path.1..keep_files` at rotate_bytes);
//   * serves the latest exposition over a minimal blocking HTTP/1.0
//     listener on 127.0.0.1:`port` (`--metrics-port`; port 0 binds an
//     ephemeral port, readable via port()) — enough for `curl` or a
//     Prometheus scrape job, not a web server;
//   * invokes `on_scrape` with the delta (tests and benches).
//
// stop() performs one final scrape, so the sum of all deltas equals the
// cumulative totals exactly (tests/scraper_test.cpp holds this invariant
// against serial ground truth and under concurrent recorders in the TSan
// lane). Construction starts the thread; destruction stops it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"

namespace reasched::telemetry {

/// What changed between two consecutive scrapes, plus the cumulative
/// values the collector would export.
struct DeltaSnapshot {
  std::uint64_t sequence = 0;  // scrape ordinal, 1-based
  double interval_s = 0.0;     // wall seconds since the previous scrape
  double wall_s = 0.0;         // unix time of this scrape

  struct CounterDelta {
    std::string name;
    std::uint64_t total = 0;  // cumulative
    std::uint64_t delta = 0;  // since previous scrape
    double per_s = 0.0;       // delta / interval_s
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;  // gauges are levels: the delta IS the value
  };
  struct HistogramDelta {
    std::string name;
    Registry::Unit unit = Registry::Unit::kCount;
    std::uint64_t total_count = 0;       // cumulative samples
    LatencyHistogram interval;           // samples landed this interval
  };
  std::vector<CounterDelta> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramDelta> histograms;
};

/// Bucket-wise difference cur - prev. Exact for Unit::kCount histograms;
/// Unit::kTicks buckets clamp negative differences to zero (the tick→ns
/// calibration can shift a boundary bucket between two scrapes).
[[nodiscard]] DeltaSnapshot delta_since(const Registry::Snapshot& prev,
                                        const Registry::Snapshot& cur,
                                        double interval_s);

class Scraper {
 public:
  struct Options {
    /// Scrape cadence. Clamped to >= 1.
    std::uint32_t interval_ms = 1000;
    /// Rotating delta-JSONL file ("" = none). The active file is always
    /// `out_path`; on overflow it renames to `out_path.1` (older files
    /// shift up, `out_path.keep_files` is deleted).
    std::string out_path;
    std::uint64_t rotate_bytes = 1u << 20;
    std::uint32_t keep_files = 4;
    /// -1 = no listener; 0 = bind an ephemeral 127.0.0.1 port (port());
    /// >0 = bind that port.
    int port = -1;
    /// Start without scraping; resume() arms the cadence. For benches that
    /// price the scraper only inside measured segments.
    bool start_paused = false;
    /// Called after every scrape (including the final one in stop()), on
    /// the scraper thread (or the stop() caller for the final scrape).
    std::function<void(const DeltaSnapshot&)> on_scrape;
  };

  explicit Scraper(Options options);
  ~Scraper();

  Scraper(const Scraper&) = delete;
  Scraper& operator=(const Scraper&) = delete;

  /// Final scrape, then joins the scraper (and listener) threads.
  /// Idempotent.
  void stop();

  /// Pause/resume the cadence (scrape_now() still works while paused).
  void set_paused(bool paused);

  /// One synchronous scrape on the caller's thread.
  void scrape_now();

  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }
  /// Bound listener port (0 when no listener / bind failed).
  [[nodiscard]] int port() const noexcept { return port_; }
  /// Latest cached exposition ("" before the first scrape).
  [[nodiscard]] std::string exposition() const;
  [[nodiscard]] DeltaSnapshot last_delta() const;

 private:
  void scrape();
  void run();
  void serve();
  void rotate_if_needed();

  Options options_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> paused_{false};
  std::atomic<std::uint64_t> scrapes_{0};

  mutable std::mutex mutex_;  // prev_, exposition_, last_delta_, file state
  Registry::Snapshot prev_;
  bool have_prev_ = false;
  std::uint64_t prev_ns_ = 0;  // steady time of the previous scrape
  std::string exposition_;
  DeltaSnapshot last_delta_;
  std::uint64_t out_bytes_ = 0;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread listener_;
  std::thread thread_;
};

}  // namespace reasched::telemetry
