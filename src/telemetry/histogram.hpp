// Log-bucketed latency histogram (HDR-style) for the telemetry tier.
//
// Fixed-size bucket array, no allocation or data-dependent branching on the
// record path: one index computation (count-leading-zeros + shift) and one
// increment. Buckets are (octave, sub-bucket) pairs with kSubBits = 6 —
// 64 sub-buckets per power of two — so a bucket's width is 2^-6 of its
// base and the midpoint we report is within 2^-7 ≈ 0.8% of any value the
// bucket holds. Queries that re-bucket through a unit conversion (the
// registry's tick→ns scrape, registry.cpp) compound two such roundings,
// (1 + 2^-7)^2 - 1 ≈ 1.6% — comfortably inside the documented ≤3%
// relative-error bound that tests/telemetry_test.cpp property-checks.
//
// Values are expected in nanoseconds (or raw counts — the math is
// unit-agnostic); values at or above 2^40 (~18 min in ns) clamp into the
// last bucket.
//
// This is the *plain* single-writer form, used for merged scrape results,
// MetricsCollector's per-request latency block, and bench latency blocks.
// The per-thread atomic shard variant lives in registry.hpp and shares
// this class's bucket math.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace reasched::telemetry {

class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 6;
  static constexpr std::uint32_t kSub = 1u << kSubBits;  // sub-buckets/octave
  static constexpr std::uint32_t kMaxExp = 40;           // clamp at 2^40
  static constexpr std::uint32_t kBuckets = (kMaxExp - kSubBits + 1) * kSub;

  /// Bucket index for a value; total order preserving, clamps at the top.
  [[nodiscard]] static constexpr std::uint32_t bucket_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::uint32_t>(v);  // exact small values
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    if (msb >= kMaxExp) return kBuckets - 1;
    const auto sub =
        static_cast<std::uint32_t>((v >> (msb - kSubBits)) & (kSub - 1));
    return (msb - kSubBits + 1) * kSub + sub;
  }

  /// Midpoint of a bucket — the representative value queries report.
  [[nodiscard]] static constexpr std::uint64_t bucket_mid(std::uint32_t idx) noexcept {
    if (idx < kSub) return idx;
    const std::uint32_t octave = idx / kSub;
    const std::uint32_t sub = idx % kSub;
    const unsigned msb = octave + kSubBits - 1;
    const std::uint64_t lo =
        (std::uint64_t{1} << msb) + (std::uint64_t{sub} << (msb - kSubBits));
    return lo + (std::uint64_t{1} << (msb - kSubBits)) / 2;
  }

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++total_;
  }
  /// Adds `count` samples to the bucket holding `value` (scrape merges).
  void record_n(std::uint64_t value, std::uint64_t count) noexcept {
    buckets_[bucket_of(value)] += count;
    total_ += count;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Smallest bucket midpoint v such that at least q·total() samples fall
  /// in buckets at or below v's. Returns 0 on an empty histogram (the
  /// IntHistogram empty-scrape contract, src/util/stats.hpp).
  [[nodiscard]] std::uint64_t percentile(double q) const {
    RS_REQUIRE(q >= 0.0 && q <= 1.0, "percentile: q outside [0,1]");
    if (total_ == 0) return 0;
    auto target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
    if (target < 1) target = 1;
    if (target > total_) target = total_;
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return bucket_mid(i);
    }
    return bucket_mid(kBuckets - 1);
  }

  /// Midpoint of the highest non-empty bucket; 0 when empty.
  [[nodiscard]] std::uint64_t max() const noexcept {
    for (std::uint32_t i = kBuckets; i-- > 0;) {
      if (buckets_[i] != 0) return bucket_mid(i);
    }
    return 0;
  }

  [[nodiscard]] double mean() const noexcept {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] != 0) {
        sum += static_cast<double>(buckets_[i]) *
               static_cast<double>(bucket_mid(i));
      }
    }
    return sum / static_cast<double>(total_);
  }

  /// Adds `count` samples directly to bucket `idx` — exact (no re-bucketing)
  /// merge path for the registry's atomic per-thread shards.
  void add_bucket(std::uint32_t idx, std::uint64_t count) noexcept {
    buckets_[idx] += count;
    total_ += count;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::uint32_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    total_ += other.total_;
  }

  [[nodiscard]] bool operator==(const LatencyHistogram& other) const noexcept {
    return total_ == other.total_ && buckets_ == other.buckets_;
  }

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
};

}  // namespace reasched::telemetry
